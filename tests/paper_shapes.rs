//! Integration tests asserting the qualitative shapes of the paper's
//! evaluation figures (§4). Absolute numbers are recorded in
//! EXPERIMENTS.md; these tests pin the *orderings and trends* so a
//! regression in any crate shows up as a shape violation.

use facs::FacsConfig;
use facs_cac::BoxedController;
use facs_cellsim::prelude::*;
use facs_cellsim::HexGrid;
use facs_scc::{SccConfig, SccNetwork};

fn facs_builder() -> impl Fn(&HexGrid) -> Vec<BoxedController> {
    |grid: &HexGrid| {
        grid.cell_ids()
            .map(|_| {
                Box::new(facs::FacsController::with_config(FacsConfig::default()).unwrap())
                    as BoxedController
            })
            .collect()
    }
}

fn scenario(requests: usize) -> ScenarioConfig {
    ScenarioConfig { requests, replications: 2, ..Default::default() }
}

/// Fig. 7: faster users are accepted more under load; every curve
/// decreases with the number of requesting connections.
#[test]
fn fig7_speed_ordering_holds() {
    let accept = |speed: f64, n: usize| {
        ScenarioConfig { speed: SpeedSpec::Fixed(speed), ..scenario(n) }.acceptance(&facs_builder())
    };
    // Light load: everyone gets in.
    for speed in [4.0, 30.0, 60.0] {
        assert!(accept(speed, 10) > 95.0, "light load at {speed} km/h");
    }
    // Heavy load: vehicles beat walkers by a wide margin.
    let slow = accept(4.0, 100);
    let walk = accept(10.0, 100);
    let city = accept(30.0, 100);
    let highway = accept(60.0, 100);
    assert!(
        city > slow + 5.0 && city > walk + 5.0,
        "30 km/h ({city}) must clearly beat walking speeds ({slow}, {walk})"
    );
    assert!(highway >= city - 2.0, "60 km/h ({highway}) at least matches 30 km/h ({city})");
    // Curves decrease with N.
    for speed in [4.0, 30.0, 60.0] {
        assert!(
            accept(speed, 100) < accept(speed, 10) + 1e-9,
            "acceptance must not rise with load at {speed} km/h"
        );
    }
}

/// Fig. 8: acceptance decreases monotonically (within tolerance) as the
/// approach angle grows; angle 0 stays near-perfect at light load.
#[test]
fn fig8_angle_ordering_holds() {
    let accept = |angle: f64, n: usize| {
        ScenarioConfig { angle: AngleSpec::Fixed(angle), ..scenario(n) }.acceptance(&facs_builder())
    };
    assert!(accept(0.0, 10) > 97.0, "head-on users at light load");
    let at_100: Vec<f64> = [0.0, 30.0, 60.0, 90.0].iter().map(|&a| accept(a, 100)).collect();
    // Monotone within a small tolerance for simulation noise.
    for pair in at_100.windows(2) {
        assert!(pair[1] <= pair[0] + 3.0, "acceptance should fall with angle: {at_100:?}");
    }
    assert!(at_100[0] > at_100[3] + 8.0, "0° vs 90° must separate clearly: {at_100:?}");
}

/// Fig. 9: farther users are accepted (slightly) less; the spread is
/// visibly smaller than the speed/angle spreads — the paper's own
/// observation.
#[test]
fn fig9_distance_effect_is_small_but_present() {
    let accept = |d: f64, n: usize| {
        ScenarioConfig { distance: DistanceSpec::Fixed(d), ..scenario(n) }
            .acceptance(&facs_builder())
    };
    let near = accept(1.0, 100);
    let far = accept(10.0, 100);
    assert!(near >= far - 1.0, "near ({near}) should not lose to far ({far})");
    let spread = near - far;
    assert!(spread < 12.0, "distance spread ({spread}) must stay small");
}

/// Fig. 10: under heavy load FACS accepts fewer calls than SCC (it
/// protects the QoS of ongoing calls) while the two stay close under
/// light load.
#[test]
fn fig10_facs_vs_scc_relationship() {
    let multi = |n: usize| ScenarioConfig {
        requests: n * 7,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        replications: 2,
        ..Default::default()
    };
    let scc_builder = |grid: &HexGrid| SccNetwork::new(SccConfig::default()).controllers(grid);
    let facs_low = multi(10).acceptance(&facs_builder());
    let scc_low = multi(10).acceptance(&scc_builder);
    assert!((facs_low - scc_low).abs() < 5.0, "light load: close ({facs_low} vs {scc_low})");
    let facs_high = multi(100).acceptance(&facs_builder());
    let scc_high = multi(100).acceptance(&scc_builder);
    assert!(
        scc_high >= facs_high - 1.0,
        "heavy load: SCC ({scc_high}) accepts at least as much as FACS ({facs_high})"
    );
}

/// The QoS claim behind Fig. 10: FACS drops fewer handoffs than SCC under
/// load — the cost of SCC's higher raw acceptance.
///
/// Dropping is a rare event here: 30 pooled replications yield only a
/// few hundred handoff attempts per policy at roughly a 9 % (FACS) vs
/// 10 % (SCC) drop rate, so the standard error of the rate difference
/// (~2.4 points) exceeds the true edge (~1.7 points). No assertion at
/// this sample size can detect loss of the edge itself — that would
/// take hundreds of replications. What this test pins instead is that
/// FACS never becomes *statistically significantly worse* than SCC: a
/// one-sided z-bound computed from the pooled binomial counts, which
/// tightens automatically if a future PR raises the replication count.
#[test]
fn facs_protects_ongoing_calls_better_than_scc() {
    let config = ScenarioConfig {
        requests: 700,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 30,
        ..Default::default()
    };
    let facs = config.aggregate(&facs_builder());
    let scc =
        config.aggregate(&|grid: &HexGrid| SccNetwork::new(SccConfig::default()).controllers(grid));
    assert!(
        facs.handoff_attempts >= 100 && scc.handoff_attempts >= 100,
        "need a meaningful handoff sample ({} vs {})",
        facs.handoff_attempts,
        scc.handoff_attempts
    );
    let (p_facs, n_facs) = (facs.dropping_percentage() / 100.0, facs.handoff_attempts as f64);
    let (p_scc, n_scc) = (scc.dropping_percentage() / 100.0, scc.handoff_attempts as f64);
    let se = (p_facs * (1.0 - p_facs) / n_facs + p_scc * (1.0 - p_scc) / n_scc).sqrt().max(1e-9);
    // One-sided 2.5-sigma bound: under "rates equal" this false-fails
    // ~0.6 % of the time; a genuine inversion beyond sampling noise
    // (FACS dropping clearly more than SCC) fails it deterministically.
    assert!(
        p_facs <= p_scc + 2.5 * se,
        "FACS dropping {:.2}% is significantly worse than SCC {:.2}% \
         (diff {:.2}pp > 2.5 sigma = {:.2}pp; attempts {} vs {})",
        100.0 * p_facs,
        100.0 * p_scc,
        100.0 * (p_facs - p_scc),
        250.0 * se,
        facs.handoff_attempts,
        scc.handoff_attempts
    );
}

/// The paper's premise in §1: a good CAC balances blocking against
/// dropping. Complete Sharing accepts the most calls but pays in drops
/// relative to FACS under identical traffic.
#[test]
fn complete_sharing_accepts_more_but_protects_less() {
    let config = ScenarioConfig {
        requests: 700,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 3,
        ..Default::default()
    };
    let cs = config.aggregate(&|grid: &HexGrid| {
        grid.cell_ids()
            .map(|_| Box::new(facs_cac::policies::CompleteSharing::new()) as BoxedController)
            .collect()
    });
    let facs = config.aggregate(&facs_builder());
    assert!(cs.acceptance_percentage() > facs.acceptance_percentage(), "CS admits more raw calls");
}
