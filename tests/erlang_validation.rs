//! Validates the discrete-event simulator against Erlang-B queueing
//! theory: a single-class M/M/c/c workload under Complete Sharing must
//! block at the analytical rate.

use facs_cac::policies::CompleteSharing;
use facs_cac::{BandwidthUnits, BoxedController, ServiceClass, ServiceProfile};
use facs_cellsim::erlang::erlang_b;
use facs_cellsim::geometry::{HexGrid, Point};
use facs_cellsim::mobility::MobileState;
use facs_cellsim::network::{MobilityKind, Simulation, SimulationConfig, UserSpec};
use facs_cellsim::rng::SimRng;

/// Builds a stationary single-class workload: Poisson arrivals at
/// `rate_per_s` over `window_s`, exponential holding with mean
/// `holding_s`.
fn mm_c_c_workload(rate_per_s: f64, holding_s: f64, window_s: f64, seed: u64) -> Vec<UserSpec> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t = 0.0;
    let mut specs = Vec::new();
    loop {
        t += rng.exponential(1.0 / rate_per_s);
        if t >= window_s {
            break;
        }
        specs.push(UserSpec {
            arrival_s: t,
            // Rigid paper profile: 5 BU => capacity 40 BU = 8 servers.
            profile: ServiceProfile::paper(ServiceClass::Voice),
            start: MobileState::new(Point::new(1.0, 0.0), 0.0, 0.0),
            mobility: MobilityKind::StraightLine,
            holding_s: rng.exponential(holding_s),
        });
    }
    specs
}

#[test]
fn simulator_blocking_matches_erlang_b() {
    // 8 voice "servers" (40 BU / 5 BU), offered 6 Erlangs:
    // analytical blocking B(8, 6) ≈ 0.122.
    let rate = 0.1; // calls/s
    let holding = 60.0; // s => offered = 6 Erlangs
    let servers = 8;
    let expected = erlang_b(servers, rate * holding);

    let mut blocked = 0u64;
    let mut offered = 0u64;
    for seed in 0..6 {
        let workload = mm_c_c_workload(rate, holding, 20_000.0, 1000 + seed);
        let grid = HexGrid::single_cell(10.0);
        let config = SimulationConfig {
            capacity: BandwidthUnits::new(40),
            movement_tick_s: 50.0,
            max_time_s: 40_000.0,
            seed,
            shards: 1,
            ..SimulationConfig::default()
        };
        let controllers: Vec<BoxedController> = vec![Box::new(CompleteSharing::new())];
        let mut sim = Simulation::new(grid, config, controllers);
        let metrics = sim.run(workload);
        blocked += metrics.blocked_new;
        offered += metrics.offered_new;
    }
    let measured = blocked as f64 / offered as f64;
    assert!(
        (measured - expected).abs() < 0.02,
        "measured blocking {measured:.4} vs Erlang-B {expected:.4} (offered {offered})"
    );
}

#[test]
fn simulator_tracks_erlang_b_across_loads() {
    // The measured blocking must move with the analytical curve, not just
    // match at one point.
    let run = |rate: f64| -> f64 {
        let workload = mm_c_c_workload(rate, 60.0, 30_000.0, 77);
        let grid = HexGrid::single_cell(10.0);
        let config = SimulationConfig {
            capacity: BandwidthUnits::new(40),
            movement_tick_s: 50.0,
            max_time_s: 60_000.0,
            seed: 7,
            shards: 1,
            ..SimulationConfig::default()
        };
        let mut sim = Simulation::new(
            grid,
            config,
            vec![Box::new(CompleteSharing::new()) as BoxedController],
        );
        let metrics = sim.run(workload);
        metrics.blocked_new as f64 / metrics.offered_new as f64
    };
    for (rate, erlangs) in [(0.05, 3.0), (0.1, 6.0), (0.2, 12.0)] {
        let measured = run(rate);
        let expected = erlang_b(8, erlangs);
        assert!(
            (measured - expected).abs() < 0.035,
            "at {erlangs} Erlangs: measured {measured:.4} vs Erlang-B {expected:.4}"
        );
    }
}
