//! Pins the umbrella crate's public API surface: the exact quickstart
//! path documented in README.md and `src/lib.rs` must keep compiling and
//! behaving — `FacsController::new()` admits a reasonable request on an
//! empty cell, reached exclusively through `facs_suite::` re-exports.

use facs_suite::cac::{
    AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
    MobilityInfo, ServiceClass, ServiceProfile,
};
use facs_suite::core::FacsController;

#[test]
fn quickstart_admits_on_empty_cell() {
    let mut facs = FacsController::new().expect("default FACS controller builds");
    let cell = BandwidthLedger::new(BandwidthUnits::new(40));
    let request = CallRequest::new(
        CallId(1),
        ServiceClass::Voice,
        CallKind::New,
        MobilityInfo::new(60.0, 10.0, 2.5),
    );
    let plan = facs.decide(&request, &cell);
    assert!(plan.admits(), "empty cell must admit the quickstart request: {:?}", plan.decision());
}

#[test]
fn quickstart_rejects_on_full_cell() {
    let mut facs = FacsController::new().unwrap();
    // 8 rigid voice calls fill the 40-BU cell completely.
    let mut full = BandwidthLedger::new(BandwidthUnits::new(40));
    for i in 0..8 {
        full.allocate(CallId(100 + i), ServiceProfile::paper(ServiceClass::Voice)).unwrap();
    }
    let request = CallRequest::new(
        CallId(2),
        ServiceClass::Video,
        CallKind::New,
        MobilityInfo::new(60.0, 10.0, 2.5),
    );
    assert!(!facs.decide(&request, &full).admits(), "a full cell cannot admit");
}

#[test]
fn every_umbrella_module_is_reachable() {
    // One symbol per re-exported crate, so a dropped re-export fails to
    // compile here rather than in downstream code.
    let _fuzzy = facs_suite::fuzzy::MembershipFunction::triangular(0.5, 0.5, 0.5).unwrap();
    let _cac = facs_suite::cac::BandwidthUnits::new(1);
    let _cellsim = facs_suite::cellsim::HexGrid::single_cell(10.0);
    let _scc = facs_suite::scc::SccConfig::default();
    let _core = facs_suite::core::FacsConfig::default();
    let _distrib: Option<facs_suite::distrib::ClusterError> = None;
}
