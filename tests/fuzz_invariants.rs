//! The validate subsystem, end to end: trace digests must be stable
//! across shard/thread counts and sensitive to single flipped
//! admissions; every catalog scenario and fuzzed workload must uphold
//! the kernel's conservation invariants; and the fuzzer's shrinker must
//! hand back a strictly smaller failing workload.

use facs_cac::policies::CompleteSharing;
use facs_cac::{
    AdmissionController, AdmissionPlan, BandwidthLedger, BoxedController, CallId, CallRequest,
    Decision,
};
use facs_cellsim::prelude::*;
use facs_cellsim::{
    catalog, complexity, shrink, shrink_candidates, FuzzCase, HexGrid, InvariantSink, TraceDigest,
};

fn cs_controllers(grid: &HexGrid) -> Vec<BoxedController> {
    grid.cell_ids().map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
}

/// Runs one scenario (first replication seed) with the given shard
/// count and collects metrics + invariants + digest.
fn instrumented_run(
    config: &ScenarioConfig,
    shards: usize,
) -> (Metrics, InvariantSink, TraceDigest) {
    let seed = config.replication_seeds().next().expect("one replication");
    let grid = config.grid();
    let controllers = cs_controllers(&grid);
    let sim_config = SimulationConfig { shards, ..config.sim_config(seed) };
    let mut sim = Simulation::new(grid, sim_config, controllers);
    let sink = (Metrics::new(), (InvariantSink::new(), TraceDigest::new()));
    let (metrics, (invariants, digest)) = sim.run_with(config.generate_workload(seed), sink);
    (metrics, invariants, digest)
}

fn busy_scenario() -> ScenarioConfig {
    ScenarioConfig {
        requests: 260,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 1,
        ..Default::default()
    }
}

#[test]
fn digest_is_shard_and_thread_count_independent() {
    let config = busy_scenario();
    let (metrics, _, single) = instrumented_run(&config, 1);
    assert!(metrics.handoff_attempts > 0, "scenario should exercise handoffs");
    assert!(single.events() > 0, "digest saw no events");
    // 2 and 7 shards run the threaded driver on different worker counts;
    // the digest must not move by a single bit.
    for shards in [2, 4, 7] {
        let (_, _, sharded) = instrumented_run(&config, shards);
        assert_eq!(single, sharded, "digest diverged at {shards} shards");
    }
}

#[test]
fn digest_is_deterministic_per_seed_and_sensitive_to_the_seed() {
    let config = busy_scenario();
    let (_, _, a) = instrumented_run(&config, 1);
    let (_, _, b) = instrumented_run(&config, 1);
    assert_eq!(a, b, "same seed must re-digest identically");
    let reseeded = ScenarioConfig { seed: config.seed + 1, ..config };
    let (_, _, c) = instrumented_run(&reseeded, 1);
    assert_ne!(a, c, "different workload must change the digest");
}

/// Complete sharing, except one specific call id is denied — the
/// minimal "single flipped admission" perturbation.
struct DenyOne {
    inner: CompleteSharing,
    victim: CallId,
}

impl AdmissionController for DenyOne {
    fn name(&self) -> &str {
        "deny-one"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        if request.id == self.victim {
            AdmissionPlan::Reject(Decision::binary(false))
        } else {
            self.inner.decide(request, cell)
        }
    }
}

#[test]
fn digest_flips_on_a_single_flipped_admission() {
    let config = busy_scenario();
    let seed = config.replication_seeds().next().expect("one replication");
    let workload = config.generate_workload(seed);
    let run = |victim: Option<u64>| {
        let grid = config.grid();
        let controllers: Vec<BoxedController> = grid
            .cell_ids()
            .map(|_| match victim {
                Some(id) => Box::new(DenyOne { inner: CompleteSharing::new(), victim: CallId(id) })
                    as BoxedController,
                None => Box::new(CompleteSharing::new()) as BoxedController,
            })
            .collect();
        let mut sim = Simulation::new(grid, config.sim_config(seed), controllers);
        sim.run_with(workload.clone(), (Metrics::new(), TraceDigest::new()))
    };
    let (base_metrics, baseline) = run(None);
    let (flipped_metrics, flipped) = run(Some(7));
    assert_eq!(
        base_metrics.accepted_new,
        flipped_metrics.accepted_new + 1,
        "exactly one admission should have flipped"
    );
    assert_ne!(baseline, flipped, "a single flipped admission must change the digest");
}

#[test]
fn catalog_scenarios_uphold_all_invariants() {
    for entry in catalog() {
        let config = ScenarioConfig { replications: 1, ..entry.config };
        for shards in [1, 3] {
            let (metrics, invariants, _) = instrumented_run(&config, shards);
            let violations = invariants.violations();
            assert!(
                violations.is_empty(),
                "{} at {shards} shards violated invariants: {violations:?}",
                entry.name
            );
            let drift = invariants.cross_check(&metrics);
            assert!(
                drift.is_empty(),
                "{} at {shards} shards: metrics drifted from events: {drift:?}",
                entry.name
            );
            assert!(invariants.samples_checked() > 0, "{}: no capacity samples", entry.name);
        }
    }
}

#[test]
fn fuzzed_workloads_uphold_all_invariants() {
    // Cheap tier-1 slice of the CI `--exp validate` sweep: complete
    // sharing (no fuzzy compile) over a handful of fuzzed scenarios.
    let fuzzer = WorkloadFuzzer::new(0x5EED);
    for case in fuzzer.cases(8) {
        let (metrics, invariants, single) = instrumented_run(&case.config, 1);
        let violations = invariants.violations();
        assert!(
            violations.is_empty(),
            "fuzz case {} violated invariants: {violations:?}",
            case.index
        );
        assert!(
            invariants.cross_check(&metrics).is_empty(),
            "fuzz case {}: metrics drift",
            case.index
        );
        let (_, _, sharded) = instrumented_run(&case.config, 4);
        assert_eq!(single, sharded, "fuzz case {}: digest diverged at 4 shards", case.index);
    }
}

#[test]
fn shrinking_produces_a_strictly_smaller_failing_workload() {
    let case = WorkloadFuzzer::new(0xBEEF).case(0);
    let mut case = case;
    case.config.requests = 250;
    case.config.grid_radius = 2;
    let original_complexity = complexity(&case.config);
    // Synthetic failure predicate: "fails" whenever the workload still
    // offers at least 25 requests.
    let fails = |c: &FuzzCase| c.config.requests >= 25;
    let minimal = shrink(&case, fails);
    assert!(fails(&minimal), "shrunk case no longer fails");
    assert!(
        complexity(&minimal.config) < original_complexity,
        "shrinking must strictly reduce structural complexity"
    );
    assert_eq!(minimal.config.requests, 25, "requests should bottom out at the threshold");
    assert_eq!(minimal.config.grid_radius, 0, "grid should shrink to a single cell");
    // And at the fixpoint, no candidate fails anymore.
    assert!(shrink_candidates(&minimal.config)
        .into_iter()
        .all(|config| !fails(&FuzzCase { config, ..minimal.clone() })));
}
