//! Cross-crate consistency of the FLC cascade: the `FacsController` must
//! equal the manual composition of `Flc1` and `Flc2` over the generic
//! fuzzy engine, and the rule tables must drive the engines the paper
//! describes.

use facs::{FacsConfig, FacsController, Flc1, Flc2, FRB1, FRB2};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};
use facs_cellsim::SimRng;

fn snapshot(occupied: u32) -> CellSnapshot {
    CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(occupied))
}

#[test]
fn controller_equals_manual_cascade() {
    let facs = FacsController::new().unwrap();
    let flc1 = Flc1::new().unwrap();
    let flc2 = Flc2::new().unwrap();
    let mut rng = SimRng::seed_from_u64(424242);
    for i in 0..500 {
        let mobility = MobilityInfo::new(
            rng.uniform_range(0.0, 120.0),
            rng.uniform_range(-180.0, 180.0),
            rng.uniform_range(0.0, 10.0),
        );
        let class = match rng.index(3) {
            0 => ServiceClass::Text,
            1 => ServiceClass::Voice,
            _ => ServiceClass::Video,
        };
        let occupied = rng.index(41) as u32;
        let request = CallRequest::new(CallId(i), class, CallKind::New, mobility);
        let eval = facs.evaluate(&request, &snapshot(occupied));

        let cv = flc1.correction_value(&mobility).unwrap();
        let score = flc2.decision_score(cv, class.request_level(), f64::from(occupied)).unwrap();
        let score = (score * 1e12).round() / 1e12;
        assert!((eval.correction_value - cv).abs() < 1e-12, "cv mismatch at iteration {i}");
        assert!((eval.score - score).abs() < 1e-12, "score mismatch at iteration {i}");
    }
}

#[test]
fn rule_tables_reach_every_consequent_term() {
    // Every Cv term the table names exists in FLC1's output variable, and
    // every decision term in FLC2's.
    let flc1 = Flc1::new().unwrap();
    let cv_var = &flc1.engine().outputs()[0];
    for &(_, _, _, cv) in FRB1.iter() {
        assert!(cv_var.term(cv).is_some(), "FLC1 missing term {cv}");
    }
    let flc2 = Flc2::new().unwrap();
    let ar_var = &flc2.engine().outputs()[0];
    for &(_, _, _, ar) in FRB2.iter() {
        assert!(ar_var.term(ar).is_some(), "FLC2 missing term {ar}");
    }
}

#[test]
fn dsl_round_trip_rebuilds_frb1() {
    // Serialize FLC1's rule base through the textual DSL and rebuild an
    // identical engine — config-file workflows stay trustworthy.
    let flc1 = Flc1::new().unwrap();
    let text: String = flc1.engine().rule_base().iter().map(|r| format!("{r}\n")).collect();
    let rules = facs_fuzzy::parse_rules(&text).unwrap();
    assert_eq!(rules.len(), 42);
    let rebuilt = facs_fuzzy::Engine::builder()
        .input(flc1.engine().inputs()[0].clone())
        .input(flc1.engine().inputs()[1].clone())
        .input(flc1.engine().inputs()[2].clone())
        .output(flc1.engine().outputs()[0].clone())
        .rules(rules)
        .build()
        .unwrap();
    let mut rng = SimRng::seed_from_u64(7);
    for _ in 0..200 {
        let s = rng.uniform_range(0.0, 120.0);
        let a = rng.uniform_range(-180.0, 180.0);
        let d = rng.uniform_range(0.0, 10.0);
        let original = flc1.correction_value(&MobilityInfo::new(s, a, d)).unwrap();
        let round_tripped = rebuilt.evaluate_single(&[("s", s), ("a", a), ("d", d)]).unwrap();
        assert!((original - round_tripped).abs() < 1e-12, "divergence at ({s}, {a}, {d})");
    }
}

#[test]
fn facs_is_monotone_in_occupancy_for_fixed_user() {
    let facs = FacsController::with_config(FacsConfig::default()).unwrap();
    let request = CallRequest::new(
        CallId(1),
        ServiceClass::Voice,
        CallKind::New,
        MobilityInfo::new(45.0, 20.0, 3.0),
    );
    let mut previous = f64::INFINITY;
    for occupied in (0..=40).step_by(5) {
        let eval = facs.evaluate(&request, &snapshot(occupied));
        assert!(
            eval.score <= previous + 0.15,
            "score should not rise with occupancy (at {occupied}: {} > {previous})",
            eval.score
        );
        previous = eval.score;
    }
}

#[test]
fn full_input_space_never_errors() {
    let facs = FacsController::new().unwrap();
    for speed in (0..=120).step_by(20) {
        for angle in (-180..=180).step_by(45) {
            for distance in (0..=10).step_by(2) {
                for occupied in (0..=40).step_by(10) {
                    for class in ServiceClass::ALL {
                        let request = CallRequest::new(
                            CallId(0),
                            class,
                            CallKind::New,
                            MobilityInfo::new(
                                f64::from(speed),
                                f64::from(angle),
                                f64::from(distance),
                            ),
                        );
                        let eval = facs.evaluate(&request, &snapshot(occupied));
                        assert!(
                            (-1.0..=1.0).contains(&eval.score),
                            "score out of range for s={speed} a={angle} d={distance}"
                        );
                    }
                }
            }
        }
    }
}
