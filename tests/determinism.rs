//! Reproducibility: identical seeds must give identical runs for every
//! controller, and the workload must be independent of the policy under
//! test (so comparisons are paired).

use facs::FacsController;
use facs_cac::policies::{CompleteSharing, GuardChannel};
use facs_cac::{BandwidthUnits, BoxedController};
use facs_cellsim::prelude::*;
use facs_cellsim::HexGrid;
use facs_scc::{SccConfig, SccNetwork};

fn config() -> ScenarioConfig {
    ScenarioConfig {
        requests: 300,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 1,
        ..Default::default()
    }
}

type ControllerBuilder = Box<dyn Fn(&HexGrid) -> Vec<BoxedController>>;

fn builders() -> Vec<(&'static str, ControllerBuilder)> {
    vec![
        (
            "facs",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(FacsController::new().unwrap()) as BoxedController)
                    .collect()
            }),
        ),
        ("scc", Box::new(|grid: &HexGrid| SccNetwork::new(SccConfig::default()).controllers(grid))),
        (
            "cs",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(CompleteSharing::new()) as BoxedController)
                    .collect()
            }),
        ),
        (
            "guard",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(GuardChannel::new(BandwidthUnits::new(8))) as BoxedController)
                    .collect()
            }),
        ),
    ]
}

#[test]
fn same_seed_same_metrics_for_every_controller() {
    for (name, build) in builders() {
        let a = config().run_once(99, build.as_ref());
        let b = config().run_once(99, build.as_ref());
        assert_eq!(a, b, "controller {name} is not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let build = &builders()[0].1;
    let a = config().run_once(1, build.as_ref());
    let b = config().run_once(2, build.as_ref());
    assert_ne!(a, b, "different seeds should explore different traffic");
}

#[test]
fn workload_is_policy_independent() {
    // The same seed yields the same user specs regardless of which policy
    // will consume them — paired comparison is valid.
    let cfg = config();
    let w1 = cfg.generate_workload(7);
    let w2 = cfg.generate_workload(7);
    assert_eq!(w1.len(), w2.len());
    for (a, b) in w1.iter().zip(&w2) {
        assert_eq!(a.arrival_s, b.arrival_s);
        assert_eq!(a.class, b.class);
        assert_eq!(a.start, b.start);
        assert_eq!(a.holding_s, b.holding_s);
    }
}

#[test]
fn replication_average_is_stable() {
    let build = &builders()[0].1;
    let cfg = ScenarioConfig { replications: 3, ..config() };
    let a = cfg.acceptance(build.as_ref());
    let b = cfg.acceptance(build.as_ref());
    assert_eq!(a, b);
}
