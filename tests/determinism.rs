//! Reproducibility: identical seeds must give identical runs for every
//! controller (on both inference backends), the workload must be
//! independent of the policy under test (so comparisons are paired), and
//! the parallel replication/sweep runners must be bit-identical to a
//! sequential fold.

use facs::{
    FacsConfig, FacsController, FacsDegradeController, PredictiveFacsController,
    TunedFacsController,
};
use facs_cac::forecast::{EwmaHoltForecaster, RecurrentForecaster};
use facs_cac::policies::{CompleteSharing, GuardChannel};
use facs_cac::{BandwidthUnits, BoxedController};
use facs_cellsim::prelude::*;
use facs_cellsim::{HexGrid, Summary};
use facs_fuzzy::BackendKind;
use facs_scc::{SccConfig, SccNetwork};

fn config() -> ScenarioConfig {
    ScenarioConfig {
        requests: 300,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 1,
        ..Default::default()
    }
}

type BoxedBuilder = Box<dyn Fn(&HexGrid) -> Vec<BoxedController> + Sync>;

/// FACS on the compiled backend. A coarse 9-point lattice keeps the
/// debug-profile compile cheap — determinism does not depend on lattice
/// resolution, and accuracy at the default resolution is covered by the
/// facs-core equivalence tests.
fn compiled_facs_builder() -> BoxedBuilder {
    let prototype = FacsController::with_config(FacsConfig {
        backend: BackendKind::Compiled { points_per_axis: 9 },
        ..FacsConfig::default()
    })
    .unwrap();
    Box::new(move |grid: &HexGrid| {
        grid.cell_ids().map(|_| Box::new(prototype.clone()) as BoxedController).collect()
    })
}

/// One FacsConfig per backend under test: exact defaults, and a coarse
/// compiled lattice (cheap in debug; resolution does not affect
/// determinism).
fn backend_configs() -> [(&'static str, FacsConfig); 2] {
    [
        ("exact", FacsConfig::default()),
        (
            "compiled",
            FacsConfig {
                backend: BackendKind::Compiled { points_per_axis: 9 },
                ..FacsConfig::default()
            },
        ),
    ]
}

/// Per-cell builders for the stateful controller family introduced with
/// the load forecasters: predictive (EWMA/Holt and recurrent) and the
/// online-tuned FACS. Each cell gets an independent clone of a shared
/// prototype, mirroring the bench builders.
fn stateful_builders(config: FacsConfig) -> Vec<(&'static str, BoxedBuilder)> {
    let ewma = PredictiveFacsController::<EwmaHoltForecaster>::ewma_factory(config)
        .expect("predictive ewma factory");
    let rnn = PredictiveFacsController::<RecurrentForecaster>::recurrent_factory(config)
        .expect("predictive rnn factory");
    let tuned = TunedFacsController::factory(config).expect("tuned factory");
    vec![
        (
            "facs-predict-ewma",
            Box::new(move |grid: &HexGrid| grid.cell_ids().map(|_| ewma()).collect())
                as BoxedBuilder,
        ),
        (
            "facs-predict-rnn",
            Box::new(move |grid: &HexGrid| grid.cell_ids().map(|_| rnn()).collect()),
        ),
        ("facs-tuned", Box::new(move |grid: &HexGrid| grid.cell_ids().map(|_| tuned()).collect())),
    ]
}

fn builders() -> Vec<(&'static str, BoxedBuilder)> {
    let mut all: Vec<(&'static str, BoxedBuilder)> = vec![
        (
            "facs",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(FacsController::new().unwrap()) as BoxedController)
                    .collect()
            }),
        ),
        ("facs-compiled", compiled_facs_builder()),
        (
            "facs-degrade",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(FacsDegradeController::new().unwrap()) as BoxedController)
                    .collect()
            }),
        ),
        ("scc", Box::new(|grid: &HexGrid| SccNetwork::new(SccConfig::default()).controllers(grid))),
        (
            "cs",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(CompleteSharing::new()) as BoxedController)
                    .collect()
            }),
        ),
        (
            "guard",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(GuardChannel::new(BandwidthUnits::new(8))) as BoxedController)
                    .collect()
            }),
        ),
    ];
    all.extend(stateful_builders(FacsConfig::default()));
    all
}

#[test]
fn same_seed_same_metrics_for_every_controller() {
    for (name, build) in builders() {
        let a = config().run_once(99, build.as_ref());
        let b = config().run_once(99, build.as_ref());
        assert_eq!(a, b, "controller {name} is not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let build = &builders()[0].1;
    let a = config().run_once(1, build.as_ref());
    let b = config().run_once(2, build.as_ref());
    assert_ne!(a, b, "different seeds should explore different traffic");
}

#[test]
fn workload_is_policy_independent() {
    // The same seed yields the same user specs regardless of which policy
    // will consume them — paired comparison is valid.
    let cfg = config();
    let w1 = cfg.generate_workload(7);
    let w2 = cfg.generate_workload(7);
    assert_eq!(w1.len(), w2.len());
    for (a, b) in w1.iter().zip(&w2) {
        assert_eq!(a.arrival_s, b.arrival_s);
        assert_eq!(a.profile, b.profile);
        assert_eq!(a.start, b.start);
        assert_eq!(a.holding_s, b.holding_s);
    }
}

#[test]
fn replication_average_is_stable() {
    let build = &builders()[0].1;
    let cfg = ScenarioConfig { replications: 3, ..config() };
    let a = cfg.acceptance(build.as_ref());
    let b = cfg.acceptance(build.as_ref());
    assert_eq!(a, b);
}

#[test]
fn parallel_replications_match_sequential_fold_for_every_controller() {
    // `acceptance`/`acceptance_summary`/`aggregate` fan replications out
    // over scoped threads; their results must be bit-identical to folding
    // `run_once` over `replication_seeds()` sequentially.
    let cfg = ScenarioConfig { requests: 120, replications: 3, ..config() };
    for (name, build) in builders() {
        let build = build.as_ref();
        let mut seq_total = 0.0;
        let mut seq_sample = Vec::new();
        let mut seq_sum = Metrics::new();
        for seed in cfg.replication_seeds() {
            let m = cfg.run_once(seed, build);
            seq_total += m.acceptance_percentage();
            seq_sample.push(m.acceptance_percentage());
            seq_sum.merge(&m);
        }
        assert_eq!(
            cfg.acceptance(build),
            seq_total / seq_sample.len() as f64,
            "acceptance diverged for {name}"
        );
        assert_eq!(
            cfg.acceptance_summary(build),
            Summary::of(&seq_sample),
            "summary diverged for {name}"
        );
        assert_eq!(cfg.aggregate(build), seq_sum, "aggregate diverged for {name}");
    }
}

#[test]
fn parallel_curve_matches_pointwise_runs() {
    let configure = |n| ScenarioConfig { requests: n, replications: 2, ..Default::default() };
    for (name, build) in
        [("facs", builders().remove(0).1), ("facs-compiled", builders().remove(1).1)]
    {
        let build = build.as_ref();
        let series = acceptance_curve(name, &[20, 60, 100], configure, build);
        for (&n, &(x, y)) in [20usize, 60, 100].iter().zip(&series.points) {
            assert_eq!(x, n as f64);
            assert_eq!(y, configure(n).acceptance(build), "{name} diverged at n={n}");
        }
    }
}

#[test]
fn catalog_shards_are_bit_identical_on_both_backends() {
    // The sharded kernel's core guarantee (ISSUE 4 acceptance criterion):
    // for every scenario-catalog entry, multi-shard runs are bit-identical
    // to the single-shard run, on both inference backends. One replication
    // per entry keeps the debug-profile runtime sane; shard-identity does
    // not depend on the replication count (replications only change seeds).
    let backends: Vec<(&'static str, BoxedBuilder)> = vec![
        (
            "exact",
            Box::new(|grid: &HexGrid| {
                grid.cell_ids()
                    .map(|_| Box::new(FacsController::new().unwrap()) as BoxedController)
                    .collect()
            }),
        ),
        ("compiled", compiled_facs_builder()),
    ];
    for entry in facs_cellsim::catalog() {
        for (backend, build) in &backends {
            let run = |shards: usize| {
                let cfg = ScenarioConfig { shards, replications: 1, ..entry.config.clone() };
                cfg.run_once(cfg.seed, build.as_ref())
            };
            let single = run(1);
            for shards in [2, 4, 7] {
                assert_eq!(
                    single,
                    run(shards),
                    "catalog entry `{}` on the {backend} backend diverged at {shards} shards",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn predictive_variants_are_shard_identical_on_both_backends() {
    // The new-variant acceptance criterion: forecaster and tuner state
    // lives strictly per cell, so multi-shard runs must stay
    // bit-identical to single-shard, on both backends. The two
    // congestion-ramp catalog entries exercise the forecasters hardest
    // while keeping the debug-profile runtime sane — shard identity
    // does not depend on the scenario shape.
    for entry in facs_cellsim::catalog()
        .into_iter()
        .filter(|e| matches!(e.name, "flash-crowd" | "rush-hour"))
    {
        for (backend, config) in backend_configs() {
            for (name, build) in stateful_builders(config) {
                let run = |shards: usize| {
                    let cfg = ScenarioConfig { shards, replications: 1, ..entry.config.clone() };
                    cfg.run_once(cfg.seed, build.as_ref())
                };
                let single = run(1);
                for shards in [2, 4, 7] {
                    assert_eq!(
                        single,
                        run(shards),
                        "{name} on the {backend} backend diverged at {shards} shards"
                    );
                }
            }
        }
    }
}

#[test]
fn scc_declares_shared_state_so_the_kernel_keeps_it_single_shard() {
    // SCC's shadow board is cluster-wide; the kernel refuses to shard it
    // (engine unit tests cover the panic), and the declaration is what
    // that refusal keys on.
    use facs_cac::AdmissionController;
    let grid = HexGrid::new(1, 10.0);
    let controllers = SccNetwork::new(SccConfig::default()).controllers(&grid);
    assert!(controllers.iter().all(|c| !c.is_cell_local()));
    assert!(FacsController::new().unwrap().is_cell_local());
}

#[test]
fn compiled_backend_is_deterministic_across_runner_modes() {
    // Same seed, same metrics — whether replications run sequentially
    // (replications = 1 short-circuits the thread pool) or in parallel.
    let build = compiled_facs_builder();
    let sequential = ScenarioConfig { replications: 1, ..config() };
    let a = sequential.aggregate(build.as_ref());
    let b = sequential.run_once(sequential.seed, build.as_ref());
    assert_eq!(a, b);
    let parallel = ScenarioConfig { replications: 4, ..config() };
    assert_eq!(parallel.aggregate(build.as_ref()), parallel.aggregate(build.as_ref()));
}
