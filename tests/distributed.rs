//! The distributed actor runtime must agree decision-for-decision with an
//! in-process controller loop over the same request sequence.

use facs::FacsController;
use facs_cac::{
    AdmissionController, AdmissionPlan, BandwidthLedger, BandwidthUnits, BoxedController, CallId,
    CallKind, CallRequest, CellId, MobilityInfo, ServiceClass,
};
use facs_cellsim::{HexGrid, SimRng};
use facs_distrib::Cluster;

/// A deterministic pseudo-random request sequence with interleaved
/// releases.
fn request_script(len: usize, seed: u64) -> Vec<ScriptStep> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut live: Vec<u64> = Vec::new();
    let mut steps = Vec::new();
    for i in 0..len {
        let release_some = !live.is_empty() && rng.chance(0.35);
        if release_some {
            let idx = rng.index(live.len());
            steps.push(ScriptStep::Release(CallId(live.swap_remove(idx))));
        } else {
            let class = match rng.index(3) {
                0 => ServiceClass::Text,
                1 => ServiceClass::Voice,
                _ => ServiceClass::Video,
            };
            let mobility = MobilityInfo::new(
                rng.uniform_range(0.0, 120.0),
                rng.uniform_range(-180.0, 180.0),
                rng.uniform_range(0.0, 10.0),
            );
            let id = i as u64;
            live.push(id);
            steps.push(ScriptStep::Admit(CallRequest::new(
                CallId(id),
                class,
                CallKind::New,
                mobility,
            )));
        }
    }
    steps
}

#[derive(Debug, Clone)]
enum ScriptStep {
    Admit(CallRequest),
    Release(CallId),
}

#[test]
fn cluster_matches_in_process_controller() {
    let steps = request_script(400, 31337);

    // In-process reference: one FACS controller + ledger.
    let mut controller = FacsController::new().unwrap();
    let mut ledger = BandwidthLedger::new(BandwidthUnits::new(40));
    let mut reference = Vec::new();
    for step in &steps {
        match step {
            ScriptStep::Admit(request) => {
                // Mirrors the BS actor's plan handling exactly.
                let admitted = match controller.decide(request, &ledger) {
                    AdmissionPlan::Reject(_) => false,
                    AdmissionPlan::Admit(_) => ledger.allocate(request.id, request.profile).is_ok(),
                    AdmissionPlan::AdmitDegraded { squeezes, grant, .. } => ledger
                        .admit_with_plan(request.id, request.profile, grant, &squeezes)
                        .is_ok(),
                };
                if admitted {
                    controller.on_admitted(request, &ledger.snapshot());
                }
                reference.push(Some(admitted));
            }
            ScriptStep::Release(call) => {
                if let Ok(profile) = ledger.release(*call) {
                    let _ = ledger.reupgrade_on_release();
                    controller.on_released(*call, profile.class, &ledger.snapshot());
                }
                reference.push(None);
            }
        }
    }

    // Actor runtime, same script.
    let grid = HexGrid::single_cell(10.0);
    let cluster = Cluster::spawn(
        &grid,
        BandwidthUnits::new(40),
        vec![Box::new(FacsController::new().unwrap()) as BoxedController],
    );
    for (i, step) in steps.iter().enumerate() {
        match step {
            ScriptStep::Admit(request) => {
                let outcome = cluster.request_admission(CellId(0), *request).unwrap();
                assert_eq!(
                    Some(outcome.admitted),
                    reference[i],
                    "divergence at step {i}: {step:?}"
                );
            }
            ScriptStep::Release(call) => {
                cluster.release(CellId(0), *call).unwrap();
            }
        }
    }
    assert_eq!(cluster.occupancy(CellId(0)).unwrap(), ledger.occupied());
    cluster.shutdown();
}

/// Replays `scenario` through a freshly spawned FACS cluster built from
/// `config` and returns the report.
fn replay_facs(
    scenario: &facs_cellsim::ScenarioConfig,
    config: facs::FacsConfig,
) -> facs_distrib::ReplayReport {
    let cluster =
        Cluster::spawn_facs(&scenario.grid(), BandwidthUnits::new(scenario.capacity_bu), config)
            .expect("FACS cluster spawns");
    let report = cluster.replay_new_calls(scenario, scenario.seed).expect("replay succeeds");
    cluster.shutdown();
    report
}

/// A coarse compiled lattice keeps the debug-profile surface compile
/// cheap; determinism does not depend on lattice resolution.
fn compiled_config(points_per_axis: usize) -> facs::FacsConfig {
    facs::FacsConfig {
        backend: facs_fuzzy::BackendKind::Compiled { points_per_axis },
        ..facs::FacsConfig::default()
    }
}

#[test]
fn cluster_replay_is_deterministic_per_backend() {
    // Mirror of tests/determinism.rs for the actor path: replaying the
    // same catalog scenario through two identically-configured clusters
    // must yield byte-identical reports (decisions, margins, occupancies)
    // on both inference backends.
    let scenario = facs_cellsim::scenario_by_name("hetero-mix").expect("hetero-mix in catalog");
    for (backend, config) in
        [("exact", facs::FacsConfig::default()), ("compiled", compiled_config(9))]
    {
        let a = replay_facs(&scenario, config);
        let b = replay_facs(&scenario, config);
        assert!(!a.outcomes.is_empty(), "replay exercised no requests");
        assert_eq!(a, b, "{backend} cluster replay is not deterministic");
    }
}

#[test]
fn cluster_exact_and_compiled_backends_agree_through_the_actor_path() {
    // The compiled decision surface must track the exact Mamdani cascade
    // through the actor path the same way it does in-process: while both
    // clusters have seen identical traffic, any decision flip must sit
    // inside the surface's score-divergence band around the gate (the
    // 17-point lattice measures max |Δscore| = 0.084 in EXPERIMENTS.md).
    const BAND: f64 = 0.1;
    let scenario = facs_cellsim::scenario_by_name("hetero-mix").expect("hetero-mix in catalog");
    let exact = replay_facs(&scenario, facs::FacsConfig::default());
    let compiled = replay_facs(&scenario, compiled_config(17));
    assert_eq!(exact.outcomes.len(), compiled.outcomes.len());
    assert_eq!(exact.out_of_coverage, compiled.out_of_coverage);

    let mut diverged = false;
    let mut agreeing = 0usize;
    for (i, ((cell_e, out_e), (cell_c, out_c))) in
        exact.outcomes.iter().zip(&compiled.outcomes).enumerate()
    {
        // The margin mirrors the controller verdict on both backends.
        assert_eq!(out_e.margin > 0.0, out_e.decision.admits(), "exact margin sign at {i}");
        assert_eq!(out_c.margin > 0.0, out_c.decision.admits(), "compiled margin sign at {i}");
        assert_eq!(cell_e, cell_c, "routing diverged at step {i}");
        if out_e.admitted == out_c.admitted {
            agreeing += 1;
        } else if !diverged {
            // First flip: cluster states were identical up to here, so
            // the disagreement must be a near-gate interpolation artifact.
            assert!(
                out_e.margin.abs() <= BAND,
                "first backend flip at step {i} is far from the gate (margin {:+.3})",
                out_e.margin
            );
            diverged = true;
        }
        // After the first flip the ledgers legitimately differ; only the
        // aggregate is comparable from here on.
    }
    let total = exact.outcomes.len().max(1);
    assert!(
        agreeing as f64 / total as f64 >= 0.95,
        "backends agreed on only {agreeing}/{total} actor-path decisions"
    );
    assert!(
        (exact.acceptance_ratio() - compiled.acceptance_ratio()).abs() <= 0.05,
        "acceptance ratios diverged: exact {:.3} vs compiled {:.3}",
        exact.acceptance_ratio(),
        compiled.acceptance_ratio()
    );
}

#[test]
fn cluster_handoffs_preserve_global_bandwidth() {
    let grid = HexGrid::new(1, 10.0);
    let cluster = Cluster::spawn(
        &grid,
        BandwidthUnits::new(40),
        grid.cell_ids()
            .map(|_| Box::new(FacsController::new().unwrap()) as BoxedController)
            .collect(),
    );
    // Admit voice calls at the center, hand each off around the ring.
    let mobility = MobilityInfo::new(60.0, 0.0, 2.0);
    let mut admitted = Vec::new();
    for i in 0..4u64 {
        let req = CallRequest::new(CallId(i), ServiceClass::Voice, CallKind::New, mobility);
        if cluster.request_admission(CellId(0), req).unwrap().admitted {
            admitted.push(i);
        }
    }
    assert!(!admitted.is_empty());
    for (k, &i) in admitted.iter().enumerate() {
        let target = CellId(1 + (k as u32 % 6));
        let req = CallRequest::new(CallId(i), ServiceClass::Voice, CallKind::Handoff, mobility);
        let outcome = cluster.handoff(CellId(0), target, req).unwrap();
        assert!(outcome.admitted, "ring cell {target} should absorb one voice call");
    }
    // All bandwidth accounted for: center empty, total equals calls * 5.
    assert_eq!(cluster.occupancy(CellId(0)).unwrap(), BandwidthUnits::ZERO);
    let total: u32 = grid.cell_ids().map(|c| cluster.occupancy(c).unwrap().get()).sum();
    assert_eq!(total as usize, admitted.len() * 5);
    cluster.shutdown();
}

#[test]
fn scc_cluster_shares_shadow_state_across_actors() {
    use facs_scc::{SccConfig, SccNetwork};
    let grid = HexGrid::new(1, 10.0);
    let network = SccNetwork::new(SccConfig::default());
    let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), network.controllers(&grid));
    // A fast outbound user admitted at the center posts influence that
    // the neighbor actors see through the shared board.
    let req = CallRequest::new(
        CallId(1),
        ServiceClass::Video,
        CallKind::New,
        MobilityInfo::new(120.0, 180.0, 8.0),
    );
    assert!(cluster.request_admission(CellId(0), req).unwrap().admitted);
    assert!(network.board().influence_on(CellId(1)) > 0.0);
    assert!(network.board().message_count() > 0);
    cluster.release(CellId(0), CallId(1)).unwrap();
    // Release is fire-and-forget; a synchronous occupancy query to the
    // same actor fences it (per-actor message order is FIFO).
    assert_eq!(cluster.occupancy(CellId(0)).unwrap(), BandwidthUnits::ZERO);
    assert_eq!(network.board().influence_on(CellId(1)), 0.0);
    cluster.shutdown();
}
