//! Ablation — conjunction T-norm: min (paper) vs product, accuracy series
//! printed and per-decision latency benchmarked.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsConfig, FacsController};
use facs_bench::{ablation_tnorm, ascii_chart};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};
use facs_fuzzy::{InferenceConfig, TNorm};

fn bench_tnorm(c: &mut Criterion) {
    let series = ablation_tnorm(1);
    eprintln!("{}", ascii_chart(&series, 40.0, 100.0));

    let cell = CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(22));
    let request = CallRequest::new(
        CallId(1),
        ServiceClass::Video,
        CallKind::New,
        MobilityInfo::new(70.0, 15.0, 6.0),
    );
    for (label, tnorm) in [("min", TNorm::Minimum), ("product", TNorm::Product)] {
        let controller = FacsController::with_config(FacsConfig {
            inference: InferenceConfig { tnorm, ..InferenceConfig::default() },
            ..FacsConfig::default()
        })
        .unwrap();
        c.bench_function(&format!("facs_decision_tnorm_{label}"), |b| {
            b.iter(|| controller.evaluate(black_box(&request), black_box(&cell)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_tnorm
}
criterion_main!(benches);
