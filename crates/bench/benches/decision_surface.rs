//! Exact Mamdani vs compiled decision surface, per admission decision.
//!
//! The compiled backend answers from a precomputed lattice by multilinear
//! interpolation, so a full FACS cascade collapses from two
//! O(rules × resolution) inferences to ~16 array reads. The acceptance
//! bar for this bench (EXPERIMENTS.md records measured numbers) is a
//! ≥ 10× per-decision speedup of `facs_cascade_compiled` over
//! `facs_cascade_exact`; in practice it lands around three orders of
//! magnitude.
//!
//! `cargo bench -p facs-bench --bench decision_surface` to measure;
//! `cargo bench -p facs-bench --bench decision_surface -- --test` (CI)
//! runs every routine once as a smoke test.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsConfig, FacsController, Flc1, Flc2};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};
use facs_fuzzy::{BackendKind, InferenceConfig};

fn bench_backends(c: &mut Criterion) {
    let flc1_exact = Flc1::new().unwrap();
    let flc1_compiled =
        Flc1::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap();
    let flc2_exact = Flc2::new().unwrap();
    let flc2_compiled =
        Flc2::with_backend(InferenceConfig::default(), BackendKind::compiled()).unwrap();
    let facs_exact = FacsController::new().unwrap();
    let facs_compiled = FacsController::with_config(FacsConfig::compiled()).unwrap();

    let mobility = MobilityInfo::new(45.0, 30.0, 4.0);
    let cell = CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(17));
    let request = CallRequest::new(CallId(1), ServiceClass::Voice, CallKind::New, mobility);

    c.bench_function("flc1_exact", |b| {
        b.iter(|| flc1_exact.correction_value(black_box(&mobility)).unwrap())
    });
    c.bench_function("flc1_compiled", |b| {
        b.iter(|| flc1_compiled.correction_value(black_box(&mobility)).unwrap())
    });
    c.bench_function("flc2_exact", |b| {
        b.iter(|| flc2_exact.decision_score(black_box(0.6), black_box(5.0), black_box(17.0)))
    });
    c.bench_function("flc2_compiled", |b| {
        b.iter(|| flc2_compiled.decision_score(black_box(0.6), black_box(5.0), black_box(17.0)))
    });
    c.bench_function("facs_cascade_exact", |b| {
        b.iter(|| facs_exact.evaluate(black_box(&request), black_box(&cell)))
    });
    c.bench_function("facs_cascade_compiled", |b| {
        b.iter(|| facs_compiled.evaluate(black_box(&request), black_box(&cell)))
    });
    // One-time cost the compiled backend pays up front (the default
    // surface cache makes the *second* build nearly free, so measure the
    // non-default resolution to see a real compile).
    c.bench_function("surface_compile_flc2_17pts", |b| {
        b.iter(|| {
            Flc2::with_backend(
                InferenceConfig::default(),
                BackendKind::Compiled { points_per_axis: 17 },
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_backends
}
criterion_main!(benches);
