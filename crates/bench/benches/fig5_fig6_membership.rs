//! Regenerates figures 5 and 6 (the FLC membership functions) and
//! benchmarks the sampling workload behind them.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs_bench::{fig5_membership_csv, fig6_membership_csv};

fn bench_membership(c: &mut Criterion) {
    // Regenerate the figure artifacts once (the paper-reproduction
    // deliverable); the benchmark then measures the sampling cost.
    let fig5 = fig5_membership_csv();
    let fig6 = fig6_membership_csv();
    eprintln!(
        "fig5: {} membership samples; fig6: {} membership samples",
        fig5.lines().count() - 1,
        fig6.lines().count() - 1
    );

    c.bench_function("fig5_flc1_membership_sampling", |b| b.iter(fig5_membership_csv));
    c.bench_function("fig6_flc2_membership_sampling", |b| b.iter(fig6_membership_csv));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_membership
}
criterion_main!(benches);
