//! Fig. 8 — regenerates the angle-parameterized acceptance curves and
//! benchmarks one scenario point of the sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs::FacsConfig;
use facs_bench::{ascii_chart, facs_builder, fig8_angle};
use facs_cellsim::prelude::*;

fn bench_fig8(c: &mut Criterion) {
    let series = fig8_angle(1);
    eprintln!("{}", ascii_chart(&series, 40.0, 100.0));

    let build = facs_builder(FacsConfig::default());
    c.bench_function("fig8_point_angle50_n50", |b| {
        b.iter(|| {
            ScenarioConfig {
                requests: 50,
                angle: AngleSpec::Fixed(50.0),
                replications: 1,
                ..Default::default()
            }
            .acceptance(&build)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench_fig8
}
criterion_main!(benches);
