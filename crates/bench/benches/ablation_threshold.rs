//! Ablation — acceptance threshold over the defuzzified A/R score:
//! accuracy series printed, scenario throughput benchmarked.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs::FacsConfig;
use facs_bench::{ablation_threshold, ascii_chart, base_scenario, facs_builder};
use facs_cellsim::prelude::*;

fn bench_threshold(c: &mut Criterion) {
    let series = ablation_threshold(1);
    eprintln!("{}", ascii_chart(&series, 20.0, 100.0));

    for threshold in [0.0, 0.1, 0.25] {
        let build = facs_builder(FacsConfig { threshold, ..FacsConfig::default() });
        c.bench_function(&format!("scenario_threshold_{threshold:.2}"), |b| {
            b.iter(|| ScenarioConfig { replications: 1, ..base_scenario(50) }.acceptance(&build))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench_threshold
}
criterion_main!(benches);
