//! Micro-benchmarks for the two kernel hot paths PR 8 rebuilt: the
//! calendar [`EngineQueue`] (vs the `BinaryHeap` it replaced) and the
//! cell-sorted [`CompiledSurface::evaluate_batch`] (vs a loop over
//! `evaluate_crisp`).
//!
//! The queue workload mirrors the simulator's: call-end events spread
//! over a few hundred movement epochs (ring hits) with a tail of
//! far-future events (overflow hits), drained epoch-by-epoch through
//! `pop_within` exactly as the shard loop does. The reference heap pops
//! the same content-defined order, so the two routines do identical
//! logical work.
//!
//! `cargo bench -p facs-bench --bench kernel_micro` to measure;
//! `cargo bench -p facs-bench --bench kernel_micro -- --test` (CI) runs
//! every routine once as a smoke test.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs_cellsim::{EngineEvent, EngineQueue, SimDuration, SimRng, SimTime, UserId};
use facs_fuzzy::{CompiledSurface, Engine, InferenceBackend, MembershipFunction, Rule, Variable};

/// Movement cadence the queue is bucketed at (the kernel default).
const EPOCH_US: u64 = 5_000_000;

/// One synthetic schedule: `(time, user, generation)` triples covering
/// the current bucket (incursion path), the ring, and the overflow
/// horizon, with same-instant ties sprinkled in.
fn schedule(events: usize) -> Vec<(SimTime, u64, u32)> {
    let mut rng = SimRng::seed_from_u64(0x6b65_726e);
    let horizon_s = 600.0; // ~120 epochs in the ring
    (0..events)
        .map(|i| {
            let secs = if rng.chance(0.02) {
                // Far future: past MAX_RING epochs, lands in overflow.
                horizon_s + 30_000.0 + rng.uniform_range(0.0, 5_000.0)
            } else if rng.chance(0.1) {
                // Same-instant tie on an epoch boundary.
                (rng.uniform_range(0.0, horizon_s) / 5.0).floor() * 5.0
            } else {
                rng.uniform_range(0.0, horizon_s)
            };
            (SimTime::from_secs_f64(secs), i as u64, (i % 3) as u32)
        })
        .collect()
}

fn drain_calendar(entries: &[(SimTime, u64, u32)]) -> u64 {
    let mut q = EngineQueue::with_epoch(SimDuration::from_micros(EPOCH_US));
    for &(time, user, generation) in entries {
        q.schedule(time, EngineEvent::CallEnd { user: UserId(user), generation });
    }
    // Drain epoch by epoch, the shard loop's access pattern.
    let mut popped = 0u64;
    let mut epoch = 1u64;
    while !q.is_empty() {
        let limit = SimTime::from_micros(epoch * EPOCH_US);
        while let Some((_, event, _)) = q.pop_within(limit) {
            if let EngineEvent::CallEnd { user, .. } = event {
                popped = popped.wrapping_add(user.0);
            }
        }
        epoch += 1;
    }
    popped
}

fn drain_heap(entries: &[(SimTime, u64, u32)]) -> u64 {
    // The pre-calendar representation: one BinaryHeap ordered by the
    // same content key (time, rank, user, generation).
    let mut q: BinaryHeap<Reverse<(SimTime, u8, u64, u32)>> = BinaryHeap::new();
    for &(time, user, generation) in entries {
        q.push(Reverse((time, 0, user, generation)));
    }
    let mut popped = 0u64;
    let mut epoch = 1u64;
    while !q.is_empty() {
        let limit = SimTime::from_micros(epoch * EPOCH_US);
        while q.peek().is_some_and(|Reverse((t, ..))| *t <= limit) {
            let Reverse((_, _, user, _)) = q.pop().expect("peeked entry vanished");
            popped = popped.wrapping_add(user);
        }
        epoch += 1;
    }
    popped
}

/// A 3-input engine with the same shape as the FACS FLC cascade inputs
/// (the surface geometry, not the rule semantics, is what the batch
/// path exercises).
fn three_input_engine() -> Engine {
    let axis = |name: &str, min: f64, max: f64| {
        let mid = (min + max) / 2.0;
        let span = max - min;
        Variable::builder(name, min, max)
            .term("lo", MembershipFunction::triangular(min, 0.0, span).unwrap())
            .term("mid", MembershipFunction::triangular(mid, span / 2.0, span / 2.0).unwrap())
            .term("hi", MembershipFunction::triangular(max, span, 0.0).unwrap())
            .build()
            .unwrap()
    };
    let out = axis("score", -1.0, 1.0);
    // The `a` lo/hi memberships sum to 1 everywhere, so the first and
    // third rules guarantee at least one rule fires at every lattice
    // node (compilation would otherwise hit NoRuleFired holes).
    Engine::builder()
        .input(axis("a", 0.0, 100.0))
        .input(axis("b", 0.0, 8.0))
        .input(axis("c", 0.0, 40.0))
        .output(out)
        .rule(Rule::when("a", "lo").then("score", "hi").build().unwrap())
        .rule(Rule::when("a", "mid").and("b", "mid").then("score", "mid").build().unwrap())
        .rule(Rule::when("a", "hi").then("score", "lo").build().unwrap())
        .rule(Rule::when("b", "hi").or("c", "hi").then("score", "lo").build().unwrap())
        .build()
        .unwrap()
}

/// A batch of queries clustered the way one epoch's admissions are:
/// many requests landing in few distinct lattice cells.
fn clustered_queries(n: usize) -> Vec<f64> {
    let mut rng = SimRng::seed_from_u64(0x000b_a7c4);
    let mut queries = Vec::with_capacity(n * 3);
    for _ in 0..n {
        let cluster = rng.index(8) as f64;
        queries.push(cluster * 12.0 + rng.uniform_range(0.0, 1.5));
        queries.push(cluster + rng.uniform_range(0.0, 0.4));
        queries.push(cluster * 5.0 + rng.uniform_range(0.0, 2.0));
    }
    queries
}

fn bench_kernel_micro(c: &mut Criterion) {
    let events = if criterion::test_mode() { 10_000 } else { 100_000 };
    let entries = schedule(events);
    // Sanity: both queues must pop the identical multiset.
    assert_eq!(drain_calendar(&entries), drain_heap(&entries));

    c.bench_function("engine_queue_calendar_100k", |b| {
        b.iter(|| drain_calendar(black_box(&entries)))
    });
    c.bench_function("engine_queue_binary_heap_100k", |b| {
        b.iter(|| drain_heap(black_box(&entries)))
    });

    let surface = CompiledSurface::compile(&three_input_engine(), 33).unwrap();
    let queries = clustered_queries(256);
    let mut out = Vec::with_capacity(256);
    c.bench_function("surface_batch_256x3", |b| {
        b.iter(|| {
            out.clear();
            surface.evaluate_batch(black_box(&queries), &mut out).unwrap();
            out.len()
        })
    });
    c.bench_function("surface_looped_256x3", |b| {
        b.iter(|| {
            out.clear();
            for row in black_box(&queries).chunks_exact(3) {
                out.push(surface.evaluate_crisp(row).unwrap());
            }
            out.len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_kernel_micro
}
criterion_main!(benches);
