//! Regenerates tables 1 and 2 (the FRB rule bases) and benchmarks the
//! full-grid rule-base verification sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{Flc1, Flc2};
use facs_bench::{tab1_rules, table_sizes};
use facs_cac::MobilityInfo;

fn bench_tables(c: &mut Criterion) {
    let (n1, n2) = table_sizes();
    eprintln!("tab1: {n1} rules; tab2: {n2} rules (paper: 42 / 27)");
    for rule in tab1_rules().iter().take(3) {
        eprintln!("  {rule}");
    }

    let flc1 = Flc1::new().unwrap();
    let flc2 = Flc2::new().unwrap();

    // The verification sweep: every FRB1 antecedent cell exercised once.
    c.bench_function("tab1_full_grid_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for s in [5.0, 30.0, 90.0] {
                for a in [-160.0, -90.0, -45.0, 0.0, 45.0, 90.0, 160.0] {
                    for d in [1.0, 9.0] {
                        acc += flc1.correction_value(&MobilityInfo::new(s, a, d)).unwrap();
                    }
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("tab2_full_grid_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cv in [0.1, 0.5, 0.9] {
                for r in [1.0, 5.0, 10.0] {
                    for cs in [5.0, 20.0, 38.0] {
                        acc += flc2.decision_score(cv, r, cs).unwrap();
                    }
                }
            }
            black_box(acc)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_tables
}
criterion_main!(benches);
