//! Fig. 10 — regenerates the FACS vs SCC comparison and benchmarks one
//! multi-cell scenario point per system.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs::FacsConfig;
use facs_bench::{ascii_chart, facs_builder, fig10_facs_vs_scc, fig10_scenario, scc_builder};
use facs_cellsim::prelude::*;
use facs_scc::SccConfig;

fn bench_fig10(c: &mut Criterion) {
    let series = fig10_facs_vs_scc(1);
    eprintln!("{}", ascii_chart(&series, 60.0, 100.0));

    let facs = facs_builder(FacsConfig::default());
    let scc = scc_builder(SccConfig::default());
    c.bench_function("fig10_point_facs_n30", |b| {
        b.iter(|| ScenarioConfig { replications: 1, ..fig10_scenario(30) }.acceptance(&facs))
    });
    c.bench_function("fig10_point_scc_n30", |b| {
        b.iter(|| ScenarioConfig { replications: 1, ..fig10_scenario(30) }.acceptance(&scc))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench_fig10
}
criterion_main!(benches);
