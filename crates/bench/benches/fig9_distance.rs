//! Fig. 9 — regenerates the distance-parameterized acceptance curves and
//! benchmarks one scenario point of the sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs::FacsConfig;
use facs_bench::{ascii_chart, facs_builder, fig9_distance};
use facs_cellsim::prelude::*;

fn bench_fig9(c: &mut Criterion) {
    let series = fig9_distance(1);
    eprintln!("{}", ascii_chart(&series, 40.0, 100.0));

    let build = facs_builder(FacsConfig::default());
    c.bench_function("fig9_point_dist7_n50", |b| {
        b.iter(|| {
            ScenarioConfig {
                requests: 50,
                distance: DistanceSpec::Fixed(7.0),
                replications: 1,
                ..Default::default()
            }
            .acceptance(&build)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench_fig9
}
criterion_main!(benches);
