//! Micro-benchmarks of the fuzzy-inference engine: single FLC passes, the
//! full FACS cascade, rule-base compilation and DSL parsing.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsController, Flc1, Flc2};
use facs_bench::{tab1_rules, tab2_rules};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};

fn bench_engine(c: &mut Criterion) {
    let flc1 = Flc1::new().unwrap();
    let flc2 = Flc2::new().unwrap();
    let facs = FacsController::new().unwrap();
    let mobility = MobilityInfo::new(45.0, 30.0, 4.0);
    let cell = CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(17));
    let request = CallRequest::new(CallId(1), ServiceClass::Voice, CallKind::New, mobility);

    c.bench_function("flc1_inference", |b| {
        b.iter(|| flc1.correction_value(black_box(&mobility)).unwrap())
    });
    c.bench_function("flc2_inference", |b| {
        b.iter(|| flc2.decision_score(black_box(0.6), black_box(5.0), black_box(17.0)).unwrap())
    });
    c.bench_function("facs_full_cascade", |b| {
        b.iter(|| facs.evaluate(black_box(&request), black_box(&cell)))
    });
    c.bench_function("flc1_build", |b| b.iter(|| Flc1::new().unwrap()));
    let tab1 = tab1_rules().join("\n");
    let tab2 = tab2_rules().join("\n");
    c.bench_function("dsl_parse_frb1_42_rules", |b| {
        b.iter(|| facs_fuzzy::parse_rules(black_box(&tab1)).unwrap())
    });
    c.bench_function("dsl_parse_frb2_27_rules", |b| {
        b.iter(|| facs_fuzzy::parse_rules(black_box(&tab2)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_engine
}
criterion_main!(benches);
