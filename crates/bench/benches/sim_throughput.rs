//! Kernel throughput: events/sec and calls/sec of the sharded simulation
//! kernel at 10k / 100k / 1M users, 1 vs 4 shards (FACS on compiled
//! decision surfaces).
//!
//! Each criterion iteration times the full scenario run; the first run
//! per configuration additionally reports kernel-only throughput
//! (workload generation and controller construction excluded). On a
//! single-core host the 4-shard rows measure barrier overhead, not
//! speedup — the ≥ 2× scaling target applies to multi-core CI.
//!
//! `cargo bench -p facs-bench --bench sim_throughput -- --test` runs
//! every configuration once as a smoke (the CI time-budget mode).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs_bench::{stress_scenario, throughput_run};

fn label(requests: usize) -> String {
    match requests {
        1_000_000 => "1M".to_owned(),
        n if n % 1_000 == 0 => format!("{}k", n / 1_000),
        n => n.to_string(),
    }
}

fn bench_sim_throughput(c: &mut Criterion) {
    for &requests in &[10_000usize, 100_000, 1_000_000] {
        for &shards in &[1usize, 4] {
            // `streamed` covers the chunked synthesis path (specs
            // generated inside the timed run, memory-flat); the eager
            // rows are the historical baseline.
            for streamed in [false, true] {
                let mut config = stress_scenario(requests, shards);
                config.streamed = streamed;
                let mode = if streamed { "streamed" } else { "eager" };
                let id = format!("sim_throughput/{}users/{}shards/{mode}", label(requests), shards);
                // The kernel-rate report costs one full extra run; in
                // `--test` smoke mode criterion's single iteration is
                // enough.
                if !criterion::test_mode() {
                    let report = throughput_run(&config);
                    eprintln!(
                        "{id:<46} kernel: {:>12.0} events/s {:>12.0} calls/s ({} events, {:.2?})",
                        report.events_per_sec(),
                        report.calls_per_sec(),
                        report.metrics.total_events(),
                        report.wall,
                    );
                }
                c.bench_function(&id, |b| b.iter(|| throughput_run(&config)));
            }
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(2)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_secs(3));
    targets = bench_sim_throughput
}
criterion_main!(benches);
