//! Fig. 7 — regenerates the speed-parameterized acceptance curves and
//! benchmarks one scenario point of the sweep.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use facs::FacsConfig;
use facs_bench::{ascii_chart, facs_builder, fig7_speed};
use facs_cellsim::prelude::*;

fn bench_fig7(c: &mut Criterion) {
    // Regenerate the figure once at 1 replication for the bench log.
    let series = fig7_speed(1);
    eprintln!("{}", ascii_chart(&series, 40.0, 100.0));

    let build = facs_builder(FacsConfig::default());
    c.bench_function("fig7_point_speed30_n50", |b| {
        b.iter(|| {
            ScenarioConfig {
                requests: 50,
                speed: SpeedSpec::Fixed(30.0),
                replications: 1,
                ..Default::default()
            }
            .acceptance(&build)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    targets = bench_fig7
}
criterion_main!(benches);
