//! Ablation — defuzzification strategy: accuracy series (printed) and
//! per-decision latency (benchmarked) for centroid vs the alternatives.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use facs::{FacsConfig, FacsController};
use facs_bench::{ablation_defuzz, ascii_chart};
use facs_cac::{
    BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot, MobilityInfo, ServiceClass,
};
use facs_fuzzy::{Defuzzifier, InferenceConfig};

fn bench_defuzz(c: &mut Criterion) {
    let series = ablation_defuzz(1);
    eprintln!("{}", ascii_chart(&series, 40.0, 100.0));

    let cell = CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(17));
    let request = CallRequest::new(
        CallId(1),
        ServiceClass::Voice,
        CallKind::New,
        MobilityInfo::new(45.0, 30.0, 4.0),
    );
    for (label, defuzzifier) in [
        ("centroid", Defuzzifier::Centroid),
        ("bisector", Defuzzifier::Bisector),
        ("mom", Defuzzifier::MeanOfMaxima),
        ("wavg", Defuzzifier::WeightedAverage),
    ] {
        let controller = FacsController::with_config(FacsConfig {
            inference: InferenceConfig { defuzzifier, ..InferenceConfig::default() },
            ..FacsConfig::default()
        })
        .unwrap();
        c.bench_function(&format!("facs_decision_{label}"), |b| {
            b.iter(|| controller.evaluate(black_box(&request), black_box(&cell)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_defuzz
}
criterion_main!(benches);
