//! The `validate` subsystem's bench half: golden-trace digests for the
//! scenario catalog and the fuzzed-workload cross-check harness.
//!
//! * [`golden_digests`] runs every catalog scenario under every
//!   controller variant (FACS exact, FACS compiled, degradation-aware
//!   FACS, complete sharing, SCC) and records one order-insensitive
//!   [`TraceDigest`] per
//!   `(scenario, variant)` pair. `--exp golden --bless` writes them to
//!   `results/golden/*.json`; `--exp golden --check` recomputes and
//!   diffs them, so any behavioural drift of the kernel, the workload
//!   generator or a controller fails CI with a readable diff.
//! * [`validate_config`] is the per-fuzz-case property: the same
//!   workload must produce **bit-identical digests** on 1 vs N shards
//!   (the kernel's determinism guarantee, per backend), every run must
//!   uphold the [`InvariantSink`] conservation laws, and the exact vs
//!   compiled FACS backends must agree — bit-identically when no
//!   decision lands inside the compiled surface's interpolation error
//!   (the common case, and true of every catalog scenario). When the
//!   trajectories do diverge, [`audit_backend_divergence`] replays the
//!   offered population open-loop and demands every decision flip stay
//!   inside the surface's [`BACKEND_SCORE_TOLERANCE`] contract — a
//!   closed simulation loop amplifies one near-threshold flip into
//!   arbitrarily different trajectories, so digest inequality across
//!   *backends* is expected there, while digest inequality across
//!   *shard counts* is always a kernel bug. `--exp validate --cases N`
//!   runs it over N fuzzed scenarios and shrinks any failure to a
//!   minimal reproducer (see [`facs_cellsim::fuzz`]).

use facs::{FacsConfig, FacsController, FacsEvaluation, TunedFacsController};
use facs_cac::{BandwidthUnits, CallId, CallKind, CallRequest, CellSnapshot};
use facs_cellsim::prelude::*;
use facs_cellsim::{catalog, ControllerSlot, FuzzCase, InvariantSink, TraceDigest};
use facs_scc::SccConfig;

use crate::experiments::{
    cs_builder, facs_builder, facs_degrade_builder, predictive_ewma_builder,
    predictive_rnn_builder, scc_builder, tuned_facs_builder,
};

/// The golden-file schema version. Bump it whenever the digest
/// *payload* changes shape (e.g. the multi-class elastic redesign
/// folded allocations and reallocations into the trace): old baselines
/// are then incomparable by construction, and `--check` fails with a
/// re-bless instruction instead of a wall of digest mismatches.
pub const GOLDEN_SCHEMA: &str = "2";

/// The controller variants golden digests are recorded for.
///
/// Golden runs are always single-shard (digests are shard-count
/// invariant, and SCC's cross-cell shadow board cannot shard at all),
/// so the variant list carries no shard policy.
#[must_use]
pub fn golden_variants() -> Vec<(&'static str, Box<ControllerBuilder>)> {
    vec![
        ("facs-exact", Box::new(facs_builder(FacsConfig::default()))),
        ("facs-compiled", Box::new(facs_builder(FacsConfig::compiled()))),
        ("facs-degrade", Box::new(facs_degrade_builder(FacsConfig::default()))),
        ("complete-sharing", Box::new(cs_builder())),
        ("scc", Box::new(scc_builder(SccConfig::default()))),
        // Predictive/tuned variants, appended behind the original five
        // so existing baseline digests stay byte-comparable (same
        // GOLDEN_SCHEMA; golden_diff flags the new names as "re-bless"
        // on baselines that predate them). For the tuned variants the
        // "compiled" backend applies to FLC1 only — the weighted FLC2
        // always runs exact inference.
        ("facs-predict-ewma", Box::new(predictive_ewma_builder(FacsConfig::default()))),
        ("facs-predict-ewma-compiled", Box::new(predictive_ewma_builder(FacsConfig::compiled()))),
        ("facs-predict-rnn", Box::new(predictive_rnn_builder(FacsConfig::default()))),
        ("facs-predict-rnn-compiled", Box::new(predictive_rnn_builder(FacsConfig::compiled()))),
        ("facs-tuned", Box::new(tuned_facs_builder(FacsConfig::default()))),
        ("facs-tuned-compiled", Box::new(tuned_facs_builder(FacsConfig::compiled()))),
    ]
}

/// Runs `config` once (first replication seed) under `build`, streaming
/// into metrics + invariant + digest sinks, and asserts the run was
/// internally consistent.
///
/// # Panics
///
/// Panics if the run violates a kernel invariant — golden digests of a
/// broken run must never be recorded.
#[must_use]
pub fn digest_run(config: &ScenarioConfig, build: &ControllerBuilder) -> (Metrics, TraceDigest) {
    let (metrics, digest, violations) = checked_run(config, build);
    assert!(violations.is_empty(), "invariant violations in digest run: {violations:?}");
    (metrics, digest)
}

/// Runs `config` once and returns the metrics, digest, and every
/// invariant violation found (empty for a healthy run).
#[must_use]
pub fn checked_run(
    config: &ScenarioConfig,
    build: &ControllerBuilder,
) -> (Metrics, TraceDigest, Vec<String>) {
    let seed = config.replication_seeds().next().expect("at least one replication");
    let grid = config.grid();
    let controllers = build(&grid);
    let mut sim = Simulation::new(grid, config.sim_config(seed), controllers);
    let sink = (Metrics::new(), (InvariantSink::new(), TraceDigest::new()));
    let (metrics, (invariants, digest)) = if config.streamed {
        sim.run_streamed_with(config.stream_workload(seed), sink)
    } else {
        sim.run_with(config.generate_workload(seed), sink)
    };
    let mut violations = invariants.violations();
    violations.extend(invariants.cross_check(&metrics));
    (metrics, digest, violations)
}

/// Digests of one catalog scenario across all controller variants.
#[derive(Debug, Clone)]
pub struct ScenarioDigests {
    /// The catalog entry name (also the JSON file stem).
    pub scenario: String,
    /// The [`GOLDEN_SCHEMA`] the digests were recorded under. Baselines
    /// written before the field existed parse as `"1"`.
    pub schema: String,
    /// `(variant name, digest hex)` in [`golden_variants`] order.
    pub digests: Vec<(String, String)>,
}

impl ScenarioDigests {
    /// Renders the golden JSON document for this scenario.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenario\": \"{}\"", self.scenario));
        out.push_str(&format!(",\n  \"schema\": \"{}\"", self.schema));
        for (variant, digest) in &self.digests {
            out.push_str(&format!(",\n  \"{variant}\": \"{digest}\""));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a golden JSON document written by [`ScenarioDigests::to_json`].
    ///
    /// The format is a flat object of string fields; every key except
    /// `scenario` and `schema` is a variant digest. Returns `None` when
    /// no `scenario` field is present.
    #[must_use]
    pub fn from_json(json: &str) -> Option<Self> {
        let mut scenario = None;
        let mut schema = None;
        let mut digests = Vec::new();
        for (key, value) in string_fields(json) {
            if key == "scenario" {
                scenario = Some(value);
            } else if key == "schema" {
                schema = Some(value);
            } else {
                digests.push((key, value));
            }
        }
        Some(Self {
            scenario: scenario?,
            schema: schema.unwrap_or_else(|| "1".to_owned()),
            digests,
        })
    }

    /// The digest recorded for `variant`, if any.
    #[must_use]
    pub fn digest(&self, variant: &str) -> Option<&str> {
        self.digests.iter().find(|(v, _)| v == variant).map(|(_, d)| d.as_str())
    }
}

/// Extracts the `"key": "value"` string fields of a flat JSON object
/// (no escapes — keys and digests are plain identifiers/hex).
fn string_fields(json: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find('"') {
        let after_key = &rest[start + 1..];
        let Some(key_end) = after_key.find('"') else { break };
        let key = &after_key[..key_end];
        let tail = &after_key[key_end + 1..];
        let trimmed = tail.trim_start();
        if let Some(value_part) = trimmed.strip_prefix(':') {
            let value_part = value_part.trim_start();
            if let Some(value_body) = value_part.strip_prefix('"') {
                if let Some(value_end) = value_body.find('"') {
                    out.push((key.to_owned(), value_body[..value_end].to_owned()));
                    rest = &value_body[value_end + 1..];
                    continue;
                }
            }
        }
        rest = tail;
    }
    out
}

/// Computes the golden digests for every catalog scenario × variant.
///
/// Runs single-shard with one replication (digests are shard-count
/// invariant — `validate_config` and the determinism suite prove it —
/// and SCC cannot shard at all).
#[must_use]
pub fn golden_digests() -> Vec<ScenarioDigests> {
    let variants = golden_variants();
    catalog()
        .into_iter()
        .map(|entry| {
            let config = ScenarioConfig { replications: 1, shards: 1, ..entry.config };
            let digests = variants
                .iter()
                .map(|(name, build)| {
                    let (_, digest) = digest_run(&config, build.as_ref());
                    ((*name).to_owned(), digest.hex())
                })
                .collect();
            ScenarioDigests {
                scenario: entry.name.to_owned(),
                schema: GOLDEN_SCHEMA.to_owned(),
                digests,
            }
        })
        .collect()
}

/// Compares freshly computed digests against the checked-in baselines
/// in `dir`. Returns human-readable mismatch lines (empty = pass).
#[must_use]
pub fn golden_diff(dir: &str, fresh: &[ScenarioDigests]) -> Vec<String> {
    let mut diffs = Vec::new();
    for scenario in fresh {
        let path = format!("{dir}/{}.json", scenario.scenario);
        let committed = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                diffs.push(format!(
                    "{path}: missing baseline ({e}); run `--exp golden --bless` to record it"
                ));
                continue;
            }
        };
        let Some(baseline) = ScenarioDigests::from_json(&committed) else {
            diffs.push(format!("{path}: unparseable baseline; re-bless it"));
            continue;
        };
        // A schema bump means the digest payload changed shape: the
        // baseline digests are incomparable by construction, so fail
        // loudly with the remedy instead of diffing them.
        if baseline.schema != scenario.schema {
            diffs.push(format!(
                "{path}: golden schema bumped ({} -> {}); digests are not comparable — \
                 re-bless with `--exp golden --bless`",
                baseline.schema, scenario.schema
            ));
            continue;
        }
        for (variant, got) in &scenario.digests {
            match baseline.digest(variant) {
                None => diffs.push(format!(
                    "{}/{variant}: no baseline digest recorded; re-bless",
                    scenario.scenario
                )),
                Some(expected) if expected != got => diffs.push(format!(
                    "{}/{variant}: digest mismatch\n    expected {expected}\n    got      {got}",
                    scenario.scenario
                )),
                Some(_) => {}
            }
        }
        // Baseline entries for variants that no longer exist are stale:
        // they would otherwise pass --check forever after a rename.
        for (variant, _) in &baseline.digests {
            if scenario.digest(variant).is_none() {
                diffs.push(format!(
                    "{}/{variant}: stale baseline entry for a variant that no longer runs; \
                     re-bless to prune it",
                    scenario.scenario
                ));
            }
        }
    }
    // Baseline files for scenarios that no longer exist (e.g. a renamed
    // catalog entry) are equally stale — --bless writes but never
    // prunes, so flag them for manual removal.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                continue;
            };
            if !fresh.iter().any(|s| s.scenario == stem) {
                diffs.push(format!(
                    "{dir}/{stem}.json: stale baseline for a scenario not in the catalog; \
                     delete it (git rm) or restore the scenario"
                ));
            }
        }
    }
    diffs
}

/// How the exact and compiled backends compared on one case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendMatch {
    /// Every decision agreed: the two backends' digests are
    /// bit-identical.
    Identical,
    /// Some near-threshold decisions flipped, but within the compiled
    /// surface's documented decision-divergence budget.
    WithinTolerance,
}

/// One (backend, shard count) cell of the validate matrix.
struct MatrixRun {
    label: String,
    metrics: Metrics,
    digest: TraceDigest,
}

/// The compiled surface's score-error contract: EXPERIMENTS.md measures
/// max |Δscore| 0.033 on the default lattice and the core property
/// tests bound the cascade divergence below 0.06 — but both sweep the
/// paper's fixed 40-BU cell and rigid profiles. Fuzzed capacities and
/// elastic profiles reach cascade regions those sweeps never sample:
/// the widened audit coverage from the stateful controller slots
/// surfaced a latent 0.088 gap (32-BU cell, 9-BU video request at 75 %
/// occupancy, compiled FLC1 error amplified through the exact FLC2),
/// which recalibrated this bound from its original 0.08. A decision
/// flip whose exact-vs-compiled score gap exceeds this is a backend
/// bug, not interpolation noise.
pub const BACKEND_SCORE_TOLERANCE: f64 = 0.10;

/// Occupancy points (fractions of capacity) the backend audit sweeps.
const AUDIT_OCCUPANCY_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 0.95];

/// The exact and compiled FACS configurations under cross-check, with
/// their controller builders constructed once (so surface compilation
/// happens once per process, not once per case).
pub struct BackendPair {
    /// Exact-Mamdani configuration.
    pub exact: FacsConfig,
    /// Compiled-surface configuration.
    pub compiled: FacsConfig,
    exact_builder: Box<ControllerBuilder>,
    compiled_builder: Box<ControllerBuilder>,
    exact_eval: AuditEvaluator,
    compiled_eval: AuditEvaluator,
}

/// A stateless single-decision scorer the open-loop audit replays —
/// built per [`ControllerSlot`] so the audited surface is exactly the
/// one the variant under test runs on (the tuned variant keeps FLC2 on
/// the exact backend even in its "compiled" configuration, so auditing
/// it against a fully compiled cascade would over-attribute error).
type AuditEvaluator = Box<dyn Fn(&CallRequest, &CellSnapshot) -> FacsEvaluation + Sync>;

fn facs_evaluator(config: FacsConfig) -> AuditEvaluator {
    let controller = FacsController::with_config(config).expect("FACS builds");
    Box::new(move |request, cell| controller.evaluate(request, cell))
}

fn tuned_evaluator(config: FacsConfig) -> AuditEvaluator {
    let controller = TunedFacsController::with_config(config).expect("tuned FACS builds");
    Box::new(move |request, cell| controller.evaluate(request, cell))
}

impl std::fmt::Debug for BackendPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendPair")
            .field("exact", &self.exact)
            .field("compiled", &self.compiled)
            .finish()
    }
}

impl BackendPair {
    /// Builds the pair for two FACS configurations.
    #[must_use]
    pub fn new(exact: FacsConfig, compiled: FacsConfig) -> Self {
        Self {
            exact,
            compiled,
            exact_builder: Box::new(facs_builder(exact)),
            compiled_builder: Box::new(facs_builder(compiled)),
            exact_eval: facs_evaluator(exact),
            compiled_eval: facs_evaluator(compiled),
        }
    }

    /// Builds the pair for one fuzzed controller family: the default
    /// exact/compiled FACS configurations, wrapped in that family's
    /// controller. The open-loop [`audit_backend_divergence`] replays
    /// each family's own single-decision surface: the plain reactive
    /// cascade for the baseline and predictive variants (the predictive
    /// gate only swaps the occupancy fed in, so their per-decision
    /// divergence is the cascade's), and the tuned cascade — whose FLC2
    /// stays on the exact backend by construction — for the tuned
    /// variant.
    #[must_use]
    pub fn for_slot(slot: ControllerSlot) -> Self {
        let (exact, compiled) = (FacsConfig::default(), FacsConfig::compiled());
        let (exact_builder, compiled_builder): (Box<ControllerBuilder>, Box<ControllerBuilder>) =
            match slot {
                ControllerSlot::Baseline => {
                    (Box::new(facs_builder(exact)), Box::new(facs_builder(compiled)))
                }
                ControllerSlot::PredictEwma => (
                    Box::new(predictive_ewma_builder(exact)),
                    Box::new(predictive_ewma_builder(compiled)),
                ),
                ControllerSlot::PredictRnn => (
                    Box::new(predictive_rnn_builder(exact)),
                    Box::new(predictive_rnn_builder(compiled)),
                ),
                ControllerSlot::Tuned => {
                    (Box::new(tuned_facs_builder(exact)), Box::new(tuned_facs_builder(compiled)))
                }
            };
        let (exact_eval, compiled_eval) = if slot == ControllerSlot::Tuned {
            (tuned_evaluator(exact), tuned_evaluator(compiled))
        } else {
            (facs_evaluator(exact), facs_evaluator(compiled))
        };
        Self { exact, compiled, exact_builder, compiled_builder, exact_eval, compiled_eval }
    }
}

impl Default for BackendPair {
    /// The pair the validate sweep runs: paper-default exact Mamdani vs
    /// the default compiled surface.
    fn default() -> Self {
        Self::new(FacsConfig::default(), FacsConfig::compiled())
    }
}

/// Audits a digest divergence between the exact and compiled backends:
/// replays the case's offered population decision-by-decision — as both
/// new-call and handoff requests (the handoff bias shifts the score) —
/// over a deterministic occupancy sweep, and demands that every
/// decision flip stays inside [`BACKEND_SCORE_TOLERANCE`] — i.e. that
/// the divergence is the compiled surface's documented near-threshold
/// interpolation error and nothing else. Returns `(flips, samples)` on
/// success.
///
/// A closed-loop simulation *amplifies* any flip (an extra admitted
/// call changes occupancy, which changes every later decision), so
/// trajectory-level metrics cannot distinguish interpolation noise from
/// a real backend bug — this open-loop audit can.
pub fn audit_backend_divergence(
    config: &ScenarioConfig,
    pair: &BackendPair,
) -> Result<(u64, u64), String> {
    let threshold = pair.exact.threshold;
    let seed = config.replication_seeds().next().expect("at least one replication");
    let grid = config.grid();
    let mut flips = 0u64;
    let mut samples = 0u64;
    for spec in config.generate_workload(seed) {
        let cell = grid.locate(spec.start.position);
        let observation = spec.start.observe(grid.center_of(cell));
        for kind in [CallKind::New, CallKind::Handoff] {
            let request = CallRequest::new(CallId(0), spec.profile.class, kind, observation)
                .with_profile(spec.profile);
            for fraction in AUDIT_OCCUPANCY_FRACTIONS {
                let occupied = (f64::from(config.capacity_bu) * fraction).round() as u32;
                let snapshot = CellSnapshot::loaded(
                    BandwidthUnits::new(config.capacity_bu),
                    BandwidthUnits::new(occupied.min(config.capacity_bu)),
                );
                let e = (pair.exact_eval)(&request, &snapshot);
                let c = (pair.compiled_eval)(&request, &snapshot);
                samples += 1;
                if (e.score > threshold) != (c.score > threshold) {
                    flips += 1;
                    let gap = (e.score - c.score).abs();
                    if gap > BACKEND_SCORE_TOLERANCE {
                        return Err(format!(
                            "backend flip beyond interpolation error: exact score {:.4} vs \
                             compiled {:.4} (gap {gap:.4} > {BACKEND_SCORE_TOLERANCE}) for \
                             {kind:?} speed {:.1} angle {:.1} distance {:.2} class {:?} \
                             occupied {occupied}",
                            e.score,
                            c.score,
                            observation.speed_kmh,
                            observation.angle_deg,
                            observation.distance_km,
                            spec.profile.class
                        ));
                    }
                }
            }
        }
    }
    Ok((flips, samples))
}

/// The shard counts one fuzz case is cross-checked on: single-shard vs
/// the case's sampled multi-shard count (the fuzzer draws 2–7).
#[must_use]
pub fn validate_shard_counts(config: &ScenarioConfig) -> [usize; 2] {
    [1, config.shards.max(2)]
}

/// The fuzz property: every (backend × shard count) run of `config`
/// must be invariant-clean; within each backend the 1-shard and
/// N-shard digests must be **bit-identical** (the kernel guarantee);
/// across backends, digests are compared and any divergence must pass
/// the [`audit_backend_divergence`] interpolation-error audit. Returns
/// how the backends compared, or a description of the first failure.
pub fn validate_config(
    config: &ScenarioConfig,
    pair: &BackendPair,
) -> Result<BackendMatch, String> {
    let mut per_backend: Vec<MatrixRun> = Vec::new();
    for (backend, build) in
        [("exact", pair.exact_builder.as_ref()), ("compiled", pair.compiled_builder.as_ref())]
    {
        let mut runs: Vec<MatrixRun> = Vec::new();
        for shards in validate_shard_counts(config) {
            let shard_config = ScenarioConfig { shards, ..config.clone() };
            let (metrics, digest, violations) = checked_run(&shard_config, build);
            let label = format!("{backend}/{shards}-shard");
            if !violations.is_empty() {
                return Err(format!(
                    "invariant violations on {label}:\n  {}",
                    violations.join("\n  ")
                ));
            }
            runs.push(MatrixRun { label, metrics, digest });
        }
        if config.streamed {
            // Streamed-vs-eager safety net: the same workload, eagerly
            // materialized, must replay the exact same trace.
            let eager = ScenarioConfig { streamed: false, shards: 1, ..config.clone() };
            let (metrics, digest, violations) = checked_run(&eager, build);
            let label = format!("{backend}/eager");
            if !violations.is_empty() {
                return Err(format!(
                    "invariant violations on {label}:\n  {}",
                    violations.join("\n  ")
                ));
            }
            runs.push(MatrixRun { label, metrics, digest });
        }
        // Hard kernel invariant: neither sharding nor streamed
        // synthesis may change one event.
        let first = &runs[0];
        for run in &runs[1..] {
            if run.digest != first.digest {
                return Err(format!(
                    "digest divergence: {} produced {} but {} produced {}",
                    first.label,
                    first.digest.hex(),
                    run.label,
                    run.digest.hex()
                ));
            }
        }
        per_backend.push(runs.swap_remove(0));
    }
    let (exact_run, compiled_run) = (&per_backend[0], &per_backend[1]);
    if exact_run.digest == compiled_run.digest {
        return Ok(BackendMatch::Identical);
    }
    let (e, c) = (&exact_run.metrics, &compiled_run.metrics);
    if e.offered_new != c.offered_new {
        return Err(format!(
            "backends saw different offered traffic: exact {} vs compiled {} \
             (the workload must be policy-independent)",
            e.offered_new, c.offered_new
        ));
    }
    // The trajectories diverged; prove every underlying decision flip
    // is inside the compiled surface's interpolation-error contract.
    audit_backend_divergence(config, pair)?;
    Ok(BackendMatch::WithinTolerance)
}

/// A fuzz failure, shrunk to its minimal reproducer.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The case that failed, with `config` shrunk to the minimal
    /// still-failing scenario.
    pub case: FuzzCase,
    /// What the minimal case does wrong.
    pub detail: String,
}

impl std::fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fuzz case {} of seed {} FAILED; minimal reproducing workload:",
            self.case.index, self.case.fuzz_seed
        )?;
        writeln!(f, "  {:?}", self.case.config)?;
        writeln!(f, "  controller: {:?}", self.case.controller)?;
        writeln!(f, "  failure: {}", self.detail)?;
        write!(
            f,
            "  reproduce: experiments --exp validate --fuzz-seed {} --cases {}",
            self.case.fuzz_seed,
            self.case.index + 1
        )
    }
}

/// Tally of one validation sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Cases whose exact/compiled digests were bit-identical.
    pub identical: u64,
    /// Cases with flipped near-threshold decisions inside the budget.
    pub within_tolerance: u64,
}

impl ValidationSummary {
    /// Total clean cases.
    #[must_use]
    pub fn cases(&self) -> u64 {
        self.identical + self.within_tolerance
    }
}

/// Runs `cases` fuzzed workloads (from `fuzz_seed`) through
/// [`validate_config`]; on failure, shrinks to a minimal reproducer.
/// `progress` is called after every clean case with
/// `(index, requests, match kind)`.
pub fn run_validation(
    fuzz_seed: u64,
    cases: u64,
    mut progress: impl FnMut(u64, usize, BackendMatch),
) -> Result<ValidationSummary, Box<FuzzFailure>> {
    // One pair per fuzzable controller family, built once so surface
    // compilation is paid per process, not per case.
    let pairs = [
        (ControllerSlot::Baseline, BackendPair::for_slot(ControllerSlot::Baseline)),
        (ControllerSlot::PredictEwma, BackendPair::for_slot(ControllerSlot::PredictEwma)),
        (ControllerSlot::PredictRnn, BackendPair::for_slot(ControllerSlot::PredictRnn)),
        (ControllerSlot::Tuned, BackendPair::for_slot(ControllerSlot::Tuned)),
    ];
    let pair_for = |slot: ControllerSlot| {
        &pairs.iter().find(|(s, _)| *s == slot).expect("every slot has a pair").1
    };
    let fuzzer = WorkloadFuzzer::new(fuzz_seed);
    let mut summary = ValidationSummary::default();
    for case in fuzzer.cases(cases) {
        match validate_config(&case.config, pair_for(case.controller)) {
            Ok(kind) => {
                match kind {
                    BackendMatch::Identical => summary.identical += 1,
                    BackendMatch::WithinTolerance => summary.within_tolerance += 1,
                }
                progress(case.index, case.config.requests, kind);
            }
            Err(first_detail) => {
                let shrunk = facs_cellsim::shrink(&case, |candidate| {
                    validate_config(&candidate.config, pair_for(candidate.controller)).is_err()
                });
                let detail = validate_config(&shrunk.config, pair_for(shrunk.controller))
                    .err()
                    .unwrap_or(first_detail);
                return Err(Box::new(FuzzFailure { case: shrunk, detail }));
            }
        }
    }
    Ok(summary)
}

/// The checked-in throughput reference (`BENCH_baseline.json`): the
/// events/s the stress smoke achieved per shard count when the
/// baseline was recorded. CI compares fresh runs against it with a
/// ±tolerance band and prints the trajectory — informational, because
/// absolute throughput depends on the runner hardware; the speedup
/// gate (1 vs N shards on the *same* host) is the hard check.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputBaseline {
    /// Workload size the baseline was recorded at.
    pub requests: u64,
    /// `(shard count, events/s)` pairs.
    pub entries: Vec<(usize, f64)>,
}

impl ThroughputBaseline {
    /// Renders the baseline JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"experiment\": \"throughput\",\n");
        out.push_str(&format!("  \"requests\": \"{}\"", self.requests));
        for (shards, events_per_sec) in &self.entries {
            out.push_str(&format!(",\n  \"shards-{shards}\": \"{events_per_sec:.0}\""));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a baseline document written by [`ThroughputBaseline::to_json`].
    #[must_use]
    pub fn from_json(json: &str) -> Option<Self> {
        let mut requests = None;
        let mut entries = Vec::new();
        for (key, value) in string_fields(json) {
            if key == "requests" {
                requests = value.parse().ok();
            } else if let Some(shards) = key.strip_prefix("shards-") {
                if let (Ok(shards), Ok(eps)) = (shards.parse(), value.parse()) {
                    entries.push((shards, eps));
                }
            }
        }
        Some(Self { requests: requests?, entries })
    }

    /// The recorded events/s for `shards`, if present.
    #[must_use]
    pub fn events_per_sec(&self, shards: usize) -> Option<f64> {
        self.entries.iter().find(|&&(n, _)| n == shards).map(|&(_, eps)| eps)
    }
}

/// One dated measurement sweep of the kernel throughput matrix
/// (workload sizes × shard counts), as appended to
/// `BENCH_trajectory.json` by `experiments --exp trajectory`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// ISO date (YYYY-MM-DD) the sweep ran.
    pub date: String,
    /// Human label, e.g. the PR or change being measured.
    pub label: String,
    /// `(requests, shards, events/s)` per configuration measured.
    pub rows: Vec<(u64, usize, f64)>,
    /// Process peak RSS (MB) at the end of the sweep, when measurable
    /// (Linux `VmHWM`). A whole-process high-water mark, so it reflects
    /// the largest configuration of the sweep.
    pub peak_rss_mb: Option<f64>,
    /// Allocator high-water mark (MB) from the counting global
    /// allocator, when the binary was built with `--features mem-stats`.
    pub alloc_hwm_mb: Option<f64>,
}

impl TrajectoryEntry {
    /// The recorded events/s for `(requests, shards)`, if measured.
    #[must_use]
    pub fn events_per_sec(&self, requests: u64, shards: usize) -> Option<f64> {
        self.rows.iter().find(|&&(r, n, _)| r == requests && n == shards).map(|&(_, _, eps)| eps)
    }
}

/// The kernel-throughput history (`BENCH_trajectory.json`): one entry
/// per recorded sweep, oldest first. Unlike [`ThroughputBaseline`] —
/// which holds the single reference CI compares against — this file
/// only accumulates, so the before/after of every kernel change stays
/// reviewable in one place.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrajectoryLog {
    /// Recorded sweeps, append order preserved.
    pub entries: Vec<TrajectoryEntry>,
}

impl TrajectoryLog {
    /// Renders the log JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out =
            String::from("{\n  \"experiment\": \"throughput-trajectory\",\n  \"entries\": [\n");
        for (i, entry) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"date\": \"{}\",\n", entry.date));
            out.push_str(&format!("      \"label\": \"{}\"", entry.label));
            for (requests, shards, eps) in &entry.rows {
                out.push_str(&format!(",\n      \"r{requests}-s{shards}\": \"{eps:.0}\""));
            }
            if let Some(mb) = entry.peak_rss_mb {
                out.push_str(&format!(",\n      \"peak_rss_mb\": \"{mb:.1}\""));
            }
            if let Some(mb) = entry.alloc_hwm_mb {
                out.push_str(&format!(",\n      \"alloc_hwm_mb\": \"{mb:.1}\""));
            }
            out.push_str(if i + 1 == self.entries.len() { "\n    }\n" } else { "\n    },\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a log written by [`TrajectoryLog::to_json`]. Returns an
    /// empty log for an empty/blank document (first recording), `None`
    /// for anything that does not look like a trajectory file — the
    /// caller should refuse to overwrite such a file.
    #[must_use]
    pub fn from_json(json: &str) -> Option<Self> {
        if json.trim().is_empty() {
            return Some(Self::default());
        }
        // Entries are flat objects, so brace-matching is just splitting
        // on the inner `{ ... }` blocks after the `entries` key.
        let (head, body) = json.split_once("\"entries\"")?;
        if !string_fields(head)
            .iter()
            .any(|(k, v)| k == "experiment" && v == "throughput-trajectory")
        {
            return None;
        }
        let mut entries = Vec::new();
        let mut rest = body;
        while let Some(open) = rest.find('{') {
            let close = rest[open..].find('}')? + open;
            let mut date = None;
            let mut label = None;
            let mut rows = Vec::new();
            let mut peak_rss_mb = None;
            let mut alloc_hwm_mb = None;
            for (key, value) in string_fields(&rest[open..=close]) {
                match key.as_str() {
                    "date" => date = Some(value),
                    "label" => label = Some(value),
                    "peak_rss_mb" => peak_rss_mb = value.parse().ok(),
                    "alloc_hwm_mb" => alloc_hwm_mb = value.parse().ok(),
                    _ => {
                        if let Some((r, s)) = key.strip_prefix('r').and_then(|k| k.split_once("-s"))
                        {
                            if let (Ok(r), Ok(s), Ok(eps)) = (r.parse(), s.parse(), value.parse()) {
                                rows.push((r, s, eps));
                            }
                        }
                    }
                }
            }
            entries.push(TrajectoryEntry {
                date: date?,
                label: label?,
                rows,
                peak_rss_mb,
                alloc_hwm_mb,
            });
            rest = &rest[close + 1..];
        }
        Some(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamed_digests_match_eager_across_catalog() {
        let pair = BackendPair::default();
        for entry in catalog() {
            for shards in [1usize, 4] {
                for (backend, build) in [
                    ("exact", pair.exact_builder.as_ref()),
                    ("compiled", pair.compiled_builder.as_ref()),
                ] {
                    let eager = ScenarioConfig { shards, streamed: false, ..entry.config.clone() };
                    let streamed =
                        ScenarioConfig { shards, streamed: true, ..entry.config.clone() };
                    let (_, eager_digest) = digest_run(&eager, build);
                    let (_, streamed_digest) = digest_run(&streamed, build);
                    assert_eq!(
                        eager_digest, streamed_digest,
                        "streamed digest diverged from eager on {} ({backend}, {shards} shards)",
                        entry.name
                    );
                }
            }
        }
    }

    #[test]
    fn trajectory_json_round_trips() {
        let log = TrajectoryLog {
            entries: vec![
                TrajectoryEntry {
                    date: "2026-08-01".to_owned(),
                    label: "before".to_owned(),
                    rows: vec![(10_000, 1, 2_826_034.0), (1_000_000, 4, 1_050_944.0)],
                    peak_rss_mb: None,
                    alloc_hwm_mb: None,
                },
                TrajectoryEntry {
                    date: "2026-08-09".to_owned(),
                    label: "after".to_owned(),
                    rows: vec![(10_000, 1, 8_000_000.0)],
                    peak_rss_mb: Some(412.5),
                    alloc_hwm_mb: Some(350.1),
                },
            ],
        };
        let parsed = TrajectoryLog::from_json(&log.to_json()).expect("parses");
        assert_eq!(parsed, log);
        assert_eq!(parsed.entries[0].events_per_sec(1_000_000, 4), Some(1_050_944.0));
        assert_eq!(parsed.entries[0].events_per_sec(1_000_000, 2), None);
        // First recording: an empty document is an empty log…
        assert_eq!(TrajectoryLog::from_json("").expect("empty ok").entries.len(), 0);
        // …but an unrelated JSON file is refused, not clobbered.
        assert!(TrajectoryLog::from_json("{\"experiment\": \"throughput\"}").is_none());
    }

    #[test]
    fn golden_json_round_trips() {
        let digests = ScenarioDigests {
            scenario: "hotspot".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![
                ("facs-exact".to_owned(), "aa11".to_owned()),
                ("scc".to_owned(), "bb22".to_owned()),
            ],
        };
        let json = digests.to_json();
        let parsed = ScenarioDigests::from_json(&json).expect("parses");
        assert_eq!(parsed.scenario, "hotspot");
        assert_eq!(parsed.schema, GOLDEN_SCHEMA);
        assert_eq!(parsed.digest("facs-exact"), Some("aa11"));
        assert_eq!(parsed.digest("scc"), Some("bb22"));
        assert_eq!(parsed.digest("missing"), None);
        // `schema` must never leak into the variant list.
        assert_eq!(parsed.digest("schema"), None);
    }

    #[test]
    fn schemaless_baselines_parse_as_schema_one() {
        let parsed = ScenarioDigests::from_json(
            "{\n  \"scenario\": \"old\",\n  \"facs-exact\": \"cc33\"\n}\n",
        )
        .expect("parses");
        assert_eq!(parsed.schema, "1");
        assert_eq!(parsed.digest("facs-exact"), Some("cc33"));
    }

    #[test]
    fn from_json_rejects_scenarioless_documents() {
        assert!(ScenarioDigests::from_json("{\"a\": \"b\"}")
            .map(|d| d.scenario.is_empty())
            .unwrap_or(true));
    }

    /// A fresh, empty per-test scratch directory under the system temp
    /// dir (unique per test name so parallel tests cannot collide, and
    /// recreated from scratch so stale files from old runs cannot leak
    /// into the stale-baseline scan).
    fn scratch_dir(test: &str) -> String {
        let dir = std::env::temp_dir().join(format!("facs-golden-{test}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.to_string_lossy().into_owned()
    }

    #[test]
    fn golden_diff_reports_mismatch_and_missing() {
        let dir = scratch_dir("mismatch");
        let committed = ScenarioDigests {
            scenario: "demo".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![("facs-exact".to_owned(), "0000".to_owned())],
        };
        std::fs::write(format!("{dir}/demo.json"), committed.to_json()).expect("write baseline");
        let fresh = vec![
            ScenarioDigests {
                scenario: "demo".to_owned(),
                schema: GOLDEN_SCHEMA.to_owned(),
                digests: vec![
                    ("facs-exact".to_owned(), "ffff".to_owned()),
                    ("scc".to_owned(), "1234".to_owned()),
                ],
            },
            ScenarioDigests {
                scenario: "absent".to_owned(),
                schema: GOLDEN_SCHEMA.to_owned(),
                digests: vec![],
            },
        ];
        let diffs = golden_diff(&dir, &fresh);
        assert_eq!(diffs.len(), 3, "{diffs:?}");
        assert!(diffs[0].contains("digest mismatch"), "{diffs:?}");
        assert!(diffs[0].contains("expected 0000"), "{diffs:?}");
        assert!(diffs[1].contains("no baseline digest"), "{diffs:?}");
        assert!(diffs[2].contains("missing baseline"), "{diffs:?}");
        let clean = vec![ScenarioDigests {
            scenario: "demo".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![("facs-exact".to_owned(), "0000".to_owned())],
        }];
        assert!(golden_diff(&dir, &clean).is_empty());
    }

    #[test]
    fn golden_diff_fails_loudly_on_a_schema_bump() {
        let dir = scratch_dir("schema-bump");
        // A baseline recorded before the schema field existed (parses as
        // schema "1") whose digest happens to match: the bump alone must
        // fail the check, and the digest diff must be suppressed.
        std::fs::write(
            format!("{dir}/demo.json"),
            "{\n  \"scenario\": \"demo\",\n  \"facs-exact\": \"aaaa\"\n}\n",
        )
        .expect("write baseline");
        let fresh = vec![ScenarioDigests {
            scenario: "demo".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![("facs-exact".to_owned(), "ffff".to_owned())],
        }];
        let diffs = golden_diff(&dir, &fresh);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("schema bumped (1 -> 2)"), "{diffs:?}");
        assert!(diffs[0].contains("re-bless"), "{diffs:?}");
        assert!(!diffs[0].contains("digest mismatch"), "{diffs:?}");
    }

    #[test]
    fn golden_diff_flags_stale_files_and_variants() {
        let dir = scratch_dir("stale");
        // A baseline file for a scenario the catalog no longer has...
        let orphan = ScenarioDigests {
            scenario: "renamed-away".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![("facs-exact".to_owned(), "0000".to_owned())],
        };
        std::fs::write(format!("{dir}/renamed-away.json"), orphan.to_json()).expect("write");
        // ...and a live scenario whose baseline still carries a variant
        // that no longer runs.
        let live = ScenarioDigests {
            scenario: "demo".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![
                ("facs-exact".to_owned(), "aaaa".to_owned()),
                ("retired-variant".to_owned(), "bbbb".to_owned()),
            ],
        };
        std::fs::write(format!("{dir}/demo.json"), live.to_json()).expect("write");
        let fresh = vec![ScenarioDigests {
            scenario: "demo".to_owned(),
            schema: GOLDEN_SCHEMA.to_owned(),
            digests: vec![("facs-exact".to_owned(), "aaaa".to_owned())],
        }];
        let diffs = golden_diff(&dir, &fresh);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        assert!(diffs[0].contains("demo/retired-variant"), "{diffs:?}");
        assert!(diffs[0].contains("stale baseline entry"), "{diffs:?}");
        assert!(diffs[1].contains("renamed-away.json"), "{diffs:?}");
        assert!(diffs[1].contains("stale baseline for a scenario"), "{diffs:?}");
    }

    #[test]
    fn paper_baseline_digest_is_shard_and_backend_stable() {
        let config = ScenarioConfig {
            requests: 60,
            replications: 1,
            ..facs_cellsim::scenario_by_name("paper-baseline").expect("catalog entry")
        };
        validate_config(&config, &BackendPair::default()).expect("baseline must validate");
    }

    #[test]
    fn backend_audit_passes_on_a_fuzzed_population() {
        let case = WorkloadFuzzer::new(0xFACC).case(0);
        let (flips, samples) = audit_backend_divergence(&case.config, &BackendPair::default())
            .expect("audit must pass for the default surfaces");
        // Both call kinds × 5 occupancy points per offered user.
        assert_eq!(samples, case.config.requests as u64 * 10);
        assert!(flips <= samples / 50, "flips {flips} of {samples} is not near-threshold noise");
    }

    #[test]
    fn throughput_baseline_round_trips() {
        let baseline = ThroughputBaseline {
            requests: 1_000_000,
            entries: vec![(1, 1_200_000.0), (4, 2_900_000.0)],
        };
        let parsed = ThroughputBaseline::from_json(&baseline.to_json()).expect("parses");
        assert_eq!(parsed.requests, 1_000_000);
        assert_eq!(parsed.events_per_sec(1), Some(1_200_000.0));
        assert_eq!(parsed.events_per_sec(4), Some(2_900_000.0));
        assert_eq!(parsed.events_per_sec(2), None);
        assert!(ThroughputBaseline::from_json("{}").is_none(), "requests is required");
    }

    #[test]
    fn small_fuzz_run_is_clean() {
        let summary =
            run_validation(0xFACC, 3, |_, _, _| {}).expect("fuzzed workloads must validate");
        assert_eq!(summary.cases(), 3);
    }
}
