//! Experiment definitions: one function per paper artifact.
//!
//! Each `figN_*` / `tabN_*` function regenerates the corresponding table
//! or figure of Barolli et al. (ICDCSW 2007); the `experiments` binary
//! prints them as CSV and ASCII plots, and EXPERIMENTS.md records the
//! measured numbers against the paper's.

use facs::{
    FacsConfig, FacsController, FacsDegradeController, Flc1, Flc2, PredictiveFacsController,
    TunedFacsController, FRB1, FRB2,
};
use facs_cac::policies::CompleteSharing;
use facs_cac::{
    BoxedController, CallId, CallKind, CallRequest, CellSnapshot, EwmaHoltForecaster,
    LoadForecaster, MobilityInfo, RecurrentForecaster, ServiceClass,
};
use facs_cellsim::prelude::*;
use facs_cellsim::HexGrid;
use facs_fuzzy::{BackendKind, Defuzzifier, InferenceConfig, TNorm};
use facs_scc::{SccConfig, SccNetwork};

/// x-axis of figures 7–10: number of requesting connections.
#[must_use]
pub fn request_counts() -> Vec<usize> {
    paper_request_counts()
}

/// Builds one FACS controller per grid cell.
///
/// One prototype controller is built here (rule compilation — and, for
/// [`BackendKind::Compiled`], surface precomputation — happen once) and
/// each cell gets a clone; compiled surfaces are shared by reference
/// across clones, so multi-cell grids and parallel replications pay a
/// single compile per sweep.
pub fn facs_builder(config: FacsConfig) -> impl Fn(&HexGrid) -> Vec<BoxedController> + Sync {
    let prototype = FacsController::with_config(config).expect("FACS builds");
    move |grid: &HexGrid| {
        grid.cell_ids().map(|_| Box::new(prototype.clone()) as BoxedController).collect()
    }
}

/// Builds one degradation-aware FACS controller per grid cell (same
/// prototype-clone economics as [`facs_builder`]).
pub fn facs_degrade_builder(
    config: FacsConfig,
) -> impl Fn(&HexGrid) -> Vec<BoxedController> + Sync {
    let prototype = FacsDegradeController::with_config(config).expect("FACS builds");
    move |grid: &HexGrid| {
        grid.cell_ids().map(|_| Box::new(prototype.clone()) as BoxedController).collect()
    }
}

/// Builds one predictive (EWMA/Holt) FACS controller per grid cell
/// (prototype-clone economics of [`facs_builder`]).
pub fn predictive_ewma_builder(
    config: FacsConfig,
) -> impl Fn(&HexGrid) -> Vec<BoxedController> + Sync {
    let build = PredictiveFacsController::ewma_factory(config).expect("predictive FACS builds");
    move |grid: &HexGrid| grid.cell_ids().map(|_| build()).collect()
}

/// Builds one predictive (recurrent-forecaster) FACS controller per grid
/// cell.
pub fn predictive_rnn_builder(
    config: FacsConfig,
) -> impl Fn(&HexGrid) -> Vec<BoxedController> + Sync {
    let build =
        PredictiveFacsController::recurrent_factory(config).expect("predictive FACS builds");
    move |grid: &HexGrid| grid.cell_ids().map(|_| build()).collect()
}

/// Builds one online-tuned FACS controller per grid cell.
pub fn tuned_facs_builder(config: FacsConfig) -> impl Fn(&HexGrid) -> Vec<BoxedController> + Sync {
    let build = TunedFacsController::factory(config).expect("tuned FACS builds");
    move |grid: &HexGrid| grid.cell_ids().map(|_| build()).collect()
}

/// Builds one Complete Sharing controller per grid cell.
pub fn cs_builder() -> impl Fn(&HexGrid) -> Vec<BoxedController> {
    |grid: &HexGrid| {
        grid.cell_ids().map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
    }
}

/// Builds an SCC network per grid (fresh shadow board each run).
pub fn scc_builder(config: SccConfig) -> impl Fn(&HexGrid) -> Vec<BoxedController> {
    move |grid: &HexGrid| SccNetwork::new(config).controllers(grid)
}

/// The shared single-BS scenario skeleton of figures 7–9 (paper §4
/// parameters; calibration documented in EXPERIMENTS.md).
#[must_use]
pub fn base_scenario(requests: usize) -> ScenarioConfig {
    ScenarioConfig { requests, replications: 3, ..Default::default() }
}

/// The multi-cell scenario of figure 10: a 7-cell cluster with `n`
/// requests per cell, users spawning everywhere.
#[must_use]
pub fn fig10_scenario(requests_per_cell: usize) -> ScenarioConfig {
    ScenarioConfig {
        requests: requests_per_cell * 7,
        grid_radius: 1,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 3,
        ..Default::default()
    }
}

/// Table 1 — FRB1 rendered in the rule DSL (one line per paper row).
#[must_use]
pub fn tab1_rules() -> Vec<String> {
    let flc1 = Flc1::new().expect("FLC1 builds");
    flc1.engine().rule_base().iter().map(ToString::to_string).collect()
}

/// Table 2 — FRB2 rendered in the rule DSL.
#[must_use]
pub fn tab2_rules() -> Vec<String> {
    let flc2 = Flc2::new().expect("FLC2 builds");
    flc2.engine().rule_base().iter().map(ToString::to_string).collect()
}

/// Verifies the compiled rule bases against the transcription constants
/// (sizes only; contents are pinned by unit tests).
#[must_use]
pub fn table_sizes() -> (usize, usize) {
    (FRB1.len(), FRB2.len())
}

/// Fig. 5 — FLC1 membership functions sampled as `(variable, term, x, µ)`
/// CSV rows.
#[must_use]
pub fn fig5_membership_csv() -> String {
    let flc1 = Flc1::new().expect("FLC1 builds");
    sample_engine_memberships(flc1.engine())
}

/// Fig. 6 — FLC2 membership functions sampled as CSV rows.
#[must_use]
pub fn fig6_membership_csv() -> String {
    let flc2 = Flc2::new().expect("FLC2 builds");
    sample_engine_memberships(flc2.engine())
}

fn sample_engine_memberships(engine: &facs_fuzzy::Engine) -> String {
    let mut out = String::from("variable,term,x,mu\n");
    let all = engine.inputs().iter().chain(engine.outputs());
    for variable in all {
        for term in variable.terms() {
            for i in 0..=100 {
                let x = variable.min() + (variable.max() - variable.min()) * f64::from(i) / 100.0;
                out.push_str(&format!(
                    "{},{},{:.4},{:.4}\n",
                    variable.name(),
                    term.name(),
                    x,
                    term.membership(x)
                ));
            }
        }
    }
    out
}

/// Fig. 7 — acceptance vs. requesting connections for speeds
/// {4, 10, 30, 60} km/h (walker mobility, heading-history angles).
#[must_use]
pub fn fig7_speed(replications: u32) -> Vec<Series> {
    [4.0, 10.0, 30.0, 60.0]
        .iter()
        .map(|&speed| {
            acceptance_curve(
                &format!("{speed:.0}km/h"),
                &request_counts(),
                |n| ScenarioConfig {
                    speed: SpeedSpec::Fixed(speed),
                    angle: AngleSpec::HeadingHistory { history_s: 300.0 },
                    replications,
                    ..base_scenario(n)
                },
                &facs_builder(FacsConfig::default()),
            )
        })
        .collect()
}

/// Fig. 8 — acceptance vs. requesting connections for pinned angles
/// {0, 30, 50, 60, 90}°.
#[must_use]
pub fn fig8_angle(replications: u32) -> Vec<Series> {
    [0.0, 30.0, 50.0, 60.0, 90.0]
        .iter()
        .map(|&angle| {
            acceptance_curve(
                &format!("angle={angle:.0}"),
                &request_counts(),
                |n| ScenarioConfig {
                    angle: AngleSpec::Fixed(angle),
                    replications,
                    ..base_scenario(n)
                },
                &facs_builder(FacsConfig::default()),
            )
        })
        .collect()
}

/// Fig. 9 — acceptance vs. requesting connections for pinned distances
/// {1, 3, 7, 10} km.
#[must_use]
pub fn fig9_distance(replications: u32) -> Vec<Series> {
    [1.0, 3.0, 7.0, 10.0]
        .iter()
        .map(|&distance| {
            acceptance_curve(
                &format!("{distance:.0}km"),
                &request_counts(),
                |n| ScenarioConfig {
                    distance: DistanceSpec::Fixed(distance),
                    replications,
                    ..base_scenario(n)
                },
                &facs_builder(FacsConfig::default()),
            )
        })
        .collect()
}

/// Fig. 10 — FACS vs SCC acceptance on the 7-cell cluster.
#[must_use]
pub fn fig10_facs_vs_scc(replications: u32) -> Vec<Series> {
    let xs = request_counts();
    let facs = acceptance_curve(
        "FACS",
        &xs,
        |n| ScenarioConfig { replications, ..fig10_scenario(n) },
        &facs_builder(FacsConfig::default()),
    );
    let scc = acceptance_curve(
        "SCC",
        &xs,
        |n| ScenarioConfig { replications, ..fig10_scenario(n) },
        &scc_builder(SccConfig::default()),
    );
    vec![facs, scc]
}

/// QoS companion to Fig. 10: handoff-dropping percentage per system.
#[must_use]
pub fn qos_dropping(replications: u32) -> Vec<Series> {
    let xs = [30usize, 50, 70, 100];
    let mut facs = Series::new("FACS drop%");
    let mut scc = Series::new("SCC drop%");
    let mut cs = Series::new("CS drop%");
    for &n in &xs {
        let config = ScenarioConfig { replications, ..fig10_scenario(n) };
        facs.push(
            n as f64,
            config.aggregate(&facs_builder(FacsConfig::default())).dropping_percentage(),
        );
        scc.push(
            n as f64,
            config.aggregate(&scc_builder(SccConfig::default())).dropping_percentage(),
        );
        cs.push(n as f64, config.aggregate(&cs_builder()).dropping_percentage());
    }
    vec![facs, scc, cs]
}

/// Ablation: defuzzification strategy (paper-default centroid vs the
/// alternatives) on the default mixed-population scenario.
#[must_use]
pub fn ablation_defuzz(replications: u32) -> Vec<Series> {
    [
        ("centroid", Defuzzifier::Centroid),
        ("bisector", Defuzzifier::Bisector),
        ("mom", Defuzzifier::MeanOfMaxima),
        ("wavg", Defuzzifier::WeightedAverage),
    ]
    .iter()
    .map(|&(label, defuzzifier)| {
        let config = FacsConfig {
            inference: InferenceConfig { defuzzifier, ..InferenceConfig::default() },
            ..FacsConfig::default()
        };
        acceptance_curve(
            label,
            &[20, 60, 100],
            |n| ScenarioConfig { replications, ..base_scenario(n) },
            &facs_builder(config),
        )
    })
    .collect()
}

/// Ablation: conjunction T-norm (paper-default min vs product).
#[must_use]
pub fn ablation_tnorm(replications: u32) -> Vec<Series> {
    [("min", TNorm::Minimum), ("product", TNorm::Product)]
        .iter()
        .map(|&(label, tnorm)| {
            let config = FacsConfig {
                inference: InferenceConfig { tnorm, ..InferenceConfig::default() },
                ..FacsConfig::default()
            };
            acceptance_curve(
                label,
                &[20, 60, 100],
                |n| ScenarioConfig { replications, ..base_scenario(n) },
                &facs_builder(config),
            )
        })
        .collect()
}

/// Ablation: acceptance threshold sweep over the defuzzified A/R score.
#[must_use]
pub fn ablation_threshold(replications: u32) -> Vec<Series> {
    [-0.25, 0.0, 0.1, 0.25, 0.5]
        .iter()
        .map(|&threshold| {
            let config = FacsConfig { threshold, ..FacsConfig::default() };
            acceptance_curve(
                &format!("t={threshold:+.2}"),
                &[20, 60, 100],
                |n| ScenarioConfig { replications, ..base_scenario(n) },
                &facs_builder(config),
            )
        })
        .collect()
}

/// The paper's named future work: handoff priority. Sweeps the FACS
/// handoff bias and reports acceptance and dropping side by side.
#[must_use]
pub fn handoff_extension(replications: u32) -> Vec<Series> {
    let mut out = Vec::new();
    for &bias in &[0.0, 0.2, 0.4] {
        let config = FacsConfig { handoff_bias: bias, ..FacsConfig::default() };
        let mut acc = Series::new(format!("bias={bias:.1} acc%"));
        let mut drop = Series::new(format!("bias={bias:.1} drop%"));
        for &n in &[50usize, 100] {
            let scenario = ScenarioConfig { replications, ..fig10_scenario(n) };
            let metrics = scenario.aggregate(&facs_builder(config));
            acc.push(n as f64, metrics.acceptance_percentage());
            drop.push(n as f64, metrics.dropping_percentage());
        }
        out.push(acc);
        out.push(drop);
    }
    out
}

/// One admission system's aggregated result on the congested elastic
/// scenario (see [`elastic_comparison`]).
#[derive(Debug, Clone)]
pub struct ElasticRow {
    /// System label.
    pub label: &'static str,
    /// Counters aggregated over the replications.
    pub metrics: Metrics,
}

impl ElasticRow {
    /// New-call blocking percentage.
    #[must_use]
    pub fn blocking_percentage(&self) -> f64 {
        100.0 * self.metrics.blocked_new as f64 / self.metrics.offered_new.max(1) as f64
    }
}

/// Compares plain FACS, degradation-aware FACS and SCC on the catalog's
/// `congested` scenario (overloaded elastic multi-class mix) — the
/// EXPERIMENTS.md elastic-bandwidth table. The degradation-aware variant
/// squeezes elastic calls toward their QoS floor to absorb handoffs, so
/// it should show a lower handoff drop rate than plain FACS at
/// equal-or-better new-call blocking.
#[must_use]
pub fn elastic_comparison(replications: u32) -> Vec<ElasticRow> {
    let entry = facs_cellsim::catalog()
        .into_iter()
        .find(|e| e.name == "congested")
        .expect("congested scenario in catalog");
    let config = ScenarioConfig { replications, ..entry.config };
    let systems: Vec<(&'static str, Box<ControllerBuilder>)> = vec![
        ("FACS", Box::new(facs_builder(FacsConfig::default()))),
        ("FACS-degrade", Box::new(facs_degrade_builder(FacsConfig::default()))),
        ("SCC", Box::new(scc_builder(SccConfig::default()))),
    ];
    systems
        .into_iter()
        .map(|(label, build)| ElasticRow { label, metrics: config.aggregate(build.as_ref()) })
        .collect()
}

/// One `(scenario, system)` cell of the predictive-admission comparison
/// (see [`predict_comparison`]).
#[derive(Debug, Clone)]
pub struct PredictRow {
    /// Catalog scenario name.
    pub scenario: &'static str,
    /// System label (`FACS`, `SCC`, `FACS-predict-*`, `FACS-tuned`).
    pub label: &'static str,
    /// Counters aggregated over the replications.
    pub metrics: Metrics,
}

impl PredictRow {
    /// New-call blocking percentage.
    #[must_use]
    pub fn blocking_percentage(&self) -> f64 {
        100.0 * self.metrics.blocked_new as f64 / self.metrics.offered_new.max(1) as f64
    }

    /// Handoff dropping percentage.
    #[must_use]
    pub fn dropping_percentage(&self) -> f64 {
        self.metrics.dropping_percentage()
    }
}

/// Compares static FACS, SCC, both predictive FACS variants and the
/// online-tuned FACS across the whole scenario catalog — the
/// EXPERIMENTS.md `predict` table. The acceptance bar: on the
/// congestion-ramp scenarios (`flash-crowd`, `rush-hour`) the predictive
/// or tuned controller must show a lower handoff-drop probability than
/// static FACS at comparable new-call blocking.
///
/// All FACS variants run on compiled FLC1 surfaces; SCC is pinned to one
/// shard because its cluster-wide shadow board is not cell-local.
#[must_use]
pub fn predict_comparison(replications: u32) -> Vec<PredictRow> {
    let systems: Vec<(&'static str, bool, Box<ControllerBuilder>)> = vec![
        ("FACS", true, Box::new(facs_builder(FacsConfig::compiled()))),
        ("SCC", false, Box::new(scc_builder(SccConfig::default()))),
        ("FACS-predict-ewma", true, Box::new(predictive_ewma_builder(FacsConfig::compiled()))),
        ("FACS-predict-rnn", true, Box::new(predictive_rnn_builder(FacsConfig::compiled()))),
        ("FACS-tuned", true, Box::new(tuned_facs_builder(FacsConfig::compiled()))),
    ];
    let mut rows = Vec::new();
    for entry in facs_cellsim::catalog() {
        for (label, cell_local, build) in &systems {
            let shards = if *cell_local { entry.config.shards } else { 1 };
            let config = ScenarioConfig { replications, shards, ..entry.config.clone() };
            rows.push(PredictRow {
                scenario: entry.name,
                label,
                metrics: config.aggregate(build.as_ref()),
            });
        }
    }
    rows
}

/// One `(forecaster, horizon)` cell of the forecast-accuracy table (see
/// [`forecast_accuracy`]).
#[derive(Debug, Clone)]
pub struct MaeRow {
    /// Forecaster label (`naive`, `ewma`, `holt`, `rnn`).
    pub forecaster: &'static str,
    /// Look-ahead, in epoch samples.
    pub horizon_epochs: u32,
    /// Mean absolute error of the occupancy forecast, in bandwidth units.
    pub mae_bu: f64,
    /// Forecast/actual pairs the mean is taken over.
    pub samples: u64,
}

/// Measures forecaster accuracy offline: runs `scenario_name` once under
/// static FACS with a [`CellLoadSeries`] sink, then replays every cell's
/// per-epoch occupancy series through each forecaster and scores the
/// `h`-epochs-ahead prediction against the recorded truth (MAE in BU).
///
/// The EXPERIMENTS.md forecast-accuracy table runs this on `rush-hour`
/// at horizons 1/2/4/8; `naive` (predict-last-value) is the floor any
/// useful forecaster must beat on trending load.
///
/// # Panics
///
/// Panics when `scenario_name` is not in the catalog.
#[must_use]
pub fn forecast_accuracy(scenario_name: &str, horizons: &[u32]) -> Vec<MaeRow> {
    let base = facs_cellsim::scenario_by_name(scenario_name).expect("scenario in catalog");
    let config = ScenarioConfig { replications: 1, shards: 1, ..base };
    let grid = config.grid();
    let controllers = facs_builder(FacsConfig::compiled())(&grid);
    let mut sim = Simulation::new(grid, config.sim_config(config.seed), controllers);
    let workload = config.generate_workload(config.seed);
    let series = sim.run_with(workload, CellLoadSeries::new());
    let capacity = f64::from(config.capacity_bu);
    let cells: Vec<_> = series.cells().collect();

    let mut rows = Vec::new();
    for &h in horizons {
        let mut acc: [(&'static str, f64, u64); 4] =
            [("naive", 0.0, 0), ("ewma", 0.0, 0), ("holt", 0.0, 0), ("rnn", 0.0, 0)];
        for &cell in &cells {
            let samples = series.samples(cell);
            if samples.len() <= h as usize {
                continue;
            }
            // Fresh forecasters per cell: accuracy is a per-cell skill.
            let mut forecasters: [Box<dyn LoadForecaster>; 4] = [
                Box::new(EwmaHoltForecaster::new(1.0, 0.0)),
                Box::new(EwmaHoltForecaster::ewma(0.4)),
                Box::new(EwmaHoltForecaster::default_profile()),
                Box::new(RecurrentForecaster::default_profile(capacity)),
            ];
            for (i, &(t, x)) in samples.iter().enumerate() {
                for f in &mut forecasters {
                    f.observe(t, f64::from(x));
                }
                if let Some(&(t_future, actual)) = samples.get(i + h as usize) {
                    for (j, f) in forecasters.iter().enumerate() {
                        let predicted = f.forecast(t_future - t).clamp(0.0, capacity);
                        acc[j].1 += (predicted - f64::from(actual)).abs();
                        acc[j].2 += 1;
                    }
                }
            }
        }
        for (forecaster, abs_err, n) in acc {
            rows.push(MaeRow {
                forecaster,
                horizon_epochs: h,
                mae_bu: if n == 0 { 0.0 } else { abs_err / n as f64 },
                samples: n,
            });
        }
    }
    rows
}

/// Result of sweeping exact-vs-compiled FACS decisions over a dense
/// input grid (see [`backend_agreement`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendAgreement {
    /// Grid points compared.
    pub points: usize,
    /// Points where both backends made the same accept/reject decision.
    pub agreeing: usize,
    /// Largest absolute divergence of the soft A/R score.
    pub max_score_divergence: f64,
}

impl BackendAgreement {
    /// Percentage of grid points with identical binary decisions.
    #[must_use]
    pub fn agreement_percentage(&self) -> f64 {
        100.0 * self.agreeing as f64 / self.points.max(1) as f64
    }
}

/// Compares the exact and compiled FACS backends decision-for-decision
/// over a dense grid of the figure 7–10 input space: `grid_steps` evenly
/// spaced speeds (0–120), angles (−180…180), distances (0–10 km) and
/// occupancies (0–40 BU), crossed with all three service classes.
///
/// EXPERIMENTS.md records the measured numbers; the equivalence property
/// tests enforce the ≥ 99 % agreement bound in CI.
#[must_use]
pub fn backend_agreement(points_per_axis: usize, grid_steps: usize) -> BackendAgreement {
    let exact = FacsController::new().expect("FACS builds");
    let compiled = FacsController::with_config(FacsConfig {
        backend: BackendKind::Compiled { points_per_axis },
        ..FacsConfig::default()
    })
    .expect("compiled FACS builds");
    let threshold = exact.config().threshold;
    let steps = grid_steps.max(2);
    let axis = |min: f64, max: f64, i: usize| min + (max - min) * i as f64 / (steps - 1) as f64;
    let mut result = BackendAgreement { points: 0, agreeing: 0, max_score_divergence: 0.0 };
    for class in [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video] {
        for si in 0..steps {
            for ai in 0..steps {
                for di in 0..steps {
                    for oi in 0..steps {
                        let request = CallRequest::new(
                            CallId(0),
                            class,
                            CallKind::New,
                            MobilityInfo::new(
                                axis(0.0, 120.0, si),
                                axis(-180.0, 180.0, ai),
                                axis(0.0, 10.0, di),
                            ),
                        );
                        let cell = CellSnapshot::loaded(
                            facs_cac::BandwidthUnits::new(40),
                            facs_cac::BandwidthUnits::new(axis(0.0, 40.0, oi).round() as u32),
                        );
                        let e = exact.evaluate(&request, &cell);
                        let c = compiled.evaluate(&request, &cell);
                        result.points += 1;
                        if (e.score > threshold) == (c.score > threshold) {
                            result.agreeing += 1;
                        }
                        result.max_score_divergence =
                            result.max_score_divergence.max((e.score - c.score).abs());
                    }
                }
            }
        }
    }
    result
}

/// Builds the simulation behind a scenario and times the kernel run
/// alone (workload generation and controller construction excluded) —
/// the measurement behind the `sim_throughput` bench and the
/// million-user smoke.
#[must_use]
pub fn timed_kernel_run(
    config: &ScenarioConfig,
    workload: Vec<UserSpec>,
    build: &ControllerBuilder,
) -> (Metrics, std::time::Duration) {
    let grid = config.grid();
    let controllers = build(&grid);
    let mut sim = Simulation::new(grid, config.sim_config(config.seed), controllers);
    let start = std::time::Instant::now();
    let metrics = sim.run(workload);
    (metrics, start.elapsed())
}

/// One scenario-catalog entry's aggregated result.
#[derive(Debug, Clone)]
pub struct CatalogResult {
    /// Catalog entry name (also the JSON artifact's file stem).
    pub name: &'static str,
    /// Catalog entry description.
    pub summary: &'static str,
    /// The exact configuration that ran.
    pub config: ScenarioConfig,
    /// Counters aggregated over the replications.
    pub metrics: Metrics,
}

impl CatalogResult {
    /// Machine-readable JSON for this result (one object per scenario;
    /// the `experiments --exp catalog` artifacts recorded in
    /// EXPERIMENTS.md).
    #[must_use]
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        let class = |i: usize| {
            format!(
                "{{\"offered\": {}, \"accepted\": {}, \"denied\": {}}}",
                m.per_class[i].offered, m.per_class[i].accepted, m.per_class[i].denied
            )
        };
        format!(
            concat!(
                "{{\n",
                "  \"scenario\": \"{name}\",\n",
                "  \"summary\": \"{summary}\",\n",
                "  \"requests\": {requests},\n",
                "  \"replications\": {reps},\n",
                "  \"shards\": {shards},\n",
                "  \"grid_cells\": {cells},\n",
                "  \"offered_new\": {offered},\n",
                "  \"accepted_new\": {accepted},\n",
                "  \"blocked_new\": {blocked},\n",
                "  \"handoff_attempts\": {ho_att},\n",
                "  \"handoff_accepted\": {ho_acc},\n",
                "  \"handoff_dropped\": {ho_drop},\n",
                "  \"completed\": {completed},\n",
                "  \"exited_coverage\": {exited},\n",
                "  \"mobility_steps\": {steps},\n",
                "  \"acceptance_pct\": {acc_pct:.4},\n",
                "  \"dropping_pct\": {drop_pct:.4},\n",
                "  \"mean_utilization\": {util:.6},\n",
                "  \"per_class\": {{\"text\": {text}, \"voice\": {voice}, \"video\": {video}}}\n",
                "}}\n"
            ),
            name = self.name,
            summary = self.summary,
            requests = self.config.requests,
            reps = self.config.replications,
            shards = self.config.shards,
            cells = self.config.grid().len(),
            offered = m.offered_new,
            accepted = m.accepted_new,
            blocked = m.blocked_new,
            ho_att = m.handoff_attempts,
            ho_acc = m.handoff_accepted,
            ho_drop = m.handoff_dropped,
            completed = m.completed,
            exited = m.exited_coverage,
            steps = m.mobility_steps,
            acc_pct = m.acceptance_percentage(),
            drop_pct = m.dropping_percentage(),
            util = m.mean_utilization(),
            text = class(0),
            voice = class(1),
            video = class(2),
        )
    }
}

/// Runs every entry of the scenario catalog (FACS on compiled decision
/// surfaces) and returns the aggregated metrics per entry.
#[must_use]
pub fn run_catalog(replications: u32, shards: usize) -> Vec<CatalogResult> {
    let build = facs_builder(FacsConfig::compiled());
    facs_cellsim::catalog()
        .into_iter()
        .map(|entry| {
            let config = ScenarioConfig { replications, shards, ..entry.config };
            let metrics = config.aggregate(&build);
            CatalogResult { name: entry.name, summary: entry.summary, config, metrics }
        })
        .collect()
}

/// The throughput stress scenario: `requests` users over a 10-minute
/// window on a 127-cell grid. The `sim_throughput` bench runs it at
/// 10k / 100k / 1M users and 1 vs N shards; at 1M it is the ROADMAP's
/// "heavy traffic from millions of users" smoke (`--exp throughput`),
/// far beyond the paper's 100-request figures.
#[must_use]
pub fn stress_scenario(requests: usize, shards: usize) -> ScenarioConfig {
    ScenarioConfig {
        requests,
        window_s: 600.0,
        holding_mean_s: 40.0,
        grid_radius: 6,
        cell_radius_km: 2.0,
        spawn: SpawnSpec::AnyCell,
        mobility: MobilityChoice::Walker,
        replications: 1,
        shards,
        ..Default::default()
    }
}

/// Wall-clock report of one stress run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The run's counters.
    pub metrics: Metrics,
    /// Kernel wall time (generation and construction excluded).
    pub wall: std::time::Duration,
}

impl ThroughputReport {
    /// Kernel events per wall-clock second.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.metrics.total_events() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Offered calls per wall-clock second.
    #[must_use]
    pub fn calls_per_sec(&self) -> f64 {
        self.metrics.offered_new as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Like [`timed_kernel_run`], but over the chunked streaming synthesis
/// path: spec generation happens *inside* the timed region (that is the
/// point of the memory-flat mode), only arrival-time sampling and
/// controller construction are excluded.
#[must_use]
pub fn timed_kernel_run_streamed(
    config: &ScenarioConfig,
    build: &ControllerBuilder,
) -> (Metrics, std::time::Duration) {
    let grid = config.grid();
    let controllers = build(&grid);
    let mut sim = Simulation::new(grid, config.sim_config(config.seed), controllers);
    let stream = config.stream_workload(config.seed);
    let start = std::time::Instant::now();
    let metrics = sim.run_streamed(stream);
    (metrics, start.elapsed())
}

/// Runs one scenario once (FACS on compiled surfaces) and reports kernel
/// throughput, honouring the scenario's `streamed` flag.
#[must_use]
pub fn throughput_run(config: &ScenarioConfig) -> ThroughputReport {
    let build = facs_builder(FacsConfig::compiled());
    let (metrics, wall) = if config.streamed {
        timed_kernel_run_streamed(config, &build)
    } else {
        let workload = config.generate_workload(config.seed);
        timed_kernel_run(config, workload, &build)
    };
    ThroughputReport { metrics, wall }
}

/// Process peak resident-set size in bytes (Linux `VmHWM`), `None`
/// where `/proc` is unavailable. A whole-process high-water mark: it
/// only ever grows, so measure it right after the run of interest.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// What the eager path would pin in memory just for the workload specs
/// of a `requests`-user run: the analytic floor the streamed smoke's
/// peak RSS is compared against (the eager run also needs slab arrival
/// bookkeeping on top, so this under-states the real eager footprint).
#[must_use]
pub fn eager_spec_projection_bytes(requests: usize) -> u64 {
    (requests * std::mem::size_of::<UserSpec>()) as u64
}

/// Outcome of one planet-scale streamed run.
#[derive(Debug)]
pub struct PlanetReport {
    /// The run's counters.
    pub metrics: Metrics,
    /// The hierarchical cells → regions → global rollup.
    pub rollup: facs_cellsim::RegionRollupSink,
    /// Kernel + synthesis wall time.
    pub wall: std::time::Duration,
}

/// Runs a planet-scale scenario through the streamed path with the
/// hierarchical rollup sink attached (`region_cells` consecutive cell
/// ids per region).
#[must_use]
pub fn planet_run(config: &ScenarioConfig, region_cells: u32) -> PlanetReport {
    let build = facs_builder(FacsConfig::compiled());
    let grid = config.grid();
    let controllers = build(&grid);
    let mut sim = Simulation::new(grid, config.sim_config(config.seed), controllers);
    let stream = config.stream_workload(config.seed);
    let start = std::time::Instant::now();
    let (metrics, rollup) = sim.run_streamed_with(
        stream,
        (Metrics::new(), facs_cellsim::RegionRollupSink::new(region_cells)),
    );
    PlanetReport { metrics, rollup, wall: start.elapsed() }
}

/// Renders series as a crude ASCII chart for terminal inspection.
#[must_use]
pub fn ascii_chart(series: &[Series], y_min: f64, y_max: f64) -> String {
    let mut out = String::new();
    const ROWS: usize = 20;
    let marks = ['*', 'o', '+', 'x', '#', '@'];
    let x_max =
        series.iter().flat_map(|s| s.points.iter().map(|&(x, _)| x)).fold(1.0_f64, f64::max);
    let mut grid = vec![vec![' '; 64]; ROWS + 1];
    for (si, s) in series.iter().enumerate() {
        for &(x, y) in &s.points {
            let col = ((x / x_max) * 60.0).round() as usize;
            let row = if y_max > y_min {
                (((y - y_min) / (y_max - y_min)) * ROWS as f64).round() as isize
            } else {
                0
            };
            let row = row.clamp(0, ROWS as isize) as usize;
            let r = ROWS - row;
            if col < 64 {
                grid[r][col] = marks[si % marks.len()];
            }
        }
    }
    for (i, row) in grid.iter().enumerate() {
        let y_label = y_max - (y_max - y_min) * i as f64 / ROWS as f64;
        out.push_str(&format!("{y_label:6.1} |"));
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str("        +");
    out.push_str(&"-".repeat(62));
    out.push('\n');
    out.push_str(&format!("         0 ... {x_max:.0} (requesting connections)\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} = {}\n", marks[si % marks.len()], s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_paper_sizes() {
        assert_eq!(table_sizes(), (42, 27));
        assert_eq!(tab1_rules().len(), 42);
        assert_eq!(tab2_rules().len(), 27);
    }

    #[test]
    fn tab_rules_are_valid_dsl() {
        for line in tab1_rules().iter().chain(tab2_rules().iter()) {
            assert!(facs_fuzzy::parse_rule(line).is_ok(), "unparseable: {line}");
        }
    }

    #[test]
    fn membership_csv_has_all_terms() {
        let csv = fig5_membership_csv();
        for term in ["sl", "m", "fa", "b1", "st", "b2", "n", "f", "cv1", "cv9"] {
            assert!(csv.lines().any(|l| l.split(',').nth(1) == Some(term)), "missing {term}");
        }
        let csv6 = fig6_membership_csv();
        for term in ["b", "g", "t", "vo", "vi", "s", "f", "r", "wr", "nrna", "wa", "a"] {
            assert!(csv6.lines().any(|l| l.split(',').nth(1) == Some(term)), "missing {term}");
        }
    }

    #[test]
    fn ascii_chart_renders() {
        let mut s = Series::new("demo");
        s.push(10.0, 90.0);
        s.push(100.0, 60.0);
        let chart = ascii_chart(&[s], 40.0, 100.0);
        assert!(chart.contains("demo"));
        assert!(chart.contains('*'));
    }
}
