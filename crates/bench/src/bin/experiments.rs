//! Regenerates every table and figure of the paper's evaluation, plus
//! the scenario-catalog and kernel-throughput runs that go beyond it.
//!
//! ```sh
//! experiments                 # run everything at default replications
//! experiments --exp fig7      # one experiment
//! experiments --exp fig10 --reps 6
//! experiments --exp catalog --out-dir results/catalog   # JSON per scenario
//! experiments --exp throughput --shards 1,4             # 1M-user smoke
//! experiments --exp trajectory --label "my change"      # record history
//! experiments --exp validate --cases 50                 # fuzzed invariants
//! experiments --exp golden --check                      # golden digests
//! experiments --list
//! ```
//!
//! Output is CSV (stdout) plus an ASCII rendition of each figure;
//! `catalog` additionally writes one machine-readable JSON file per
//! scenario. EXPERIMENTS.md records a snapshot of these numbers next to
//! the paper's.
//!
//! `validate` and `golden` are the CI safety net: `validate` fuzzes N
//! workloads and cross-checks invariants, shard counts and inference
//! backends (shrinking failures to a minimal reproducer); `golden`
//! recomputes the catalog trace digests and `--check`s them against
//! `results/golden/*.json` (`--bless` rewrites the baselines). Both run
//! only when selected explicitly — they validate, rather than
//! reproduce, the paper.

use facs_bench::*;

/// Counting global allocator (`--features mem-stats`): tracks the live
/// allocated byte count and its high-water mark so the memory-flat
/// claims can be checked at the allocator level, not just via RSS.
#[cfg(feature = "mem-stats")]
mod mem_stats {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static LIVE: AtomicUsize = AtomicUsize::new(0);
    static HIGH: AtomicUsize = AtomicUsize::new(0);

    struct CountingAlloc;

    // SAFETY: delegates every allocation to `System` unchanged; the
    // atomics only observe sizes.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let ptr = System.alloc(layout);
            if !ptr.is_null() {
                let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
                HIGH.fetch_max(live, Ordering::Relaxed);
            }
            ptr
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        }
    }

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    /// Highest live allocated byte count seen so far.
    pub fn high_water_bytes() -> u64 {
        HIGH.load(Ordering::Relaxed) as u64
    }
}

/// Allocator high-water mark in bytes, when built with `mem-stats`.
fn alloc_high_water_bytes() -> Option<u64> {
    #[cfg(feature = "mem-stats")]
    {
        Some(mem_stats::high_water_bytes())
    }
    #[cfg(not(feature = "mem-stats"))]
    {
        None
    }
}

/// Formats a byte count as mebibytes for report lines.
fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Prints (and records in the CI job summary) the process memory
/// high-water marks after a memory-sensitive experiment.
fn report_memory(context: &str) -> Option<f64> {
    let rss = peak_rss_bytes().map(mb);
    match rss {
        Some(rss_mb) => {
            let line = match alloc_high_water_bytes().map(mb) {
                Some(hwm) => {
                    format!("{context}: peak RSS {rss_mb:.1} MB, allocator high-water {hwm:.1} MB")
                }
                None => format!("{context}: peak RSS {rss_mb:.1} MB"),
            };
            println!("# {line}");
            step_summary(&line);
        }
        None => println!("# {context}: peak RSS unavailable (no /proc)"),
    }
    rss
}

const EXPERIMENTS: &[&str] = &[
    "tab1",
    "tab2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "qos",
    "ablation-defuzz",
    "ablation-tnorm",
    "ablation-threshold",
    "handoff",
    "elastic",
    "predict",
    "backend",
    "catalog",
    "throughput",
    "trajectory",
    "planet",
    "streamcheck",
    "validate",
    "golden",
];

/// Default seed of the fuzzed-workload corpus: CI and local runs
/// explore the same cases unless `--fuzz-seed` overrides it.
const DEFAULT_FUZZ_SEED: u64 = 0xFACC;

/// Appends `text` to the GitHub Actions job summary when running in CI
/// (no-op elsewhere).
fn step_summary(text: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else { return };
    use std::io::Write as _;
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(file, "{text}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_owned();
    let mut reps: u32 = 3;
    let mut out_dir = "results/catalog".to_owned();
    let mut shards: Vec<usize> = vec![1, 4];
    let mut assert_speedup: Option<f64> = None;
    let mut cases: u64 = 50;
    let mut fuzz_seed: u64 = DEFAULT_FUZZ_SEED;
    let mut golden_dir = "results/golden".to_owned();
    let mut bless = false;
    let mut check = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance: f64 = 0.5;
    let mut trajectory_path = "BENCH_trajectory.json".to_owned();
    let mut workers: usize = 0;
    let mut label: Option<String> = None;
    let mut sizes: Vec<usize> = vec![10_000, 100_000, 1_000_000];
    let mut requests: usize = 10_000_000;
    let mut region_cells: u32 = 1024;
    let mut use_streamed = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" if i + 1 < args.len() => {
                exp = args[i + 1].clone();
                i += 2;
            }
            "--reps" if i + 1 < args.len() => {
                reps = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --reps value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out-dir" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--shards" if i + 1 < args.len() => {
                shards = args[i + 1]
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid --shards value `{}`", args[i + 1]);
                            std::process::exit(2);
                        })
                    })
                    .collect();
                let mut seen = shards.clone();
                seen.sort_unstable();
                seen.dedup();
                if shards.contains(&0) || seen.len() != shards.len() {
                    eprintln!("--shards values must be unique and >= 1, got `{}`", args[i + 1]);
                    std::process::exit(2);
                }
                i += 2;
            }
            "--assert-speedup" if i + 1 < args.len() => {
                assert_speedup = Some(args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --assert-speedup value `{}`", args[i + 1]);
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--cases" if i + 1 < args.len() => {
                cases = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --cases value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--fuzz-seed" if i + 1 < args.len() => {
                fuzz_seed = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --fuzz-seed value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--golden-dir" if i + 1 < args.len() => {
                golden_dir = args[i + 1].clone();
                i += 2;
            }
            "--bless" => {
                bless = true;
                i += 1;
            }
            "--streamed" => {
                use_streamed = true;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--baseline" if i + 1 < args.len() => {
                baseline_path = Some(args[i + 1].clone());
                i += 2;
            }
            "--workers" if i + 1 < args.len() => {
                workers = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --workers value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--trajectory" if i + 1 < args.len() => {
                trajectory_path = args[i + 1].clone();
                i += 2;
            }
            "--label" if i + 1 < args.len() => {
                label = Some(args[i + 1].clone());
                i += 2;
            }
            "--sizes" if i + 1 < args.len() => {
                sizes = args[i + 1]
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid --sizes value `{}`", args[i + 1]);
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if sizes.contains(&0) || sizes.is_empty() {
                    eprintln!("--sizes values must be >= 1, got `{}`", args[i + 1]);
                    std::process::exit(2);
                }
                i += 2;
            }
            "--requests" if i + 1 < args.len() => {
                requests = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --requests value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                if requests == 0 {
                    eprintln!("--requests must be >= 1");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--region-cells" if i + 1 < args.len() => {
                region_cells = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --region-cells value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                if region_cells == 0 {
                    eprintln!("--region-cells must be >= 1");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--tolerance" if i + 1 < args.len() => {
                tolerance = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --tolerance value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --list)");
                std::process::exit(2);
            }
        }
    }

    let run = |name: &str| exp == "all" || exp == name;
    let mut ran_any = false;

    if run("tab1") {
        ran_any = true;
        println!("== tab1: FRB1 (paper Table 1, {} rules) ==", table_sizes().0);
        for rule in tab1_rules() {
            println!("{rule}");
        }
        println!();
    }
    if run("tab2") {
        ran_any = true;
        println!("== tab2: FRB2 (paper Table 2, {} rules) ==", table_sizes().1);
        for rule in tab2_rules() {
            println!("{rule}");
        }
        println!();
    }
    if run("fig5") {
        ran_any = true;
        println!("== fig5: FLC1 membership functions (CSV) ==");
        print!("{}", fig5_membership_csv());
        println!();
    }
    if run("fig6") {
        ran_any = true;
        println!("== fig6: FLC2 membership functions (CSV) ==");
        print!("{}", fig6_membership_csv());
        println!();
    }
    if run("fig7") {
        ran_any = true;
        println!("== fig7: acceptance vs requests, by speed ==");
        let series = fig7_speed(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig8") {
        ran_any = true;
        println!("== fig8: acceptance vs requests, by angle ==");
        let series = fig8_angle(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig9") {
        ran_any = true;
        println!("== fig9: acceptance vs requests, by distance ==");
        let series = fig9_distance(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig10") {
        ran_any = true;
        println!("== fig10: FACS vs SCC (7-cell cluster) ==");
        let series = fig10_facs_vs_scc(reps);
        print_series(&series, 60.0, 100.0);
    }
    if run("qos") {
        ran_any = true;
        println!("== qos: handoff dropping percentage (fig10 companion) ==");
        let series = qos_dropping(reps);
        print_series(&series, 0.0, 30.0);
    }
    if run("ablation-defuzz") {
        ran_any = true;
        println!("== ablation-defuzz: defuzzifier choice ==");
        print_series(&ablation_defuzz(reps), 40.0, 100.0);
    }
    if run("ablation-tnorm") {
        ran_any = true;
        println!("== ablation-tnorm: min vs product conjunction ==");
        print_series(&ablation_tnorm(reps), 40.0, 100.0);
    }
    if run("ablation-threshold") {
        ran_any = true;
        println!("== ablation-threshold: acceptance-gate sweep ==");
        print_series(&ablation_threshold(reps), 20.0, 100.0);
    }
    if run("handoff") {
        ran_any = true;
        println!("== handoff: the paper's future-work extension (bias sweep) ==");
        let series = handoff_extension(reps);
        for s in &series {
            print!("{}", s.to_csv());
        }
        println!();
    }

    if run("elastic") {
        ran_any = true;
        println!("== elastic: degradation-aware admission on the congested scenario ==");
        println!("system,acceptance%,new_block%,handoff_drop%,degraded,reallocations,mean_alloc");
        for row in elastic_comparison(reps) {
            let m = &row.metrics;
            println!(
                "{},{:.2},{:.2},{:.2},{},{},{:.4}",
                row.label,
                m.acceptance_percentage(),
                row.blocking_percentage(),
                m.dropping_percentage(),
                m.degraded_admissions,
                m.reallocations,
                m.mean_allocation_fraction(),
            );
        }
        println!();
    }

    if run("predict") {
        ran_any = true;
        // Keep the all-experiments sweep fast: the 7-scenario x 5-system
        // grid honours --reps only when asked for explicitly.
        let predict_reps = if exp == "predict" { reps } else { 1 };
        println!("== predict: forecast-fed and self-tuned admission across the catalog ==");
        println!("scenario,system,acceptance%,new_block%,handoff_drop%,handoffs");
        let rows = predict_comparison(predict_reps);
        for row in &rows {
            println!(
                "{},{},{:.2},{:.2},{:.2},{}",
                row.scenario,
                row.label,
                row.metrics.acceptance_percentage(),
                row.blocking_percentage(),
                row.dropping_percentage(),
                row.metrics.handoff_attempts,
            );
        }
        // The acceptance bar from the paper's future-work direction:
        // forecast-fed or self-tuned FACS must cut handoff drops on the
        // congestion-ramp scenarios without giving the win back as
        // extra new-call blocking (comparable = within 2 points).
        let mut gate_ok = true;
        for scenario in ["flash-crowd", "rush-hour"] {
            let facs = rows
                .iter()
                .find(|r| r.scenario == scenario && r.label == "FACS")
                .expect("static FACS row present for every catalog scenario");
            let best = rows
                .iter()
                .filter(|r| r.scenario == scenario && r.label.starts_with("FACS-"))
                .min_by(|a, b| a.dropping_percentage().total_cmp(&b.dropping_percentage()))
                .expect("at least one predictive/tuned row per scenario");
            let drop_gain = facs.dropping_percentage() - best.dropping_percentage();
            let block_cost = best.blocking_percentage() - facs.blocking_percentage();
            let ok = drop_gain > 0.0 && block_cost <= 2.0;
            gate_ok &= ok;
            println!(
                "# verdict {scenario}: {} drops {:.2}% vs FACS {:.2}% \
                 (blocking {:+.2} pts) -> {}",
                best.label,
                best.dropping_percentage(),
                facs.dropping_percentage(),
                block_cost,
                if ok { "improved" } else { "NOT improved" },
            );
        }
        println!(
            "predict gate {}: predictive/tuned FACS {} static FACS on the ramp scenarios",
            if gate_ok { "PASSED" } else { "WARNING" },
            if gate_ok { "beats" } else { "did not beat" },
        );
        step_summary(&format!(
            "**predict**: gate {} across {} rows ({} reps)",
            if gate_ok { "PASSED" } else { "WARNING" },
            rows.len(),
            predict_reps
        ));
        if exp == "predict" {
            std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
                eprintln!("cannot create --out-dir `{out_dir}`: {e}");
                std::process::exit(1);
            });
            let mut json = String::from("[\n");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    json.push_str(",\n");
                }
                json.push_str(&format!(
                    "  {{\"scenario\":\"{}\",\"system\":\"{}\",\
                     \"acceptance_pct\":{:.4},\"new_block_pct\":{:.4},\
                     \"handoff_drop_pct\":{:.4},\"handoffs\":{}}}",
                    row.scenario,
                    row.label,
                    row.metrics.acceptance_percentage(),
                    row.blocking_percentage(),
                    row.dropping_percentage(),
                    row.metrics.handoff_attempts,
                ));
            }
            json.push_str("\n]\n");
            let path = format!("{out_dir}/predict-comparison.json");
            std::fs::write(&path, json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("# wrote {path}");
        }
        println!();
        println!("== predict: forecaster accuracy (rush-hour occupancy, MAE in BU) ==");
        println!("forecaster,horizon_epochs,mae_bu,samples");
        for row in forecast_accuracy("rush-hour", &[1, 2, 4, 8]) {
            println!("{},{},{:.3},{}", row.forecaster, row.horizon_epochs, row.mae_bu, row.samples);
        }
        println!();
    }

    if run("backend") {
        ran_any = true;
        const GRID_STEPS: usize = 13;
        println!("== backend: exact vs compiled decision agreement ==");
        println!("lattice,grid_steps,points,agree%,max_score_divergence");
        for points_per_axis in [17usize, 33, 65] {
            let a = backend_agreement(points_per_axis, GRID_STEPS);
            println!(
                "{points_per_axis},{GRID_STEPS},{},{:.3},{:.5}",
                a.points,
                a.agreement_percentage(),
                a.max_score_divergence
            );
        }
        println!();
    }

    if run("catalog") {
        ran_any = true;
        // Keep the all-experiments sweep fast: the catalog's own
        // replication defaults apply only when asked for explicitly.
        let catalog_reps = if exp == "catalog" { reps } else { 1 };
        let kernel_shards = *shards.first().unwrap_or(&1);
        println!("== catalog: named scenario sweep (FACS, compiled surfaces) ==");
        println!("scenario,requests,cells,shards,acceptance%,dropping%,utilization,handoffs");
        let results = run_catalog(catalog_reps, kernel_shards);
        std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
            eprintln!("cannot create --out-dir `{out_dir}`: {e}");
            std::process::exit(1);
        });
        for result in &results {
            println!(
                "{},{},{},{},{:.2},{:.2},{:.4},{}",
                result.name,
                result.config.requests,
                result.config.grid().len(),
                result.config.shards,
                result.metrics.acceptance_percentage(),
                result.metrics.dropping_percentage(),
                result.metrics.mean_utilization(),
                result.metrics.handoff_attempts,
            );
            let path = format!("{out_dir}/{}.json", result.name);
            std::fs::write(&path, result.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
        }
        println!("# wrote {} JSON artifacts to {out_dir}/", results.len());
        println!();
    }

    if run("throughput") {
        ran_any = true;
        if assert_speedup.is_some() && shards.len() < 2 {
            eprintln!("--assert-speedup needs at least two --shards values to compare");
            std::process::exit(2);
        }
        // Keep the all-experiments sweep fast: the full million users run
        // only when the smoke is requested explicitly.
        let requests = if exp == "throughput" { 1_000_000 } else { 100_000 };
        println!(
            "== throughput: {}-user kernel smoke (127 cells, compiled FACS, {} synthesis) ==",
            if requests == 1_000_000 { "1M" } else { "100k" },
            if use_streamed { "streamed" } else { "eager" },
        );
        println!("shards,wall_s,events/s,calls/s,acceptance%");
        // Best-of-two per shard count: a single sample would let one
        // noisy run on a shared host flip the CI gate either way.
        let mut walls: Vec<(usize, f64)> = Vec::new();
        let mut rates: Vec<(usize, f64)> = Vec::new();
        for &n in &shards {
            let mut config = stress_scenario(requests, n);
            config.workers = workers;
            // `--streamed` swaps in chunked synthesis (for memory A/B
            // runs); the digest is identical either way, only the spec
            // residency differs.
            config.streamed = use_streamed;
            let mut best = throughput_run(&config);
            let rerun = throughput_run(&config);
            if rerun.wall < best.wall {
                best = rerun;
            }
            let wall = best.wall.as_secs_f64();
            println!(
                "{n},{wall:.2},{:.0},{:.0},{:.2}",
                best.events_per_sec(),
                best.calls_per_sec(),
                best.metrics.acceptance_percentage(),
            );
            walls.push((n, wall));
            rates.push((n, best.events_per_sec()));
        }
        report_memory("throughput smoke");
        if let Some(path) = &baseline_path {
            compare_against_baseline(path, requests as u64, &rates, tolerance);
        }
        // Speedup is measured against the *smallest* shard count listed,
        // wherever it appears in --shards.
        let &(base_shards, base_wall) =
            walls.iter().min_by_key(|&&(n, _)| n).expect("--shards is non-empty");
        let best_speedup = walls
            .iter()
            .filter(|&&(n, _)| n != base_shards)
            .map(|&(_, wall)| base_wall / wall)
            .fold(f64::NAN, f64::max);
        if best_speedup.is_finite() {
            println!("# best speedup over the {base_shards}-shard baseline: {best_speedup:.2}x");
        }
        if let Some(required) = assert_speedup {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            if cores < 2 {
                // Shards can only run concurrently with cores to run on;
                // on a single-core host the gate would measure noise.
                eprintln!(
                    "skipping --assert-speedup {required:.2}: only {cores} core available \
                     (parallel shard scaling needs >= 2)"
                );
            } else {
                // Loaded 2-core CI runners cannot reliably hit the
                // full multi-core speedup; relax the bar and only warn
                // so the gate stops flaking where it cannot measure.
                let hard = cores >= 4;
                let required = if hard { required } else { required.min(1.3) };
                if !hard {
                    eprintln!(
                        "auto-relaxed --assert-speedup to {required:.2} (warn-only): \
                         {cores} cores available, a reliable gate needs >= 4"
                    );
                }
                if best_speedup.is_nan() || best_speedup < required {
                    let verdict =
                        format!("best speedup {best_speedup:.2}x < required {required:.2}x");
                    if hard {
                        eprintln!("throughput smoke FAILED: {verdict}");
                        std::process::exit(1);
                    }
                    eprintln!(
                        "throughput smoke WARNING (not failing on a {cores}-core runner): {verdict}"
                    );
                }
            }
        }
        println!();
    }

    // Trajectory recording runs only when selected explicitly: it
    // appends to a checked-in history file.
    if exp == "trajectory" {
        ran_any = true;
        let Some(label) = label else {
            eprintln!("--exp trajectory needs --label (what change is being measured?)");
            std::process::exit(2);
        };
        let existing = std::fs::read_to_string(&trajectory_path).unwrap_or_default();
        let Some(mut log) = TrajectoryLog::from_json(&existing) else {
            eprintln!(
                "{trajectory_path} exists but is not a trajectory log; refusing to overwrite"
            );
            std::process::exit(1);
        };
        println!(
            "== trajectory: kernel throughput matrix, appending `{label}` to {trajectory_path} =="
        );
        println!("requests,shards,wall_s,events/s,calls/s");
        let mut rows: Vec<(u64, usize, f64)> = Vec::new();
        for &requests in &sizes {
            for &n in &shards {
                // Best-of-two, same policy as the throughput smoke.
                let mut config = stress_scenario(requests, n);
                config.workers = workers;
                let mut best = throughput_run(&config);
                let rerun = throughput_run(&config);
                if rerun.wall < best.wall {
                    best = rerun;
                }
                println!(
                    "{requests},{n},{:.2},{:.0},{:.0}",
                    best.wall.as_secs_f64(),
                    best.events_per_sec(),
                    best.calls_per_sec(),
                );
                rows.push((requests as u64, n, best.events_per_sec()));
            }
        }
        if let Some(previous) = log.entries.last() {
            for &(requests, n, eps) in &rows {
                if let Some(reference) = previous.events_per_sec(requests, n) {
                    println!(
                        "# {requests} requests x {n} shards: {:.2}x of `{}` ({reference:.0} events/s)",
                        eps / reference.max(1e-9),
                        previous.label,
                    );
                }
            }
        }
        let peak_rss_mb = report_memory("trajectory sweep");
        log.entries.push(TrajectoryEntry {
            date: today_iso(),
            label,
            rows,
            peak_rss_mb,
            alloc_hwm_mb: alloc_high_water_bytes().map(mb),
        });
        std::fs::write(&trajectory_path, log.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {trajectory_path}: {e}");
            std::process::exit(1);
        });
        println!("# recorded entry {} in {trajectory_path}", log.entries.len());
        println!();
    }

    // Planet-scale streamed smoke: runs only when selected explicitly
    // (10M users by default — far too heavy for the `all` sweep).
    if exp == "planet" {
        ran_any = true;
        let entry = facs_cellsim::planet_scale(requests);
        let mut config = entry.config;
        config.workers = workers;
        let cells = config.grid().len();
        println!(
            "== planet: {requests}-user / {cells}-cell streamed smoke ({} shards) ==",
            config.shards
        );
        let report = planet_run(&config, region_cells);
        let m = &report.metrics;
        println!("wall_s,events/s,calls/s,acceptance%,dropping%,regions");
        println!(
            "{:.2},{:.0},{:.0},{:.2},{:.2},{}",
            report.wall.as_secs_f64(),
            m.total_events() as f64 / report.wall.as_secs_f64().max(1e-9),
            m.offered_new as f64 / report.wall.as_secs_f64().max(1e-9),
            m.acceptance_percentage(),
            m.dropping_percentage(),
            report.rollup.regions().count(),
        );
        let projection = eager_spec_projection_bytes(requests);
        println!(
            "# eager-path projection: {:.1} MB of UserSpec alone ({requests} x {} B)",
            mb(projection),
            projection / requests.max(1) as u64
        );
        if let Some(rss) = report_memory("planet streamed run") {
            let budget = 0.25 * mb(projection);
            let verdict = if rss < budget { "WITHIN" } else { "OUTSIDE" };
            let line = format!(
                "planet memory gate: peak RSS {rss:.1} MB vs 25% eager-projection budget \
                 {budget:.1} MB ({verdict} budget)"
            );
            println!("# {line}");
            step_summary(&line);
            if rss >= budget {
                // Warn-only: absolute RSS depends on allocator and host.
                eprintln!("warning: planet run exceeded the streamed-memory budget ({line})");
            }
        }
        std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
            eprintln!("cannot create --out-dir `{out_dir}`: {e}");
            std::process::exit(1);
        });
        let path = format!("{out_dir}/planet-rollup.json");
        std::fs::write(&path, report.rollup.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("# wrote hierarchical rollup to {path}");
        println!();
    }

    // Streamed-vs-eager digest identity on the stress scenario: the PR
    // CI safety net for the streaming synthesis path.
    if exp == "streamcheck" {
        ran_any = true;
        let requests = 100_000;
        println!("== streamcheck: {requests}-user streamed-vs-eager digest identity ==");
        println!("shards,digest,verdict");
        let build = facs_builder(facs::FacsConfig::compiled());
        let build: &facs_cellsim::ControllerBuilder = &build;
        for &n in &shards {
            let mut eager = stress_scenario(requests, n);
            eager.workers = workers;
            let streamed = facs_cellsim::ScenarioConfig { streamed: true, ..eager.clone() };
            let (_, eager_digest) = digest_run(&eager, build);
            let (_, streamed_digest) = digest_run(&streamed, build);
            if eager_digest == streamed_digest {
                println!("{n},{},identical", eager_digest.hex());
            } else {
                eprintln!(
                    "streamcheck FAILED at {n} shards: eager {} vs streamed {}",
                    eager_digest.hex(),
                    streamed_digest.hex()
                );
                step_summary(&format!(
                    "**streamcheck FAILED**: streamed digest diverged at {n} shards"
                ));
                std::process::exit(1);
            }
        }
        println!("streamcheck PASSED: streamed synthesis replays the eager trace bit-for-bit");
        step_summary(&format!(
            "**streamcheck**: {requests}-user streamed-vs-eager digests identical across \
             {:?} shards",
            shards
        ));
        println!();
    }

    // The validation modes run only when selected explicitly: they are
    // the CI safety net, not part of the paper-reproduction sweep.
    if exp == "validate" {
        ran_any = true;
        println!("== validate: {cases} fuzzed workloads (seed {fuzz_seed}) ==");
        println!(
            "cross-checks per case: invariants + digest identity on 1 vs the sampled \
             shard count (2-7) + exact-vs-compiled backends"
        );
        match run_validation(fuzz_seed, cases, |index, requests, kind| {
            if (index + 1) % 10 == 0 || index + 1 == cases {
                println!("  case {:>4}/{cases} ok ({requests} requests, {kind:?})", index + 1);
            }
        }) {
            Ok(summary) => {
                println!(
                    "validate PASSED: {} cases clean ({} backend-identical, {} within tolerance)",
                    summary.cases(),
                    summary.identical,
                    summary.within_tolerance
                );
                step_summary(&format!(
                    "**validate**: {} fuzzed workloads clean (seed {fuzz_seed}; \
                     {} backend-identical, {} within tolerance)",
                    summary.cases(),
                    summary.identical,
                    summary.within_tolerance
                ));
            }
            Err(failure) => {
                eprintln!("{failure}");
                step_summary(&format!("**validate FAILED**\n```\n{failure}\n```"));
                std::process::exit(1);
            }
        }
        println!();
    }

    if exp == "golden" {
        ran_any = true;
        println!("== golden: catalog trace digests per controller variant ==");
        println!("scenario,variant,digest");
        let fresh = golden_digests();
        for scenario in &fresh {
            for (variant, digest) in &scenario.digests {
                println!("{},{variant},{digest}", scenario.scenario);
            }
        }
        if bless {
            std::fs::create_dir_all(&golden_dir).unwrap_or_else(|e| {
                eprintln!("cannot create --golden-dir `{golden_dir}`: {e}");
                std::process::exit(1);
            });
            for scenario in &fresh {
                let path = format!("{golden_dir}/{}.json", scenario.scenario);
                std::fs::write(&path, scenario.to_json()).unwrap_or_else(|e| {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                });
            }
            println!("# blessed {} golden files in {golden_dir}/", fresh.len());
        }
        if check {
            let diffs = golden_diff(&golden_dir, &fresh);
            if diffs.is_empty() {
                println!("golden check PASSED: all digests match {golden_dir}/");
                step_summary(&format!(
                    "**golden**: {} scenarios x {} variants match the checked-in digests",
                    fresh.len(),
                    fresh.first().map_or(0, |s| s.digests.len())
                ));
            } else {
                eprintln!("golden check FAILED against {golden_dir}/:");
                for diff in &diffs {
                    eprintln!("  {diff}");
                }
                eprintln!(
                    "if the behaviour change is intentional, regenerate with \
                     `--exp golden --bless` and commit the new baselines"
                );
                step_summary(&format!(
                    "**golden FAILED**: {} digest mismatches (see job log)",
                    diffs.len()
                ));
                std::process::exit(1);
            }
        }
        if !bless && !check {
            println!("# (dry run: pass --check to diff against {golden_dir}/, --bless to rewrite)");
        }
        println!();
    }

    if !ran_any {
        eprintln!("unknown experiment `{exp}` (try --list)");
        std::process::exit(2);
    }
}

/// Compares a throughput run against the checked-in baseline and
/// prints (and records in the job summary) a trajectory line per shard
/// count. Informational: absolute events/s depends on runner hardware,
/// so drifting outside the band warns without failing the job.
fn compare_against_baseline(path: &str, requests: u64, rates: &[(usize, f64)], tolerance: f64) {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read --baseline {path}: {e}");
            return;
        }
    };
    let Some(baseline) = ThroughputBaseline::from_json(&text) else {
        eprintln!("--baseline {path} is not a valid throughput baseline");
        return;
    };
    if baseline.requests != requests {
        println!(
            "# baseline {path} was recorded at {} requests (this run: {requests}); skipping",
            baseline.requests
        );
        return;
    }
    let (lo, hi) = (1.0 - tolerance, 1.0 + tolerance);
    for &(shards, events_per_sec) in rates {
        let Some(reference) = baseline.events_per_sec(shards) else {
            println!("# no baseline entry for {shards} shards in {path}");
            continue;
        };
        let ratio = events_per_sec / reference.max(1e-9);
        let verdict = if (lo..=hi).contains(&ratio) { "within band" } else { "OUTSIDE band" };
        let line = format!(
            "throughput trajectory: {shards} shards at {events_per_sec:.0} events/s = \
             {ratio:.2}x of baseline {reference:.0} ({verdict} {lo:.2}x-{hi:.2}x)"
        );
        println!("# {line}");
        step_summary(&line);
        if !(lo..=hi).contains(&ratio) {
            eprintln!(
                "warning: {shards}-shard throughput drifted outside the baseline band \
                 (informational; runner hardware varies)"
            );
        }
    }
}

/// Today's UTC date as `YYYY-MM-DD` (no chrono in the tree; this is
/// the standard days-to-civil-date conversion).
fn today_iso() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}")
}

fn print_series(series: &[facs_cellsim::Series], y_min: f64, y_max: f64) {
    for s in series {
        print!("{}", s.to_csv());
    }
    println!("{}", ascii_chart(series, y_min, y_max));
}
