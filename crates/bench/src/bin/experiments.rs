//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```sh
//! experiments                 # run everything at default replications
//! experiments --exp fig7      # one experiment
//! experiments --exp fig10 --reps 6
//! experiments --list
//! ```
//!
//! Output is CSV (stdout) plus an ASCII rendition of each figure;
//! EXPERIMENTS.md records a snapshot of these numbers next to the
//! paper's.

use facs_bench::*;

const EXPERIMENTS: &[&str] = &[
    "tab1",
    "tab2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "qos",
    "ablation-defuzz",
    "ablation-tnorm",
    "ablation-threshold",
    "handoff",
    "backend",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_owned();
    let mut reps: u32 = 3;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" if i + 1 < args.len() => {
                exp = args[i + 1].clone();
                i += 2;
            }
            "--reps" if i + 1 < args.len() => {
                reps = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --reps value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --list)");
                std::process::exit(2);
            }
        }
    }

    let run = |name: &str| exp == "all" || exp == name;
    let mut ran_any = false;

    if run("tab1") {
        ran_any = true;
        println!("== tab1: FRB1 (paper Table 1, {} rules) ==", table_sizes().0);
        for rule in tab1_rules() {
            println!("{rule}");
        }
        println!();
    }
    if run("tab2") {
        ran_any = true;
        println!("== tab2: FRB2 (paper Table 2, {} rules) ==", table_sizes().1);
        for rule in tab2_rules() {
            println!("{rule}");
        }
        println!();
    }
    if run("fig5") {
        ran_any = true;
        println!("== fig5: FLC1 membership functions (CSV) ==");
        print!("{}", fig5_membership_csv());
        println!();
    }
    if run("fig6") {
        ran_any = true;
        println!("== fig6: FLC2 membership functions (CSV) ==");
        print!("{}", fig6_membership_csv());
        println!();
    }
    if run("fig7") {
        ran_any = true;
        println!("== fig7: acceptance vs requests, by speed ==");
        let series = fig7_speed(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig8") {
        ran_any = true;
        println!("== fig8: acceptance vs requests, by angle ==");
        let series = fig8_angle(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig9") {
        ran_any = true;
        println!("== fig9: acceptance vs requests, by distance ==");
        let series = fig9_distance(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig10") {
        ran_any = true;
        println!("== fig10: FACS vs SCC (7-cell cluster) ==");
        let series = fig10_facs_vs_scc(reps);
        print_series(&series, 60.0, 100.0);
    }
    if run("qos") {
        ran_any = true;
        println!("== qos: handoff dropping percentage (fig10 companion) ==");
        let series = qos_dropping(reps);
        print_series(&series, 0.0, 30.0);
    }
    if run("ablation-defuzz") {
        ran_any = true;
        println!("== ablation-defuzz: defuzzifier choice ==");
        print_series(&ablation_defuzz(reps), 40.0, 100.0);
    }
    if run("ablation-tnorm") {
        ran_any = true;
        println!("== ablation-tnorm: min vs product conjunction ==");
        print_series(&ablation_tnorm(reps), 40.0, 100.0);
    }
    if run("ablation-threshold") {
        ran_any = true;
        println!("== ablation-threshold: acceptance-gate sweep ==");
        print_series(&ablation_threshold(reps), 20.0, 100.0);
    }
    if run("handoff") {
        ran_any = true;
        println!("== handoff: the paper's future-work extension (bias sweep) ==");
        let series = handoff_extension(reps);
        for s in &series {
            print!("{}", s.to_csv());
        }
        println!();
    }

    if run("backend") {
        ran_any = true;
        const GRID_STEPS: usize = 13;
        println!("== backend: exact vs compiled decision agreement ==");
        println!("lattice,grid_steps,points,agree%,max_score_divergence");
        for points_per_axis in [17usize, 33, 65] {
            let a = backend_agreement(points_per_axis, GRID_STEPS);
            println!(
                "{points_per_axis},{GRID_STEPS},{},{:.3},{:.5}",
                a.points,
                a.agreement_percentage(),
                a.max_score_divergence
            );
        }
        println!();
    }

    if !ran_any {
        eprintln!("unknown experiment `{exp}` (try --list)");
        std::process::exit(2);
    }
}

fn print_series(series: &[facs_cellsim::Series], y_min: f64, y_max: f64) {
    for s in series {
        print!("{}", s.to_csv());
    }
    println!("{}", ascii_chart(series, y_min, y_max));
}
