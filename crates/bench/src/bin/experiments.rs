//! Regenerates every table and figure of the paper's evaluation, plus
//! the scenario-catalog and kernel-throughput runs that go beyond it.
//!
//! ```sh
//! experiments                 # run everything at default replications
//! experiments --exp fig7      # one experiment
//! experiments --exp fig10 --reps 6
//! experiments --exp catalog --out-dir results/catalog   # JSON per scenario
//! experiments --exp throughput --shards 1,4             # 1M-user smoke
//! experiments --list
//! ```
//!
//! Output is CSV (stdout) plus an ASCII rendition of each figure;
//! `catalog` additionally writes one machine-readable JSON file per
//! scenario. EXPERIMENTS.md records a snapshot of these numbers next to
//! the paper's.

use facs_bench::*;

const EXPERIMENTS: &[&str] = &[
    "tab1",
    "tab2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "qos",
    "ablation-defuzz",
    "ablation-tnorm",
    "ablation-threshold",
    "handoff",
    "backend",
    "catalog",
    "throughput",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exp = "all".to_owned();
    let mut reps: u32 = 3;
    let mut out_dir = "results/catalog".to_owned();
    let mut shards: Vec<usize> = vec![1, 4];
    let mut assert_speedup: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" if i + 1 < args.len() => {
                exp = args[i + 1].clone();
                i += 2;
            }
            "--reps" if i + 1 < args.len() => {
                reps = args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --reps value `{}`", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out-dir" if i + 1 < args.len() => {
                out_dir = args[i + 1].clone();
                i += 2;
            }
            "--shards" if i + 1 < args.len() => {
                shards = args[i + 1]
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid --shards value `{}`", args[i + 1]);
                            std::process::exit(2);
                        })
                    })
                    .collect();
                let mut seen = shards.clone();
                seen.sort_unstable();
                seen.dedup();
                if shards.contains(&0) || seen.len() != shards.len() {
                    eprintln!("--shards values must be unique and >= 1, got `{}`", args[i + 1]);
                    std::process::exit(2);
                }
                i += 2;
            }
            "--assert-speedup" if i + 1 < args.len() => {
                assert_speedup = Some(args[i + 1].parse().unwrap_or_else(|_| {
                    eprintln!("invalid --assert-speedup value `{}`", args[i + 1]);
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--list" => {
                for e in EXPERIMENTS {
                    println!("{e}");
                }
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --list)");
                std::process::exit(2);
            }
        }
    }

    let run = |name: &str| exp == "all" || exp == name;
    let mut ran_any = false;

    if run("tab1") {
        ran_any = true;
        println!("== tab1: FRB1 (paper Table 1, {} rules) ==", table_sizes().0);
        for rule in tab1_rules() {
            println!("{rule}");
        }
        println!();
    }
    if run("tab2") {
        ran_any = true;
        println!("== tab2: FRB2 (paper Table 2, {} rules) ==", table_sizes().1);
        for rule in tab2_rules() {
            println!("{rule}");
        }
        println!();
    }
    if run("fig5") {
        ran_any = true;
        println!("== fig5: FLC1 membership functions (CSV) ==");
        print!("{}", fig5_membership_csv());
        println!();
    }
    if run("fig6") {
        ran_any = true;
        println!("== fig6: FLC2 membership functions (CSV) ==");
        print!("{}", fig6_membership_csv());
        println!();
    }
    if run("fig7") {
        ran_any = true;
        println!("== fig7: acceptance vs requests, by speed ==");
        let series = fig7_speed(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig8") {
        ran_any = true;
        println!("== fig8: acceptance vs requests, by angle ==");
        let series = fig8_angle(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig9") {
        ran_any = true;
        println!("== fig9: acceptance vs requests, by distance ==");
        let series = fig9_distance(reps);
        print_series(&series, 40.0, 100.0);
    }
    if run("fig10") {
        ran_any = true;
        println!("== fig10: FACS vs SCC (7-cell cluster) ==");
        let series = fig10_facs_vs_scc(reps);
        print_series(&series, 60.0, 100.0);
    }
    if run("qos") {
        ran_any = true;
        println!("== qos: handoff dropping percentage (fig10 companion) ==");
        let series = qos_dropping(reps);
        print_series(&series, 0.0, 30.0);
    }
    if run("ablation-defuzz") {
        ran_any = true;
        println!("== ablation-defuzz: defuzzifier choice ==");
        print_series(&ablation_defuzz(reps), 40.0, 100.0);
    }
    if run("ablation-tnorm") {
        ran_any = true;
        println!("== ablation-tnorm: min vs product conjunction ==");
        print_series(&ablation_tnorm(reps), 40.0, 100.0);
    }
    if run("ablation-threshold") {
        ran_any = true;
        println!("== ablation-threshold: acceptance-gate sweep ==");
        print_series(&ablation_threshold(reps), 20.0, 100.0);
    }
    if run("handoff") {
        ran_any = true;
        println!("== handoff: the paper's future-work extension (bias sweep) ==");
        let series = handoff_extension(reps);
        for s in &series {
            print!("{}", s.to_csv());
        }
        println!();
    }

    if run("backend") {
        ran_any = true;
        const GRID_STEPS: usize = 13;
        println!("== backend: exact vs compiled decision agreement ==");
        println!("lattice,grid_steps,points,agree%,max_score_divergence");
        for points_per_axis in [17usize, 33, 65] {
            let a = backend_agreement(points_per_axis, GRID_STEPS);
            println!(
                "{points_per_axis},{GRID_STEPS},{},{:.3},{:.5}",
                a.points,
                a.agreement_percentage(),
                a.max_score_divergence
            );
        }
        println!();
    }

    if run("catalog") {
        ran_any = true;
        // Keep the all-experiments sweep fast: the catalog's own
        // replication defaults apply only when asked for explicitly.
        let catalog_reps = if exp == "catalog" { reps } else { 1 };
        let kernel_shards = *shards.first().unwrap_or(&1);
        println!("== catalog: named scenario sweep (FACS, compiled surfaces) ==");
        println!("scenario,requests,cells,shards,acceptance%,dropping%,utilization,handoffs");
        let results = run_catalog(catalog_reps, kernel_shards);
        std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
            eprintln!("cannot create --out-dir `{out_dir}`: {e}");
            std::process::exit(1);
        });
        for result in &results {
            println!(
                "{},{},{},{},{:.2},{:.2},{:.4},{}",
                result.name,
                result.config.requests,
                result.config.grid().len(),
                result.config.shards,
                result.metrics.acceptance_percentage(),
                result.metrics.dropping_percentage(),
                result.metrics.mean_utilization(),
                result.metrics.handoff_attempts,
            );
            let path = format!("{out_dir}/{}.json", result.name);
            std::fs::write(&path, result.to_json()).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
        }
        println!("# wrote {} JSON artifacts to {out_dir}/", results.len());
        println!();
    }

    if run("throughput") {
        ran_any = true;
        if assert_speedup.is_some() && shards.len() < 2 {
            eprintln!("--assert-speedup needs at least two --shards values to compare");
            std::process::exit(2);
        }
        // Keep the all-experiments sweep fast: the full million users run
        // only when the smoke is requested explicitly.
        let requests = if exp == "throughput" { 1_000_000 } else { 100_000 };
        println!(
            "== throughput: {}-user kernel smoke (127 cells, compiled FACS) ==",
            if requests == 1_000_000 { "1M" } else { "100k" }
        );
        println!("shards,wall_s,events/s,calls/s,acceptance%");
        // Best-of-two per shard count: a single sample would let one
        // noisy run on a shared host flip the CI gate either way.
        let mut walls: Vec<(usize, f64)> = Vec::new();
        for &n in &shards {
            let config = stress_scenario(requests, n);
            let mut best = throughput_run(&config);
            let rerun = throughput_run(&config);
            if rerun.wall < best.wall {
                best = rerun;
            }
            let wall = best.wall.as_secs_f64();
            println!(
                "{n},{wall:.2},{:.0},{:.0},{:.2}",
                best.events_per_sec(),
                best.calls_per_sec(),
                best.metrics.acceptance_percentage(),
            );
            walls.push((n, wall));
        }
        // Speedup is measured against the *smallest* shard count listed,
        // wherever it appears in --shards.
        let &(base_shards, base_wall) =
            walls.iter().min_by_key(|&&(n, _)| n).expect("--shards is non-empty");
        let best_speedup = walls
            .iter()
            .filter(|&&(n, _)| n != base_shards)
            .map(|&(_, wall)| base_wall / wall)
            .fold(f64::NAN, f64::max);
        if best_speedup.is_finite() {
            println!("# best speedup over the {base_shards}-shard baseline: {best_speedup:.2}x");
        }
        if let Some(required) = assert_speedup {
            let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
            if cores < 2 {
                // Shards can only run concurrently with cores to run on;
                // on a single-core host the gate would measure noise.
                eprintln!(
                    "skipping --assert-speedup {required:.2}: only {cores} core available \
                     (parallel shard scaling needs >= 2)"
                );
            } else if best_speedup.is_nan() || best_speedup < required {
                eprintln!(
                    "throughput smoke FAILED: best speedup {best_speedup:.2}x < required {required:.2}x"
                );
                std::process::exit(1);
            }
        }
        println!();
    }

    if !ran_any {
        eprintln!("unknown experiment `{exp}` (try --list)");
        std::process::exit(2);
    }
}

fn print_series(series: &[facs_cellsim::Series], y_min: f64, y_max: f64) {
    for s in series {
        print!("{}", s.to_csv());
    }
    println!("{}", ascii_chart(series, y_min, y_max));
}
