//! # facs-bench — experiment harness shared code
//!
//! The [`experiments`] module maps every figure and
//! table of the paper onto a runnable experiment; the `experiments` binary
//! and the Criterion benches are thin wrappers over it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod validate;

pub use experiments::*;
pub use validate::*;
