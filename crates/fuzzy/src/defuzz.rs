//! Defuzzification strategies: collapsing an aggregated fuzzy output set to
//! a single crisp value.

use serde::{Deserialize, Serialize};

use crate::error::{FuzzyError, Result};
use crate::set::SampledSet;

/// Default number of integration samples used by area-based defuzzifiers.
///
/// 501 points over a unit universe gives a 0.002 grid — far below the
/// granularity at which admission decisions change, while keeping a single
/// inference under a microsecond-scale budget.
pub const DEFAULT_RESOLUTION: usize = 501;

/// A defuzzification strategy.
///
/// `Centroid` is the paper-faithful default; the others exist both for
/// general use and for the ablation study in the benchmark suite.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Defuzzifier {
    /// Center of gravity of the aggregated set (the Mamdani classic).
    #[default]
    Centroid,
    /// Vertical line splitting the aggregated area in half.
    Bisector,
    /// Mean of the coordinates attaining maximum membership.
    MeanOfMaxima,
    /// Smallest coordinate attaining maximum membership.
    SmallestOfMaxima,
    /// Largest coordinate attaining maximum membership.
    LargestOfMaxima,
    /// Weighted average of per-rule consequent representative values,
    /// weighted by firing strength. Skips building the aggregated surface
    /// entirely — the fastest option, at some fidelity cost.
    WeightedAverage,
}

impl Defuzzifier {
    /// `true` if the strategy needs the sampled aggregation surface;
    /// `false` for [`Defuzzifier::WeightedAverage`], which works from rule
    /// activations alone.
    #[must_use]
    pub fn needs_surface(self) -> bool {
        !matches!(self, Defuzzifier::WeightedAverage)
    }

    /// Defuzzifies an aggregated surface.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::NoRuleFired`] (with a placeholder variable
    /// name filled in by the engine) when the set is empty, i.e. no rule
    /// contributed any mass.
    pub fn crisp(self, set: &SampledSet) -> Result<f64> {
        let value = match self {
            Defuzzifier::Centroid => set.centroid(),
            Defuzzifier::Bisector => set.bisector(),
            Defuzzifier::MeanOfMaxima => set.mean_of_maxima(),
            Defuzzifier::SmallestOfMaxima => set.smallest_of_maxima(),
            Defuzzifier::LargestOfMaxima => set.largest_of_maxima(),
            Defuzzifier::WeightedAverage => {
                return Err(FuzzyError::InvalidMembership {
                    reason: "weighted-average defuzzifier works from activations, \
                             not an aggregation surface"
                        .into(),
                })
            }
        };
        value.ok_or(FuzzyError::NoRuleFired { variable: String::new() })
    }

    /// Defuzzifies from `(strength, representative)` rule activations —
    /// only valid for [`Defuzzifier::WeightedAverage`].
    ///
    /// # Errors
    ///
    /// [`FuzzyError::NoRuleFired`] when every strength is zero.
    pub fn crisp_from_activations(self, activations: &[(f64, f64)]) -> Result<f64> {
        debug_assert!(matches!(self, Defuzzifier::WeightedAverage));
        let mut num = 0.0;
        let mut den = 0.0;
        for &(strength, representative) in activations {
            let s = strength.clamp(0.0, 1.0);
            num += s * representative;
            den += s;
        }
        if den <= f64::EPSILON {
            Err(FuzzyError::NoRuleFired { variable: String::new() })
        } else {
            Ok(num / den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> SampledSet {
        SampledSet::from_fn(0.0, 10.0, 1001, |x| (1.0 - (x - 4.0).abs() / 2.0).max(0.0)).unwrap()
    }

    #[test]
    fn centroid_of_symmetric_triangle() {
        let c = Defuzzifier::Centroid.crisp(&triangle()).unwrap();
        assert!((c - 4.0).abs() < 1e-6);
    }

    #[test]
    fn bisector_of_symmetric_triangle() {
        let c = Defuzzifier::Bisector.crisp(&triangle()).unwrap();
        assert!((c - 4.0).abs() < 1e-2);
    }

    #[test]
    fn maxima_strategies_on_plateau() {
        let set =
            SampledSet::from_fn(
                0.0,
                1.0,
                1001,
                |x| {
                    if (0.2..=0.4).contains(&x) {
                        0.7
                    } else {
                        0.0
                    }
                },
            )
            .unwrap();
        let som = Defuzzifier::SmallestOfMaxima.crisp(&set).unwrap();
        let lom = Defuzzifier::LargestOfMaxima.crisp(&set).unwrap();
        let mom = Defuzzifier::MeanOfMaxima.crisp(&set).unwrap();
        assert!((som - 0.2).abs() < 1e-3);
        assert!((lom - 0.4).abs() < 1e-3);
        assert!((mom - 0.3).abs() < 1e-3);
        assert!(som <= mom && mom <= lom);
    }

    #[test]
    fn empty_surface_is_no_rule_fired() {
        let set = SampledSet::empty(0.0, 1.0, 101).unwrap();
        for d in [
            Defuzzifier::Centroid,
            Defuzzifier::Bisector,
            Defuzzifier::MeanOfMaxima,
            Defuzzifier::SmallestOfMaxima,
            Defuzzifier::LargestOfMaxima,
        ] {
            assert!(matches!(d.crisp(&set), Err(FuzzyError::NoRuleFired { .. })), "{d:?}");
        }
    }

    #[test]
    fn weighted_average_from_activations() {
        let v = Defuzzifier::WeightedAverage
            .crisp_from_activations(&[(0.5, 2.0), (0.25, 8.0)])
            .unwrap();
        // (0.5*2 + 0.25*8) / 0.75 = 3/0.75 = 4
        assert!((v - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_rejects_all_zero() {
        let err = Defuzzifier::WeightedAverage.crisp_from_activations(&[(0.0, 2.0)]);
        assert!(matches!(err, Err(FuzzyError::NoRuleFired { .. })));
    }

    #[test]
    fn weighted_average_rejects_surface_input() {
        assert!(Defuzzifier::WeightedAverage.crisp(&triangle()).is_err());
    }

    #[test]
    fn needs_surface_flags() {
        assert!(Defuzzifier::Centroid.needs_surface());
        assert!(!Defuzzifier::WeightedAverage.needs_surface());
    }

    #[test]
    fn default_is_centroid() {
        assert_eq!(Defuzzifier::default(), Defuzzifier::Centroid);
    }
}
