//! # facs-fuzzy — a Mamdani fuzzy-inference engine
//!
//! This crate implements the Fuzzy Logic Controller (FLC) structure of
//! Barolli et al., *"A Fuzzy-based Call Admission Control System for
//! Wireless Cellular Networks"* (ICDCSW 2007), Fig. 2: a **fuzzifier**, an
//! **inference engine**, a **fuzzy rule base**, and a **defuzzifier** —
//! generalized into a reusable library.
//!
//! It is self-contained (no fuzzy-logic dependency exists in the ecosystem
//! at the quality bar this project needs) and deterministic: the same
//! inputs always produce the same outputs, which the simulation substrate
//! relies on.
//!
//! ## Quick tour
//!
//! ```
//! use facs_fuzzy::{Engine, MembershipFunction, Variable, parse_rules};
//!
//! # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
//! // 1. Declare linguistic variables (paper Fig. 5a: user speed).
//! let speed = Variable::builder("speed", 0.0, 120.0)
//!     .term("slow", MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0)?)
//!     .term("middle", MembershipFunction::triangular(30.0, 15.0, 30.0)?)
//!     .term("fast", MembershipFunction::trapezoidal(60.0, 120.0, 30.0, 0.0)?)
//!     .build()?;
//! let risk = Variable::builder("risk", 0.0, 1.0)
//!     .uniform_partition("r", 3)
//!     .build()?;
//!
//! // 2. Write rules — programmatically or in the textual DSL.
//! let rules = parse_rules(
//!     "IF speed IS slow   THEN risk IS r3\n\
//!      IF speed IS middle THEN risk IS r2\n\
//!      IF speed IS fast   THEN risk IS r1\n",
//! )?;
//!
//! // 3. Compile and evaluate.
//! let engine = Engine::builder().input(speed).output(risk).rules(rules).build()?;
//! let risk_at_90 = engine.evaluate_single(&[("speed", 90.0)])?;
//! assert!(risk_at_90 < 0.25);
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! * [`membership`] — the paper's triangular/trapezoidal shapes plus
//!   gaussian, bell, sigmoid, S/Z and singleton.
//! * [`term`] / [`variable`] — linguistic terms and variables.
//! * [`norms`] — T-norms, S-norms and implication operators.
//! * [`rule`] — rules, builders and rule bases.
//! * [`dsl`] — the `IF x IS a AND ... THEN y IS b` text format.
//! * [`set`] — sampled fuzzy sets (the aggregation surface).
//! * [`defuzz`] — centroid, bisector, maxima and weighted-average
//!   defuzzifiers.
//! * [`engine`] — the compiled controller.
//! * [`backend`] — pluggable inference backends: exact Mamdani per
//!   query, or a precomputed decision surface answered by multilinear
//!   interpolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod defuzz;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod membership;
pub mod norms;
pub mod rule;
pub mod set;
pub mod term;
pub mod variable;

pub use backend::{BackendKind, CompiledSurface, InferenceBackend, DEFAULT_LATTICE_POINTS};
pub use defuzz::{Defuzzifier, DEFAULT_RESOLUTION};
pub use dsl::{parse_rule, parse_rules};
pub use engine::{Engine, EngineBuilder, InferenceConfig, Outcome, OutputValue};
pub use error::{FuzzyError, Result};
pub use membership::MembershipFunction;
pub use norms::{Implication, SNorm, TNorm};
pub use rule::{Clause, Connective, Consequent, Rule, RuleBase, RuleBuilder};
pub use set::SampledSet;
pub use term::Term;
pub use variable::{Variable, VariableBuilder};

/// Commonly used items, for glob import in applications and examples.
pub mod prelude {
    pub use crate::backend::{BackendKind, CompiledSurface, InferenceBackend};
    pub use crate::defuzz::Defuzzifier;
    pub use crate::dsl::{parse_rule, parse_rules};
    pub use crate::engine::{Engine, InferenceConfig, Outcome};
    pub use crate::error::{FuzzyError, Result};
    pub use crate::membership::MembershipFunction;
    pub use crate::norms::{Implication, SNorm, TNorm};
    pub use crate::rule::{Rule, RuleBase};
    pub use crate::variable::Variable;
}
