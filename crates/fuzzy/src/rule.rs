//! Fuzzy rules and rule bases.
//!
//! A rule has the paper's canonical shape:
//!
//! ```text
//! IF "conditions" THEN "control action"
//! ```
//!
//! e.g. FRB1 rule 6: `IF s IS sl AND a IS st AND d IS n THEN cv IS cv9`.

use serde::{Deserialize, Serialize};

use crate::error::{FuzzyError, Result};

/// How the antecedent clauses of one rule are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Connective {
    /// All clauses must hold (combined with the engine's T-norm).
    #[default]
    And,
    /// Any clause may hold (combined with the engine's S-norm).
    Or,
}

/// One antecedent condition: `variable IS term` or `variable IS NOT term`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Clause {
    /// Input variable name (lowercased).
    variable: String,
    /// Term name within that variable (lowercased).
    term: String,
    /// Whether the clause is negated (`IS NOT`).
    negated: bool,
}

impl Clause {
    /// Creates the positive clause `variable IS term`.
    #[must_use]
    pub fn is(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Self {
            variable: variable.into().to_ascii_lowercase(),
            term: term.into().to_ascii_lowercase(),
            negated: false,
        }
    }

    /// Creates the negated clause `variable IS NOT term`.
    #[must_use]
    pub fn is_not(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Self {
            variable: variable.into().to_ascii_lowercase(),
            term: term.into().to_ascii_lowercase(),
            negated: true,
        }
    }

    /// The referenced variable name.
    #[must_use]
    pub fn variable(&self) -> &str {
        &self.variable
    }

    /// The referenced term name.
    #[must_use]
    pub fn term(&self) -> &str {
        &self.term
    }

    /// Whether the clause is negated.
    #[must_use]
    pub fn negated(&self) -> bool {
        self.negated
    }

    /// Applies the (optional) negation to a raw membership degree.
    #[must_use]
    pub fn shape(&self, mu: f64) -> f64 {
        if self.negated {
            1.0 - mu.clamp(0.0, 1.0)
        } else {
            mu.clamp(0.0, 1.0)
        }
    }
}

/// A consequent assignment: `variable IS term` on the THEN side.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Consequent {
    variable: String,
    term: String,
}

impl Consequent {
    /// Creates the consequent `variable IS term`.
    #[must_use]
    pub fn assign(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Self {
            variable: variable.into().to_ascii_lowercase(),
            term: term.into().to_ascii_lowercase(),
        }
    }

    /// The output variable name.
    #[must_use]
    pub fn variable(&self) -> &str {
        &self.variable
    }

    /// The output term name.
    #[must_use]
    pub fn term(&self) -> &str {
        &self.term
    }
}

/// A complete fuzzy rule: antecedent clauses, a connective, one or more
/// consequents, and a weight in `[0, 1]`.
///
/// Construct with [`Rule::when`]:
///
/// ```
/// use facs_fuzzy::Rule;
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let rule = Rule::when("speed", "slow")
///     .and("angle", "st")
///     .and("dist", "n")
///     .then("cv", "cv9")
///     .build()?;
/// assert_eq!(rule.clauses().len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    label: Option<String>,
    clauses: Vec<Clause>,
    connective: Connective,
    consequents: Vec<Consequent>,
    weight: f64,
}

impl Rule {
    /// Starts a rule whose first clause is `variable IS term`.
    #[must_use]
    pub fn when(variable: impl Into<String>, term: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            label: None,
            clauses: vec![Clause::is(variable, term)],
            connective: None,
            consequents: Vec::new(),
            weight: 1.0,
            error: None,
        }
    }

    /// Starts a rule whose first clause is `variable IS NOT term`.
    #[must_use]
    pub fn when_not(variable: impl Into<String>, term: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            label: None,
            clauses: vec![Clause::is_not(variable, term)],
            connective: None,
            consequents: Vec::new(),
            weight: 1.0,
            error: None,
        }
    }

    /// Optional human-readable label (e.g. the paper's rule number).
    #[must_use]
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The antecedent clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The antecedent connective.
    #[must_use]
    pub fn connective(&self) -> Connective {
        self.connective
    }

    /// The consequents.
    #[must_use]
    pub fn consequents(&self) -> &[Consequent] {
        &self.consequents
    }

    /// The rule weight in `[0, 1]`.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl std::fmt::Display for Rule {
    /// Formats the rule in the canonical DSL syntax accepted by
    /// [`parse_rule`](crate::dsl::parse_rule), e.g.
    /// `RULE r6: IF s IS sl AND a IS st THEN cv IS cv9 WITH 0.75`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(label) = &self.label {
            write!(f, "RULE {label}: ")?;
        }
        write!(f, "IF ")?;
        let joiner = match self.connective {
            Connective::And => " AND ",
            Connective::Or => " OR ",
        };
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, "{joiner}")?;
            }
            if clause.negated {
                write!(f, "{} IS NOT {}", clause.variable, clause.term)?;
            } else {
                write!(f, "{} IS {}", clause.variable, clause.term)?;
            }
        }
        write!(f, " THEN ")?;
        for (i, consequent) in self.consequents.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{} IS {}", consequent.variable, consequent.term)?;
        }
        if self.weight != 1.0 {
            write!(f, " WITH {}", self.weight)?;
        }
        Ok(())
    }
}

/// Builder for [`Rule`].
#[derive(Debug, Clone)]
pub struct RuleBuilder {
    label: Option<String>,
    clauses: Vec<Clause>,
    connective: Option<Connective>,
    consequents: Vec<Consequent>,
    weight: f64,
    error: Option<FuzzyError>,
}

impl RuleBuilder {
    /// Adds an `AND variable IS term` clause.
    ///
    /// Mixing `and` and `or` within one rule is rejected at [`build`] time —
    /// without parentheses the semantics would be ambiguous.
    ///
    /// [`build`]: RuleBuilder::build
    #[must_use]
    pub fn and(mut self, variable: impl Into<String>, term: impl Into<String>) -> Self {
        self.push(Connective::And, Clause::is(variable, term));
        self
    }

    /// Adds an `AND variable IS NOT term` clause.
    #[must_use]
    pub fn and_not(mut self, variable: impl Into<String>, term: impl Into<String>) -> Self {
        self.push(Connective::And, Clause::is_not(variable, term));
        self
    }

    /// Adds an `OR variable IS term` clause.
    #[must_use]
    pub fn or(mut self, variable: impl Into<String>, term: impl Into<String>) -> Self {
        self.push(Connective::Or, Clause::is(variable, term));
        self
    }

    /// Adds an `OR variable IS NOT term` clause.
    #[must_use]
    pub fn or_not(mut self, variable: impl Into<String>, term: impl Into<String>) -> Self {
        self.push(Connective::Or, Clause::is_not(variable, term));
        self
    }

    fn push(&mut self, connective: Connective, clause: Clause) {
        match self.connective {
            None => self.connective = Some(connective),
            Some(existing) if existing != connective => {
                self.error = Some(FuzzyError::InvalidMembership {
                    reason: "cannot mix AND and OR within one rule".into(),
                });
            }
            Some(_) => {}
        }
        self.clauses.push(clause);
    }

    /// Adds the consequent `variable IS term`. May be called multiple times
    /// for rules driving several outputs.
    #[must_use]
    pub fn then(mut self, variable: impl Into<String>, term: impl Into<String>) -> Self {
        self.consequents.push(Consequent::assign(variable, term));
        self
    }

    /// Sets the rule weight (certainty factor) in `[0, 1]`; default `1.0`.
    #[must_use]
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Attaches a label, typically the paper's rule number.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Finishes the rule.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::InvalidWeight`] — weight outside `[0, 1]`;
    /// * [`FuzzyError::InvalidMembership`] — mixed connectives or no
    ///   consequent.
    pub fn build(self) -> Result<Rule> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !(0.0..=1.0).contains(&self.weight) || !self.weight.is_finite() {
            return Err(FuzzyError::InvalidWeight { weight: self.weight });
        }
        if self.consequents.is_empty() {
            return Err(FuzzyError::InvalidMembership {
                reason: "rule has no consequent (missing .then(..))".into(),
            });
        }
        Ok(Rule {
            label: self.label,
            clauses: self.clauses,
            connective: self.connective.unwrap_or_default(),
            consequents: self.consequents,
            weight: self.weight,
        })
    }
}

/// An ordered collection of rules.
///
/// The base itself is engine-agnostic; name resolution against variables
/// happens when an [`Engine`](crate::engine::Engine) is built.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleBase {
    rules: Vec<Rule>,
}

impl RuleBase {
    /// Creates an empty rule base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the base holds no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules, in insertion order.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, Rule> {
        self.rules.iter()
    }
}

impl FromIterator<Rule> for RuleBase {
    fn from_iter<I: IntoIterator<Item = Rule>>(iter: I) -> Self {
        Self { rules: iter.into_iter().collect() }
    }
}

impl Extend<Rule> for RuleBase {
    fn extend<I: IntoIterator<Item = Rule>>(&mut self, iter: I) {
        self.rules.extend(iter);
    }
}

impl<'a> IntoIterator for &'a RuleBase {
    type Item = &'a Rule;
    type IntoIter = std::slice::Iter<'a, Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

impl IntoIterator for RuleBase {
    type Item = Rule;
    type IntoIter = std::vec::IntoIter<Rule>;

    fn into_iter(self) -> Self::IntoIter {
        self.rules.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_paper_rule_shape() {
        let rule =
            Rule::when("S", "Sl").and("A", "St").and("D", "N").then("Cv", "Cv9").build().unwrap();
        assert_eq!(rule.clauses().len(), 3);
        assert_eq!(rule.connective(), Connective::And);
        assert_eq!(rule.consequents()[0].variable(), "cv");
        assert_eq!(rule.consequents()[0].term(), "cv9");
        assert_eq!(rule.weight(), 1.0);
    }

    #[test]
    fn names_are_lowercased() {
        let c = Clause::is("Speed", "SLOW");
        assert_eq!(c.variable(), "speed");
        assert_eq!(c.term(), "slow");
    }

    #[test]
    fn negation_flips_membership() {
        let c = Clause::is_not("x", "a");
        assert_eq!(c.shape(0.3), 0.7);
        let c = Clause::is("x", "a");
        assert_eq!(c.shape(0.3), 0.3);
    }

    #[test]
    fn mixed_connectives_rejected() {
        let err = Rule::when("a", "x").and("b", "y").or("c", "z").then("o", "t").build();
        assert!(err.is_err());
    }

    #[test]
    fn or_rules_supported() {
        let rule = Rule::when("a", "x").or("b", "y").then("o", "t").build().unwrap();
        assert_eq!(rule.connective(), Connective::Or);
    }

    #[test]
    fn missing_consequent_rejected() {
        assert!(Rule::when("a", "x").build().is_err());
    }

    #[test]
    fn invalid_weight_rejected() {
        assert!(Rule::when("a", "x").then("o", "t").weight(1.5).build().is_err());
        assert!(Rule::when("a", "x").then("o", "t").weight(-0.1).build().is_err());
        assert!(Rule::when("a", "x").then("o", "t").weight(f64::NAN).build().is_err());
    }

    #[test]
    fn multiple_consequents() {
        let rule = Rule::when("a", "x").then("o1", "t1").then("o2", "t2").build().unwrap();
        assert_eq!(rule.consequents().len(), 2);
    }

    #[test]
    fn rulebase_collects_and_iterates() {
        let base: RuleBase = (0..5)
            .map(|i| {
                Rule::when("a", "x")
                    .then("o", format!("t{i}"))
                    .label(format!("r{i}"))
                    .build()
                    .unwrap()
            })
            .collect();
        assert_eq!(base.len(), 5);
        assert!(!base.is_empty());
        let labels: Vec<_> = base.iter().filter_map(Rule::label).collect();
        assert_eq!(labels, ["r0", "r1", "r2", "r3", "r4"]);
    }

    #[test]
    fn when_not_starts_negated() {
        let rule = Rule::when_not("a", "x").then("o", "t").build().unwrap();
        assert!(rule.clauses()[0].negated());
    }
}
