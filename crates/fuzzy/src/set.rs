//! Discretized (sampled) fuzzy sets — the aggregation surface that Mamdani
//! inference produces and defuzzifiers consume.

use serde::{Deserialize, Serialize};

use crate::error::{FuzzyError, Result};

/// A fuzzy set over a bounded universe, represented by `n` uniformly spaced
/// membership samples (inclusive of both bounds).
///
/// # Examples
///
/// ```
/// use facs_fuzzy::SampledSet;
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// // A triangular surface sampled at 101 points.
/// let set = SampledSet::from_fn(0.0, 1.0, 101, |x| 1.0 - (x - 0.5).abs() * 2.0)?;
/// assert!((set.centroid().unwrap() - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampledSet {
    min: f64,
    max: f64,
    values: Vec<f64>,
}

impl SampledSet {
    /// Creates an all-zero (empty) set with `samples` points over
    /// `[min, max]`.
    ///
    /// # Errors
    ///
    /// [`FuzzyError::InvalidUniverse`] for inverted/non-finite bounds;
    /// [`FuzzyError::InvalidResolution`] for fewer than 2 samples.
    pub fn empty(min: f64, max: f64, samples: usize) -> Result<Self> {
        if !min.is_finite() || !max.is_finite() || min >= max {
            return Err(FuzzyError::InvalidUniverse { min, max });
        }
        if samples < 2 {
            return Err(FuzzyError::InvalidResolution { samples });
        }
        Ok(Self { min, max, values: vec![0.0; samples] })
    }

    /// Samples `f` at `samples` uniformly spaced points over `[min, max]`,
    /// clamping each result into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SampledSet::empty`].
    pub fn from_fn(min: f64, max: f64, samples: usize, f: impl Fn(f64) -> f64) -> Result<Self> {
        let mut set = Self::empty(min, max, samples)?;
        for i in 0..samples {
            let x = set.x_at(i);
            let mu = f(x);
            set.values[i] = if mu.is_finite() { mu.clamp(0.0, 1.0) } else { 0.0 };
        }
        Ok(set)
    }

    /// Lower bound of the universe.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the universe.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when every sample is zero (no rule contributed mass).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.iter().all(|&v| v == 0.0)
    }

    /// The sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The universe coordinate of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn x_at(&self, i: usize) -> f64 {
        assert!(i < self.values.len(), "sample index {i} out of range");
        let step = (self.max - self.min) / (self.values.len() as f64 - 1.0);
        self.min + step * i as f64
    }

    /// Point-wise in-place combination with `other` membership computed by
    /// `combine` (used by the engine's aggregation step).
    ///
    /// # Panics
    ///
    /// Panics if the sets have different universes or lengths — that is an
    /// engine bug, not a recoverable user error.
    pub fn merge_with(&mut self, other: &SampledSet, combine: impl Fn(f64, f64) -> f64) {
        assert_eq!(self.values.len(), other.values.len(), "sample-count mismatch");
        assert!(
            (self.min - other.min).abs() < 1e-12 && (self.max - other.max).abs() < 1e-12,
            "universe mismatch"
        );
        for (a, &b) in self.values.iter_mut().zip(&other.values) {
            *a = combine(*a, b).clamp(0.0, 1.0);
        }
    }

    /// Applies `f` to every sample in place (e.g. implication clipping).
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v).clamp(0.0, 1.0);
        }
    }

    /// Resets every sample to zero, keeping the universe and resolution
    /// (lets the engine reuse one aggregation buffer across inferences).
    pub fn zero(&mut self) {
        for v in &mut self.values {
            *v = 0.0;
        }
    }

    /// Point-wise merge with the membership function `f` sampled over this
    /// set's own grid: for each sample `i` at coordinate `x_i`,
    /// `values[i] = combine(values[i], sanitize(f(x_i)))`.
    ///
    /// Equivalent to building a [`SampledSet::from_fn`] contribution and
    /// [`SampledSet::merge_with`]-ing it (same clamping and non-finite
    /// sanitization), but without allocating the intermediate set — this
    /// is the engine's aggregation hot loop.
    pub fn merge_from_fn(&mut self, f: impl Fn(f64) -> f64, combine: impl Fn(f64, f64) -> f64) {
        let step = (self.max - self.min) / (self.values.len() as f64 - 1.0);
        for (i, v) in self.values.iter_mut().enumerate() {
            let x = self.min + step * i as f64;
            let mu = f(x);
            let mu = if mu.is_finite() { mu.clamp(0.0, 1.0) } else { 0.0 };
            *v = combine(*v, mu).clamp(0.0, 1.0);
        }
    }

    /// Height of the set: the maximum sampled membership.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Area under the sampled membership curve (trapezoidal integration).
    #[must_use]
    pub fn area(&self) -> f64 {
        let step = (self.max - self.min) / (self.values.len() as f64 - 1.0);
        let mut area = 0.0;
        for w in self.values.windows(2) {
            area += 0.5 * (w[0] + w[1]) * step;
        }
        area
    }

    /// Centroid (center of gravity) of the set, or `None` when the set is
    /// empty (zero area).
    #[must_use]
    pub fn centroid(&self) -> Option<f64> {
        let step = (self.max - self.min) / (self.values.len() as f64 - 1.0);
        let mut area = 0.0;
        let mut moment = 0.0;
        for (i, w) in self.values.windows(2).enumerate() {
            let x0 = self.min + step * i as f64;
            let x1 = x0 + step;
            let a = 0.5 * (w[0] + w[1]) * step;
            // Centroid of one trapezoidal strip (linear interpolation of mu).
            let cx = if w[0] + w[1] > 0.0 {
                (x0 * (2.0 * w[0] + w[1]) + x1 * (w[0] + 2.0 * w[1])) / (3.0 * (w[0] + w[1]))
            } else {
                0.5 * (x0 + x1)
            };
            area += a;
            moment += a * cx;
        }
        if area <= f64::EPSILON {
            None
        } else {
            Some((moment / area).clamp(self.min, self.max))
        }
    }

    /// Bisector: the x splitting the area into two equal halves, or `None`
    /// when the set is empty.
    #[must_use]
    pub fn bisector(&self) -> Option<f64> {
        let total = self.area();
        if total <= f64::EPSILON {
            return None;
        }
        let step = (self.max - self.min) / (self.values.len() as f64 - 1.0);
        let half = total / 2.0;
        let mut acc = 0.0;
        for (i, w) in self.values.windows(2).enumerate() {
            let strip = 0.5 * (w[0] + w[1]) * step;
            if acc + strip >= half {
                // Interpolate inside the strip assuming uniform density.
                let frac = if strip > 0.0 { (half - acc) / strip } else { 0.5 };
                let x0 = self.min + step * i as f64;
                return Some(x0 + frac * step);
            }
            acc += strip;
        }
        Some(self.max)
    }

    /// Mean of maxima: average coordinate of the samples attaining the
    /// maximum membership, or `None` when the set is empty.
    #[must_use]
    pub fn mean_of_maxima(&self) -> Option<f64> {
        let h = self.height();
        if h <= 0.0 {
            return None;
        }
        let tol = 1e-9;
        let mut sum = 0.0;
        let mut count = 0usize;
        for (i, &v) in self.values.iter().enumerate() {
            if (v - h).abs() <= tol {
                sum += self.x_at(i);
                count += 1;
            }
        }
        Some(sum / count as f64)
    }

    /// Smallest coordinate attaining the maximum membership, or `None` when
    /// the set is empty.
    #[must_use]
    pub fn smallest_of_maxima(&self) -> Option<f64> {
        let h = self.height();
        if h <= 0.0 {
            return None;
        }
        let tol = 1e-9;
        self.values.iter().position(|&v| (v - h).abs() <= tol).map(|i| self.x_at(i))
    }

    /// Largest coordinate attaining the maximum membership, or `None` when
    /// the set is empty.
    #[must_use]
    pub fn largest_of_maxima(&self) -> Option<f64> {
        let h = self.height();
        if h <= 0.0 {
            return None;
        }
        let tol = 1e-9;
        self.values.iter().rposition(|&v| (v - h).abs() <= tol).map(|i| self.x_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_set() -> SampledSet {
        SampledSet::from_fn(0.0, 1.0, 1001, |x| 1.0 - (x - 0.5).abs() * 2.0).unwrap()
    }

    #[test]
    fn empty_set_reports_empty() {
        let s = SampledSet::empty(0.0, 1.0, 11).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.height(), 0.0);
        assert_eq!(s.area(), 0.0);
        assert!(s.centroid().is_none());
        assert!(s.bisector().is_none());
        assert!(s.mean_of_maxima().is_none());
    }

    #[test]
    fn rejects_bad_universe_and_resolution() {
        assert!(SampledSet::empty(1.0, 0.0, 10).is_err());
        assert!(SampledSet::empty(0.0, 1.0, 1).is_err());
        assert!(SampledSet::empty(f64::NAN, 1.0, 10).is_err());
    }

    #[test]
    fn x_at_spans_bounds() {
        let s = SampledSet::empty(-1.0, 1.0, 5).unwrap();
        assert_eq!(s.x_at(0), -1.0);
        assert_eq!(s.x_at(4), 1.0);
        assert_eq!(s.x_at(2), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_at_out_of_range_panics() {
        let s = SampledSet::empty(0.0, 1.0, 5).unwrap();
        let _ = s.x_at(5);
    }

    #[test]
    fn symmetric_triangle_centroid_is_center() {
        let s = triangle_set();
        assert!((s.centroid().unwrap() - 0.5).abs() < 1e-9);
        assert!((s.bisector().unwrap() - 0.5).abs() < 1e-3);
        assert!((s.mean_of_maxima().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn triangle_area_is_half() {
        let s = triangle_set();
        assert!((s.area() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_set_centroid_leans_right() {
        // Ramp from 0 at x=0 to 1 at x=1: centroid of a right triangle is 2/3.
        let s = SampledSet::from_fn(0.0, 1.0, 2001, |x| x).unwrap();
        assert!((s.centroid().unwrap() - 2.0 / 3.0).abs() < 1e-6);
        // Bisector of area x^2/2: half-area at x = sqrt(0.5).
        assert!((s.bisector().unwrap() - 0.5f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn plateau_maxima_statistics() {
        // Flat top between 0.4 and 0.6.
        let s =
            SampledSet::from_fn(
                0.0,
                1.0,
                1001,
                |x| {
                    if (0.4..=0.6).contains(&x) {
                        1.0
                    } else {
                        0.0
                    }
                },
            )
            .unwrap();
        assert!((s.smallest_of_maxima().unwrap() - 0.4).abs() < 1e-3);
        assert!((s.largest_of_maxima().unwrap() - 0.6).abs() < 1e-3);
        assert!((s.mean_of_maxima().unwrap() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn merge_with_max_unions() {
        let mut a =
            SampledSet::from_fn(0.0, 1.0, 101, |x| if x < 0.5 { 0.8 } else { 0.0 }).unwrap();
        let b = SampledSet::from_fn(0.0, 1.0, 101, |x| if x >= 0.5 { 0.6 } else { 0.0 }).unwrap();
        a.merge_with(&b, f64::max);
        assert_eq!(a.values()[0], 0.8);
        assert_eq!(a.values()[100], 0.6);
    }

    #[test]
    #[should_panic(expected = "sample-count mismatch")]
    fn merge_with_mismatched_sets_panics() {
        let mut a = SampledSet::empty(0.0, 1.0, 10).unwrap();
        let b = SampledSet::empty(0.0, 1.0, 11).unwrap();
        a.merge_with(&b, f64::max);
    }

    #[test]
    fn map_in_place_clamps() {
        let mut s = SampledSet::from_fn(0.0, 1.0, 11, |_| 0.5).unwrap();
        s.map_in_place(|v| v * 4.0);
        assert!(s.values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn merge_from_fn_matches_from_fn_plus_merge_with() {
        let tri = |x: f64| 1.0 - (x - 0.5).abs() * 2.0;
        let base = |x: f64| if x < 0.5 { 0.3 } else { 0.0 };
        let mut direct = SampledSet::from_fn(0.0, 1.0, 101, base).unwrap();
        direct.merge_from_fn(tri, f64::max);
        let mut reference = SampledSet::from_fn(0.0, 1.0, 101, base).unwrap();
        let contribution = SampledSet::from_fn(0.0, 1.0, 101, tri).unwrap();
        reference.merge_with(&contribution, f64::max);
        assert_eq!(direct, reference);
    }

    #[test]
    fn merge_from_fn_sanitizes_non_finite() {
        let mut s = SampledSet::empty(0.0, 1.0, 11).unwrap();
        s.merge_from_fn(|x| if x == 0.0 { f64::NAN } else { 2.0 }, f64::max);
        assert_eq!(s.values()[0], 0.0);
        assert!(s.values()[1..].iter().all(|&v| v == 1.0));
    }

    #[test]
    fn zero_keeps_shape() {
        let mut s = triangle_set();
        s.zero();
        assert!(s.is_empty());
        assert_eq!(s.len(), 1001);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 1.0);
    }

    #[test]
    fn from_fn_sanitizes_non_finite() {
        let s =
            SampledSet::from_fn(0.0, 1.0, 11, |x| if x == 0.0 { f64::NAN } else { 0.5 }).unwrap();
        assert_eq!(s.values()[0], 0.0);
    }

    #[test]
    fn centroid_stays_in_universe() {
        let s = SampledSet::from_fn(-1.0, 1.0, 501, |x| if x > 0.9 { 1.0 } else { 0.0 }).unwrap();
        let c = s.centroid().unwrap();
        assert!(c > 0.9 && c <= 1.0);
    }
}
