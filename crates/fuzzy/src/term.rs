//! Linguistic terms — a named membership function.

use serde::{Deserialize, Serialize};

use crate::error::{FuzzyError, Result};
use crate::membership::MembershipFunction;

/// A linguistic term: a name (e.g. `"slow"`, `"cv3"`) bound to a
/// [`MembershipFunction`] over its variable's universe.
///
/// # Examples
///
/// ```
/// use facs_fuzzy::{MembershipFunction, Term};
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let slow = Term::new("slow", MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0)?)?;
/// assert_eq!(slow.name(), "slow");
/// assert_eq!(slow.membership(22.5), 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Term {
    name: String,
    function: MembershipFunction,
}

impl Term {
    /// Creates a term binding `name` to `function`.
    ///
    /// Term names are matched case-insensitively by the rule DSL, so they
    /// are normalized to lowercase here.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `name` is empty or
    /// contains whitespace (which would make it unusable in the rule DSL).
    pub fn new(name: impl Into<String>, function: MembershipFunction) -> Result<Self> {
        let name = name.into();
        validate_identifier(&name)?;
        Ok(Self { name: name.to_ascii_lowercase(), function })
    }

    /// The (lowercased) term name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying membership function.
    #[must_use]
    pub fn function(&self) -> &MembershipFunction {
        &self.function
    }

    /// Membership degree of `x` in this term; shorthand for
    /// `self.function().evaluate(x)`.
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        self.function.evaluate(x)
    }
}

/// Checks that a name is usable as a DSL identifier: non-empty, no
/// whitespace, and not starting with a digit or sign (which would parse as a
/// number).
pub(crate) fn validate_identifier(name: &str) -> Result<()> {
    if name.is_empty() {
        return Err(FuzzyError::InvalidMembership { reason: "name must not be empty".into() });
    }
    if name.chars().any(char::is_whitespace) {
        return Err(FuzzyError::InvalidMembership {
            reason: format!("name `{name}` must not contain whitespace"),
        });
    }
    let first = name.chars().next().expect("non-empty");
    if first.is_ascii_digit() || first == '-' || first == '+' {
        return Err(FuzzyError::InvalidMembership {
            reason: format!("name `{name}` must not start with a digit or sign"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> MembershipFunction {
        MembershipFunction::triangular(0.0, 1.0, 1.0).unwrap()
    }

    #[test]
    fn name_is_lowercased() {
        let t = Term::new("Slow", tri()).unwrap();
        assert_eq!(t.name(), "slow");
    }

    #[test]
    fn membership_delegates_to_function() {
        let t = Term::new("t", tri()).unwrap();
        assert_eq!(t.membership(0.0), 1.0);
        assert_eq!(t.membership(0.5), 0.5);
        assert_eq!(t.membership(2.0), 0.0);
    }

    #[test]
    fn rejects_empty_name() {
        assert!(Term::new("", tri()).is_err());
    }

    #[test]
    fn rejects_whitespace_name() {
        assert!(Term::new("very slow", tri()).is_err());
    }

    #[test]
    fn rejects_leading_digit_or_sign() {
        assert!(Term::new("3fast", tri()).is_err());
        assert!(Term::new("-fast", tri()).is_err());
        assert!(Term::new("+fast", tri()).is_err());
        // ...but digits elsewhere are fine (the paper uses cv1..cv9, b1, l2).
        assert!(Term::new("cv3", tri()).is_ok());
    }
}
