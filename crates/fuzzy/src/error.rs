//! Error types for the fuzzy-inference engine.

use std::fmt;

/// Errors produced while building or evaluating a fuzzy system.
///
/// Every public fallible operation in this crate returns this type. The
/// variants carry enough context (names, indices, values) to diagnose a
/// mis-built system without a debugger.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FuzzyError {
    /// A membership-function parameter was invalid (e.g. a non-positive
    /// width, or a trapezoid whose shoulders are out of order).
    InvalidMembership {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A universe of discourse was empty or inverted (`min >= max`) or
    /// contained a non-finite bound.
    InvalidUniverse {
        /// Lower bound supplied by the caller.
        min: f64,
        /// Upper bound supplied by the caller.
        max: f64,
    },
    /// A variable was declared with no linguistic terms.
    EmptyTermSet {
        /// Name of the offending variable.
        variable: String,
    },
    /// Two terms of the same variable share a name.
    DuplicateTerm {
        /// Name of the variable that owns the terms.
        variable: String,
        /// The duplicated term name.
        term: String,
    },
    /// Two variables in the same engine share a name.
    DuplicateVariable {
        /// The duplicated variable name.
        variable: String,
    },
    /// A rule referenced a variable that the engine does not know.
    UnknownVariable {
        /// The missing variable name.
        variable: String,
    },
    /// A rule referenced a term that the named variable does not define.
    UnknownTerm {
        /// The variable whose term set was searched.
        variable: String,
        /// The missing term name.
        term: String,
    },
    /// An input value was not supplied for a variable the rule base reads.
    MissingInput {
        /// The variable with no value.
        variable: String,
    },
    /// An input value was non-finite (NaN or infinite).
    NonFiniteInput {
        /// The variable the value was supplied for.
        variable: String,
        /// The offending value.
        value: f64,
    },
    /// The rule base is empty, so inference cannot produce an output.
    EmptyRuleBase,
    /// No rule fired with non-zero strength and the defuzzifier has no
    /// fallback, so the output is undefined.
    NoRuleFired {
        /// The output variable whose fuzzy set stayed empty.
        variable: String,
    },
    /// A rule weight was outside `[0, 1]`.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
    /// The textual rule DSL failed to parse.
    Parse {
        /// 1-based line number of the offending rule text.
        line: usize,
        /// Byte-offset column within the line (1-based, best effort).
        column: usize,
        /// Description of what was expected vs. found.
        message: String,
    },
    /// The requested defuzzifier resolution was too small to integrate.
    InvalidResolution {
        /// The rejected sample count.
        samples: usize,
    },
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidMembership { reason } => {
                write!(f, "invalid membership function: {reason}")
            }
            FuzzyError::InvalidUniverse { min, max } => {
                write!(f, "invalid universe of discourse [{min}, {max}]")
            }
            FuzzyError::EmptyTermSet { variable } => {
                write!(f, "variable `{variable}` has no linguistic terms")
            }
            FuzzyError::DuplicateTerm { variable, term } => {
                write!(f, "variable `{variable}` defines term `{term}` twice")
            }
            FuzzyError::DuplicateVariable { variable } => {
                write!(f, "variable `{variable}` declared twice")
            }
            FuzzyError::UnknownVariable { variable } => {
                write!(f, "rule references unknown variable `{variable}`")
            }
            FuzzyError::UnknownTerm { variable, term } => {
                write!(f, "variable `{variable}` has no term named `{term}`")
            }
            FuzzyError::MissingInput { variable } => {
                write!(f, "no input value supplied for variable `{variable}`")
            }
            FuzzyError::NonFiniteInput { variable, value } => {
                write!(f, "non-finite input {value} for variable `{variable}`")
            }
            FuzzyError::EmptyRuleBase => write!(f, "rule base is empty"),
            FuzzyError::NoRuleFired { variable } => {
                write!(f, "no rule fired for output variable `{variable}`")
            }
            FuzzyError::InvalidWeight { weight } => {
                write!(f, "rule weight {weight} outside [0, 1]")
            }
            FuzzyError::Parse { line, column, message } => {
                write!(f, "rule parse error at {line}:{column}: {message}")
            }
            FuzzyError::InvalidResolution { samples } => {
                write!(f, "defuzzifier resolution {samples} too small (need >= 2 samples)")
            }
        }
    }
}

impl std::error::Error for FuzzyError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, FuzzyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = FuzzyError::UnknownTerm { variable: "speed".into(), term: "warp".into() };
        let msg = err.to_string();
        assert!(msg.contains("speed"));
        assert!(msg.contains("warp"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<FuzzyError>();
    }

    #[test]
    fn parse_error_reports_position() {
        let err = FuzzyError::Parse { line: 3, column: 14, message: "expected IS".into() };
        assert_eq!(err.to_string(), "rule parse error at 3:14: expected IS");
    }

    #[test]
    fn variants_compare_by_value() {
        let a = FuzzyError::EmptyRuleBase;
        let b = FuzzyError::EmptyRuleBase;
        assert_eq!(a, b);
        let c = FuzzyError::MissingInput { variable: "x".into() };
        assert_ne!(a, c);
    }
}
