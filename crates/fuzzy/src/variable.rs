//! Linguistic variables — a named universe of discourse plus its term set.

use serde::{Deserialize, Serialize};

use crate::error::{FuzzyError, Result};
use crate::membership::MembershipFunction;
use crate::term::{validate_identifier, Term};

/// A linguistic variable: a name, a universe of discourse `[min, max]`, and
/// an ordered set of [`Term`]s partitioning that universe.
///
/// Build one with [`Variable::builder`]:
///
/// ```
/// use facs_fuzzy::{MembershipFunction, Variable};
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let speed = Variable::builder("speed", 0.0, 120.0)
///     .term("slow", MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0)?)
///     .term("middle", MembershipFunction::triangular(30.0, 15.0, 30.0)?)
///     .term("fast", MembershipFunction::trapezoidal(60.0, 120.0, 30.0, 0.0)?)
///     .build()?;
/// assert_eq!(speed.terms().len(), 3);
/// // Fuzzification of a crisp reading:
/// let degrees = speed.fuzzify(22.5);
/// assert_eq!(degrees[0], ("slow", 0.5));
/// assert_eq!(degrees[1], ("middle", 0.5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Variable {
    name: String,
    min: f64,
    max: f64,
    terms: Vec<Term>,
}

impl Variable {
    /// Starts building a variable named `name` over `[min, max]`.
    #[must_use]
    pub fn builder(name: impl Into<String>, min: f64, max: f64) -> VariableBuilder {
        VariableBuilder { name: name.into(), min, max, terms: Vec::new(), error: None }
    }

    /// The (lowercased) variable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower bound of the universe of discourse.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound of the universe of discourse.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The ordered term set.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Looks a term up by (case-insensitive) name.
    #[must_use]
    pub fn term(&self, name: &str) -> Option<&Term> {
        let lower = name.to_ascii_lowercase();
        self.terms.iter().find(|t| t.name() == lower)
    }

    /// Index of a term by (case-insensitive) name.
    #[must_use]
    pub fn term_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.terms.iter().position(|t| t.name() == lower)
    }

    /// Clamps a crisp value into the universe of discourse.
    ///
    /// Sensor readings slightly outside the modelled range (e.g. a GPS speed
    /// of 120.4 km/h) are snapped to the nearest bound, matching the paper's
    /// use of edge trapezoids that saturate at the universe edges.
    #[must_use]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.min, self.max)
    }

    /// Fuzzifies a crisp value: membership degree of `x` in every term, in
    /// term order. `x` is clamped to the universe first.
    ///
    /// The returned pairs borrow the term names.
    #[must_use]
    pub fn fuzzify(&self, x: f64) -> Vec<(&str, f64)> {
        let x = self.clamp(x);
        self.terms.iter().map(|t| (t.name(), t.membership(x))).collect()
    }

    /// The term with the highest membership for `x`, with ties broken in
    /// term-declaration order. Returns `None` when every membership is zero.
    #[must_use]
    pub fn classify(&self, x: f64) -> Option<&Term> {
        let x = self.clamp(x);
        let mut best: Option<(&Term, f64)> = None;
        for t in &self.terms {
            let mu = t.membership(x);
            if mu > 0.0 && best.map_or(true, |(_, b)| mu > b) {
                best = Some((t, mu));
            }
        }
        best.map(|(t, _)| t)
    }

    /// Evaluates the *coverage* of the term set at `x`: the maximum
    /// membership any term assigns. A well-formed partition has coverage
    /// `> 0` everywhere in the universe.
    #[must_use]
    pub fn coverage(&self, x: f64) -> f64 {
        let x = self.clamp(x);
        self.terms.iter().map(|t| t.membership(x)).fold(0.0, f64::max)
    }
}

/// Incremental builder for [`Variable`], following the non-consuming
/// terminal-method convention of `std::process::Command`.
#[derive(Debug, Clone)]
pub struct VariableBuilder {
    name: String,
    min: f64,
    max: f64,
    terms: Vec<Term>,
    error: Option<FuzzyError>,
}

impl VariableBuilder {
    /// Adds a term named `name` with membership `function`.
    ///
    /// Errors (duplicate or invalid names) are deferred to [`build`].
    ///
    /// [`build`]: VariableBuilder::build
    #[must_use]
    pub fn term(mut self, name: impl Into<String>, function: MembershipFunction) -> Self {
        if self.error.is_some() {
            return self;
        }
        match Term::new(name, function) {
            Ok(term) => {
                if self.terms.iter().any(|t| t.name() == term.name()) {
                    self.error = Some(FuzzyError::DuplicateTerm {
                        variable: self.name.clone(),
                        term: term.name().to_owned(),
                    });
                } else {
                    self.terms.push(term);
                }
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Adds `count` evenly spaced triangular terms named
    /// `prefix1..prefix{count}` spanning the universe, with the first and
    /// last terms widened into edge trapezoids (the classic "fuzzy
    /// partition" used by the paper's Cv1..Cv9 output).
    ///
    /// Adjacent terms cross at membership 0.5, so the partition sums to 1
    /// everywhere.
    #[must_use]
    pub fn uniform_partition(mut self, prefix: &str, count: usize) -> Self {
        if self.error.is_some() {
            return self;
        }
        if count < 2 {
            self.error = Some(FuzzyError::InvalidMembership {
                reason: format!("uniform partition needs >= 2 terms (got {count})"),
            });
            return self;
        }
        let span = self.max - self.min;
        let step = span / (count as f64 - 1.0);
        for i in 0..count {
            let center = self.min + step * i as f64;
            let name = format!("{prefix}{}", i + 1);
            let mf = if i == 0 {
                MembershipFunction::trapezoidal(self.min - 1.0, center, 0.0, step)
            } else if i == count - 1 {
                MembershipFunction::trapezoidal(center, self.max + 1.0, step, 0.0)
            } else {
                MembershipFunction::triangular(center, step, step)
            };
            match mf {
                Ok(mf) => self = self.term(name, mf),
                Err(e) => {
                    self.error = Some(e);
                    return self;
                }
            }
        }
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::InvalidUniverse`] — non-finite or inverted bounds;
    /// * [`FuzzyError::EmptyTermSet`] — no terms were added;
    /// * any deferred error from [`term`](VariableBuilder::term).
    pub fn build(self) -> Result<Variable> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.min.is_finite() || !self.max.is_finite() || self.min >= self.max {
            return Err(FuzzyError::InvalidUniverse { min: self.min, max: self.max });
        }
        validate_identifier(&self.name).map_err(|_| FuzzyError::InvalidMembership {
            reason: format!("variable name `{}` is not a valid identifier", self.name),
        })?;
        if self.terms.is_empty() {
            return Err(FuzzyError::EmptyTermSet { variable: self.name });
        }
        Ok(Variable {
            name: self.name.to_ascii_lowercase(),
            min: self.min,
            max: self.max,
            terms: self.terms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed() -> Variable {
        Variable::builder("Speed", 0.0, 120.0)
            .term("slow", MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0).unwrap())
            .term("middle", MembershipFunction::triangular(30.0, 15.0, 30.0).unwrap())
            .term("fast", MembershipFunction::trapezoidal(60.0, 120.0, 30.0, 0.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn names_are_lowercased() {
        assert_eq!(speed().name(), "speed");
    }

    #[test]
    fn fuzzify_returns_all_terms_in_order() {
        let v = speed();
        let d = v.fuzzify(22.5);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], ("slow", 0.5));
        assert_eq!(d[1], ("middle", 0.5));
        assert_eq!(d[2], ("fast", 0.0));
    }

    #[test]
    fn fuzzify_clamps_out_of_range_inputs() {
        let v = speed();
        let d = v.fuzzify(500.0);
        assert_eq!(d[2], ("fast", 1.0));
        let d = v.fuzzify(-10.0);
        assert_eq!(d[0], ("slow", 1.0));
    }

    #[test]
    fn term_lookup_is_case_insensitive() {
        let v = speed();
        assert!(v.term("SLOW").is_some());
        assert_eq!(v.term_index("Fast"), Some(2));
        assert!(v.term("warp").is_none());
    }

    #[test]
    fn classify_picks_dominant_term() {
        let v = speed();
        assert_eq!(v.classify(5.0).unwrap().name(), "slow");
        assert_eq!(v.classify(30.0).unwrap().name(), "middle");
        assert_eq!(v.classify(100.0).unwrap().name(), "fast");
    }

    #[test]
    fn coverage_positive_across_universe() {
        let v = speed();
        for i in 0..=120 {
            let x = i as f64;
            assert!(v.coverage(x) > 0.0, "hole in partition at {x}");
        }
    }

    #[test]
    fn builder_rejects_duplicate_terms() {
        let err = Variable::builder("v", 0.0, 1.0)
            .term("a", MembershipFunction::triangular(0.0, 0.5, 0.5).unwrap())
            .term("A", MembershipFunction::triangular(1.0, 0.5, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, FuzzyError::DuplicateTerm { .. }));
    }

    #[test]
    fn builder_rejects_empty_term_set() {
        let err = Variable::builder("v", 0.0, 1.0).build().unwrap_err();
        assert!(matches!(err, FuzzyError::EmptyTermSet { .. }));
    }

    #[test]
    fn builder_rejects_bad_universe() {
        let mf = MembershipFunction::triangular(0.0, 0.5, 0.5).unwrap();
        assert!(Variable::builder("v", 1.0, 0.0).term("a", mf).build().is_err());
        assert!(Variable::builder("v", 0.0, 0.0).term("a", mf).build().is_err());
        assert!(Variable::builder("v", f64::NAN, 1.0).term("a", mf).build().is_err());
    }

    #[test]
    fn uniform_partition_covers_and_sums_to_one() {
        let v = Variable::builder("cv", 0.0, 1.0).uniform_partition("cv", 9).build().unwrap();
        assert_eq!(v.terms().len(), 9);
        assert_eq!(v.terms()[0].name(), "cv1");
        assert_eq!(v.terms()[8].name(), "cv9");
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let sum: f64 = v.fuzzify(x).iter().map(|(_, mu)| mu).sum();
            assert!((sum - 1.0).abs() < 1e-9, "partition sum {sum} at {x}");
        }
    }

    #[test]
    fn uniform_partition_rejects_tiny_count() {
        assert!(Variable::builder("cv", 0.0, 1.0).uniform_partition("cv", 1).build().is_err());
    }
}
