//! Pluggable inference backends: how a compiled controller answers
//! queries.
//!
//! The [`InferenceBackend`] trait abstracts over the two ways this
//! workspace evaluates a single-output fuzzy controller:
//!
//! * **Exact Mamdani** — [`Engine`] itself: fuzzify, fire the rule base,
//!   aggregate, defuzzify on every query. O(rules × resolution) per
//!   call, bit-exact by definition.
//! * **Compiled decision surface** — [`CompiledSurface`]: the engine's
//!   defuzzified output precomputed over a dense input lattice at build
//!   time, queried by multilinear interpolation. A handful of array
//!   reads per call, independent of rule count and defuzzifier
//!   resolution.
//!
//! A controller with `d` inputs and `n` lattice points per axis stores
//! `n^d` crisp values; the FACS controllers each have 3 inputs, so the
//! default 33-point lattice is ~36 k doubles (≈280 KiB) — resident in L2
//! cache. Compilation runs the exact engine once per lattice point, so
//! it costs as much as `n^d` exact inferences, paid once per controller
//! build (and the surface is cheap to clone: samples live behind an
//! [`Arc`]).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::engine::Engine;
use crate::error::{FuzzyError, Result};

/// Default lattice points per input axis for compiled surfaces.
///
/// 33 points over each FACS input universe keeps the worst-case
/// interpolation error of the admission score well inside the band that
/// separates accept from reject at the default 0.1 threshold (the
/// equivalence property tests and EXPERIMENTS.md quantify this), while
/// the full 3-input lattice stays cache-resident.
pub const DEFAULT_LATTICE_POINTS: usize = 33;

/// The most input dimensions a [`CompiledSurface`] supports (its
/// interpolation buffers are stack-allocated arrays of this size).
pub const MAX_SURFACE_DIMS: usize = 8;

/// A strategy for evaluating a single-output fuzzy controller from
/// positional readings.
///
/// Implemented by [`Engine`] (exact Mamdani inference) and
/// [`CompiledSurface`] (precomputed lattice + interpolation), so callers
/// can hold either behind one interface and switch per [`BackendKind`].
pub trait InferenceBackend {
    /// Evaluates the controller's single output for readings given in
    /// input-declaration order (each clamped into its universe).
    ///
    /// # Errors
    ///
    /// [`FuzzyError::NonFiniteInput`] on NaN/infinite readings, plus
    /// arity errors when `readings` does not match the input count.
    fn evaluate_crisp(&self, readings: &[f64]) -> Result<f64>;

    /// Number of positional inputs one query carries — the row width of
    /// a batch passed to
    /// [`evaluate_batch`](InferenceBackend::evaluate_batch).
    fn input_dims(&self) -> usize;

    /// Evaluates many queries at once, appending one output per query to
    /// `out` in query order.
    ///
    /// `queries` is a flat row-major block of
    /// [`input_dims`](InferenceBackend::input_dims)-wide rows. The
    /// default implementation just loops
    /// [`evaluate_crisp`](InferenceBackend::evaluate_crisp); backends
    /// with exploitable structure (e.g. [`CompiledSurface`], which sorts
    /// queries by lattice cell to amortize corner gathers) override it.
    /// Overrides must return bit-identical values to the looped default.
    ///
    /// # Errors
    ///
    /// The same per-query errors as
    /// [`evaluate_crisp`](InferenceBackend::evaluate_crisp); a trailing
    /// partial row errors like a short `evaluate_crisp` call. On error,
    /// `out` is left exactly as passed in.
    fn evaluate_batch(&self, queries: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let dims = self.input_dims();
        if dims == 0 {
            return Err(FuzzyError::InvalidMembership {
                reason: "batch evaluation requires at least one input".to_owned(),
            });
        }
        let start = out.len();
        out.reserve(queries.len() / dims);
        let chunks = queries.chunks_exact(dims);
        let remainder = chunks.remainder();
        for row in chunks {
            match self.evaluate_crisp(row) {
                Ok(value) => out.push(value),
                Err(err) => {
                    out.truncate(start);
                    return Err(err);
                }
            }
        }
        if !remainder.is_empty() {
            out.truncate(start);
            // A short trailing row fails exactly like a short single
            // query (MissingInput for the first absent axis).
            self.evaluate_crisp(remainder)?;
        }
        Ok(())
    }

    /// Short static name for logs and benches.
    fn backend_name(&self) -> &'static str;
}

impl InferenceBackend for Engine {
    fn evaluate_crisp(&self, readings: &[f64]) -> Result<f64> {
        Engine::evaluate_crisp(self, readings)
    }

    fn input_dims(&self) -> usize {
        self.inputs().len()
    }

    fn backend_name(&self) -> &'static str {
        "exact-mamdani"
    }
}

/// Which [`InferenceBackend`] a controller should use — the cheap,
/// copyable selector that configuration types carry (the surface itself
/// is built when the controller is).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BackendKind {
    /// Exact Mamdani inference on every query (paper-faithful default).
    #[default]
    Exact,
    /// Precomputed decision surface, interpolated at query time.
    Compiled {
        /// Lattice points per input axis (≥ 2).
        points_per_axis: usize,
    },
}

impl BackendKind {
    /// The compiled backend at the default lattice resolution
    /// ([`DEFAULT_LATTICE_POINTS`] points per axis).
    #[must_use]
    pub fn compiled() -> Self {
        BackendKind::Compiled { points_per_axis: DEFAULT_LATTICE_POINTS }
    }

    /// `true` for the [`BackendKind::Compiled`] variant.
    #[must_use]
    pub fn is_compiled(self) -> bool {
        matches!(self, BackendKind::Compiled { .. })
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Exact => write!(f, "exact"),
            BackendKind::Compiled { points_per_axis } => {
                write!(f, "compiled({points_per_axis})")
            }
        }
    }
}

/// One input axis of a compiled surface.
#[derive(Debug, Clone)]
struct Axis {
    name: String,
    min: f64,
    max: f64,
    points: usize,
}

/// A compiled decision surface: the defuzzified output of an [`Engine`]
/// precomputed over a dense input lattice, answered by multilinear
/// interpolation.
///
/// Values at lattice nodes are bit-exact against the source engine;
/// between nodes the surface is the piecewise-multilinear interpolant,
/// so accuracy is governed by `points_per_axis`. Cloning is cheap (the
/// sample block is shared behind an [`Arc`]), which lets one compiled
/// controller be stamped out per cell or per thread without recompiling.
///
/// # Examples
///
/// ```
/// use facs_fuzzy::{
///     CompiledSurface, Engine, InferenceBackend, MembershipFunction, Rule, Variable,
/// };
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let x = Variable::builder("x", 0.0, 10.0)
///     .term("lo", MembershipFunction::triangular(0.0, 0.0, 10.0)?)
///     .term("hi", MembershipFunction::triangular(10.0, 10.0, 0.0)?)
///     .build()?;
/// let y = Variable::builder("y", 0.0, 1.0)
///     .term("lo", MembershipFunction::triangular(0.0, 0.0, 1.0)?)
///     .term("hi", MembershipFunction::triangular(1.0, 1.0, 0.0)?)
///     .build()?;
/// let engine = Engine::builder()
///     .input(x)
///     .output(y)
///     .rule(Rule::when("x", "lo").then("y", "lo").build()?)
///     .rule(Rule::when("x", "hi").then("y", "hi").build()?)
///     .build()?;
/// let surface = CompiledSurface::compile(&engine, 65)?;
/// let exact = engine.evaluate_crisp(&[7.3])?;
/// let fast = surface.evaluate_crisp(&[7.3])?;
/// assert!((exact - fast).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSurface {
    axes: Vec<Axis>,
    /// Row-major strides per axis (last axis contiguous).
    strides: Vec<usize>,
    values: Arc<[f64]>,
}

impl CompiledSurface {
    /// Precomputes `engine`'s defuzzified output over a dense lattice of
    /// `points_per_axis` points per input axis.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::InvalidResolution`] — fewer than 2 points per
    ///   axis, or a lattice too large to allocate (> 2^26 nodes);
    /// * [`FuzzyError::InvalidMembership`] — the engine has more than one
    ///   output, no inputs, or more than [`MAX_SURFACE_DIMS`] inputs;
    /// * any evaluation error from the engine at a lattice node (e.g.
    ///   [`FuzzyError::NoRuleFired`] where the rule base has a hole and
    ///   no fallback is configured).
    pub fn compile(engine: &Engine, points_per_axis: usize) -> Result<Self> {
        if points_per_axis < 2 {
            return Err(FuzzyError::InvalidResolution { samples: points_per_axis });
        }
        if engine.outputs().len() != 1 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "compiled surfaces require exactly one output (engine has {})",
                    engine.outputs().len()
                ),
            });
        }
        let dims = engine.inputs().len();
        if dims == 0 || dims > MAX_SURFACE_DIMS {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "compiled surfaces support 1..={MAX_SURFACE_DIMS} inputs (engine has {dims})"
                ),
            });
        }
        let axes: Vec<Axis> = engine
            .inputs()
            .iter()
            .map(|v| Axis {
                name: v.name().to_owned(),
                min: v.min(),
                max: v.max(),
                points: points_per_axis,
            })
            .collect();
        let mut total = 1usize;
        for _ in 0..dims {
            total = total
                .checked_mul(points_per_axis)
                .filter(|&t| t <= 1 << 26)
                .ok_or(FuzzyError::InvalidResolution { samples: points_per_axis })?;
        }
        let mut strides = vec![1usize; dims];
        for d in (0..dims.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * points_per_axis;
        }

        let mut values = Vec::with_capacity(total);
        let mut index = vec![0usize; dims];
        let mut coords = vec![0.0f64; dims];
        loop {
            for (d, axis) in axes.iter().enumerate() {
                let t = index[d] as f64 / (axis.points - 1) as f64;
                coords[d] = axis.min + (axis.max - axis.min) * t;
            }
            values.push(engine.evaluate_crisp(&coords)?);
            // Odometer increment, last axis fastest (row-major order).
            let mut d = dims;
            loop {
                if d == 0 {
                    break;
                }
                d -= 1;
                index[d] += 1;
                if index[d] < points_per_axis {
                    break;
                }
                index[d] = 0;
            }
            if index.iter().all(|&i| i == 0) {
                break;
            }
        }
        debug_assert_eq!(values.len(), total);
        Ok(Self { axes, strides, values: values.into() })
    }

    /// Input dimensionality of the surface.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Lattice points per input axis.
    #[must_use]
    pub fn points_per_axis(&self) -> usize {
        self.axes[0].points
    }

    /// Total number of precomputed lattice nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `false` always — a compiled surface holds at least `2^dims` nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Approximate resident size of the sample block in bytes.
    #[must_use]
    pub fn sample_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f64>()
    }

    /// `true` when `self` and `other` share one sample block (clones of
    /// the same compilation — no memory was duplicated).
    #[must_use]
    pub fn shares_samples(&self, other: &CompiledSurface) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// Locates the lattice cell enclosing `readings`: the flattened base
    /// node index plus the per-axis interpolation fractions. Shared by
    /// the single-query and batched paths so both run the exact same
    /// float operations (bit-identical outputs).
    // `always`: the kernel calls `evaluate_crisp` per admission, and
    // letting LLVM materialize the (usize, [f64; 8]) return through a
    // real call costs ~4% of simulator throughput.
    #[inline(always)]
    fn locate(&self, readings: &[f64]) -> Result<(usize, [f64; MAX_SURFACE_DIMS])> {
        let dims = self.axes.len();
        if readings.len() < dims {
            return Err(FuzzyError::MissingInput {
                variable: self.axes[readings.len()].name.clone(),
            });
        }
        if readings.len() > dims {
            return Err(FuzzyError::UnknownVariable {
                variable: format!("positional input #{dims}"),
            });
        }
        let mut frac = [0.0f64; MAX_SURFACE_DIMS];
        let mut base = 0usize;
        for (d, axis) in self.axes.iter().enumerate() {
            let value = readings[d];
            if !value.is_finite() {
                return Err(FuzzyError::NonFiniteInput { variable: axis.name.clone(), value });
            }
            let x = value.clamp(axis.min, axis.max);
            let t = (x - axis.min) / (axis.max - axis.min) * (axis.points - 1) as f64;
            let cell = (t.floor() as usize).min(axis.points - 2);
            frac[d] = (t - cell as f64).clamp(0.0, 1.0);
            base += cell * self.strides[d];
        }
        Ok((base, frac))
    }

    /// Blends the `2^dims` corner values of one lattice cell with the
    /// given fractions. `corners[c]` must hold the value at corner bit
    /// pattern `c`; the accumulation order and zero-weight skip mirror
    /// [`evaluate_crisp`](InferenceBackend::evaluate_crisp) exactly.
    fn blend(&self, corners: &[f64], frac: &[f64; MAX_SURFACE_DIMS]) -> f64 {
        let dims = self.axes.len();
        let mut acc = 0.0;
        for (corner, &value) in corners.iter().enumerate().take(1usize << dims) {
            let mut weight = 1.0;
            for (d, f) in frac.iter().enumerate().take(dims) {
                if corner & (1 << d) != 0 {
                    weight *= f;
                } else {
                    weight *= 1.0 - f;
                }
            }
            if weight > 0.0 {
                acc += weight * value;
            }
        }
        acc
    }
}

impl InferenceBackend for CompiledSurface {
    /// Multilinear interpolation over the precomputed lattice: locates
    /// the enclosing cell per axis, then blends its `2^dims` corner
    /// values. Readings are clamped into each axis universe, mirroring
    /// the exact engine.
    fn evaluate_crisp(&self, readings: &[f64]) -> Result<f64> {
        let dims = self.axes.len();
        let (base, frac) = self.locate(readings)?;
        // Fused corner walk: offsets and weights in one pass, loading
        // only corners with non-zero weight — measurably faster per
        // single query than gather-then-blend. The weight products and
        // accumulation run in the same order as [`CompiledSurface::blend`],
        // so both paths stay bit-identical.
        let mut acc = 0.0;
        for corner in 0..(1usize << dims) {
            let mut weight = 1.0;
            let mut offset = 0usize;
            for (d, &stride) in self.strides.iter().enumerate() {
                if corner & (1 << d) != 0 {
                    weight *= frac[d];
                    offset += stride;
                } else {
                    weight *= 1.0 - frac[d];
                }
            }
            if weight > 0.0 {
                acc += weight * self.values[base + offset];
            }
        }
        Ok(acc)
    }

    fn input_dims(&self) -> usize {
        self.axes.len()
    }

    /// Cell-sorted batch evaluation: locates every query's lattice cell,
    /// sorts query indices by flattened base node, and gathers each
    /// cell's `2^dims` corner values once for all queries sharing it.
    /// The per-query locate and blend arithmetic is byte-for-byte the
    /// single-query path, so results are bit-identical to a loop over
    /// [`evaluate_crisp`](InferenceBackend::evaluate_crisp) — the sort
    /// only reorders *when* each independent output is computed, never
    /// how.
    fn evaluate_batch(&self, queries: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let dims = self.axes.len();
        let chunks = queries.chunks_exact(dims);
        let remainder = chunks.remainder();
        if !remainder.is_empty() {
            // A short trailing row fails exactly like a short query.
            self.locate(remainder)?;
        }
        // Pass 1: locate all cells up front (also surfaces any
        // non-finite reading before `out` is touched).
        let mut located: Vec<(usize, u32, [f64; MAX_SURFACE_DIMS])> =
            Vec::with_capacity(queries.len() / dims);
        for (q, row) in chunks.enumerate() {
            let (base, frac) = self.locate(row)?;
            let q = u32::try_from(q).map_err(|_| FuzzyError::InvalidMembership {
                reason: "batch larger than u32::MAX queries".to_owned(),
            })?;
            located.push((base, q, frac));
        }
        // Adjacent queries now share corner gathers; the query index
        // breaks ties so the sort is deterministic.
        located.sort_unstable_by_key(|&(base, q, _)| (base, q));

        let start = out.len();
        out.resize(start + located.len(), 0.0);
        let mut corners = [0.0f64; 1 << MAX_SURFACE_DIMS];
        let mut cached_base = usize::MAX;
        for &(base, q, frac) in &located {
            if base != cached_base {
                gather_corners(&self.values, &self.strides, base, &mut corners[..1 << dims]);
                cached_base = base;
            }
            out[start + q as usize] = self.blend(&corners[..1 << dims], &frac);
        }
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "compiled-surface"
    }
}

/// Copies the `2^dims` corner values of the lattice cell at flattened
/// node `base` into `corners` (whose length fixes `2^dims`), indexed by
/// corner bit pattern: bit `d` set means "high side of axis `d`".
fn gather_corners(values: &[f64], strides: &[usize], base: usize, corners: &mut [f64]) {
    for (corner, slot) in corners.iter_mut().enumerate() {
        let mut offset = 0usize;
        for (d, &stride) in strides.iter().enumerate() {
            if corner & (1 << d) != 0 {
                offset += stride;
            }
        }
        *slot = values[base + offset];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;
    use crate::rule::Rule;
    use crate::variable::Variable;

    fn ramp_engine() -> Engine {
        let x = Variable::builder("x", 0.0, 10.0)
            .term("lo", MembershipFunction::triangular(0.0, 0.0, 10.0).unwrap())
            .term("hi", MembershipFunction::triangular(10.0, 10.0, 0.0).unwrap())
            .build()
            .unwrap();
        let y = Variable::builder("y", 0.0, 1.0)
            .term("lo", MembershipFunction::triangular(0.0, 0.0, 1.0).unwrap())
            .term("hi", MembershipFunction::triangular(1.0, 1.0, 0.0).unwrap())
            .build()
            .unwrap();
        Engine::builder()
            .input(x)
            .output(y)
            .rule(Rule::when("x", "lo").then("y", "lo").build().unwrap())
            .rule(Rule::when("x", "hi").then("y", "hi").build().unwrap())
            .build()
            .unwrap()
    }

    fn two_input_engine() -> Engine {
        let a = Variable::builder("a", 0.0, 1.0)
            .term("lo", MembershipFunction::triangular(0.0, 0.0, 1.0).unwrap())
            .term("hi", MembershipFunction::triangular(1.0, 1.0, 0.0).unwrap())
            .build()
            .unwrap();
        let b = Variable::builder("b", -1.0, 1.0)
            .term("lo", MembershipFunction::triangular(-1.0, 0.0, 2.0).unwrap())
            .term("hi", MembershipFunction::triangular(1.0, 2.0, 0.0).unwrap())
            .build()
            .unwrap();
        let out = Variable::builder("out", 0.0, 100.0)
            .term("small", MembershipFunction::triangular(0.0, 0.0, 50.0).unwrap())
            .term("large", MembershipFunction::triangular(100.0, 50.0, 0.0).unwrap())
            .build()
            .unwrap();
        Engine::builder()
            .input(a)
            .input(b)
            .output(out)
            .rule(Rule::when("a", "lo").and("b", "lo").then("out", "small").build().unwrap())
            .rule(Rule::when("a", "hi").or("b", "hi").then("out", "large").build().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn lattice_nodes_are_bit_exact() {
        let engine = ramp_engine();
        let surface = CompiledSurface::compile(&engine, 17).unwrap();
        for i in 0..17 {
            let x = 10.0 * f64::from(i) / 16.0;
            assert_eq!(
                surface.evaluate_crisp(&[x]).unwrap(),
                engine.evaluate_crisp(&[x]).unwrap(),
                "node {i} diverged"
            );
        }
    }

    #[test]
    fn off_node_queries_are_close_to_exact() {
        let engine = two_input_engine();
        let surface = CompiledSurface::compile(&engine, 33).unwrap();
        let mut worst = 0.0f64;
        for i in 0..=20 {
            for j in 0..=20 {
                let a = f64::from(i) / 20.0 + 0.013;
                let b = -1.0 + 2.0 * f64::from(j) / 20.0 + 0.007;
                let exact = engine.evaluate_crisp(&[a, b]).unwrap();
                let fast = surface.evaluate_crisp(&[a, b]).unwrap();
                worst = worst.max((exact - fast).abs());
            }
        }
        assert!(worst < 2.0, "max divergence {worst} over a 100-unit universe");
    }

    #[test]
    fn out_of_universe_readings_are_clamped() {
        let engine = ramp_engine();
        let surface = CompiledSurface::compile(&engine, 9).unwrap();
        assert_eq!(
            surface.evaluate_crisp(&[-5.0]).unwrap(),
            surface.evaluate_crisp(&[0.0]).unwrap()
        );
        assert_eq!(
            surface.evaluate_crisp(&[99.0]).unwrap(),
            surface.evaluate_crisp(&[10.0]).unwrap()
        );
    }

    #[test]
    fn arity_and_finiteness_errors_match_the_exact_backend() {
        let engine = two_input_engine();
        let surface = CompiledSurface::compile(&engine, 5).unwrap();
        assert!(matches!(surface.evaluate_crisp(&[0.5]), Err(FuzzyError::MissingInput { .. })));
        assert!(matches!(
            surface.evaluate_crisp(&[0.5, 0.5, 0.5]),
            Err(FuzzyError::UnknownVariable { .. })
        ));
        assert!(matches!(
            surface.evaluate_crisp(&[f64::NAN, 0.5]),
            Err(FuzzyError::NonFiniteInput { .. })
        ));
        assert!(matches!(engine.evaluate_crisp(&[0.5]), Err(FuzzyError::MissingInput { .. })));
        assert!(matches!(
            engine.evaluate_crisp(&[0.5, 0.5, 0.5]),
            Err(FuzzyError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn compile_rejects_degenerate_lattices() {
        let engine = ramp_engine();
        assert!(matches!(
            CompiledSurface::compile(&engine, 1),
            Err(FuzzyError::InvalidResolution { .. })
        ));
    }

    #[test]
    fn surface_metadata_is_consistent() {
        let surface = CompiledSurface::compile(&two_input_engine(), 9).unwrap();
        assert_eq!(surface.dims(), 2);
        assert_eq!(surface.points_per_axis(), 9);
        assert_eq!(surface.len(), 81);
        assert!(!surface.is_empty());
        assert_eq!(surface.sample_bytes(), 81 * 8);
        assert_eq!(surface.backend_name(), "compiled-surface");
    }

    #[test]
    fn clones_share_the_sample_block() {
        let surface = CompiledSurface::compile(&ramp_engine(), 33).unwrap();
        let clone = surface.clone();
        assert!(Arc::ptr_eq(&surface.values, &clone.values));
    }

    #[test]
    fn backend_kind_selector() {
        assert_eq!(BackendKind::default(), BackendKind::Exact);
        assert!(!BackendKind::Exact.is_compiled());
        let compiled = BackendKind::compiled();
        assert!(compiled.is_compiled());
        assert_eq!(compiled, BackendKind::Compiled { points_per_axis: DEFAULT_LATTICE_POINTS });
        assert_eq!(compiled.to_string(), "compiled(33)");
        assert_eq!(BackendKind::Exact.to_string(), "exact");
    }

    #[test]
    fn batched_surface_matches_looped_single_queries_bitwise() {
        let engine = two_input_engine();
        let surface = CompiledSurface::compile(&engine, 33).unwrap();
        // A mix of duplicate cells (amortized gathers), clamped
        // out-of-universe readings, and exact lattice nodes.
        let mut queries = Vec::new();
        for i in 0..40 {
            let a = f64::from(i % 7) / 6.3 + 0.011;
            let b = -1.2 + 2.4 * f64::from(i) / 39.0;
            queries.extend_from_slice(&[a, b]);
        }
        let mut batched = vec![f64::NAN; 3]; // pre-existing prefix kept
        surface.evaluate_batch(&queries, &mut batched).unwrap();
        assert_eq!(batched.len(), 3 + 40);
        for (q, row) in queries.chunks_exact(2).enumerate() {
            let single = surface.evaluate_crisp(row).unwrap();
            assert_eq!(batched[3 + q].to_bits(), single.to_bits(), "query {q} diverged");
        }
    }

    #[test]
    fn batched_engine_default_matches_loop() {
        let engine = two_input_engine();
        let queries = [0.1, -0.5, 0.9, 0.8, 0.5, 0.0];
        let mut batched = Vec::new();
        engine.evaluate_batch(&queries, &mut batched).unwrap();
        assert_eq!(engine.input_dims(), 2);
        assert_eq!(batched.len(), 3);
        for (q, row) in queries.chunks_exact(2).enumerate() {
            assert_eq!(batched[q].to_bits(), engine.evaluate_crisp(row).unwrap().to_bits());
        }
    }

    #[test]
    fn batch_errors_leave_output_untouched() {
        let engine = two_input_engine();
        let surface = CompiledSurface::compile(&engine, 5).unwrap();
        for backend in [&engine as &dyn InferenceBackend, &surface] {
            // Trailing partial row: fails like a short single query.
            let mut out = vec![1.0, 2.0];
            assert!(matches!(
                backend.evaluate_batch(&[0.5, 0.5, 0.5], &mut out),
                Err(FuzzyError::MissingInput { .. })
            ));
            assert_eq!(out, vec![1.0, 2.0]);
            // Non-finite reading anywhere in the batch.
            assert!(matches!(
                backend.evaluate_batch(&[0.5, 0.5, f64::NAN, 0.5], &mut out),
                Err(FuzzyError::NonFiniteInput { .. })
            ));
            assert_eq!(out, vec![1.0, 2.0]);
            // The empty batch is trivially fine and appends nothing.
            backend.evaluate_batch(&[], &mut out).unwrap();
            assert_eq!(out, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn surface_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledSurface>();
    }

    #[test]
    fn engine_implements_the_backend_trait() {
        let engine = ramp_engine();
        let backend: &dyn InferenceBackend = &engine;
        assert_eq!(backend.backend_name(), "exact-mamdani");
        let direct = engine.evaluate_crisp(&[3.0]).unwrap();
        assert_eq!(backend.evaluate_crisp(&[3.0]).unwrap(), direct);
    }
}
