//! Membership functions.
//!
//! The paper (Fig. 3) uses two families suitable for real-time operation:
//!
//! * triangular `f(x; x0, a0, a1)` — center `x0`, left width `a0`, right
//!   width `a1`;
//! * trapezoidal `g(x; x0, x1, a0, a1)` — flat top between `x0` and `x1`,
//!   ramps of width `a0` (left) and `a1` (right).
//!
//! [`MembershipFunction::triangular`] and
//! [`MembershipFunction::trapezoidal`] implement those formulas exactly.
//! For completeness as a general-purpose engine this module also provides
//! gaussian, generalized-bell, sigmoid, Z-, S- and singleton shapes.

use serde::{Deserialize, Serialize};

use crate::error::{FuzzyError, Result};

/// A parametric membership function mapping a crisp value to a degree in
/// `[0, 1]`.
///
/// Values are evaluated with [`MembershipFunction::evaluate`]; results are
/// always clamped to `[0, 1]` and are `0.0` outside the support.
///
/// # Examples
///
/// ```
/// use facs_fuzzy::MembershipFunction;
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// // The paper's "Middle speed" term: triangle centered at 30 km/h.
/// let middle = MembershipFunction::triangular(30.0, 15.0, 30.0)?;
/// assert_eq!(middle.evaluate(30.0), 1.0);
/// assert_eq!(middle.evaluate(22.5), 0.5);
/// assert_eq!(middle.evaluate(90.0), 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MembershipFunction {
    /// Triangle with peak at `center`, rising over `left_width` and falling
    /// over `right_width`. A zero width makes that side a vertical edge.
    Triangular {
        /// Location of the peak (`x0` in the paper).
        center: f64,
        /// Width of the rising ramp (`a0`).
        left_width: f64,
        /// Width of the falling ramp (`a1`).
        right_width: f64,
    },
    /// Trapezoid flat between `left_top` and `right_top` with ramp widths
    /// `left_width` / `right_width`. A zero width makes that side vertical.
    Trapezoidal {
        /// Left edge of the flat top (`x0`).
        left_top: f64,
        /// Right edge of the flat top (`x1`).
        right_top: f64,
        /// Width of the rising ramp (`a0`).
        left_width: f64,
        /// Width of the falling ramp (`a1`).
        right_width: f64,
    },
    /// Gaussian bell `exp(-(x-mean)^2 / (2 sigma^2))`.
    Gaussian {
        /// Location of the peak.
        mean: f64,
        /// Standard deviation (must be positive).
        sigma: f64,
    },
    /// Generalized bell `1 / (1 + |(x-center)/width|^(2 slope))`.
    Bell {
        /// Location of the peak.
        center: f64,
        /// Half-width at membership 0.5 (must be positive).
        width: f64,
        /// Steepness of the flanks (must be positive).
        slope: f64,
    },
    /// Logistic sigmoid `1 / (1 + exp(-slope (x - inflection)))`.
    /// Positive `slope` rises to the right, negative falls.
    Sigmoid {
        /// Value where membership crosses 0.5.
        inflection: f64,
        /// Steepness; sign selects direction.
        slope: f64,
    },
    /// Smooth descending spline: 1 before `start`, 0 after `end`.
    ZShape {
        /// Last value with membership 1.
        start: f64,
        /// First value with membership 0.
        end: f64,
    },
    /// Smooth ascending spline: 0 before `start`, 1 after `end`.
    SShape {
        /// Last value with membership 0.
        start: f64,
        /// First value with membership 1.
        end: f64,
    },
    /// Crisp spike: membership 1 exactly at `value`, 0 elsewhere.
    Singleton {
        /// The sole supported value.
        value: f64,
    },
}

impl MembershipFunction {
    /// Builds the paper's triangular function `f(x; x0, a0, a1)`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if any parameter is
    /// non-finite, a width is negative, or both widths are zero.
    pub fn triangular(center: f64, left_width: f64, right_width: f64) -> Result<Self> {
        ensure_finite(&[center, left_width, right_width])?;
        if left_width < 0.0 || right_width < 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "triangular widths must be non-negative (got a0={left_width}, a1={right_width})"
                ),
            });
        }
        if left_width == 0.0 && right_width == 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: "triangular function needs at least one positive width; \
                         use a singleton for a crisp spike"
                    .into(),
            });
        }
        Ok(Self::Triangular { center, left_width, right_width })
    }

    /// Builds the paper's trapezoidal function `g(x; x0, x1, a0, a1)`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if any parameter is
    /// non-finite, the top edges are out of order, or a width is negative.
    pub fn trapezoidal(
        left_top: f64,
        right_top: f64,
        left_width: f64,
        right_width: f64,
    ) -> Result<Self> {
        ensure_finite(&[left_top, right_top, left_width, right_width])?;
        if right_top < left_top {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "trapezoid top edges out of order (x0={left_top} > x1={right_top})"
                ),
            });
        }
        if left_width < 0.0 || right_width < 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "trapezoid widths must be non-negative (got a0={left_width}, a1={right_width})"
                ),
            });
        }
        Ok(Self::Trapezoidal { left_top, right_top, left_width, right_width })
    }

    /// Builds a gaussian membership function.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `sigma <= 0` or any
    /// parameter is non-finite.
    pub fn gaussian(mean: f64, sigma: f64) -> Result<Self> {
        ensure_finite(&[mean, sigma])?;
        if sigma <= 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("gaussian sigma must be positive (got {sigma})"),
            });
        }
        Ok(Self::Gaussian { mean, sigma })
    }

    /// Builds a generalized-bell membership function.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `width <= 0`,
    /// `slope <= 0`, or any parameter is non-finite.
    pub fn bell(center: f64, width: f64, slope: f64) -> Result<Self> {
        ensure_finite(&[center, width, slope])?;
        if width <= 0.0 || slope <= 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("bell width and slope must be positive (got {width}, {slope})"),
            });
        }
        Ok(Self::Bell { center, width, slope })
    }

    /// Builds a sigmoid membership function.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `slope == 0` or any
    /// parameter is non-finite.
    pub fn sigmoid(inflection: f64, slope: f64) -> Result<Self> {
        ensure_finite(&[inflection, slope])?;
        if slope == 0.0 {
            return Err(FuzzyError::InvalidMembership {
                reason: "sigmoid slope must be non-zero".into(),
            });
        }
        Ok(Self::Sigmoid { inflection, slope })
    }

    /// Builds a descending Z-shaped spline.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `end <= start` or any
    /// parameter is non-finite.
    pub fn z_shape(start: f64, end: f64) -> Result<Self> {
        ensure_finite(&[start, end])?;
        if end <= start {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("z-shape needs start < end (got {start}, {end})"),
            });
        }
        Ok(Self::ZShape { start, end })
    }

    /// Builds an ascending S-shaped spline.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `end <= start` or any
    /// parameter is non-finite.
    pub fn s_shape(start: f64, end: f64) -> Result<Self> {
        ensure_finite(&[start, end])?;
        if end <= start {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("s-shape needs start < end (got {start}, {end})"),
            });
        }
        Ok(Self::SShape { start, end })
    }

    /// Builds a crisp singleton at `value`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidMembership`] if `value` is non-finite.
    pub fn singleton(value: f64) -> Result<Self> {
        ensure_finite(&[value])?;
        Ok(Self::Singleton { value })
    }

    /// Evaluates the membership degree of `x`.
    ///
    /// The result is always in `[0, 1]`; non-finite `x` yields `0.0` so a
    /// corrupted sensor reading degrades to "no membership" instead of
    /// poisoning downstream arithmetic.
    #[must_use]
    pub fn evaluate(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return 0.0;
        }
        let mu = match *self {
            Self::Triangular { center, left_width, right_width } => {
                triangle(x, center, left_width, right_width)
            }
            Self::Trapezoidal { left_top, right_top, left_width, right_width } => {
                trapezoid(x, left_top, right_top, left_width, right_width)
            }
            Self::Gaussian { mean, sigma } => {
                let d = (x - mean) / sigma;
                (-0.5 * d * d).exp()
            }
            Self::Bell { center, width, slope } => {
                let d = ((x - center) / width).abs();
                1.0 / (1.0 + d.powf(2.0 * slope))
            }
            Self::Sigmoid { inflection, slope } => 1.0 / (1.0 + (-slope * (x - inflection)).exp()),
            Self::ZShape { start, end } => 1.0 - s_spline(x, start, end),
            Self::SShape { start, end } => s_spline(x, start, end),
            Self::Singleton { value } => {
                if x == value {
                    1.0
                } else {
                    0.0
                }
            }
        };
        mu.clamp(0.0, 1.0)
    }

    /// Returns the closed interval outside of which membership is (for the
    /// asymptotic shapes: effectively) zero.
    ///
    /// For gaussian/bell/sigmoid, the support is truncated where membership
    /// falls below `1e-6`, which is sufficient for the sampled integration
    /// the defuzzifiers perform.
    #[must_use]
    pub fn support(&self) -> (f64, f64) {
        match *self {
            Self::Triangular { center, left_width, right_width } => {
                (center - left_width, center + right_width)
            }
            Self::Trapezoidal { left_top, right_top, left_width, right_width } => {
                (left_top - left_width, right_top + right_width)
            }
            Self::Gaussian { mean, sigma } => {
                // exp(-0.5 d^2) < 1e-6  <=>  |d| > ~5.26
                (mean - 5.26 * sigma, mean + 5.26 * sigma)
            }
            Self::Bell { center, width, slope } => {
                // 1/(1+d^(2 slope)) < 1e-6  <=>  d > 1e6^(1/(2 slope))
                let reach = width * 1e6_f64.powf(1.0 / (2.0 * slope));
                (center - reach, center + reach)
            }
            Self::Sigmoid { inflection, slope } => {
                // Membership crosses 1e-6 about 13.8/|slope| from the
                // inflection; the saturated side is unbounded so callers
                // should clip to the variable universe.
                let reach = 13.8 / slope.abs();
                (inflection - reach, f64::INFINITY.min(inflection + reach).max(inflection + reach))
            }
            Self::ZShape { start, end } => (f64::NEG_INFINITY, end.max(start)),
            Self::SShape { start, end } => (start.min(end), f64::INFINITY),
            Self::Singleton { value } => (value, value),
        }
    }

    /// Returns the *representative value* of the shape — the center of its
    /// maximum-membership region. Used by the weighted-average defuzzifier.
    #[must_use]
    pub fn representative(&self) -> f64 {
        match *self {
            Self::Triangular { center, .. } => center,
            Self::Trapezoidal { left_top, right_top, .. } => 0.5 * (left_top + right_top),
            Self::Gaussian { mean, .. } => mean,
            Self::Bell { center, .. } => center,
            Self::Sigmoid { inflection, slope } => {
                // The saturated plateau is unbounded; the inflection shifted
                // by one slope-width is a pragmatic stand-in.
                inflection + slope.signum() * (1.0 / slope.abs())
            }
            Self::ZShape { start, .. } => start,
            Self::SShape { end, .. } => end,
            Self::Singleton { value } => value,
        }
    }

    /// Returns `true` if the shape attains membership 1 somewhere
    /// (all shapes in this crate except [`MembershipFunction::Sigmoid`],
    /// [`MembershipFunction::Bell`] asymptotics are normal).
    #[must_use]
    pub fn is_normal(&self) -> bool {
        match *self {
            Self::Sigmoid { .. } => false,
            Self::Bell { .. } => true,
            _ => true,
        }
    }
}

/// The paper's `f(x; x0, a0, a1)` with zero-width sides treated as vertical
/// edges (membership jumps straight to 1 at the center).
fn triangle(x: f64, center: f64, left_width: f64, right_width: f64) -> f64 {
    if x == center {
        return 1.0;
    }
    if x < center {
        if left_width == 0.0 {
            return 0.0;
        }
        let mu = (x - center) / left_width + 1.0;
        mu.max(0.0)
    } else {
        if right_width == 0.0 {
            return 0.0;
        }
        let mu = (center - x) / right_width + 1.0;
        mu.max(0.0)
    }
}

/// The paper's `g(x; x0, x1, a0, a1)` with zero-width sides treated as
/// vertical edges.
fn trapezoid(x: f64, left_top: f64, right_top: f64, left_width: f64, right_width: f64) -> f64 {
    if x >= left_top && x <= right_top {
        return 1.0;
    }
    if x < left_top {
        if left_width == 0.0 {
            return 0.0;
        }
        let mu = (x - left_top) / left_width + 1.0;
        mu.max(0.0)
    } else {
        if right_width == 0.0 {
            return 0.0;
        }
        let mu = (right_top - x) / right_width + 1.0;
        mu.max(0.0)
    }
}

/// Smooth ascending spline used by the S and Z shapes (MATLAB `smf`).
fn s_spline(x: f64, start: f64, end: f64) -> f64 {
    if x <= start {
        return 0.0;
    }
    if x >= end {
        return 1.0;
    }
    let mid = 0.5 * (start + end);
    if x <= mid {
        let t = (x - start) / (end - start);
        2.0 * t * t
    } else {
        let t = (end - x) / (end - start);
        1.0 - 2.0 * t * t
    }
}

fn ensure_finite(values: &[f64]) -> Result<()> {
    for &v in values {
        if !v.is_finite() {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("parameter {v} is not finite"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn triangular_matches_paper_formula() {
        // f(x; x0=30, a0=15, a1=30): rises on (15, 30], falls on (30, 60].
        let mf = MembershipFunction::triangular(30.0, 15.0, 30.0).unwrap();
        assert_eq!(mf.evaluate(30.0), 1.0);
        assert!((mf.evaluate(22.5) - 0.5).abs() < EPS);
        assert!((mf.evaluate(45.0) - 0.5).abs() < EPS);
        assert_eq!(mf.evaluate(15.0), 0.0);
        assert_eq!(mf.evaluate(60.0), 0.0);
        assert_eq!(mf.evaluate(14.9), 0.0);
        assert_eq!(mf.evaluate(60.1), 0.0);
    }

    #[test]
    fn triangular_asymmetric_slopes() {
        let mf = MembershipFunction::triangular(0.0, 1.0, 4.0).unwrap();
        assert!((mf.evaluate(-0.5) - 0.5).abs() < EPS);
        assert!((mf.evaluate(2.0) - 0.5).abs() < EPS);
    }

    #[test]
    fn triangular_zero_left_width_is_vertical_edge() {
        // Paper's "Near" distance term sits at the universe edge 0 km.
        let mf = MembershipFunction::triangular(0.0, 0.0, 10.0).unwrap();
        assert_eq!(mf.evaluate(0.0), 1.0);
        assert_eq!(mf.evaluate(-0.001), 0.0);
        assert!((mf.evaluate(5.0) - 0.5).abs() < EPS);
        assert_eq!(mf.evaluate(10.0), 0.0);
    }

    #[test]
    fn triangular_rejects_two_zero_widths() {
        let err = MembershipFunction::triangular(1.0, 0.0, 0.0).unwrap_err();
        assert!(matches!(err, FuzzyError::InvalidMembership { .. }));
    }

    #[test]
    fn triangular_rejects_negative_width() {
        assert!(MembershipFunction::triangular(1.0, -1.0, 1.0).is_err());
        assert!(MembershipFunction::triangular(1.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn triangular_rejects_non_finite() {
        assert!(MembershipFunction::triangular(f64::NAN, 1.0, 1.0).is_err());
        assert!(MembershipFunction::triangular(0.0, f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn trapezoidal_matches_paper_formula() {
        // g(x; x0=0, x1=15, a0=0, a1=15): the paper's "Slow" speed term.
        let mf = MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0).unwrap();
        assert_eq!(mf.evaluate(0.0), 1.0);
        assert_eq!(mf.evaluate(10.0), 1.0);
        assert_eq!(mf.evaluate(15.0), 1.0);
        assert!((mf.evaluate(22.5) - 0.5).abs() < EPS);
        assert_eq!(mf.evaluate(30.0), 0.0);
    }

    #[test]
    fn trapezoidal_flat_top_is_inclusive() {
        let mf = MembershipFunction::trapezoidal(-1.0, 1.0, 1.0, 1.0).unwrap();
        assert_eq!(mf.evaluate(-1.0), 1.0);
        assert_eq!(mf.evaluate(1.0), 1.0);
        assert!((mf.evaluate(-1.5) - 0.5).abs() < EPS);
        assert!((mf.evaluate(1.5) - 0.5).abs() < EPS);
    }

    #[test]
    fn trapezoidal_rejects_inverted_top() {
        assert!(MembershipFunction::trapezoidal(2.0, 1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn degenerate_trapezoid_equals_triangle() {
        let tri = MembershipFunction::triangular(5.0, 2.0, 3.0).unwrap();
        let trap = MembershipFunction::trapezoidal(5.0, 5.0, 2.0, 3.0).unwrap();
        for i in 0..=100 {
            let x = 2.0 + i as f64 * 0.07;
            assert!((tri.evaluate(x) - trap.evaluate(x)).abs() < EPS, "x={x}");
        }
    }

    #[test]
    fn gaussian_peak_and_symmetry() {
        let mf = MembershipFunction::gaussian(2.0, 0.5).unwrap();
        assert_eq!(mf.evaluate(2.0), 1.0);
        assert!((mf.evaluate(1.5) - mf.evaluate(2.5)).abs() < EPS);
        assert!((mf.evaluate(2.5) - (-0.5f64).exp()).abs() < EPS);
    }

    #[test]
    fn gaussian_rejects_bad_sigma() {
        assert!(MembershipFunction::gaussian(0.0, 0.0).is_err());
        assert!(MembershipFunction::gaussian(0.0, -1.0).is_err());
    }

    #[test]
    fn bell_half_width_point() {
        let mf = MembershipFunction::bell(0.0, 2.0, 3.0).unwrap();
        assert_eq!(mf.evaluate(0.0), 1.0);
        assert!((mf.evaluate(2.0) - 0.5).abs() < EPS);
        assert!((mf.evaluate(-2.0) - 0.5).abs() < EPS);
    }

    #[test]
    fn sigmoid_direction_follows_slope_sign() {
        let rising = MembershipFunction::sigmoid(0.0, 2.0).unwrap();
        assert!(rising.evaluate(5.0) > 0.99);
        assert!(rising.evaluate(-5.0) < 0.01);
        let falling = MembershipFunction::sigmoid(0.0, -2.0).unwrap();
        assert!(falling.evaluate(5.0) < 0.01);
        assert!(falling.evaluate(-5.0) > 0.99);
    }

    #[test]
    fn z_and_s_shapes_are_complements() {
        let z = MembershipFunction::z_shape(1.0, 3.0).unwrap();
        let s = MembershipFunction::s_shape(1.0, 3.0).unwrap();
        for i in 0..=40 {
            let x = i as f64 * 0.1;
            assert!((z.evaluate(x) + s.evaluate(x) - 1.0).abs() < EPS, "x={x}");
        }
        assert_eq!(z.evaluate(0.0), 1.0);
        assert_eq!(z.evaluate(4.0), 0.0);
        assert_eq!(s.evaluate(0.0), 0.0);
        assert_eq!(s.evaluate(4.0), 1.0);
    }

    #[test]
    fn singleton_is_a_spike() {
        let mf = MembershipFunction::singleton(7.0).unwrap();
        assert_eq!(mf.evaluate(7.0), 1.0);
        assert_eq!(mf.evaluate(6.999), 0.0);
    }

    #[test]
    fn non_finite_inputs_evaluate_to_zero() {
        let mf = MembershipFunction::triangular(0.0, 1.0, 1.0).unwrap();
        assert_eq!(mf.evaluate(f64::NAN), 0.0);
        assert_eq!(mf.evaluate(f64::INFINITY), 0.0);
        assert_eq!(mf.evaluate(f64::NEG_INFINITY), 0.0);
    }

    #[test]
    fn support_bounds_contain_positive_membership() {
        let shapes = [
            MembershipFunction::triangular(3.0, 1.0, 2.0).unwrap(),
            MembershipFunction::trapezoidal(1.0, 2.0, 0.5, 0.5).unwrap(),
            MembershipFunction::gaussian(0.0, 1.0).unwrap(),
            MembershipFunction::bell(0.0, 1.0, 2.0).unwrap(),
        ];
        for mf in shapes {
            let (lo, hi) = mf.support();
            assert!(mf.evaluate(lo - 1.0) < 1e-5, "{mf:?}");
            assert!(mf.evaluate(hi + 1.0) < 1e-5, "{mf:?}");
            assert!(mf.evaluate(0.5 * (lo.max(-1e9) + hi.min(1e9))) > 0.0, "{mf:?}");
        }
    }

    #[test]
    fn representative_matches_peak_region() {
        assert_eq!(MembershipFunction::triangular(4.0, 1.0, 1.0).unwrap().representative(), 4.0);
        assert_eq!(
            MembershipFunction::trapezoidal(2.0, 6.0, 1.0, 1.0).unwrap().representative(),
            4.0
        );
        assert_eq!(MembershipFunction::gaussian(1.5, 1.0).unwrap().representative(), 1.5);
        assert_eq!(MembershipFunction::singleton(9.0).unwrap().representative(), 9.0);
    }

    #[test]
    fn serde_round_trip() {
        let mf = MembershipFunction::trapezoidal(0.0, 15.0, 0.0, 15.0).unwrap();
        let json = serde_json_like(&mf);
        assert!(json.contains("Trapezoidal"));
    }

    /// serde_json is not an allowed dependency; the Debug representation is
    /// enough to confirm the Serialize derive compiles and fields are named.
    fn serde_json_like(mf: &MembershipFunction) -> String {
        format!("{mf:?}")
    }
}
