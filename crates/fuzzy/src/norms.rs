//! Triangular norms and co-norms used to combine membership degrees.
//!
//! The paper's FLC uses the classic Mamdani configuration — `min` for AND
//! and implication, `max` for aggregation — but the engine exposes the
//! standard alternatives so the ablation benches can compare them.

use serde::{Deserialize, Serialize};

/// T-norm: fuzzy conjunction (`AND`) over `[0, 1] x [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TNorm {
    /// Gödel / Mamdani minimum: `min(a, b)`. The paper's choice.
    #[default]
    Minimum,
    /// Algebraic product: `a * b`.
    Product,
    /// Łukasiewicz: `max(0, a + b - 1)`.
    Lukasiewicz,
    /// Drastic product: `min` when one operand is 1, else 0.
    Drastic,
}

impl TNorm {
    /// Applies the norm to two membership degrees.
    ///
    /// Inputs are clamped to `[0, 1]` first so the algebra below cannot
    /// escape the unit interval.
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let a = a.clamp(0.0, 1.0);
        let b = b.clamp(0.0, 1.0);
        match self {
            TNorm::Minimum => a.min(b),
            TNorm::Product => a * b,
            TNorm::Lukasiewicz => (a + b - 1.0).max(0.0),
            TNorm::Drastic => {
                if a == 1.0 {
                    b
                } else if b == 1.0 {
                    a
                } else {
                    0.0
                }
            }
        }
    }

    /// Folds the norm across an iterator of degrees; the empty fold is the
    /// norm's identity element `1`.
    #[must_use]
    pub fn fold(self, degrees: impl IntoIterator<Item = f64>) -> f64 {
        degrees.into_iter().fold(1.0, |acc, d| self.apply(acc, d))
    }
}

/// S-norm (t-co-norm): fuzzy disjunction (`OR`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SNorm {
    /// Gödel maximum: `max(a, b)`. The paper's choice.
    #[default]
    Maximum,
    /// Probabilistic sum: `a + b - a*b`.
    ProbabilisticSum,
    /// Bounded sum: `min(1, a + b)`.
    BoundedSum,
    /// Drastic sum: `max` when one operand is 0, else 1.
    Drastic,
}

impl SNorm {
    /// Applies the co-norm to two membership degrees (inputs clamped to
    /// `[0, 1]`).
    #[must_use]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let a = a.clamp(0.0, 1.0);
        let b = b.clamp(0.0, 1.0);
        match self {
            SNorm::Maximum => a.max(b),
            SNorm::ProbabilisticSum => a + b - a * b,
            SNorm::BoundedSum => (a + b).min(1.0),
            SNorm::Drastic => {
                if a == 0.0 {
                    b
                } else if b == 0.0 {
                    a
                } else {
                    1.0
                }
            }
        }
    }

    /// Folds the co-norm across an iterator of degrees; the empty fold is
    /// the co-norm's identity element `0`.
    #[must_use]
    pub fn fold(self, degrees: impl IntoIterator<Item = f64>) -> f64 {
        degrees.into_iter().fold(0.0, |acc, d| self.apply(acc, d))
    }
}

/// Implication operator: shapes a consequent membership by the rule's firing
/// strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Implication {
    /// Mamdani clipping: `min(strength, mu)`. The paper's choice.
    #[default]
    Minimum,
    /// Larsen scaling: `strength * mu`.
    Product,
}

impl Implication {
    /// Applies the implication of firing `strength` to membership `mu`.
    #[must_use]
    pub fn apply(self, strength: f64, mu: f64) -> f64 {
        let strength = strength.clamp(0.0, 1.0);
        let mu = mu.clamp(0.0, 1.0);
        match self {
            Implication::Minimum => strength.min(mu),
            Implication::Product => strength * mu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CASES: &[(f64, f64)] =
        &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (0.3, 0.7), (0.5, 0.5), (0.9, 0.2)];

    #[test]
    fn tnorm_axioms_hold() {
        for norm in [TNorm::Minimum, TNorm::Product, TNorm::Lukasiewicz, TNorm::Drastic] {
            for &(a, b) in CASES {
                let ab = norm.apply(a, b);
                // Commutativity.
                assert_eq!(ab, norm.apply(b, a), "{norm:?} commutativity");
                // Identity element 1.
                assert!((norm.apply(a, 1.0) - a).abs() < 1e-12, "{norm:?} identity");
                // Bounded by min.
                assert!(ab <= a.min(b) + 1e-12, "{norm:?} bounded by min");
                // Range.
                assert!((0.0..=1.0).contains(&ab), "{norm:?} range");
            }
        }
    }

    #[test]
    fn snorm_axioms_hold() {
        for norm in [SNorm::Maximum, SNorm::ProbabilisticSum, SNorm::BoundedSum, SNorm::Drastic] {
            for &(a, b) in CASES {
                let ab = norm.apply(a, b);
                assert_eq!(ab, norm.apply(b, a), "{norm:?} commutativity");
                assert!((norm.apply(a, 0.0) - a).abs() < 1e-12, "{norm:?} identity");
                assert!(ab >= a.max(b) - 1e-12, "{norm:?} bounded by max");
                assert!((0.0..=1.0).contains(&ab), "{norm:?} range");
            }
        }
    }

    #[test]
    fn minimum_and_product_values() {
        assert_eq!(TNorm::Minimum.apply(0.3, 0.7), 0.3);
        assert!((TNorm::Product.apply(0.3, 0.7) - 0.21).abs() < 1e-12);
        assert_eq!(SNorm::Maximum.apply(0.3, 0.7), 0.7);
        assert!((SNorm::ProbabilisticSum.apply(0.3, 0.7) - 0.79).abs() < 1e-12);
    }

    #[test]
    fn lukasiewicz_saturates_at_zero() {
        assert_eq!(TNorm::Lukasiewicz.apply(0.2, 0.3), 0.0);
        assert!((TNorm::Lukasiewicz.apply(0.8, 0.7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn folds_use_identities() {
        assert_eq!(TNorm::Minimum.fold(std::iter::empty()), 1.0);
        assert_eq!(SNorm::Maximum.fold(std::iter::empty()), 0.0);
        assert_eq!(TNorm::Minimum.fold([0.9, 0.4, 0.6]), 0.4);
        assert_eq!(SNorm::Maximum.fold([0.1, 0.4, 0.2]), 0.4);
    }

    #[test]
    fn implication_clips_or_scales() {
        assert_eq!(Implication::Minimum.apply(0.4, 0.9), 0.4);
        assert_eq!(Implication::Minimum.apply(0.9, 0.4), 0.4);
        assert!((Implication::Product.apply(0.5, 0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        assert_eq!(TNorm::Minimum.apply(-0.5, 2.0), 0.0);
        assert_eq!(SNorm::Maximum.apply(-0.5, 2.0), 1.0);
        assert_eq!(Implication::Product.apply(2.0, 2.0), 1.0);
    }

    #[test]
    fn defaults_match_the_paper() {
        assert_eq!(TNorm::default(), TNorm::Minimum);
        assert_eq!(SNorm::default(), SNorm::Maximum);
        assert_eq!(Implication::default(), Implication::Minimum);
    }
}
