//! A small textual rule language, so rule bases can live in config files:
//!
//! ```text
//! # FRB1, rule 6 (paper Table 1)
//! RULE r6: IF s IS sl AND a IS st AND d IS n THEN cv IS cv9
//! IF cv IS g AND r IS vi AND cs IS f THEN ar IS reject WITH 1.0
//! ```
//!
//! Grammar (case-insensitive keywords; one rule per line):
//!
//! ```text
//! rule      := [ "RULE" ident ":" ] "IF" clauses "THEN" assigns [ "WITH" number ]
//! clauses   := clause { ("AND" | "OR") clause }        // no mixing
//! clause    := ident "IS" [ "NOT" ] ident
//! assigns   := assign { "AND" assign }
//! assign    := ident "IS" ident
//! ```
//!
//! Lines that are empty or start with `#` or `//` are skipped.

use crate::error::{FuzzyError, Result};
use crate::rule::{Connective, Rule, RuleBuilder};

/// Parses a whole rule script (one rule per non-comment line).
///
/// # Errors
///
/// Returns [`FuzzyError::Parse`] with line/column positions on the first
/// malformed rule.
///
/// # Examples
///
/// ```
/// use facs_fuzzy::parse_rules;
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let rules = parse_rules(
///     "# mobility correction\n\
///      IF s IS sl AND a IS st AND d IS n THEN cv IS cv9\n\
///      IF s IS fa AND a IS b1 AND d IS f THEN cv IS cv1\n",
/// )?;
/// assert_eq!(rules.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_rules(text: &str) -> Result<Vec<Rule>> {
    let mut rules = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        rules.push(parse_rule_line(line, line_no + 1)?);
    }
    Ok(rules)
}

/// Parses a single rule from one line of text.
///
/// # Errors
///
/// Returns [`FuzzyError::Parse`] describing the first token that did not
/// match the grammar.
pub fn parse_rule(line: &str) -> Result<Rule> {
    parse_rule_line(line.trim(), 1)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// Keyword or identifier (already lowercased).
    Word(String),
    /// A numeric literal.
    Number(f64),
    /// The `:` after a rule label.
    Colon,
}

struct Tokenizer<'a> {
    rest: &'a str,
    line: usize,
    consumed: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(text: &'a str, line: usize) -> Self {
        Self { rest: text, line, consumed: 0 }
    }

    fn error(&self, message: impl Into<String>) -> FuzzyError {
        FuzzyError::Parse { line: self.line, column: self.consumed + 1, message: message.into() }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize)>> {
        let trimmed = self.rest.trim_start();
        self.consumed += self.rest.len() - trimmed.len();
        self.rest = trimmed;
        if self.rest.is_empty() {
            return Ok(None);
        }
        let column = self.consumed + 1;
        let mut chars = self.rest.chars();
        let first = chars.next().expect("non-empty");
        if first == ':' {
            self.rest = &self.rest[1..];
            self.consumed += 1;
            return Ok(Some((Token::Colon, column)));
        }
        let is_word_char =
            |c: char| c.is_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '+';
        if !is_word_char(first) {
            return Err(self.error(format!("unexpected character `{first}`")));
        }
        let end = self.rest.find(|c: char| !is_word_char(c)).unwrap_or(self.rest.len());
        let word = &self.rest[..end];
        self.rest = &self.rest[end..];
        self.consumed += end;
        // Numbers: anything that parses as f64 and starts with digit/sign/dot.
        let starts_numeric = first.is_ascii_digit() || first == '-' || first == '+' || first == '.';
        if starts_numeric {
            return match word.parse::<f64>() {
                Ok(n) => Ok(Some((Token::Number(n), column))),
                Err(_) => Err(self.error(format!("malformed number `{word}`"))),
            };
        }
        Ok(Some((Token::Word(word.to_ascii_lowercase()), column)))
    }
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    line: usize,
}

impl Parser {
    fn error_at(&self, column: usize, message: impl Into<String>) -> FuzzyError {
        FuzzyError::Parse { line: self.line, column, message: message.into() }
    }

    fn error_here(&self, message: impl Into<String>) -> FuzzyError {
        let column = self
            .tokens
            .get(self.pos)
            .map(|&(_, c)| c)
            .or_else(|| self.tokens.last().map(|&(_, c)| c))
            .unwrap_or(1);
        self.error_at(column, message)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<()> {
        match self.advance() {
            Some(Token::Word(w)) if w == keyword => Ok(()),
            Some(other) => {
                let found = describe(other);
                let column = self.tokens[self.pos - 1].1;
                Err(self.error_at(
                    column,
                    format!("expected `{}`, found {found}", keyword.to_uppercase()),
                ))
            }
            None => Err(self
                .error_here(format!("expected `{}`, found end of line", keyword.to_uppercase()))),
        }
    }

    fn expect_identifier(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            Some(Token::Word(w)) if !is_keyword(w) => Ok(w.clone()),
            Some(other) => {
                let found = describe(other);
                let column = self.tokens[self.pos - 1].1;
                Err(self.error_at(column, format!("expected {what}, found {found}")))
            }
            None => Err(self.error_here(format!("expected {what}, found end of line"))),
        }
    }
}

fn is_keyword(word: &str) -> bool {
    matches!(word, "if" | "then" | "and" | "or" | "is" | "not" | "with" | "rule")
}

fn describe(token: &Token) -> String {
    match token {
        Token::Word(w) => format!("`{w}`"),
        Token::Number(n) => format!("number {n}"),
        Token::Colon => "`:`".into(),
    }
}

fn parse_rule_line(line: &str, line_no: usize) -> Result<Rule> {
    let mut tokenizer = Tokenizer::new(line, line_no);
    let mut tokens = Vec::new();
    while let Some(tok) = tokenizer.next_token()? {
        tokens.push(tok);
    }
    let mut parser = Parser { tokens, pos: 0, line: line_no };

    // Optional "RULE label :" prefix.
    let mut label = None;
    if parser.peek() == Some(&Token::Word("rule".into())) {
        parser.advance();
        label = Some(parser.expect_identifier("rule label")?);
        match parser.advance() {
            Some(Token::Colon) => {}
            _ => return Err(parser.error_here("expected `:` after rule label")),
        }
    }

    parser.expect_keyword("if")?;

    // First clause.
    let (variable, term, negated) = parse_clause(&mut parser)?;
    let mut builder: RuleBuilder =
        if negated { Rule::when_not(variable, term) } else { Rule::when(variable, term) };
    if let Some(l) = label {
        builder = builder.label(l);
    }

    // Further clauses until THEN.
    let mut connective: Option<Connective> = None;
    loop {
        match parser.peek() {
            Some(Token::Word(w)) if w == "then" => {
                parser.advance();
                break;
            }
            Some(Token::Word(w)) if w == "and" || w == "or" => {
                let this = if w == "and" { Connective::And } else { Connective::Or };
                if let Some(prev) = connective {
                    if prev != this {
                        return Err(parser.error_here("cannot mix AND and OR within one rule"));
                    }
                }
                connective = Some(this);
                parser.advance();
                let (variable, term, negated) = parse_clause(&mut parser)?;
                builder = match (this, negated) {
                    (Connective::And, false) => builder.and(variable, term),
                    (Connective::And, true) => builder.and_not(variable, term),
                    (Connective::Or, false) => builder.or(variable, term),
                    (Connective::Or, true) => builder.or_not(variable, term),
                };
            }
            Some(_) => return Err(parser.error_here("expected `AND`, `OR` or `THEN`")),
            None => return Err(parser.error_here("expected `THEN`, found end of line")),
        }
    }

    // Consequents: assign { AND assign }.
    let (variable, term) = parse_assign(&mut parser)?;
    builder = builder.then(variable, term);
    loop {
        match parser.peek() {
            Some(Token::Word(w)) if w == "and" => {
                parser.advance();
                let (variable, term) = parse_assign(&mut parser)?;
                builder = builder.then(variable, term);
            }
            _ => break,
        }
    }

    // Optional "WITH weight".
    if let Some(Token::Word(w)) = parser.peek() {
        if w == "with" {
            parser.advance();
            match parser.advance() {
                Some(Token::Number(n)) => {
                    let n = *n;
                    builder = builder.weight(n);
                }
                _ => return Err(parser.error_here("expected a number after `WITH`")),
            }
        }
    }

    if parser.peek().is_some() {
        return Err(parser.error_here("unexpected trailing tokens"));
    }

    builder.build().map_err(|e| FuzzyError::Parse {
        line: line_no,
        column: 1,
        message: e.to_string(),
    })
}

fn parse_clause(parser: &mut Parser) -> Result<(String, String, bool)> {
    let variable = parser.expect_identifier("a variable name")?;
    parser.expect_keyword("is")?;
    let negated = if parser.peek() == Some(&Token::Word("not".into())) {
        parser.advance();
        true
    } else {
        false
    };
    let term = parser.expect_identifier("a term name")?;
    Ok((variable, term, negated))
}

fn parse_assign(parser: &mut Parser) -> Result<(String, String)> {
    let variable = parser.expect_identifier("an output variable name")?;
    parser.expect_keyword("is")?;
    let term = parser.expect_identifier("an output term name")?;
    Ok((variable, term))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_rule() {
        let rule = parse_rule("IF s IS sl AND a IS st AND d IS n THEN cv IS cv9").unwrap();
        assert_eq!(rule.clauses().len(), 3);
        assert_eq!(rule.connective(), Connective::And);
        assert_eq!(rule.consequents()[0].variable(), "cv");
        assert_eq!(rule.consequents()[0].term(), "cv9");
    }

    #[test]
    fn parses_label_and_weight() {
        let rule = parse_rule("RULE r6: IF s IS sl THEN cv IS cv9 WITH 0.75").unwrap();
        assert_eq!(rule.label(), Some("r6"));
        assert_eq!(rule.weight(), 0.75);
    }

    #[test]
    fn parses_negation() {
        let rule = parse_rule("IF s IS NOT sl THEN cv IS cv1").unwrap();
        assert!(rule.clauses()[0].negated());
    }

    #[test]
    fn parses_or_rules() {
        let rule = parse_rule("IF a IS x OR b IS y THEN o IS t").unwrap();
        assert_eq!(rule.connective(), Connective::Or);
    }

    #[test]
    fn parses_multiple_consequents() {
        let rule = parse_rule("IF a IS x THEN o1 IS t1 AND o2 IS t2").unwrap();
        assert_eq!(rule.consequents().len(), 2);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let rule = parse_rule("if a is x then o is t").unwrap();
        assert_eq!(rule.clauses()[0].variable(), "a");
        let rule = parse_rule("If a Is x Then o iS t").unwrap();
        assert_eq!(rule.consequents()[0].term(), "t");
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let rules = parse_rules(
            "\n# comment\n// another\n   \nIF a IS x THEN o IS t\n\nIF b IS y THEN o IS u\n",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn error_positions_are_one_based() {
        let err = parse_rules("IF a IS x THEN o IS t\nIF broken\n").unwrap_err();
        match err {
            FuzzyError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_mixed_connectives() {
        let err = parse_rule("IF a IS x AND b IS y OR c IS z THEN o IS t").unwrap_err();
        assert!(err.to_string().contains("mix"));
    }

    #[test]
    fn rejects_missing_then() {
        assert!(parse_rule("IF a IS x").is_err());
    }

    #[test]
    fn rejects_missing_if() {
        assert!(parse_rule("a IS x THEN o IS t").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_rule("IF a IS x THEN o IS t banana").is_err());
    }

    #[test]
    fn rejects_bad_weight() {
        assert!(parse_rule("IF a IS x THEN o IS t WITH banana").is_err());
        assert!(parse_rule("IF a IS x THEN o IS t WITH 2.0").is_err());
    }

    #[test]
    fn rejects_keyword_as_identifier() {
        assert!(parse_rule("IF then IS x THEN o IS t").is_err());
    }

    #[test]
    fn identifiers_may_contain_digits() {
        let rule = parse_rule("IF cv IS cv3 AND a IS b1 THEN ar IS wa").unwrap();
        assert_eq!(rule.clauses()[0].term(), "cv3");
        assert_eq!(rule.clauses()[1].term(), "b1");
    }

    #[test]
    fn round_trips_through_builder_equivalent() {
        let parsed = parse_rule("IF s IS sl AND a IS st THEN cv IS cv9").unwrap();
        let built = Rule::when("s", "sl").and("a", "st").then("cv", "cv9").build().unwrap();
        assert_eq!(parsed.clauses(), built.clauses());
        assert_eq!(parsed.consequents(), built.consequents());
    }
}
