//! The Mamdani inference engine: fuzzifier, inference, rule base, and
//! defuzzifier composed behind one API (the FLC structure of paper Fig. 2).

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::defuzz::{Defuzzifier, DEFAULT_RESOLUTION};
use crate::error::{FuzzyError, Result};
use crate::norms::{Implication, SNorm, TNorm};
use crate::rule::{Connective, Rule, RuleBase};
use crate::set::SampledSet;
use crate::variable::Variable;

/// Tunable operators of the inference pipeline.
///
/// The default configuration is the paper's: `min` conjunction, `max`
/// disjunction, Mamdani clipping, `max` aggregation, centroid
/// defuzzification over [`DEFAULT_RESOLUTION`] samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Conjunction operator for `AND` antecedents.
    pub tnorm: TNorm,
    /// Disjunction operator for `OR` antecedents.
    pub snorm: SNorm,
    /// Implication operator shaping consequents.
    pub implication: Implication,
    /// Aggregation operator combining rule outputs.
    pub aggregation: SNorm,
    /// Defuzzification strategy.
    pub defuzzifier: Defuzzifier,
    /// Sample count for area-based defuzzifiers.
    pub resolution: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        Self {
            tnorm: TNorm::Minimum,
            snorm: SNorm::Maximum,
            implication: Implication::Minimum,
            aggregation: SNorm::Maximum,
            defuzzifier: Defuzzifier::Centroid,
            resolution: DEFAULT_RESOLUTION,
        }
    }
}

/// A rule with every name resolved to indices — built once, evaluated hot.
#[derive(Debug, Clone)]
struct CompiledRule {
    clauses: Vec<CompiledClause>,
    connective: Connective,
    consequents: Vec<CompiledConsequent>,
    weight: f64,
}

#[derive(Debug, Clone, Copy)]
struct CompiledClause {
    input: usize,
    term: usize,
    negated: bool,
}

#[derive(Debug, Clone, Copy)]
struct CompiledConsequent {
    output: usize,
    term: usize,
}

/// Reusable evaluation buffers, one set per thread.
///
/// Inference needs several short-lived vectors (clamped readings, term
/// memberships, rule firings, the aggregation surface). Allocating them
/// per call dominated the exact backend's profile, so they live in a
/// thread-local pool instead: `Engine::evaluate*` stays `&self` (the
/// engine remains `Send + Sync` and shareable across threads) while the
/// steady-state hot path allocates nothing.
#[derive(Debug, Default)]
struct Scratch {
    /// Clamped input readings, in declaration order.
    readings: Vec<f64>,
    /// Which inputs have been supplied (name-based entry point only).
    filled: Vec<bool>,
    /// Flattened `memberships[term_offsets[input] + term]`.
    memberships: Vec<f64>,
    /// Firing strength per rule (crisp-only path; the outcome path
    /// allocates because the firings escape into the returned value).
    firings: Vec<f64>,
    /// `(strength, representative)` pairs for weighted-average defuzz.
    activations: Vec<(f64, f64)>,
    /// Aggregation surfaces reused by the crisp-only path, one per
    /// distinct (universe, resolution) shape seen on this thread — so
    /// engines with different output universes (e.g. the FLC1 → FLC2
    /// cascade) each keep their own buffer instead of evicting each
    /// other's.
    surfaces: Vec<SampledSet>,
}

/// Upper bound on distinct scratch surfaces kept per thread; beyond it
/// the oldest slot is recycled (threads normally alternate between a
/// handful of engines, so this is never hit in practice).
const MAX_SCRATCH_SURFACES: usize = 8;

impl Scratch {
    /// A zeroed surface of the requested shape from `surfaces`, reusing
    /// a cached buffer when one matches. (Takes the field rather than
    /// `&mut self` so callers can hold other scratch fields at the same
    /// time.)
    fn surface_for_in<'a>(
        surfaces: &'a mut Vec<SampledSet>,
        var: &Variable,
        resolution: usize,
    ) -> Result<&'a mut SampledSet> {
        if let Some(i) = surfaces
            .iter()
            .position(|s| s.len() == resolution && s.min() == var.min() && s.max() == var.max())
        {
            let surface = &mut surfaces[i];
            surface.zero();
            return Ok(surface);
        }
        let fresh = SampledSet::empty(var.min(), var.max(), resolution)?;
        if surfaces.len() >= MAX_SCRATCH_SURFACES {
            surfaces[0] = fresh;
            return Ok(&mut surfaces[0]);
        }
        surfaces.push(fresh);
        Ok(surfaces.last_mut().expect("just pushed"))
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// One crisp output plus its supporting evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputValue {
    name: String,
    crisp: f64,
    surface: Option<SampledSet>,
}

impl OutputValue {
    /// The output variable name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The defuzzified crisp value.
    #[must_use]
    pub fn crisp(&self) -> f64 {
        self.crisp
    }

    /// The aggregated fuzzy surface this value was defuzzified from
    /// (`None` under the weighted-average strategy, which skips it).
    #[must_use]
    pub fn surface(&self) -> Option<&SampledSet> {
        self.surface.as_ref()
    }
}

/// The result of one inference pass: crisp outputs plus per-rule firing
/// strengths (exposed per C-INTERMEDIATE so callers can audit decisions).
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    outputs: Vec<OutputValue>,
    firings: Vec<f64>,
}

impl Outcome {
    /// Crisp value of the named output, if it exists.
    #[must_use]
    pub fn crisp(&self, name: &str) -> Option<f64> {
        let lower = name.to_ascii_lowercase();
        self.outputs.iter().find(|o| o.name == lower).map(|o| o.crisp)
    }

    /// Full [`OutputValue`] of the named output.
    #[must_use]
    pub fn output(&self, name: &str) -> Option<&OutputValue> {
        let lower = name.to_ascii_lowercase();
        self.outputs.iter().find(|o| o.name == lower)
    }

    /// All outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[OutputValue] {
        &self.outputs
    }

    /// Firing strength of every rule, in rule-base order.
    #[must_use]
    pub fn firing_strengths(&self) -> &[f64] {
        &self.firings
    }

    /// Index and strength of the strongest-firing rule, or `None` when
    /// nothing fired.
    #[must_use]
    pub fn dominant_rule(&self) -> Option<(usize, f64)> {
        self.firings
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, s)| s > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// A compiled Mamdani fuzzy-logic controller.
///
/// Build with [`Engine::builder`]; evaluate with [`Engine::evaluate`] (or
/// [`Engine::evaluate_single`] when there is exactly one output):
///
/// ```
/// use facs_fuzzy::{Engine, MembershipFunction, Rule, Variable};
///
/// # fn main() -> Result<(), facs_fuzzy::FuzzyError> {
/// let service = Variable::builder("service", 0.0, 10.0)
///     .term("poor", MembershipFunction::triangular(0.0, 0.0, 5.0)?)
///     .term("good", MembershipFunction::triangular(5.0, 5.0, 5.0)?)
///     .term("excellent", MembershipFunction::triangular(10.0, 5.0, 0.0)?)
///     .build()?;
/// let tip = Variable::builder("tip", 0.0, 30.0)
///     .term("low", MembershipFunction::triangular(5.0, 5.0, 5.0)?)
///     .term("medium", MembershipFunction::triangular(15.0, 5.0, 5.0)?)
///     .term("high", MembershipFunction::triangular(25.0, 5.0, 5.0)?)
///     .build()?;
/// let engine = Engine::builder()
///     .input(service)
///     .output(tip)
///     .rule(Rule::when("service", "poor").then("tip", "low").build()?)
///     .rule(Rule::when("service", "good").then("tip", "medium").build()?)
///     .rule(Rule::when("service", "excellent").then("tip", "high").build()?)
///     .build()?;
/// let tip = engine.evaluate_single(&[("service", 10.0)])?;
/// assert!(tip > 20.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    inputs: Vec<Variable>,
    outputs: Vec<Variable>,
    input_index: HashMap<String, usize>,
    output_index: HashMap<String, usize>,
    rule_base: RuleBase,
    compiled: Vec<CompiledRule>,
    fallbacks: HashMap<usize, f64>,
    config: InferenceConfig,
    /// `term_offsets[i]` is where input `i`'s term memberships start in
    /// the flattened scratch membership buffer; the final entry is the
    /// total term count.
    term_offsets: Vec<usize>,
}

impl Engine {
    /// Starts building an engine.
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The input variables, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[Variable] {
        &self.inputs
    }

    /// The output variables, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[Variable] {
        &self.outputs
    }

    /// The rule base the engine was compiled from.
    #[must_use]
    pub fn rule_base(&self) -> &RuleBase {
        &self.rule_base
    }

    /// Looks an input variable up by (case-insensitive) name.
    #[must_use]
    pub fn input_variable(&self, name: &str) -> Option<&Variable> {
        self.input_index.get(&name.to_ascii_lowercase()).map(|&i| &self.inputs[i])
    }

    /// Looks an output variable up by (case-insensitive) name.
    #[must_use]
    pub fn output_variable(&self, name: &str) -> Option<&Variable> {
        self.output_index.get(&name.to_ascii_lowercase()).map(|&i| &self.outputs[i])
    }

    /// The inference configuration.
    #[must_use]
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// Runs one inference pass.
    ///
    /// `values` pairs input-variable names with crisp readings; order does
    /// not matter and names are case-insensitive. Readings are clamped into
    /// each variable's universe.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::UnknownVariable`] — a supplied name is not an input;
    /// * [`FuzzyError::MissingInput`] — an input variable got no value;
    /// * [`FuzzyError::NonFiniteInput`] — a value is NaN or infinite;
    /// * [`FuzzyError::NoRuleFired`] — an output received no rule mass and
    ///   has no fallback configured.
    pub fn evaluate(&self, values: &[(&str, f64)]) -> Result<Outcome> {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            self.gather_inputs_into(values, scratch)?;
            self.fuzzify_into(scratch);
            // The firings escape into the returned `Outcome`, so this one
            // vector is allocated per call by design.
            let mut firings = vec![0.0; self.compiled.len()];
            self.fire_rules_into(&scratch.memberships, &mut firings);
            let outputs = self.infer_outputs(&firings, &mut scratch.activations)?;
            Ok(Outcome { outputs, firings })
        })
    }

    /// Runs one inference pass over positional readings and returns the
    /// single output's crisp value.
    ///
    /// `readings` pairs with the input variables **in declaration order**
    /// and each value is clamped into its variable's universe. This is
    /// the allocation-free hot path behind the admission cascade and the
    /// compiled-surface builder: all intermediate buffers (including the
    /// aggregation surface) come from a per-thread scratch pool, so the
    /// steady state performs no heap allocation. Results are bit-identical
    /// to [`Engine::evaluate`] + [`Outcome::crisp`].
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::MissingInput`] — fewer readings than inputs;
    /// * [`FuzzyError::UnknownVariable`] — more readings than inputs;
    /// * [`FuzzyError::NonFiniteInput`] — a reading is NaN or infinite;
    /// * [`FuzzyError::NoRuleFired`] — no rule mass and no fallback;
    /// * [`FuzzyError::InvalidMembership`] — the engine has more than one
    ///   output (use [`Engine::evaluate`] there).
    pub fn evaluate_crisp(&self, readings: &[f64]) -> Result<f64> {
        if self.outputs.len() != 1 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "evaluate_crisp requires exactly one output (engine has {})",
                    self.outputs.len()
                ),
            });
        }
        if readings.len() < self.inputs.len() {
            return Err(FuzzyError::MissingInput {
                variable: self.inputs[readings.len()].name().to_owned(),
            });
        }
        if readings.len() > self.inputs.len() {
            return Err(FuzzyError::UnknownVariable {
                variable: format!("positional input #{}", self.inputs.len()),
            });
        }
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.readings.clear();
            for (var, &value) in self.inputs.iter().zip(readings) {
                if !value.is_finite() {
                    return Err(FuzzyError::NonFiniteInput {
                        variable: var.name().to_owned(),
                        value,
                    });
                }
                scratch.readings.push(var.clamp(value));
            }
            self.fuzzify_into(scratch);
            let Scratch { memberships, firings, .. } = scratch;
            firings.clear();
            firings.resize(self.compiled.len(), 0.0);
            self.fire_rules_into(memberships, firings);
            let var = &self.outputs[0];
            if self.config.defuzzifier.needs_surface() {
                let Scratch { firings, surfaces, .. } = scratch;
                let surface = Scratch::surface_for_in(surfaces, var, self.config.resolution)?;
                if self.accumulate_surface(0, var, firings, surface) {
                    self.crisp_of_surface(var, surface)
                } else {
                    self.fallback_crisp(0, var)
                }
            } else {
                self.crisp_weighted(0, var, &scratch.firings, &mut scratch.activations)
            }
        })
    }

    /// Like [`Engine::evaluate`] but returns the single output's crisp
    /// value directly.
    ///
    /// # Errors
    ///
    /// As [`Engine::evaluate`]. Additionally returns an error if the engine
    /// has more than one output (use `evaluate` there).
    pub fn evaluate_single(&self, values: &[(&str, f64)]) -> Result<f64> {
        if self.outputs.len() != 1 {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "evaluate_single requires exactly one output (engine has {})",
                    self.outputs.len()
                ),
            });
        }
        let outcome = self.evaluate(values)?;
        Ok(outcome.outputs[0].crisp)
    }

    /// Resolves name-keyed values into `scratch.readings` (declaration
    /// order, clamped), reusing the scratch slot/flag buffers instead of
    /// allocating per call.
    fn gather_inputs_into(&self, values: &[(&str, f64)], scratch: &mut Scratch) -> Result<()> {
        scratch.readings.clear();
        scratch.readings.resize(self.inputs.len(), 0.0);
        scratch.filled.clear();
        scratch.filled.resize(self.inputs.len(), false);
        for &(name, value) in values {
            let lower = name.to_ascii_lowercase();
            let idx = self
                .input_index
                .get(&lower)
                .copied()
                .ok_or_else(|| FuzzyError::UnknownVariable { variable: lower.clone() })?;
            if !value.is_finite() {
                return Err(FuzzyError::NonFiniteInput { variable: lower, value });
            }
            scratch.readings[idx] = self.inputs[idx].clamp(value);
            scratch.filled[idx] = true;
        }
        if let Some(i) = scratch.filled.iter().position(|&f| !f) {
            return Err(FuzzyError::MissingInput { variable: self.inputs[i].name().to_owned() });
        }
        Ok(())
    }

    /// Membership of each reading in each term, flattened into
    /// `scratch.memberships` at `self.term_offsets`.
    fn fuzzify_into(&self, scratch: &mut Scratch) {
        scratch.memberships.clear();
        for (var, &x) in self.inputs.iter().zip(&scratch.readings) {
            scratch.memberships.extend(var.terms().iter().map(|t| t.membership(x)));
        }
    }

    /// Firing strength per rule: connective fold over clause memberships,
    /// scaled by the rule weight. `firings` must already hold one slot per
    /// rule.
    fn fire_rules_into(&self, memberships: &[f64], firings: &mut [f64]) {
        for (slot, rule) in firings.iter_mut().zip(&self.compiled) {
            let mut degrees = rule.clauses.iter().map(|c| {
                let mu = memberships[self.term_offsets[c.input] + c.term];
                if c.negated {
                    1.0 - mu
                } else {
                    mu
                }
            });
            let strength = match rule.connective {
                Connective::And => {
                    let first = degrees.next().unwrap_or(1.0);
                    degrees.fold(first, |acc, d| self.config.tnorm.apply(acc, d))
                }
                Connective::Or => {
                    let first = degrees.next().unwrap_or(0.0);
                    degrees.fold(first, |acc, d| self.config.snorm.apply(acc, d))
                }
            };
            *slot = strength * rule.weight;
        }
    }

    fn infer_outputs(
        &self,
        firings: &[f64],
        activations: &mut Vec<(f64, f64)>,
    ) -> Result<Vec<OutputValue>> {
        let mut outputs = Vec::with_capacity(self.outputs.len());
        for (out_idx, var) in self.outputs.iter().enumerate() {
            let value = if self.config.defuzzifier.needs_surface() {
                self.defuzzify_surface(out_idx, var, firings)?
            } else {
                let crisp = self.crisp_weighted(out_idx, var, firings, activations)?;
                OutputValue { name: var.name().to_owned(), crisp, surface: None }
            };
            outputs.push(value);
        }
        Ok(outputs)
    }

    /// Aggregates every firing consequent of `out_idx` into `surface`
    /// (which must already be zeroed and shaped to the output universe).
    /// Returns `false` when no rule contributed mass.
    fn accumulate_surface(
        &self,
        out_idx: usize,
        var: &Variable,
        firings: &[f64],
        surface: &mut SampledSet,
    ) -> bool {
        let mut any_mass = false;
        for (rule, &strength) in self.compiled.iter().zip(firings) {
            if strength <= 0.0 {
                continue;
            }
            for consequent in &rule.consequents {
                if consequent.output != out_idx {
                    continue;
                }
                any_mass = true;
                let mf = var.terms()[consequent.term].function();
                surface.merge_from_fn(
                    |x| self.config.implication.apply(strength, mf.evaluate(x)),
                    |a, b| self.config.aggregation.apply(a, b),
                );
            }
        }
        any_mass
    }

    /// Defuzzifies an aggregated surface, rewriting the placeholder
    /// `NoRuleFired` variable name.
    fn crisp_of_surface(&self, var: &Variable, surface: &SampledSet) -> Result<f64> {
        self.config.defuzzifier.crisp(surface).map_err(|e| match e {
            FuzzyError::NoRuleFired { .. } => {
                FuzzyError::NoRuleFired { variable: var.name().to_owned() }
            }
            other => other,
        })
    }

    /// The configured fallback for `out_idx`, or the `NoRuleFired` error.
    fn fallback_crisp(&self, out_idx: usize, var: &Variable) -> Result<f64> {
        match self.fallbacks.get(&out_idx) {
            Some(&fallback) => Ok(fallback),
            None => Err(FuzzyError::NoRuleFired { variable: var.name().to_owned() }),
        }
    }

    fn defuzzify_surface(
        &self,
        out_idx: usize,
        var: &Variable,
        firings: &[f64],
    ) -> Result<OutputValue> {
        // This surface escapes into the returned `OutputValue`, so it is
        // built fresh rather than in the thread-local pool.
        let mut surface = SampledSet::empty(var.min(), var.max(), self.config.resolution)?;
        if !self.accumulate_surface(out_idx, var, firings, &mut surface) {
            let crisp = self.fallback_crisp(out_idx, var)?;
            return Ok(OutputValue { name: var.name().to_owned(), crisp, surface: Some(surface) });
        }
        let crisp = self.crisp_of_surface(var, &surface)?;
        Ok(OutputValue { name: var.name().to_owned(), crisp, surface: Some(surface) })
    }

    /// Weighted-average defuzzification of `out_idx`, reusing the scratch
    /// activation buffer.
    fn crisp_weighted(
        &self,
        out_idx: usize,
        var: &Variable,
        firings: &[f64],
        activations: &mut Vec<(f64, f64)>,
    ) -> Result<f64> {
        activations.clear();
        for (rule, &strength) in self.compiled.iter().zip(firings) {
            if strength <= 0.0 {
                continue;
            }
            for consequent in &rule.consequents {
                if consequent.output == out_idx {
                    let representative = var.terms()[consequent.term].function().representative();
                    activations.push((strength, representative));
                }
            }
        }
        match self.config.defuzzifier.crisp_from_activations(activations) {
            Ok(crisp) => Ok(crisp.clamp(var.min(), var.max())),
            Err(FuzzyError::NoRuleFired { .. }) => self.fallback_crisp(out_idx, var),
            Err(other) => Err(other),
        }
    }
}

/// Builder for [`Engine`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    inputs: Vec<Variable>,
    outputs: Vec<Variable>,
    rules: RuleBase,
    fallbacks: Vec<(String, f64)>,
    config: InferenceConfig,
}

impl EngineBuilder {
    /// Adds an input variable.
    #[must_use]
    pub fn input(mut self, variable: Variable) -> Self {
        self.inputs.push(variable);
        self
    }

    /// Adds an output variable.
    #[must_use]
    pub fn output(mut self, variable: Variable) -> Self {
        self.outputs.push(variable);
        self
    }

    /// Appends one rule.
    #[must_use]
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Appends every rule of `rules`.
    #[must_use]
    pub fn rules(mut self, rules: impl IntoIterator<Item = Rule>) -> Self {
        self.rules.extend(rules);
        self
    }

    /// Sets a crisp fallback for an output when no rule fires (instead of
    /// an [`FuzzyError::NoRuleFired`] error).
    #[must_use]
    pub fn fallback(mut self, output: impl Into<String>, value: f64) -> Self {
        self.fallbacks.push((output.into().to_ascii_lowercase(), value));
        self
    }

    /// Replaces the whole inference configuration.
    #[must_use]
    pub fn config(mut self, config: InferenceConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the conjunction T-norm.
    #[must_use]
    pub fn tnorm(mut self, tnorm: TNorm) -> Self {
        self.config.tnorm = tnorm;
        self
    }

    /// Sets the disjunction S-norm.
    #[must_use]
    pub fn snorm(mut self, snorm: SNorm) -> Self {
        self.config.snorm = snorm;
        self
    }

    /// Sets the implication operator.
    #[must_use]
    pub fn implication(mut self, implication: Implication) -> Self {
        self.config.implication = implication;
        self
    }

    /// Sets the aggregation operator.
    #[must_use]
    pub fn aggregation(mut self, aggregation: SNorm) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    /// Sets the defuzzification strategy.
    #[must_use]
    pub fn defuzzifier(mut self, defuzzifier: Defuzzifier) -> Self {
        self.config.defuzzifier = defuzzifier;
        self
    }

    /// Sets the defuzzifier sample resolution.
    #[must_use]
    pub fn resolution(mut self, resolution: usize) -> Self {
        self.config.resolution = resolution;
        self
    }

    /// Compiles and validates the engine.
    ///
    /// # Errors
    ///
    /// * [`FuzzyError::DuplicateVariable`] — a name used twice across
    ///   inputs and outputs;
    /// * [`FuzzyError::EmptyRuleBase`] — no rules;
    /// * [`FuzzyError::UnknownVariable`] / [`FuzzyError::UnknownTerm`] — a
    ///   rule references something undeclared;
    /// * [`FuzzyError::InvalidResolution`] — resolution below 2.
    pub fn build(self) -> Result<Engine> {
        if self.config.resolution < 2 {
            return Err(FuzzyError::InvalidResolution { samples: self.config.resolution });
        }
        let mut input_index = HashMap::new();
        for (i, v) in self.inputs.iter().enumerate() {
            if input_index.insert(v.name().to_owned(), i).is_some() {
                return Err(FuzzyError::DuplicateVariable { variable: v.name().to_owned() });
            }
        }
        let mut output_index = HashMap::new();
        for (i, v) in self.outputs.iter().enumerate() {
            if input_index.contains_key(v.name())
                || output_index.insert(v.name().to_owned(), i).is_some()
            {
                return Err(FuzzyError::DuplicateVariable { variable: v.name().to_owned() });
            }
        }
        if self.rules.is_empty() {
            return Err(FuzzyError::EmptyRuleBase);
        }

        let mut compiled = Vec::with_capacity(self.rules.len());
        for rule in self.rules.iter() {
            let mut clauses = Vec::with_capacity(rule.clauses().len());
            for clause in rule.clauses() {
                let input = *input_index.get(clause.variable()).ok_or_else(|| {
                    FuzzyError::UnknownVariable { variable: clause.variable().to_owned() }
                })?;
                let term = self.inputs[input].term_index(clause.term()).ok_or_else(|| {
                    FuzzyError::UnknownTerm {
                        variable: clause.variable().to_owned(),
                        term: clause.term().to_owned(),
                    }
                })?;
                clauses.push(CompiledClause { input, term, negated: clause.negated() });
            }
            let mut consequents = Vec::with_capacity(rule.consequents().len());
            for consequent in rule.consequents() {
                let output = *output_index.get(consequent.variable()).ok_or_else(|| {
                    FuzzyError::UnknownVariable { variable: consequent.variable().to_owned() }
                })?;
                let term = self.outputs[output].term_index(consequent.term()).ok_or_else(|| {
                    FuzzyError::UnknownTerm {
                        variable: consequent.variable().to_owned(),
                        term: consequent.term().to_owned(),
                    }
                })?;
                consequents.push(CompiledConsequent { output, term });
            }
            compiled.push(CompiledRule {
                clauses,
                connective: rule.connective(),
                consequents,
                weight: rule.weight(),
            });
        }

        let mut fallbacks = HashMap::new();
        for (name, value) in self.fallbacks {
            let idx =
                *output_index.get(&name).ok_or(FuzzyError::UnknownVariable { variable: name })?;
            fallbacks.insert(idx, value);
        }

        let mut term_offsets = Vec::with_capacity(self.inputs.len() + 1);
        let mut total_terms = 0;
        for v in &self.inputs {
            term_offsets.push(total_terms);
            total_terms += v.terms().len();
        }
        term_offsets.push(total_terms);

        Ok(Engine {
            inputs: self.inputs,
            outputs: self.outputs,
            input_index,
            output_index,
            rule_base: self.rules,
            compiled,
            fallbacks,
            config: self.config,
            term_offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;

    fn tri(c: f64, l: f64, r: f64) -> MembershipFunction {
        MembershipFunction::triangular(c, l, r).unwrap()
    }

    fn tipper() -> Engine {
        let service = Variable::builder("service", 0.0, 10.0)
            .term("poor", tri(0.0, 0.0, 5.0))
            .term("good", tri(5.0, 5.0, 5.0))
            .term("excellent", tri(10.0, 5.0, 0.0))
            .build()
            .unwrap();
        let food = Variable::builder("food", 0.0, 10.0)
            .term("rancid", tri(0.0, 0.0, 5.0))
            .term("delicious", tri(10.0, 5.0, 0.0))
            .build()
            .unwrap();
        let tip = Variable::builder("tip", 0.0, 30.0)
            .term("low", tri(5.0, 5.0, 5.0))
            .term("medium", tri(15.0, 5.0, 5.0))
            .term("high", tri(25.0, 5.0, 5.0))
            .build()
            .unwrap();
        Engine::builder()
            .input(service)
            .input(food)
            .output(tip)
            .rule(
                Rule::when("service", "poor")
                    .or("food", "rancid")
                    .then("tip", "low")
                    .build()
                    .unwrap(),
            )
            .rule(Rule::when("service", "good").then("tip", "medium").build().unwrap())
            .rule(
                Rule::when("service", "excellent")
                    .or("food", "delicious")
                    .then("tip", "high")
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn tipper_extremes() {
        let engine = tipper();
        let low = engine.evaluate_single(&[("service", 0.0), ("food", 0.0)]).unwrap();
        let high = engine.evaluate_single(&[("service", 10.0), ("food", 10.0)]).unwrap();
        assert!(low < 8.0, "terrible service should tip low, got {low}");
        assert!(high > 22.0, "excellent service should tip high, got {high}");
    }

    #[test]
    fn tipper_midpoint_is_medium() {
        let engine = tipper();
        let mid = engine.evaluate_single(&[("service", 5.0), ("food", 5.0)]).unwrap();
        assert!((mid - 15.0).abs() < 2.0, "mid service should tip ~15, got {mid}");
    }

    #[test]
    fn evaluate_crisp_matches_named_evaluation() {
        let engine = tipper();
        for s in [0.0, 2.5, 5.0, 6.5, 10.0] {
            for f in [0.0, 3.0, 7.0, 10.0] {
                let named = engine.evaluate_single(&[("service", s), ("food", f)]).unwrap();
                let positional = engine.evaluate_crisp(&[s, f]).unwrap();
                assert_eq!(named, positional, "divergence at service={s} food={f}");
            }
        }
    }

    #[test]
    fn evaluate_crisp_reports_arity_errors() {
        let engine = tipper();
        assert_eq!(
            engine.evaluate_crisp(&[5.0]).unwrap_err(),
            FuzzyError::MissingInput { variable: "food".into() }
        );
        assert!(matches!(
            engine.evaluate_crisp(&[5.0, 5.0, 5.0]).unwrap_err(),
            FuzzyError::UnknownVariable { .. }
        ));
        assert!(matches!(
            engine.evaluate_crisp(&[f64::NAN, 5.0]).unwrap_err(),
            FuzzyError::NonFiniteInput { .. }
        ));
    }

    #[test]
    fn evaluate_crisp_clamps_and_falls_back() {
        let engine = tipper();
        assert_eq!(
            engine.evaluate_crisp(&[100.0, 10.0]).unwrap(),
            engine.evaluate_crisp(&[10.0, 10.0]).unwrap()
        );
        let x = Variable::builder("x", 0.0, 10.0).term("left", tri(0.0, 0.0, 2.0)).build().unwrap();
        let y = Variable::builder("y", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let engine = Engine::builder()
            .input(x)
            .output(y)
            .rule(Rule::when("x", "left").then("y", "t").build().unwrap())
            .fallback("y", 0.25)
            .build()
            .unwrap();
        assert_eq!(engine.evaluate_crisp(&[9.0]).unwrap(), 0.25);
    }

    #[test]
    fn evaluate_crisp_rejects_multi_output() {
        let x = Variable::builder("x", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let y1 = Variable::builder("y1", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let y2 = Variable::builder("y2", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let engine = Engine::builder()
            .input(x)
            .output(y1)
            .output(y2)
            .rule(Rule::when("x", "t").then("y1", "t").then("y2", "t").build().unwrap())
            .build()
            .unwrap();
        assert!(matches!(
            engine.evaluate_crisp(&[0.5]).unwrap_err(),
            FuzzyError::InvalidMembership { .. }
        ));
    }

    #[test]
    fn evaluate_crisp_matches_weighted_average_path() {
        let service = Variable::builder("service", 0.0, 10.0)
            .term("poor", tri(0.0, 0.0, 10.0))
            .term("excellent", tri(10.0, 10.0, 0.0))
            .build()
            .unwrap();
        let tip = Variable::builder("tip", 0.0, 30.0)
            .term("low", tri(5.0, 5.0, 5.0))
            .term("high", tri(25.0, 5.0, 5.0))
            .build()
            .unwrap();
        let engine = Engine::builder()
            .input(service)
            .output(tip)
            .rule(Rule::when("service", "poor").then("tip", "low").build().unwrap())
            .rule(Rule::when("service", "excellent").then("tip", "high").build().unwrap())
            .defuzzifier(Defuzzifier::WeightedAverage)
            .build()
            .unwrap();
        for s in [0.0, 2.0, 5.0, 8.0, 10.0] {
            assert_eq!(
                engine.evaluate_crisp(&[s]).unwrap(),
                engine.evaluate_single(&[("service", s)]).unwrap()
            );
        }
    }

    #[test]
    fn alternating_engines_with_different_universes_stay_correct() {
        // The FLC1 → FLC2 cascade alternates two engines with different
        // output universes on one thread; each must keep its own scratch
        // surface (shape-keyed pool) and produce the same results as
        // when evaluated in isolation.
        let tipper = tipper();
        let x = Variable::builder("x", 0.0, 1.0)
            .term("lo", tri(0.0, 0.0, 1.0))
            .term("hi", tri(1.0, 1.0, 0.0))
            .build()
            .unwrap();
        let y = Variable::builder("y", -1.0, 1.0)
            .term("lo", tri(-1.0, 0.0, 2.0))
            .term("hi", tri(1.0, 2.0, 0.0))
            .build()
            .unwrap();
        let other = Engine::builder()
            .input(x)
            .output(y)
            .rule(Rule::when("x", "lo").then("y", "lo").build().unwrap())
            .rule(Rule::when("x", "hi").then("y", "hi").build().unwrap())
            .build()
            .unwrap();
        let tip_alone = tipper.evaluate_crisp(&[6.5, 4.0]).unwrap();
        let other_alone = other.evaluate_crisp(&[0.3]).unwrap();
        for _ in 0..3 {
            assert_eq!(tipper.evaluate_crisp(&[6.5, 4.0]).unwrap(), tip_alone);
            assert_eq!(other.evaluate_crisp(&[0.3]).unwrap(), other_alone);
        }
    }

    #[test]
    fn input_order_does_not_matter() {
        let engine = tipper();
        let a = engine.evaluate_single(&[("service", 7.0), ("food", 3.0)]).unwrap();
        let b = engine.evaluate_single(&[("food", 3.0), ("service", 7.0)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_case_insensitive() {
        let engine = tipper();
        let a = engine.evaluate_single(&[("SERVICE", 7.0), ("Food", 3.0)]).unwrap();
        let b = engine.evaluate_single(&[("service", 7.0), ("food", 3.0)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_input_is_an_error() {
        let engine = tipper();
        let err = engine.evaluate(&[("service", 5.0)]).unwrap_err();
        assert_eq!(err, FuzzyError::MissingInput { variable: "food".into() });
    }

    #[test]
    fn unknown_input_is_an_error() {
        let engine = tipper();
        let err = engine.evaluate(&[("service", 5.0), ("food", 5.0), ("mood", 5.0)]).unwrap_err();
        assert_eq!(err, FuzzyError::UnknownVariable { variable: "mood".into() });
    }

    #[test]
    fn non_finite_input_is_an_error() {
        let engine = tipper();
        let err = engine.evaluate(&[("service", f64::NAN), ("food", 5.0)]).unwrap_err();
        assert!(matches!(err, FuzzyError::NonFiniteInput { .. }));
    }

    #[test]
    fn out_of_universe_inputs_are_clamped() {
        let engine = tipper();
        let a = engine.evaluate_single(&[("service", 100.0), ("food", 10.0)]).unwrap();
        let b = engine.evaluate_single(&[("service", 10.0), ("food", 10.0)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn firing_strengths_are_exposed() {
        let engine = tipper();
        let outcome = engine.evaluate(&[("service", 10.0), ("food", 10.0)]).unwrap();
        let firings = outcome.firing_strengths();
        assert_eq!(firings.len(), 3);
        assert_eq!(firings[0], 0.0);
        assert_eq!(firings[2], 1.0);
        assert_eq!(outcome.dominant_rule(), Some((2, 1.0)));
    }

    #[test]
    fn surface_is_available_for_centroid() {
        let engine = tipper();
        let outcome = engine.evaluate(&[("service", 5.0), ("food", 5.0)]).unwrap();
        let out = outcome.output("tip").unwrap();
        assert!(out.surface().is_some());
        assert!(out.surface().unwrap().height() > 0.0);
    }

    #[test]
    fn weighted_average_skips_surface() {
        let service = Variable::builder("service", 0.0, 10.0)
            .term("poor", tri(0.0, 0.0, 10.0))
            .term("excellent", tri(10.0, 10.0, 0.0))
            .build()
            .unwrap();
        let tip = Variable::builder("tip", 0.0, 30.0)
            .term("low", tri(5.0, 5.0, 5.0))
            .term("high", tri(25.0, 5.0, 5.0))
            .build()
            .unwrap();
        let engine = Engine::builder()
            .input(service)
            .output(tip)
            .rule(Rule::when("service", "poor").then("tip", "low").build().unwrap())
            .rule(Rule::when("service", "excellent").then("tip", "high").build().unwrap())
            .defuzzifier(Defuzzifier::WeightedAverage)
            .build()
            .unwrap();
        let outcome = engine.evaluate(&[("service", 5.0)]).unwrap();
        let out = outcome.output("tip").unwrap();
        assert!(out.surface().is_none());
        assert!((out.crisp() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn rule_weight_shifts_output() {
        let make = |weight: f64| {
            let x = Variable::builder("x", 0.0, 1.0)
                .term("any", MembershipFunction::trapezoidal(0.0, 1.0, 0.0, 0.0).unwrap())
                .build()
                .unwrap();
            let y = Variable::builder("y", 0.0, 10.0)
                .term("low", tri(2.0, 2.0, 2.0))
                .term("high", tri(8.0, 2.0, 2.0))
                .build()
                .unwrap();
            Engine::builder()
                .input(x)
                .output(y)
                .rule(Rule::when("x", "any").then("y", "low").build().unwrap())
                .rule(Rule::when("x", "any").then("y", "high").weight(weight).build().unwrap())
                .build()
                .unwrap()
        };
        let balanced = make(1.0).evaluate_single(&[("x", 0.5)]).unwrap();
        let suppressed = make(0.2).evaluate_single(&[("x", 0.5)]).unwrap();
        assert!(suppressed < balanced, "{suppressed} !< {balanced}");
    }

    #[test]
    fn no_rule_fired_without_fallback_errors() {
        let x = Variable::builder("x", 0.0, 10.0).term("left", tri(0.0, 0.0, 2.0)).build().unwrap();
        let y = Variable::builder("y", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let engine = Engine::builder()
            .input(x)
            .output(y)
            .rule(Rule::when("x", "left").then("y", "t").build().unwrap())
            .build()
            .unwrap();
        let err = engine.evaluate(&[("x", 9.0)]).unwrap_err();
        assert_eq!(err, FuzzyError::NoRuleFired { variable: "y".into() });
    }

    #[test]
    fn fallback_replaces_no_rule_fired() {
        let x = Variable::builder("x", 0.0, 10.0).term("left", tri(0.0, 0.0, 2.0)).build().unwrap();
        let y = Variable::builder("y", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let engine = Engine::builder()
            .input(x)
            .output(y)
            .rule(Rule::when("x", "left").then("y", "t").build().unwrap())
            .fallback("y", 0.25)
            .build()
            .unwrap();
        assert_eq!(engine.evaluate(&[("x", 9.0)]).unwrap().crisp("y"), Some(0.25));
    }

    #[test]
    fn build_rejects_unknown_rule_references() {
        let x = Variable::builder("x", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let y = Variable::builder("y", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        // Unknown variable in antecedent.
        let err = Engine::builder()
            .input(x.clone())
            .output(y.clone())
            .rule(Rule::when("z", "t").then("y", "t").build().unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, FuzzyError::UnknownVariable { .. }));
        // Unknown term in consequent.
        let err = Engine::builder()
            .input(x)
            .output(y)
            .rule(Rule::when("x", "t").then("y", "missing").build().unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, FuzzyError::UnknownTerm { .. }));
    }

    #[test]
    fn build_rejects_duplicate_and_empty() {
        let x = Variable::builder("x", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let err = Engine::builder().input(x.clone()).input(x.clone()).build().unwrap_err();
        assert!(matches!(err, FuzzyError::DuplicateVariable { .. }));
        let err = Engine::builder().input(x.clone()).output(x.clone()).build().unwrap_err();
        assert!(matches!(err, FuzzyError::DuplicateVariable { .. }));
        let err = Engine::builder().input(x.clone()).build().unwrap_err();
        assert_eq!(err, FuzzyError::EmptyRuleBase);
    }

    #[test]
    fn evaluate_single_rejects_multi_output() {
        let x = Variable::builder("x", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let y1 = Variable::builder("y1", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let y2 = Variable::builder("y2", 0.0, 1.0).term("t", tri(0.5, 0.5, 0.5)).build().unwrap();
        let engine = Engine::builder()
            .input(x)
            .output(y1)
            .output(y2)
            .rule(Rule::when("x", "t").then("y1", "t").then("y2", "t").build().unwrap())
            .build()
            .unwrap();
        assert!(engine.evaluate_single(&[("x", 0.5)]).is_err());
        let outcome = engine.evaluate(&[("x", 0.5)]).unwrap();
        assert_eq!(outcome.outputs().len(), 2);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn product_implication_gives_smoother_surface() {
        let engine_min = tipper();
        let mut config = *engine_min.config();
        config.implication = Implication::Product;
        // Rebuild with product implication.
        let engine_prod = Engine::builder()
            .input(engine_min.inputs()[0].clone())
            .input(engine_min.inputs()[1].clone())
            .output(engine_min.outputs()[0].clone())
            .rules(engine_min.rule_base().clone())
            .config(config)
            .build()
            .unwrap();
        let a = engine_min.evaluate_single(&[("service", 6.5), ("food", 4.0)]).unwrap();
        let b = engine_prod.evaluate_single(&[("service", 6.5), ("food", 4.0)]).unwrap();
        // Same ballpark, different operator: both sane tips.
        assert!((a - b).abs() < 5.0);
        assert!(a > 5.0 && a < 25.0 && b > 5.0 && b < 25.0);
    }
}
