//! Property-based tests over the fuzzy engine's core invariants.

use facs_fuzzy::{
    parse_rule, Defuzzifier, Engine, Implication, MembershipFunction, Rule, SNorm, SampledSet,
    TNorm, Variable,
};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |v| {
        let span = range.end - range.start;
        range.start + (v.abs() % span.max(f64::MIN_POSITIVE))
    })
}

proptest! {
    /// Membership degrees never escape [0, 1], whatever the input.
    #[test]
    fn membership_always_in_unit_interval(
        center in -1e6_f64..1e6,
        left in 0.0_f64..1e6,
        right in 0.0_f64..1e6,
        x in prop::num::f64::ANY,
    ) {
        prop_assume!(left > 0.0 || right > 0.0);
        let mf = MembershipFunction::triangular(center, left, right).unwrap();
        let mu = mf.evaluate(x);
        prop_assert!((0.0..=1.0).contains(&mu), "mu={mu}");
    }

    /// Trapezoids are 1 on the whole flat top and 0 outside the support.
    #[test]
    fn trapezoid_top_and_support(
        left_top in -1e3_f64..1e3,
        top_len in 0.0_f64..1e3,
        lw in 0.001_f64..1e3,
        rw in 0.001_f64..1e3,
        t in 0.0_f64..1.0,
    ) {
        let right_top = left_top + top_len;
        let mf = MembershipFunction::trapezoidal(left_top, right_top, lw, rw).unwrap();
        let inside = left_top + t * top_len;
        prop_assert_eq!(mf.evaluate(inside), 1.0);
        prop_assert_eq!(mf.evaluate(left_top - lw - 1.0), 0.0);
        prop_assert_eq!(mf.evaluate(right_top + rw + 1.0), 0.0);
    }

    /// Triangles are monotonically non-decreasing on the rising flank and
    /// non-increasing on the falling flank.
    #[test]
    fn triangle_flanks_are_monotone(
        center in -100.0_f64..100.0,
        width in 0.1_f64..100.0,
        a in 0.0_f64..1.0,
        b in 0.0_f64..1.0,
    ) {
        let mf = MembershipFunction::triangular(center, width, width).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // Rising flank.
        let x0 = center - width + lo * width;
        let x1 = center - width + hi * width;
        prop_assert!(mf.evaluate(x0) <= mf.evaluate(x1) + 1e-12);
        // Falling flank.
        let x0 = center + lo * width;
        let x1 = center + hi * width;
        prop_assert!(mf.evaluate(x0) + 1e-12 >= mf.evaluate(x1));
    }

    /// Every T-norm result is bounded by min; every S-norm by max.
    #[test]
    fn norm_bounds(a in 0.0_f64..1.0, b in 0.0_f64..1.0) {
        for tn in [TNorm::Minimum, TNorm::Product, TNorm::Lukasiewicz, TNorm::Drastic] {
            prop_assert!(tn.apply(a, b) <= a.min(b) + 1e-12, "{tn:?}");
        }
        for sn in [SNorm::Maximum, SNorm::ProbabilisticSum, SNorm::BoundedSum, SNorm::Drastic] {
            prop_assert!(sn.apply(a, b) >= a.max(b) - 1e-12, "{sn:?}");
        }
    }

    /// T-norms are monotone in each argument.
    #[test]
    fn tnorm_monotone(a in 0.0_f64..1.0, b in 0.0_f64..1.0, c in 0.0_f64..1.0) {
        let (b_lo, b_hi) = if b <= c { (b, c) } else { (c, b) };
        for tn in [TNorm::Minimum, TNorm::Product, TNorm::Lukasiewicz] {
            prop_assert!(tn.apply(a, b_lo) <= tn.apply(a, b_hi) + 1e-12, "{tn:?}");
        }
    }

    /// Implication output never exceeds the firing strength (for Mamdani)
    /// and never exceeds the membership (both operators).
    #[test]
    fn implication_bounds(s in 0.0_f64..1.0, mu in 0.0_f64..1.0) {
        prop_assert!(Implication::Minimum.apply(s, mu) <= s + 1e-12);
        prop_assert!(Implication::Minimum.apply(s, mu) <= mu + 1e-12);
        prop_assert!(Implication::Product.apply(s, mu) <= mu + 1e-12);
        prop_assert!(Implication::Product.apply(s, mu) <= s + 1e-12);
    }

    /// All surface defuzzifiers return a value inside the universe.
    #[test]
    fn defuzzified_value_in_universe(
        min in -100.0_f64..0.0,
        span in 1.0_f64..100.0,
        peak in 0.0_f64..1.0,
        center_frac in 0.0_f64..1.0,
    ) {
        let max = min + span;
        let center = min + center_frac * span;
        let set = SampledSet::from_fn(min, max, 301, |x| {
            (peak - (x - center).abs() / span).max(0.0)
        }).unwrap();
        prop_assume!(!set.is_empty());
        for d in [
            Defuzzifier::Centroid,
            Defuzzifier::Bisector,
            Defuzzifier::MeanOfMaxima,
            Defuzzifier::SmallestOfMaxima,
            Defuzzifier::LargestOfMaxima,
        ] {
            let v = d.crisp(&set).unwrap();
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9, "{d:?} gave {v} outside [{min}, {max}]");
        }
    }

    /// SOM <= MOM <= LOM always holds.
    #[test]
    fn maxima_ordering(values in prop::collection::vec(0.0_f64..1.0, 16..64)) {
        let n = values.len();
        let set = SampledSet::from_fn(0.0, 1.0, n, move |x| {
            let idx = ((x * (n as f64 - 1.0)).round() as usize).min(n - 1);
            values[idx]
        }).unwrap();
        prop_assume!(!set.is_empty());
        let som = Defuzzifier::SmallestOfMaxima.crisp(&set).unwrap();
        let mom = Defuzzifier::MeanOfMaxima.crisp(&set).unwrap();
        let lom = Defuzzifier::LargestOfMaxima.crisp(&set).unwrap();
        prop_assert!(som <= mom + 1e-9 && mom <= lom + 1e-9, "{som} {mom} {lom}");
    }

    /// A single-input engine with a complete partition always produces an
    /// output inside the output universe, for any input.
    #[test]
    fn engine_output_in_universe(x in -50.0_f64..200.0, out_span in 1.0_f64..100.0) {
        let input = Variable::builder("x", 0.0, 100.0).uniform_partition("p", 5).build().unwrap();
        let output = Variable::builder("y", 0.0, out_span).uniform_partition("q", 5).build().unwrap();
        let mut builder = Engine::builder().input(input).output(output);
        for i in 1..=5 {
            builder = builder.rule(
                Rule::when("x", format!("p{i}")).then("y", format!("q{}", 6 - i)).build().unwrap(),
            );
        }
        let engine = builder.build().unwrap();
        let y = engine.evaluate_single(&[("x", x)]).unwrap();
        prop_assert!(y >= 0.0 && y <= out_span, "y={y}");
    }

    /// The engine is monotone for a monotone rule base: larger input maps
    /// to a (weakly) larger output when rules map p_i -> q_i in order.
    #[test]
    fn engine_monotone_for_monotone_rules(a in 0.0_f64..100.0, b in 0.0_f64..100.0) {
        let input = Variable::builder("x", 0.0, 100.0).uniform_partition("p", 5).build().unwrap();
        let output = Variable::builder("y", 0.0, 1.0).uniform_partition("q", 5).build().unwrap();
        let mut builder = Engine::builder().input(input).output(output);
        for i in 1..=5 {
            builder = builder.rule(
                Rule::when("x", format!("p{i}")).then("y", format!("q{i}")).build().unwrap(),
            );
        }
        let engine = builder.build().unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let y_lo = engine.evaluate_single(&[("x", lo)]).unwrap();
        let y_hi = engine.evaluate_single(&[("x", hi)]).unwrap();
        prop_assert!(y_lo <= y_hi + 1e-6, "f({lo})={y_lo} > f({hi})={y_hi}");
    }

    /// Display -> parse round-trips every generated rule.
    #[test]
    fn rule_display_parse_round_trip(
        vars in prop::collection::vec("[a-z][a-z0-9]{0,6}", 1..4),
        terms in prop::collection::vec("[a-z][a-z0-9]{0,6}", 1..4),
        negate in prop::collection::vec(any::<bool>(), 4),
        use_or in any::<bool>(),
        weight_pct in 0u32..=100,
    ) {
        prop_assume!(vars.len() == terms.len());
        // Variable names must be distinct from keyword tokens.
        for v in vars.iter().chain(terms.iter()) {
            prop_assume!(!matches!(v.as_str(), "if"|"then"|"and"|"or"|"is"|"not"|"with"|"rule"));
        }
        let mut builder = if negate[0] {
            Rule::when_not(vars[0].clone(), terms[0].clone())
        } else {
            Rule::when(vars[0].clone(), terms[0].clone())
        };
        for i in 1..vars.len() {
            builder = match (use_or, negate[i]) {
                (false, false) => builder.and(vars[i].clone(), terms[i].clone()),
                (false, true) => builder.and_not(vars[i].clone(), terms[i].clone()),
                (true, false) => builder.or(vars[i].clone(), terms[i].clone()),
                (true, true) => builder.or_not(vars[i].clone(), terms[i].clone()),
            };
        }
        let rule = builder
            .then("out", "t")
            .weight(f64::from(weight_pct) / 100.0)
            .build()
            .unwrap();
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        prop_assert_eq!(rule.clauses(), reparsed.clauses(), "text: {}", text);
        prop_assert_eq!(rule.consequents(), reparsed.consequents(), "text: {}", text);
        prop_assert!((rule.weight() - reparsed.weight()).abs() < 1e-12);
    }

    /// Fuzzification of a uniform partition sums to 1 everywhere in the
    /// universe (Ruspini partition property).
    #[test]
    fn uniform_partition_sums_to_one(count in 2usize..12, frac in 0.0_f64..1.0) {
        let v = Variable::builder("v", 0.0, 10.0).uniform_partition("t", count).build().unwrap();
        let x = frac * 10.0;
        let sum: f64 = v.fuzzify(x).iter().map(|(_, mu)| mu).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum={sum} at x={x}");
    }

    /// `coverage` is positive across the whole universe for uniform
    /// partitions — no admission request can fall through the rule base.
    #[test]
    fn uniform_partition_has_no_holes(count in 2usize..12, frac in 0.0_f64..1.0) {
        let v = Variable::builder("v", -5.0, 5.0).uniform_partition("t", count).build().unwrap();
        let x = -5.0 + frac * 10.0;
        prop_assert!(v.coverage(x) > 0.0);
    }

    /// Weighted-average defuzzification equals the analytic expectation.
    #[test]
    fn weighted_average_is_exact(
        pairs in prop::collection::vec((0.01_f64..1.0, -10.0_f64..10.0), 1..8),
    ) {
        let expected: f64 = {
            let num: f64 = pairs.iter().map(|(s, r)| s * r).sum();
            let den: f64 = pairs.iter().map(|(s, _)| s).sum();
            num / den
        };
        let got = Defuzzifier::WeightedAverage.crisp_from_activations(&pairs).unwrap();
        prop_assert!((got - expected).abs() < 1e-9);
    }

    /// Centroid is translation-equivariant: shifting the universe shifts
    /// the centroid by the same amount.
    #[test]
    fn centroid_translation_equivariance(
        shift in -50.0_f64..50.0,
        center_frac in 0.1_f64..0.9,
    ) {
        let base = SampledSet::from_fn(0.0, 10.0, 501, |x| {
            (1.0 - (x - center_frac * 10.0).abs()).max(0.0)
        }).unwrap();
        let shifted = SampledSet::from_fn(shift, 10.0 + shift, 501, |x| {
            (1.0 - ((x - shift) - center_frac * 10.0).abs()).max(0.0)
        }).unwrap();
        let c0 = base.centroid().unwrap();
        let c1 = shifted.centroid().unwrap();
        prop_assert!((c1 - (c0 + shift)).abs() < 1e-6, "c0={c0} c1={c1} shift={shift}");
    }
}

#[test]
fn finite_f64_helper_stays_in_range() {
    // Sanity-check the strategy helper itself (not a proptest).
    let _ = finite_f64(0.0..1.0);
}
