//! Shadow projection math: from a GPS observation to the probability that
//! a mobile leaves its serving cell within the projection horizon.
//!
//! Levine et al. project every active mobile's position probabilistically
//! into future epochs. With the observable triple the paper's FACS also
//! uses — speed `S`, heading-vs-BS angle `A`, distance `D` — the exit
//! geometry is closed-form: a mobile at distance `D` from the center of a
//! cell of radius `R`, heading at angle `A` relative to the bearing
//! *toward* the BS, exits the cell after travelling the chord length
//!
//! ```text
//! chord(A, D) = D·cos(A) + sqrt(R² − D²·sin²(A))
//! ```
//!
//! (heading straight at the BS: `D + R`; straight away: `R − D`).

use facs_cac::MobilityInfo;

/// Computes the distance (km) a mobile travels before exiting a cell of
/// radius `cell_radius_km`, given its observation relative to that cell's
/// BS. Observations outside the cell clamp to a minimal positive chord.
#[must_use]
pub fn exit_chord_km(mobility: &MobilityInfo, cell_radius_km: f64) -> f64 {
    let r = cell_radius_km.max(f64::MIN_POSITIVE);
    let d = mobility.distance_km.clamp(0.0, r);
    let angle = mobility.angle_deg.to_radians();
    let discriminant = (r * r - d * d * angle.sin().powi(2)).max(0.0);
    let chord = d * angle.cos() + discriminant.sqrt();
    chord.max(1e-6)
}

/// Probability that the mobile hands off out of the cell within
/// `horizon_s` seconds, assuming it holds its current speed and heading:
/// the fraction of the exit chord covered in the horizon, clamped to 1.
#[must_use]
pub fn handoff_probability(mobility: &MobilityInfo, cell_radius_km: f64, horizon_s: f64) -> f64 {
    if !mobility.is_finite() {
        return 0.0;
    }
    let chord = exit_chord_km(mobility, cell_radius_km);
    let travel = mobility.speed_kmh.max(0.0) * horizon_s.max(0.0) / 3600.0;
    (travel / chord).clamp(0.0, 1.0)
}

/// Probability the mobile is still in its serving cell at the horizon.
#[must_use]
pub fn residency_probability(mobility: &MobilityInfo, cell_radius_km: f64, horizon_s: f64) -> f64 {
    1.0 - handoff_probability(mobility, cell_radius_km, horizon_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chord_toward_bs_is_d_plus_r() {
        let m = MobilityInfo::new(30.0, 0.0, 4.0);
        assert!((exit_chord_km(&m, 10.0) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn chord_away_from_bs_is_r_minus_d() {
        let m = MobilityInfo::new(30.0, 180.0, 4.0);
        assert!((exit_chord_km(&m, 10.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn chord_perpendicular() {
        // At D, heading perpendicular to the BS bearing: chord = sqrt(R²−D²).
        let m = MobilityInfo::new(30.0, 90.0, 6.0);
        assert!((exit_chord_km(&m, 10.0) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn chord_at_center_is_r_any_heading() {
        for a in [-180.0, -90.0, 0.0, 45.0, 135.0] {
            let m = MobilityInfo::new(30.0, a, 0.0);
            assert!((exit_chord_km(&m, 10.0) - 10.0).abs() < 1e-9, "angle {a}");
        }
    }

    #[test]
    fn handoff_probability_scales_with_speed_and_horizon() {
        let slow = MobilityInfo::new(6.0, 180.0, 5.0); // 5 km chord
        let fast = MobilityInfo::new(60.0, 180.0, 5.0);
        let p_slow = handoff_probability(&slow, 10.0, 300.0);
        let p_fast = handoff_probability(&fast, 10.0, 300.0);
        // 6 km/h * 300 s = 0.5 km of 5 km chord = 0.1.
        assert!((p_slow - 0.1).abs() < 1e-9);
        // 60 km/h covers 5 km = the whole chord.
        assert!((p_fast - 1.0).abs() < 1e-9);
        assert_eq!(handoff_probability(&fast, 10.0, 0.0), 0.0);
    }

    #[test]
    fn probabilities_are_complementary_and_bounded() {
        for speed in [0.0, 10.0, 60.0, 120.0] {
            for angle in [-180.0, -45.0, 0.0, 90.0] {
                for d in [0.0, 3.0, 9.9] {
                    let m = MobilityInfo::new(speed, angle, d);
                    let p = handoff_probability(&m, 10.0, 240.0);
                    let q = residency_probability(&m, 10.0, 240.0);
                    assert!((0.0..=1.0).contains(&p));
                    assert!((p + q - 1.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn corrupted_observation_projects_nothing() {
        let m = MobilityInfo { speed_kmh: f64::NAN, angle_deg: 0.0, distance_km: 1.0 };
        assert_eq!(handoff_probability(&m, 10.0, 300.0), 0.0);
    }

    #[test]
    fn stationary_user_never_leaves() {
        let m = MobilityInfo::new(0.0, 0.0, 5.0);
        assert_eq!(handoff_probability(&m, 10.0, 1e6), 0.0);
    }
}
