//! # facs-scc — the Shadow Cluster Concept baseline
//!
//! A reimplementation of the admission-control scheme of Levine,
//! Akyildiz and Naghshineh (*"A Resource Estimation and Call Admission
//! Algorithm for Wireless Multimedia Networks Using the Shadow Cluster
//! Concept"*, IEEE/ACM ToN 1997), the baseline the FACS paper compares
//! against in its Fig. 10.
//!
//! Every active mobile projects probabilistic influence — its "shadow" —
//! onto the cells along its likely path. Base stations exchange these
//! projections (the [`board::ShadowBoard`], the paper's "virtual message
//! system"), estimate future bandwidth demand, and deny new calls once
//! projected demand would exceed a survivability threshold.
//!
//! ## Faithfulness notes (also in DESIGN.md)
//!
//! * Shadow strength derives from the same observable triple FACS uses
//!   (speed, heading-vs-BS angle, distance) via exact exit-chord geometry
//!   ([`projection`]); Levine et al. used per-cell transition matrices.
//! * Influence is spread uniformly over neighbors rather than
//!   directionally — with the hexagonal layout and the admission test
//!   aggregating over the whole cluster, the directional refinement does
//!   not change which calls are denied, only where the reservation sits.
//! * Projection is single-horizon rather than multi-epoch; the
//!   `threshold` knob absorbs the difference and is calibrated so the
//!   Fig. 10 crossover lands near the paper's N ≈ 50.
//!
//! ## Example
//!
//! ```
//! use facs_cac::{AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind,
//!               CallRequest, MobilityInfo, ServiceClass};
//! use facs_cellsim::HexGrid;
//! use facs_scc::{SccConfig, SccNetwork};
//!
//! let grid = HexGrid::new(1, 10.0);
//! let network = SccNetwork::new(SccConfig::default());
//! let mut controllers = network.controllers(&grid);
//! let cell = BandwidthLedger::new(BandwidthUnits::new(40));
//! let request = CallRequest::new(
//!     CallId(1),
//!     ServiceClass::Voice,
//!     CallKind::New,
//!     MobilityInfo::new(60.0, 0.0, 3.0),
//! );
//! assert!(controllers[0].decide(&request, &cell).admits());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod board;
pub mod controller;
pub mod projection;

pub use board::ShadowBoard;
pub use controller::{SccConfig, SccController, SccNetwork};
pub use projection::{exit_chord_km, handoff_probability, residency_probability};
