//! The shadow board — the "virtual message system" of the SCC paper.
//!
//! *"In practice, a shadow cluster is a virtual message system where BSs
//! share probabilistic information with their neighbors"* (paper §2).
//! Each base station posts, per admitted call, the bandwidth-weighted
//! probability mass the call projects onto every cell of its shadow
//! cluster; neighbors read the incoming influence when making their own
//! admission decisions.
//!
//! The board is shared state guarded by a mutex: in the single-process
//! simulator every controller holds an `Arc` to it; in the distributed
//! runtime (`facs-distrib`) the same exchanges travel as real messages
//! between per-BS actors.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use facs_cac::{CallId, CellId};

/// One call's posted influence: `(cell, projected BU)` pairs.
type Contribution = Vec<(CellId, f64)>;

#[derive(Debug, Default)]
struct BoardInner {
    /// Projected incoming demand per cell, in fractional BU.
    influence: HashMap<CellId, f64>,
    /// Last occupancy each BS broadcast, in BU.
    occupied: HashMap<CellId, u32>,
    /// Per-call contributions, so releases can retract exactly what was
    /// posted.
    contributions: HashMap<CallId, Contribution>,
    /// Number of influence messages exchanged (posts + retractions),
    /// mirroring the BS-to-BS message traffic of a real deployment.
    messages: u64,
}

/// Shared, thread-safe shadow-cluster state for one network.
#[derive(Debug, Clone, Default)]
pub struct ShadowBoard {
    inner: Arc<Mutex<BoardInner>>,
}

impl ShadowBoard {
    /// Creates an empty board.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts a call's projected influence onto the given cells. Replaces
    /// any previous posting for the same call (e.g. after a handoff).
    ///
    /// Each `(cell, bu)` pair counts as one message.
    pub fn post(&self, call: CallId, contribution: Vec<(CellId, f64)>) {
        let mut inner = self.inner.lock().expect("shadow board poisoned");
        if let Some(old) = inner.contributions.remove(&call) {
            inner.messages += old.len() as u64;
            for (cell, bu) in old {
                *inner.influence.entry(cell).or_insert(0.0) -= bu;
            }
        }
        inner.messages += contribution.len() as u64;
        for &(cell, bu) in &contribution {
            *inner.influence.entry(cell).or_insert(0.0) += bu;
        }
        inner.contributions.insert(call, contribution);
    }

    /// Retracts a call's influence (call ended or dropped). Unknown calls
    /// are ignored — the board is advisory state, not a ledger.
    pub fn retract(&self, call: CallId) {
        let mut inner = self.inner.lock().expect("shadow board poisoned");
        if let Some(old) = inner.contributions.remove(&call) {
            inner.messages += old.len() as u64;
            for (cell, bu) in old {
                *inner.influence.entry(cell).or_insert(0.0) -= bu;
            }
        }
    }

    /// Projected incoming demand for `cell`, in fractional BU (floored at
    /// zero to absorb floating-point residue).
    #[must_use]
    pub fn influence_on(&self, cell: CellId) -> f64 {
        let inner = self.inner.lock().expect("shadow board poisoned");
        inner.influence.get(&cell).copied().unwrap_or(0.0).max(0.0)
    }

    /// Broadcasts a cell's current occupancy to the cluster (one
    /// message).
    pub fn broadcast_occupied(&self, cell: CellId, occupied_bu: u32) {
        let mut inner = self.inner.lock().expect("shadow board poisoned");
        inner.messages += 1;
        inner.occupied.insert(cell, occupied_bu);
    }

    /// The last occupancy `cell` broadcast, in BU (0 when it never has).
    #[must_use]
    pub fn occupied_of(&self, cell: CellId) -> u32 {
        let inner = self.inner.lock().expect("shadow board poisoned");
        inner.occupied.get(&cell).copied().unwrap_or(0)
    }

    /// Number of active (posted, unretracted) calls.
    #[must_use]
    pub fn active_calls(&self) -> usize {
        self.inner.lock().expect("shadow board poisoned").contributions.len()
    }

    /// Total influence messages exchanged so far.
    #[must_use]
    pub fn message_count(&self) -> u64 {
        self.inner.lock().expect("shadow board poisoned").messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(i: u32) -> CellId {
        CellId(i)
    }

    #[test]
    fn post_and_read_influence() {
        let board = ShadowBoard::new();
        board.post(CallId(1), vec![(cell(0), 3.0), (cell(1), 1.5)]);
        assert_eq!(board.influence_on(cell(0)), 3.0);
        assert_eq!(board.influence_on(cell(1)), 1.5);
        assert_eq!(board.influence_on(cell(2)), 0.0);
        assert_eq!(board.active_calls(), 1);
    }

    #[test]
    fn retract_restores_zero() {
        let board = ShadowBoard::new();
        board.post(CallId(1), vec![(cell(0), 3.0)]);
        board.post(CallId(2), vec![(cell(0), 2.0)]);
        board.retract(CallId(1));
        assert!((board.influence_on(cell(0)) - 2.0).abs() < 1e-12);
        board.retract(CallId(2));
        assert_eq!(board.influence_on(cell(0)), 0.0);
        assert_eq!(board.active_calls(), 0);
    }

    #[test]
    fn repost_replaces_previous_contribution() {
        let board = ShadowBoard::new();
        board.post(CallId(1), vec![(cell(0), 3.0)]);
        // After a handoff the same call projects elsewhere.
        board.post(CallId(1), vec![(cell(1), 2.0)]);
        assert_eq!(board.influence_on(cell(0)), 0.0);
        assert_eq!(board.influence_on(cell(1)), 2.0);
        assert_eq!(board.active_calls(), 1);
    }

    #[test]
    fn retract_unknown_is_harmless() {
        let board = ShadowBoard::new();
        board.retract(CallId(99));
        assert_eq!(board.influence_on(cell(0)), 0.0);
    }

    #[test]
    fn message_count_tracks_traffic() {
        let board = ShadowBoard::new();
        board.post(CallId(1), vec![(cell(0), 1.0), (cell(1), 1.0)]); // 2 messages
        board.post(CallId(1), vec![(cell(2), 1.0)]); // 2 retract + 1 post
        board.retract(CallId(1)); // 1 retract
        assert_eq!(board.message_count(), 6);
    }

    #[test]
    fn board_is_shared_across_clones() {
        let board = ShadowBoard::new();
        let clone = board.clone();
        board.post(CallId(1), vec![(cell(0), 5.0)]);
        assert_eq!(clone.influence_on(cell(0)), 5.0);
    }

    #[test]
    fn board_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShadowBoard>();
    }
}
