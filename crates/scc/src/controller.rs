//! The SCC admission controller: projected-demand estimation over the
//! shadow cluster, with a survivability-style utilization threshold.

use facs_cac::{
    AdmissionController, AdmissionPlan, BandwidthLedger, CallId, CallRequest, CellId, CellSnapshot,
    Decision, ServiceClass,
};
use facs_cellsim::HexGrid;

use crate::board::ShadowBoard;
use crate::projection::handoff_probability;

/// SCC tunables.
///
/// `threshold` is the survivability knob: the fraction of capacity the
/// projected demand (own occupancy + incoming shadow influence) may reach
/// before new calls are denied; `cluster_threshold` is the analogous
/// budget for the tentative-cluster check in neighbor cells. Levine et
/// al. tune the corresponding admission threshold against a target
/// dropping probability; the defaults (0.75 / 0.80) are the calibration
/// used for the Fig. 10 comparison (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SccConfig {
    /// Projection horizon in seconds.
    pub horizon_s: f64,
    /// Utilization threshold in `(0, 1]` over projected demand in the
    /// serving cell.
    pub threshold: f64,
    /// Utilization threshold for the tentative-cluster check in the
    /// neighbor cells the call may hand off into.
    pub cluster_threshold: f64,
    /// Cell radius (km) used for exit-chord geometry.
    pub cell_radius_km: f64,
}

impl Default for SccConfig {
    fn default() -> Self {
        Self { horizon_s: 300.0, threshold: 0.75, cluster_threshold: 0.80, cell_radius_km: 10.0 }
    }
}

/// Per-cell SCC controller. All controllers of one network share a
/// [`ShadowBoard`]; build them together with [`SccNetwork`].
#[derive(Debug)]
pub struct SccController {
    cell: CellId,
    neighbors: Vec<CellId>,
    board: ShadowBoard,
    config: SccConfig,
}

impl SccController {
    /// Creates a controller for `cell` with the given neighbor set and
    /// shared board.
    #[must_use]
    pub fn new(
        cell: CellId,
        neighbors: Vec<CellId>,
        board: ShadowBoard,
        config: SccConfig,
    ) -> Self {
        Self { cell, neighbors, board, config }
    }

    /// The projected demand this cell currently sees: its own occupancy
    /// plus the shadow influence of actives in neighboring cells.
    #[must_use]
    pub fn projected_demand_bu(&self, cell: &CellSnapshot) -> f64 {
        f64::from(cell.occupied.get()) + self.board.influence_on(self.cell)
    }

    /// The contribution a call would post: handoff-probability-weighted
    /// bandwidth spread uniformly over the neighbors.
    fn contribution_for(&self, request: &CallRequest) -> Vec<(CellId, f64)> {
        if self.neighbors.is_empty() {
            return Vec::new();
        }
        let p = handoff_probability(
            &request.mobility,
            self.config.cell_radius_km,
            self.config.horizon_s,
        );
        let share = p * f64::from(request.demand().get()) / self.neighbors.len() as f64;
        if share <= 0.0 {
            return Vec::new();
        }
        self.neighbors.iter().map(|&n| (n, share)).collect()
    }
}

impl AdmissionController for SccController {
    fn name(&self) -> &str {
        "SCC"
    }

    /// SCC reads and writes the cluster-wide shadow board, so its state
    /// is not cell-local: the sharded kernel must run it single-shard.
    fn is_cell_local(&self) -> bool {
        false
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        let cell = cell.snapshot();
        let demand = f64::from(request.demand().get());
        let capacity = f64::from(cell.capacity.get());
        let budget = capacity * self.config.threshold;
        let projected = self.projected_demand_bu(&cell);
        // Soft score: remaining budget after this call, as a fraction of
        // the budget, mapped onto [-1, 1].
        let headroom = (budget - projected - demand) / budget.max(f64::MIN_POSITIVE);
        let mut admit = projected + demand <= budget && cell.can_fit(request.demand());
        if admit {
            // Tentative shadow cluster: every neighbor the call may hand
            // off into must also absorb its projected share without
            // crossing the cluster budget (using the occupancy the
            // neighbor BSs broadcast — possibly slightly stale, exactly
            // as in a real message-based deployment).
            let cluster_budget = capacity * self.config.cluster_threshold;
            for &(neighbor, share) in &self.contribution_for(request) {
                let neighbor_projected =
                    f64::from(self.board.occupied_of(neighbor)) + self.board.influence_on(neighbor);
                if neighbor_projected + share > cluster_budget {
                    admit = false;
                    break;
                }
            }
        }
        AdmissionPlan::gate(if admit {
            Decision::accept(headroom.clamp(0.0, 1.0))
        } else {
            Decision::reject(headroom.clamp(-1.0, 0.0))
        })
    }

    fn on_admitted(&mut self, request: &CallRequest, cell: &CellSnapshot) {
        // Post (or repost, after a handoff) the call's shadow influence,
        // and broadcast the new occupancy to the cluster.
        self.board.post(request.id, self.contribution_for(request));
        self.board.broadcast_occupied(self.cell, cell.occupied.get());
    }

    fn on_released(&mut self, call: CallId, _class: ServiceClass, cell: &CellSnapshot) {
        self.board.retract(call);
        self.board.broadcast_occupied(self.cell, cell.occupied.get());
    }
}

/// Builds the per-cell SCC controllers of one network around a shared
/// shadow board.
///
/// # Examples
///
/// ```
/// use facs_cellsim::HexGrid;
/// use facs_scc::{SccConfig, SccNetwork};
///
/// let grid = HexGrid::new(1, 10.0);
/// let network = SccNetwork::new(SccConfig::default());
/// let controllers = network.controllers(&grid);
/// assert_eq!(controllers.len(), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SccNetwork {
    board: ShadowBoard,
    config: SccConfig,
}

impl SccNetwork {
    /// Creates a network factory with a fresh board.
    #[must_use]
    pub fn new(config: SccConfig) -> Self {
        Self { board: ShadowBoard::new(), config }
    }

    /// The shared board (e.g. to inspect message counts after a run).
    #[must_use]
    pub fn board(&self) -> &ShadowBoard {
        &self.board
    }

    /// Builds one controller per cell of `grid`, all sharing the board.
    #[must_use]
    pub fn controllers(&self, grid: &HexGrid) -> Vec<facs_cac::BoxedController> {
        grid.cell_ids()
            .map(|id| {
                Box::new(SccController::new(
                    id,
                    grid.neighbors_of(id),
                    self.board.clone(),
                    self.config,
                )) as facs_cac::BoxedController
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::{BandwidthUnits, CallKind, MobilityInfo, ServiceProfile};

    fn snapshot(occupied: u32) -> CellSnapshot {
        CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(occupied))
    }

    /// A 40-BU ledger pre-loaded to `occupied` via one rigid filler call.
    fn ledger(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    fn request(id: u64, class: ServiceClass, mobility: MobilityInfo) -> CallRequest {
        CallRequest::new(CallId(id), class, CallKind::New, mobility)
    }

    fn single_cell_controller(threshold: f64) -> SccController {
        SccController::new(
            CellId(0),
            Vec::new(),
            ShadowBoard::new(),
            SccConfig { threshold, ..SccConfig::default() },
        )
    }

    #[test]
    fn admits_below_threshold_budget() {
        let mut scc = single_cell_controller(0.65); // budget 26 BU
        let req = request(1, ServiceClass::Video, MobilityInfo::stationary());
        assert!(scc.decide(&req, &ledger(10)).admits()); // 10+10=20 <= 26
        assert!(!scc.decide(&req, &ledger(20)).admits()); // 20+10=30 > 26
    }

    #[test]
    fn reserves_more_than_complete_sharing() {
        // CS would admit a text call at occupancy 39; SCC's budget denies
        // well before that.
        let mut scc = single_cell_controller(0.65);
        let req = request(1, ServiceClass::Text, MobilityInfo::stationary());
        assert!(!scc.decide(&req, &ledger(30)).admits());
    }

    #[test]
    fn threshold_one_without_neighbors_equals_complete_sharing() {
        let mut scc = single_cell_controller(1.0);
        for occupied in 0..=40 {
            for class in ServiceClass::ALL {
                let req = request(1, class, MobilityInfo::stationary());
                let cs = occupied + class.demand().get() <= 40;
                assert_eq!(scc.decide(&req, &ledger(occupied)).admits(), cs);
            }
        }
    }

    #[test]
    fn incoming_influence_tightens_admission() {
        let board = ShadowBoard::new();
        let mut scc = SccController::new(
            CellId(0),
            vec![CellId(1)],
            board.clone(),
            SccConfig { threshold: 0.65, ..SccConfig::default() },
        );
        let req = request(7, ServiceClass::Video, MobilityInfo::stationary());
        assert!(scc.decide(&req, &ledger(10)).admits());
        // A neighbor's actives now project 8 BU onto this cell.
        board.post(CallId(99), vec![(CellId(0), 8.0)]);
        assert!(!scc.decide(&req, &ledger(10)).admits());
    }

    #[test]
    fn admitted_calls_project_influence_onto_neighbors() {
        let board = ShadowBoard::new();
        let mut scc = SccController::new(
            CellId(0),
            vec![CellId(1), CellId(2)],
            board.clone(),
            SccConfig::default(),
        );
        // A fast user heading out of the cell: p is high.
        let req = request(5, ServiceClass::Video, MobilityInfo::new(120.0, 180.0, 8.0));
        scc.on_admitted(&req, &snapshot(10));
        let a = board.influence_on(CellId(1));
        let b = board.influence_on(CellId(2));
        assert!(a > 0.0 && (a - b).abs() < 1e-12, "uniform spread: {a} vs {b}");
        // 120 km/h over 300 s = 10 km; chord away at 8 km of a 10-km cell
        // is 2 km: p = 1, spread 10 BU over 2 neighbors = 5 each.
        assert!((a - 5.0).abs() < 1e-9);
        scc.on_released(CallId(5), ServiceClass::Video, &snapshot(0));
        assert_eq!(board.influence_on(CellId(1)), 0.0);
    }

    #[test]
    fn stationary_calls_project_nothing() {
        let board = ShadowBoard::new();
        let mut scc =
            SccController::new(CellId(0), vec![CellId(1)], board.clone(), SccConfig::default());
        let req = request(6, ServiceClass::Voice, MobilityInfo::stationary());
        scc.on_admitted(&req, &snapshot(5));
        assert_eq!(board.influence_on(CellId(1)), 0.0);
    }

    #[test]
    fn capacity_always_binds() {
        let mut scc = single_cell_controller(1.0);
        let req = request(1, ServiceClass::Video, MobilityInfo::stationary());
        assert!(!scc.decide(&req, &ledger(35)).admits());
    }

    #[test]
    fn decision_scores_reflect_headroom() {
        let mut scc = single_cell_controller(1.0);
        let req = request(1, ServiceClass::Text, MobilityInfo::stationary());
        let roomy = scc.decide(&req, &ledger(0));
        let tight = scc.decide(&req, &ledger(38));
        assert!(roomy.decision().score() > tight.decision().score());
    }

    #[test]
    fn network_builds_one_controller_per_cell() {
        let grid = HexGrid::new(2, 10.0);
        let network = SccNetwork::new(SccConfig::default());
        assert_eq!(network.controllers(&grid).len(), 19);
        assert_eq!(network.board().message_count(), 0);
    }
}
