//! Property-based tests over the SCC projection and board invariants.

use facs_cac::{CallId, CellId, MobilityInfo};
use facs_scc::{exit_chord_km, handoff_probability, residency_probability, ShadowBoard};
use proptest::prelude::*;

proptest! {
    /// Exit chords are positive and bounded by the diameter (2R) plus the
    /// interior offset.
    #[test]
    fn chord_bounds(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        d in 0.0_f64..10.0,
        radius in 0.5_f64..20.0,
    ) {
        let m = MobilityInfo::new(speed, angle, d);
        let chord = exit_chord_km(&m, radius);
        prop_assert!(chord > 0.0);
        prop_assert!(chord <= 2.0 * radius + 1e-9, "chord {chord} > diameter");
    }

    /// Heading straight at the BS maximizes the exit chord; heading away
    /// minimizes it (for fixed distance).
    #[test]
    fn chord_extremes(d in 0.0_f64..9.9, radius in 1.0_f64..15.0) {
        prop_assume!(d < radius);
        let toward = exit_chord_km(&MobilityInfo::new(10.0, 0.0, d), radius);
        let away = exit_chord_km(&MobilityInfo::new(10.0, 180.0, d), radius);
        for angle in [-135.0, -90.0, -30.0, 45.0, 120.0] {
            let chord = exit_chord_km(&MobilityInfo::new(10.0, angle, d), radius);
            prop_assert!(chord <= toward + 1e-9);
            prop_assert!(chord >= away - 1e-9);
        }
    }

    /// Handoff and residency probabilities are complementary and inside
    /// [0, 1]; handoff probability grows with speed and horizon.
    #[test]
    fn probability_laws(
        speed in 0.0_f64..120.0,
        angle in -180.0_f64..180.0,
        d in 0.0_f64..10.0,
        horizon in 0.0_f64..3600.0,
    ) {
        let m = MobilityInfo::new(speed, angle, d);
        let p = handoff_probability(&m, 10.0, horizon);
        let q = residency_probability(&m, 10.0, horizon);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((p + q - 1.0).abs() < 1e-12);
        prop_assert!(handoff_probability(&m, 10.0, horizon * 2.0) >= p - 1e-12);
        let faster = MobilityInfo::new(speed + 10.0, angle, d);
        prop_assert!(handoff_probability(&faster, 10.0, horizon) >= p - 1e-12);
    }

    /// Board conservation: total influence equals the sum of live
    /// contributions under any post/retract interleaving.
    #[test]
    fn board_conservation(
        ops in prop::collection::vec((0u64..16, 0u32..4, 0.0_f64..5.0, any::<bool>()), 0..100),
    ) {
        let board = ShadowBoard::new();
        let mut live: std::collections::HashMap<u64, Vec<(u32, f64)>> = Default::default();
        for (call, cell, bu, retract) in ops {
            if retract {
                board.retract(CallId(call));
                live.remove(&call);
            } else {
                let contribution = vec![(CellId(cell), bu), (CellId(cell + 1), bu / 2.0)];
                board.post(CallId(call), contribution.clone());
                live.insert(call, contribution.iter().map(|&(c, b)| (c.0, b)).collect());
            }
            // Check per-cell totals against the model.
            for probe in 0..6u32 {
                let expected: f64 = live
                    .values()
                    .flat_map(|c| c.iter())
                    .filter(|&&(c, _)| c == probe)
                    .map(|&(_, b)| b)
                    .sum();
                let actual = board.influence_on(CellId(probe));
                prop_assert!((actual - expected).abs() < 1e-9,
                    "cell {probe}: board {actual} vs model {expected}");
            }
            prop_assert_eq!(board.active_calls(), live.len());
        }
    }

    /// Occupancy broadcasts are last-writer-wins per cell.
    #[test]
    fn occupancy_broadcasts(values in prop::collection::vec((0u32..7, 0u32..=40), 1..50)) {
        let board = ShadowBoard::new();
        let mut model: std::collections::HashMap<u32, u32> = Default::default();
        for (cell, bu) in values {
            board.broadcast_occupied(CellId(cell), bu);
            model.insert(cell, bu);
        }
        for (cell, bu) in model {
            prop_assert_eq!(board.occupied_of(CellId(cell)), bu);
        }
    }
}
