//! The cluster runtime: one OS thread per base station, each owning its
//! bandwidth ledger and admission controller, driven purely by messages.
//!
//! This realizes the deployment the SCC paper sketches — base stations as
//! autonomous peers exchanging admission traffic — and doubles as a
//! fidelity check: because every controller in this workspace is
//! deterministic over (request, cell state), the actor runtime must
//! produce byte-identical decisions to the in-process simulator for the
//! same request sequence (asserted by `tests/distributed.rs`).

use std::collections::HashMap;
use std::fmt;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};
use facs::{FacsConfig, FacsController};
use facs_cac::{
    AdmissionController, AdmissionPlan, BandwidthLedger, BandwidthUnits, BoxedController, CallId,
    CallRequest, CellId,
};
use facs_cellsim::HexGrid;
use facs_fuzzy::FuzzyError;

use crate::messages::{AdmissionOutcome, BsMessage};

/// Errors surfaced by cluster operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The addressed cell id is not part of this cluster.
    UnknownCell(CellId),
    /// The cell's actor has terminated (channel closed).
    CellOffline(CellId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownCell(id) => write!(f, "no such cell {id}"),
            ClusterError::CellOffline(id) => write!(f, "{id} actor is offline"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// One base station's message loop: a ledger plus its controller,
/// driven purely by admission/release messages.
///
/// There is no epoch clock here, so the actor **never** delivers the
/// [`AdmissionController::observe`] pulse — by the trait's ordering
/// contract, controllers with time-stepped state (forecasters, tuners)
/// degrade gracefully to their reactive behavior under this runtime.
///
/// [`AdmissionController::observe`]: facs_cac::AdmissionController::observe
struct BsActor {
    ledger: BandwidthLedger,
    controller: BoxedController,
}

impl BsActor {
    fn run(mut self, rx: crossbeam::channel::Receiver<BsMessage>) {
        while let Ok(message) = rx.recv() {
            match message {
                BsMessage::Admission { request, reply } => {
                    let plan = self.controller.decide(&request, &self.ledger);
                    let decision = plan.decision();
                    let allocated = match plan {
                        AdmissionPlan::Reject(_) => BandwidthUnits::ZERO,
                        AdmissionPlan::Admit(_) => {
                            if self.ledger.allocate(request.id, request.profile).is_ok() {
                                request.profile.rb_cost_nominal
                            } else {
                                BandwidthUnits::ZERO
                            }
                        }
                        AdmissionPlan::AdmitDegraded { squeezes, grant, .. } => {
                            if self
                                .ledger
                                .admit_with_plan(request.id, request.profile, grant, &squeezes)
                                .is_ok()
                            {
                                grant
                            } else {
                                BandwidthUnits::ZERO
                            }
                        }
                    };
                    let admitted = !allocated.is_zero();
                    if admitted {
                        let after = self.ledger.snapshot();
                        self.controller.on_admitted(&request, &after);
                    }
                    // A dropped reply receiver is the caller's problem,
                    // not the actor's: ignore the send error.
                    let _ = reply.send(AdmissionOutcome {
                        admitted,
                        margin: decision.margin(),
                        decision,
                        allocated,
                        occupied_after: self.ledger.occupied(),
                    });
                }
                BsMessage::Release { call } => {
                    if let Ok(profile) = self.ledger.release(call) {
                        let _ = self.ledger.reupgrade_on_release();
                        let after = self.ledger.snapshot();
                        self.controller.on_released(call, profile.class, &after);
                    }
                }
                BsMessage::Occupancy { reply } => {
                    let _ = reply.send(self.ledger.occupied());
                }
                BsMessage::Shutdown => break,
            }
        }
    }
}

/// One admitted call awaiting its holding-time expiry during a replay.
/// Ordered by `(end time, call id)` — total because end times are finite
/// workload sums, and call-id tie-breaking keeps replays deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct LiveCall {
    end_s: f64,
    cell: CellId,
    call: CallId,
}

impl Eq for LiveCall {}

impl PartialOrd for LiveCall {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for LiveCall {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.end_s.total_cmp(&other.end_s).then_with(|| self.call.0.cmp(&other.call.0))
    }
}

/// The outcome of replaying a scenario's new-call stream through a
/// cluster (see [`Cluster::replay_new_calls`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplayReport {
    /// Per-request `(serving cell, outcome)` in arrival order.
    pub outcomes: Vec<(CellId, AdmissionOutcome)>,
    /// Requests skipped because the user spawned outside coverage.
    pub out_of_coverage: usize,
}

impl ReplayReport {
    /// Fraction of replayed requests that were admitted (1.0 when none
    /// were replayed).
    #[must_use]
    pub fn acceptance_ratio(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        let admitted = self.outcomes.iter().filter(|(_, o)| o.admitted).count();
        admitted as f64 / self.outcomes.len() as f64
    }
}

/// A running cluster of base-station actors.
///
/// Dropping the cluster shuts the actors down; prefer the explicit
/// [`Cluster::shutdown`] to observe a clean join.
///
/// # Examples
///
/// ```
/// use facs::FacsController;
/// use facs_cac::{BandwidthUnits, BoxedController, CallId, CallKind, CallRequest, CellId,
///               MobilityInfo, ServiceClass};
/// use facs_cellsim::HexGrid;
/// use facs_distrib::Cluster;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = HexGrid::new(1, 10.0);
/// let controllers = grid
///     .cell_ids()
///     .map(|_| Box::new(FacsController::new().unwrap()) as BoxedController)
///     .collect();
/// let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), controllers);
/// let request = CallRequest::new(
///     CallId(1),
///     ServiceClass::Voice,
///     CallKind::New,
///     MobilityInfo::new(60.0, 0.0, 2.0),
/// );
/// let outcome = cluster.request_admission(CellId(0), request)?;
/// assert!(outcome.admitted);
/// cluster.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Cluster {
    senders: HashMap<CellId, Sender<BsMessage>>,
    handles: Vec<JoinHandle<()>>,
}

impl Cluster {
    /// Spawns one actor per cell of `grid`, each with a fresh ledger of
    /// `capacity` and the matching controller.
    ///
    /// # Panics
    ///
    /// Panics unless `controllers.len() == grid.len()`.
    #[must_use]
    pub fn spawn(
        grid: &HexGrid,
        capacity: BandwidthUnits,
        controllers: Vec<BoxedController>,
    ) -> Self {
        assert_eq!(
            controllers.len(),
            grid.len(),
            "need exactly one controller per cell ({} cells, {} controllers)",
            grid.len(),
            controllers.len()
        );
        let mut senders = HashMap::new();
        let mut handles = Vec::new();
        for (i, controller) in controllers.into_iter().enumerate() {
            let cell = CellId(i as u32);
            let (tx, rx) = unbounded();
            let actor = BsActor { ledger: BandwidthLedger::new(capacity), controller };
            let handle = std::thread::Builder::new()
                .name(format!("bs-{}", cell.0))
                .spawn(move || actor.run(rx))
                .expect("spawn BS actor thread");
            senders.insert(cell, tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Spawns a FACS cluster: one actor per cell, each running its own
    /// clone of a single prototype [`FacsController`] built from
    /// `config`.
    ///
    /// This is the backend-aware entry point: with
    /// [`FacsConfig::compiled`] the decision surfaces compile **once**
    /// here and every actor shares the same sample blocks (surfaces
    /// clone by reference), so a 100-cell cluster pays one compilation,
    /// not one hundred.
    ///
    /// # Errors
    ///
    /// Propagates [`FuzzyError`] if the prototype controller fails to
    /// build (e.g. an invalid inference resolution in `config`).
    pub fn spawn_facs(
        grid: &HexGrid,
        capacity: BandwidthUnits,
        config: FacsConfig,
    ) -> Result<Self, FuzzyError> {
        let prototype = FacsController::with_config(config)?;
        let controllers =
            grid.cell_ids().map(|_| Box::new(prototype.clone()) as BoxedController).collect();
        Ok(Self::spawn(grid, capacity, controllers))
    }

    /// Replays a scenario workload's new-call stream through the actor
    /// path: users are generated from `scenario` (any entry of
    /// `facs_cellsim::workload::catalog()` works), each request is sent
    /// to the actor of the cell covering the user's position, and calls
    /// whose holding time has elapsed are released before later
    /// arrivals — so the actors see the same churn the in-process
    /// simulator's new-call path produces.
    ///
    /// Deterministic for a given `(scenario, seed)`: replaying twice
    /// against identically-configured clusters yields identical reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ClusterError`] (e.g. the cluster's grid is
    /// smaller than the scenario's).
    pub fn replay_new_calls(
        &self,
        scenario: &facs_cellsim::ScenarioConfig,
        seed: u64,
    ) -> Result<ReplayReport, ClusterError> {
        let grid = scenario.grid();
        let mut report = ReplayReport::default();
        // Admitted calls, earliest-ending first (ties broken by call id,
        // so replays are deterministic); a min-heap keeps the churn loop
        // O(n log n) over million-user workloads.
        let mut live: std::collections::BinaryHeap<std::cmp::Reverse<LiveCall>> =
            std::collections::BinaryHeap::new();
        // Synthesized chunk by chunk through the streaming path — the
        // replay never materializes the full workload, so memory tracks
        // live calls, not total users. The stream yields exactly the
        // eager `generate_workload` sequence.
        let mut stream = scenario.stream_workload(seed);
        while let Some(mut chunk) = stream.next_chunk() {
            for (offset, spec) in chunk.specs.drain(..).enumerate() {
                let i = chunk.first_user + offset as u64;
                while let Some(std::cmp::Reverse(ending)) = live.peek() {
                    if ending.end_s > spec.arrival_s {
                        break;
                    }
                    self.release(ending.cell, ending.call)?;
                    live.pop();
                }
                if grid.out_of_coverage(spec.start.position) {
                    report.out_of_coverage += 1;
                    continue;
                }
                let cell = grid.locate(spec.start.position);
                let call = CallId(i);
                let request = CallRequest::new(
                    call,
                    spec.profile.class,
                    facs_cac::CallKind::New,
                    spec.start.observe(grid.center_of(cell)),
                )
                .with_profile(spec.profile);
                let outcome = self.request_admission(cell, request)?;
                if outcome.admitted {
                    let end_s = spec.arrival_s + spec.holding_s;
                    live.push(std::cmp::Reverse(LiveCall { end_s, cell, call }));
                }
                report.outcomes.push((cell, outcome));
            }
            stream.recycle(chunk);
        }
        Ok(report)
    }

    fn sender(&self, cell: CellId) -> Result<&Sender<BsMessage>, ClusterError> {
        self.senders.get(&cell).ok_or(ClusterError::UnknownCell(cell))
    }

    /// Number of base stations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// `true` when the cluster has no cells (never, for grids built by
    /// [`HexGrid::new`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// Requests admission of `request` at `cell` and waits for the
    /// decision.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownCell`] for an id outside the grid;
    /// [`ClusterError::CellOffline`] if the actor has terminated.
    pub fn request_admission(
        &self,
        cell: CellId,
        request: CallRequest,
    ) -> Result<AdmissionOutcome, ClusterError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender(cell)?
            .send(BsMessage::Admission { request, reply: reply_tx })
            .map_err(|_| ClusterError::CellOffline(cell))?;
        reply_rx.recv().map_err(|_| ClusterError::CellOffline(cell))
    }

    /// Releases `call` at `cell` (fire-and-forget; unknown calls are
    /// ignored by the actor).
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownCell`] / [`ClusterError::CellOffline`].
    pub fn release(&self, cell: CellId, call: CallId) -> Result<(), ClusterError> {
        self.sender(cell)?
            .send(BsMessage::Release { call })
            .map_err(|_| ClusterError::CellOffline(cell))
    }

    /// Performs a handoff: releases at `from`, then requests admission at
    /// `to`. Returns the target's outcome; on denial the call is simply
    /// gone (dropped), as in the simulator.
    ///
    /// # Errors
    ///
    /// Propagates the first cluster error from either step.
    pub fn handoff(
        &self,
        from: CellId,
        to: CellId,
        request: CallRequest,
    ) -> Result<AdmissionOutcome, ClusterError> {
        self.release(from, request.id)?;
        self.request_admission(to, request)
    }

    /// Reads a cell's current occupancy.
    ///
    /// # Errors
    ///
    /// [`ClusterError::UnknownCell`] / [`ClusterError::CellOffline`].
    pub fn occupancy(&self, cell: CellId) -> Result<BandwidthUnits, ClusterError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.sender(cell)?
            .send(BsMessage::Occupancy { reply: reply_tx })
            .map_err(|_| ClusterError::CellOffline(cell))?;
        reply_rx.recv().map_err(|_| ClusterError::CellOffline(cell))
    }

    /// Shuts every actor down and joins the threads.
    pub fn shutdown(mut self) {
        for tx in self.senders.values() {
            let _ = tx.send(BsMessage::Shutdown);
        }
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for tx in self.senders.values() {
            let _ = tx.send(BsMessage::Shutdown);
        }
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::policies::CompleteSharing;
    use facs_cac::{CallKind, MobilityInfo, ServiceClass};

    fn cs_controllers(n: usize) -> Vec<BoxedController> {
        (0..n).map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
    }

    fn request(id: u64, class: ServiceClass) -> CallRequest {
        CallRequest::new(CallId(id), class, CallKind::New, MobilityInfo::new(30.0, 0.0, 2.0))
    }

    #[test]
    fn admission_allocates_and_release_frees() {
        let grid = HexGrid::single_cell(10.0);
        let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(1));
        let outcome =
            cluster.request_admission(CellId(0), request(1, ServiceClass::Video)).unwrap();
        assert!(outcome.admitted);
        assert_eq!(outcome.occupied_after.get(), 10);
        cluster.release(CellId(0), CallId(1)).unwrap();
        assert_eq!(cluster.occupancy(CellId(0)).unwrap(), BandwidthUnits::ZERO);
        cluster.shutdown();
    }

    #[test]
    fn capacity_is_enforced_by_the_actor() {
        let grid = HexGrid::single_cell(10.0);
        let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(1));
        let mut admitted = 0;
        for i in 0..6 {
            if cluster
                .request_admission(CellId(0), request(i, ServiceClass::Video))
                .unwrap()
                .admitted
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 4, "40 BU holds exactly 4 video calls");
        cluster.shutdown();
    }

    #[test]
    fn handoff_moves_allocation() {
        let grid = HexGrid::new(1, 10.0);
        let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(7));
        assert!(
            cluster.request_admission(CellId(0), request(1, ServiceClass::Voice)).unwrap().admitted
        );
        let outcome = cluster
            .handoff(
                CellId(0),
                CellId(1),
                CallRequest::new(
                    CallId(1),
                    ServiceClass::Voice,
                    CallKind::Handoff,
                    MobilityInfo::new(30.0, 0.0, 2.0),
                ),
            )
            .unwrap();
        assert!(outcome.admitted);
        assert_eq!(cluster.occupancy(CellId(0)).unwrap(), BandwidthUnits::ZERO);
        assert_eq!(cluster.occupancy(CellId(1)).unwrap().get(), 5);
        cluster.shutdown();
    }

    #[test]
    fn unknown_cell_is_an_error() {
        let grid = HexGrid::single_cell(10.0);
        let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(1));
        let err = cluster.request_admission(CellId(9), request(1, ServiceClass::Text)).unwrap_err();
        assert_eq!(err, ClusterError::UnknownCell(CellId(9)));
        cluster.shutdown();
    }

    #[test]
    fn release_of_unknown_call_is_idempotent() {
        let grid = HexGrid::single_cell(10.0);
        let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(1));
        cluster.release(CellId(0), CallId(404)).unwrap();
        assert_eq!(cluster.occupancy(CellId(0)).unwrap(), BandwidthUnits::ZERO);
        cluster.shutdown();
    }

    #[test]
    fn spawn_facs_serves_both_backends() {
        let grid = HexGrid::new(1, 10.0);
        // A coarse 9-point lattice keeps the debug-mode compile cheap;
        // accuracy at the default resolution is covered in facs-core.
        let compiled = FacsConfig {
            backend: facs_fuzzy::BackendKind::Compiled { points_per_axis: 9 },
            ..FacsConfig::default()
        };
        for config in [FacsConfig::default(), compiled] {
            let cluster = Cluster::spawn_facs(&grid, BandwidthUnits::new(40), config).unwrap();
            assert_eq!(cluster.len(), 7);
            let outcome = cluster
                .request_admission(
                    CellId(0),
                    CallRequest::new(
                        CallId(1),
                        ServiceClass::Voice,
                        CallKind::New,
                        MobilityInfo::new(60.0, 0.0, 2.0),
                    ),
                )
                .unwrap();
            assert!(outcome.admitted, "backend {} denied a clear admit", config.backend);
            cluster.shutdown();
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let grid = HexGrid::new(1, 10.0);
        let cluster = Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(7));
        drop(cluster); // must not hang or panic
    }

    #[test]
    fn concurrent_admissions_conserve_capacity() {
        let grid = HexGrid::single_cell(10.0);
        let cluster =
            std::sync::Arc::new(Cluster::spawn(&grid, BandwidthUnits::new(40), cs_controllers(1)));
        let mut joins = Vec::new();
        for t in 0..8 {
            let cluster = std::sync::Arc::clone(&cluster);
            joins.push(std::thread::spawn(move || {
                let mut admitted = 0u32;
                for i in 0..10 {
                    let id = t * 100 + i;
                    if cluster
                        .request_admission(CellId(0), request(id, ServiceClass::Video))
                        .unwrap()
                        .admitted
                    {
                        admitted += 1;
                    }
                }
                admitted
            }));
        }
        let total: u32 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total, 4, "exactly 4 video calls fit regardless of concurrency");
        assert_eq!(cluster.occupancy(CellId(0)).unwrap().get(), 40);
    }
}
