//! The message protocol between the cluster front-end and base-station
//! actors.

use crossbeam::channel::Sender;
use facs_cac::{BandwidthUnits, CallId, CallRequest, Decision};

/// The outcome of an admission request processed by a BS actor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionOutcome {
    /// Whether the call was admitted *and* its bandwidth allocated.
    pub admitted: bool,
    /// The decision margin: the soft score's signed distance from the
    /// controller's acceptance boundary (see [`Decision::margin`]).
    /// Positive iff the *controller* admitted; `admitted` can still be
    /// `false` when the allocation no longer fit.
    pub margin: f64,
    /// The controller's soft decision (may admit even when allocation
    /// failed; `admitted` is authoritative).
    pub decision: Decision,
    /// Bandwidth actually granted: the profile's nominal on a plain
    /// admit, the degraded grant on an elastic squeeze-in, zero on
    /// denial (or when the allocation no longer fit).
    pub allocated: BandwidthUnits,
    /// The cell's occupancy after processing.
    pub occupied_after: BandwidthUnits,
}

/// Messages a base-station actor processes, in arrival order.
#[derive(Debug)]
pub enum BsMessage {
    /// Decide on (and, if admitted, allocate) a call.
    Admission {
        /// The request to decide.
        request: CallRequest,
        /// Where to send the outcome.
        reply: Sender<AdmissionOutcome>,
    },
    /// Release a call's bandwidth (completion or outbound handoff).
    /// Unknown calls are ignored (idempotent, like a real BS receiving a
    /// duplicate teardown).
    Release {
        /// The call to release.
        call: CallId,
    },
    /// Report current occupancy.
    Occupancy {
        /// Where to send the occupancy.
        reply: Sender<BandwidthUnits>,
    },
    /// Drain and terminate.
    Shutdown,
}
