//! # facs-distrib — a distributed runtime for cellular admission control
//!
//! The SCC paper describes base stations as autonomous peers exchanging
//! probabilistic information; this crate makes that deployment real at
//! process scale: **one actor per base station**, each owning its
//! bandwidth ledger and admission controller (FACS, SCC or any
//! [`facs_cac::AdmissionController`]), communicating exclusively through
//! crossbeam channels.
//!
//! Because every controller in the workspace is deterministic over
//! `(request, cell state)`, the actor runtime produces decisions
//! identical to the in-process simulator for the same request sequence —
//! the `distributed_equivalence` integration test asserts this, which
//! validates both runtimes against each other.
//!
//! See [`Cluster`] for the API and a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod messages;

pub use cluster::{Cluster, ClusterError, ReplayReport};
pub use messages::{AdmissionOutcome, BsMessage};
