//! Guard Channel — reserve headroom for handoffs.
//!
//! Since *"users are much more sensitive to call dropping than to call
//! blocking, the handoff calls are assigned higher priority than new
//! calls"* (paper §1). The guard-channel policy implements that priority
//! by denying new calls once free capacity falls to a reserved guard
//! band, while handoffs may use the full capacity.

use crate::controller::{AdmissionController, AdmissionPlan};
use crate::decision::Decision;
use crate::ledger::BandwidthLedger;
use crate::traffic::{CallKind, CallRequest};
use crate::units::BandwidthUnits;

/// Reserves `guard` BU exclusively for handoff calls.
///
/// * handoff: admitted iff `demand <= free`;
/// * new call: admitted iff `demand <= free - guard`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardChannel {
    guard: BandwidthUnits,
}

impl GuardChannel {
    /// Creates a policy reserving `guard` BU for handoffs.
    #[must_use]
    pub fn new(guard: BandwidthUnits) -> Self {
        Self { guard }
    }

    /// The reserved guard band.
    #[must_use]
    pub fn guard(&self) -> BandwidthUnits {
        self.guard
    }
}

impl AdmissionController for GuardChannel {
    fn name(&self) -> &str {
        "GuardChannel"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        let free = cell.free();
        let admit = match request.kind {
            CallKind::Handoff => request.demand() <= free,
            CallKind::New => {
                let usable = free.saturating_sub(self.guard);
                request.demand() <= usable
            }
        };
        AdmissionPlan::gate(Decision::binary(admit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{CallId, MobilityInfo, ServiceClass, ServiceProfile};

    fn req(class: ServiceClass, kind: CallKind) -> CallRequest {
        CallRequest::new(CallId(1), class, kind, MobilityInfo::stationary())
    }

    fn cell(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    #[test]
    fn handoffs_use_full_capacity() {
        let mut gc = GuardChannel::new(BandwidthUnits::new(10));
        assert!(gc.decide(&req(ServiceClass::Video, CallKind::Handoff), &cell(30)).admits());
        assert!(!gc.decide(&req(ServiceClass::Video, CallKind::Handoff), &cell(31)).admits());
    }

    #[test]
    fn new_calls_blocked_inside_guard_band() {
        let mut gc = GuardChannel::new(BandwidthUnits::new(10));
        // free = 10 == guard: nothing usable by new calls.
        assert!(!gc.decide(&req(ServiceClass::Text, CallKind::New), &cell(30)).admits());
        // free = 15, usable = 5: voice fits, video not.
        assert!(gc.decide(&req(ServiceClass::Voice, CallKind::New), &cell(25)).admits());
        assert!(!gc.decide(&req(ServiceClass::Video, CallKind::New), &cell(25)).admits());
    }

    #[test]
    fn handoff_acceptance_dominates_new_calls() {
        // Whatever the load, a handoff is admitted whenever the same-class
        // new call would be (priority invariant).
        let mut gc = GuardChannel::new(BandwidthUnits::new(8));
        for occupied in 0..=40 {
            for class in ServiceClass::ALL {
                let new_ok = gc.decide(&req(class, CallKind::New), &cell(occupied)).admits();
                let ho_ok = gc.decide(&req(class, CallKind::Handoff), &cell(occupied)).admits();
                assert!(!new_ok || ho_ok, "new admitted but handoff denied at {occupied}");
            }
        }
    }

    #[test]
    fn zero_guard_degenerates_to_complete_sharing() {
        let mut gc = GuardChannel::new(BandwidthUnits::ZERO);
        let mut cs = crate::policies::CompleteSharing::new();
        for occupied in 0..=40 {
            for class in ServiceClass::ALL {
                for kind in [CallKind::New, CallKind::Handoff] {
                    assert_eq!(
                        gc.decide(&req(class, kind), &cell(occupied)).admits(),
                        cs.decide(&req(class, kind), &cell(occupied)).admits(),
                    );
                }
            }
        }
    }

    #[test]
    fn guard_accessor() {
        assert_eq!(GuardChannel::new(BandwidthUnits::new(7)).guard().get(), 7);
    }
}
