//! Multi-Priority Threshold policy.
//!
//! Paper §1 cites Bartolini & Chlamtac (PIMRC 2002): *"under some
//! assumptions, the optimal policy has the shape of Multi-Priority
//! Threshold Policy"* — each class `c` is admitted only while the
//! occupancy (after admission) stays below a per-class threshold
//! `T_c <= capacity`, giving high-priority classes the larger headroom.

use crate::controller::{AdmissionController, AdmissionPlan};
use crate::decision::Decision;
use crate::ledger::BandwidthLedger;
use crate::traffic::{CallKind, CallRequest, ServiceClass};
use crate::units::BandwidthUnits;

/// Per-class occupancy thresholds, with an optional handoff bonus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdPolicy {
    text: BandwidthUnits,
    voice: BandwidthUnits,
    video: BandwidthUnits,
    handoff_bonus: BandwidthUnits,
}

impl ThresholdPolicy {
    /// Starts building a policy over a cell of `capacity` BU; all
    /// thresholds default to the full capacity (making it equivalent to
    /// Complete Sharing until tightened).
    #[must_use]
    pub fn builder(capacity: BandwidthUnits) -> ThresholdPolicyBuilder {
        ThresholdPolicyBuilder {
            capacity,
            text: capacity,
            voice: capacity,
            video: capacity,
            handoff_bonus: BandwidthUnits::ZERO,
        }
    }

    /// The admission threshold applied to `class`.
    #[must_use]
    pub fn threshold(&self, class: ServiceClass) -> BandwidthUnits {
        match class {
            ServiceClass::Text => self.text,
            ServiceClass::Voice => self.voice,
            ServiceClass::Video => self.video,
        }
    }
}

impl AdmissionController for ThresholdPolicy {
    fn name(&self) -> &str {
        "Threshold"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        if !cell.can_fit(request.demand()) {
            return AdmissionPlan::gate(Decision::binary(false));
        }
        let mut limit = self.threshold(request.class);
        if request.kind == CallKind::Handoff {
            limit += self.handoff_bonus;
        }
        let limit = limit.min(cell.capacity());
        let after = cell.occupied() + request.demand();
        AdmissionPlan::gate(Decision::binary(after <= limit))
    }
}

/// Builder for [`ThresholdPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct ThresholdPolicyBuilder {
    capacity: BandwidthUnits,
    text: BandwidthUnits,
    voice: BandwidthUnits,
    video: BandwidthUnits,
    handoff_bonus: BandwidthUnits,
}

impl ThresholdPolicyBuilder {
    /// Sets the text-class threshold.
    #[must_use]
    pub fn text(mut self, threshold: BandwidthUnits) -> Self {
        self.text = threshold;
        self
    }

    /// Sets the voice-class threshold.
    #[must_use]
    pub fn voice(mut self, threshold: BandwidthUnits) -> Self {
        self.voice = threshold;
        self
    }

    /// Sets the video-class threshold.
    #[must_use]
    pub fn video(mut self, threshold: BandwidthUnits) -> Self {
        self.video = threshold;
        self
    }

    /// Extra headroom granted to handoff requests of any class.
    #[must_use]
    pub fn handoff_bonus(mut self, bonus: BandwidthUnits) -> Self {
        self.handoff_bonus = bonus;
        self
    }

    /// Finishes the policy; thresholds are clamped to the capacity.
    #[must_use]
    pub fn build(self) -> ThresholdPolicy {
        ThresholdPolicy {
            text: self.text.min(self.capacity),
            voice: self.voice.min(self.capacity),
            video: self.video.min(self.capacity),
            handoff_bonus: self.handoff_bonus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{CallId, MobilityInfo, ServiceProfile};

    fn req(class: ServiceClass, kind: CallKind) -> CallRequest {
        CallRequest::new(CallId(1), class, kind, MobilityInfo::stationary())
    }

    fn cell(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    fn policy() -> ThresholdPolicy {
        ThresholdPolicy::builder(BandwidthUnits::new(40))
            .text(BandwidthUnits::new(25))
            .voice(BandwidthUnits::new(35))
            .video(BandwidthUnits::new(40))
            .handoff_bonus(BandwidthUnits::new(5))
            .build()
    }

    #[test]
    fn per_class_thresholds_bind() {
        let mut p = policy();
        // Text threshold 25: at 24 occupied, text (1 BU) makes 25 <= 25 — ok.
        assert!(p.decide(&req(ServiceClass::Text, CallKind::New), &cell(24)).admits());
        // At 25 occupied, it would make 26 > 25 — blocked.
        assert!(!p.decide(&req(ServiceClass::Text, CallKind::New), &cell(25)).admits());
        // Voice threshold 35: at 30 occupied ok (35 <= 35), at 31 blocked.
        assert!(p.decide(&req(ServiceClass::Voice, CallKind::New), &cell(30)).admits());
        assert!(!p.decide(&req(ServiceClass::Voice, CallKind::New), &cell(31)).admits());
        // Video threshold = capacity: only capacity binds.
        assert!(p.decide(&req(ServiceClass::Video, CallKind::New), &cell(30)).admits());
        assert!(!p.decide(&req(ServiceClass::Video, CallKind::New), &cell(31)).admits());
    }

    #[test]
    fn handoff_bonus_loosens_threshold() {
        let mut p = policy();
        // Text new blocked at 25 occupied, but handoff (threshold 25+5) ok.
        assert!(!p.decide(&req(ServiceClass::Text, CallKind::New), &cell(25)).admits());
        assert!(p.decide(&req(ServiceClass::Text, CallKind::Handoff), &cell(25)).admits());
    }

    #[test]
    fn capacity_always_binds() {
        let mut p = ThresholdPolicy::builder(BandwidthUnits::new(40))
            .handoff_bonus(BandwidthUnits::new(100))
            .build();
        assert!(!p.decide(&req(ServiceClass::Video, CallKind::Handoff), &cell(35)).admits());
    }

    #[test]
    fn default_thresholds_equal_complete_sharing() {
        let mut p = ThresholdPolicy::builder(BandwidthUnits::new(40)).build();
        let mut cs = crate::policies::CompleteSharing::new();
        for occupied in 0..=40 {
            for class in ServiceClass::ALL {
                assert_eq!(
                    p.decide(&req(class, CallKind::New), &cell(occupied)).admits(),
                    cs.decide(&req(class, CallKind::New), &cell(occupied)).admits(),
                    "class {class} at occupancy {occupied}"
                );
            }
        }
    }

    #[test]
    fn thresholds_clamp_to_capacity() {
        let p = ThresholdPolicy::builder(BandwidthUnits::new(40))
            .text(BandwidthUnits::new(100))
            .build();
        assert_eq!(p.threshold(ServiceClass::Text).get(), 40);
    }

    #[test]
    fn fairness_shape_blocks_narrow_classes_first() {
        // The point of the policy: reserve headroom for wide (video) calls
        // by cutting narrow classes earlier.
        let mut p = policy();
        let occupied = 30;
        assert!(!p.decide(&req(ServiceClass::Text, CallKind::New), &cell(occupied)).admits());
        assert!(p.decide(&req(ServiceClass::Voice, CallKind::New), &cell(occupied)).admits());
        assert!(p.decide(&req(ServiceClass::Video, CallKind::New), &cell(occupied)).admits());
    }
}
