//! Classical CAC baseline policies from the paper's related-work survey
//! (§1): Complete Sharing, Guard Channel, Fractional Guard Channel, and
//! the Multi-Priority Threshold policy.

mod complete_sharing;
mod fractional_guard;
mod guard_channel;
mod threshold;

pub use complete_sharing::CompleteSharing;
pub use fractional_guard::FractionalGuardChannel;
pub use guard_channel::GuardChannel;
pub use threshold::{ThresholdPolicy, ThresholdPolicyBuilder};
