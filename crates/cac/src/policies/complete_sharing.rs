//! Complete Sharing — the simplest CAC technique.
//!
//! Paper §1: *"In CS, an arriving customer is served if there are enough
//! free channels for its service. If the number of free channels is less
//! than the channel requirements of the arriving customer, it is lost.
//! This technique is easy to implement but it suffers from the fact that
//! it is not fair to customers with large bandwidth requirements."*

use crate::controller::{AdmissionController, AdmissionPlan};
use crate::decision::Decision;
use crate::ledger::BandwidthLedger;
use crate::traffic::CallRequest;

/// Admits any request that fits in the free bandwidth; no reservation, no
/// prioritization.
///
/// # Examples
///
/// ```
/// use facs_cac::policies::CompleteSharing;
/// use facs_cac::{
///     AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
///     MobilityInfo, ServiceClass,
/// };
///
/// let mut cs = CompleteSharing::new();
/// let cell = BandwidthLedger::new(BandwidthUnits::new(40));
/// let req = CallRequest::new(CallId(1), ServiceClass::Video, CallKind::New,
///                            MobilityInfo::stationary());
/// assert!(cs.decide(&req, &cell).admits());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompleteSharing;

impl CompleteSharing {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl AdmissionController for CompleteSharing {
    fn name(&self) -> &str {
        "CS"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        AdmissionPlan::gate(Decision::binary(cell.can_fit(request.demand())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{CallId, CallKind, MobilityInfo, ServiceClass, ServiceProfile};
    use crate::units::BandwidthUnits;

    fn req(class: ServiceClass) -> CallRequest {
        CallRequest::new(CallId(1), class, CallKind::New, MobilityInfo::stationary())
    }

    fn cell(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    #[test]
    fn admits_while_it_fits() {
        let mut cs = CompleteSharing::new();
        assert!(cs.decide(&req(ServiceClass::Video), &cell(30)).admits());
        assert!(!cs.decide(&req(ServiceClass::Video), &cell(31)).admits());
        assert!(cs.decide(&req(ServiceClass::Text), &cell(39)).admits());
        assert!(!cs.decide(&req(ServiceClass::Text), &cell(40)).admits());
    }

    #[test]
    fn unfair_to_wide_calls_near_capacity() {
        // The documented weakness: at 35/40 occupancy text fits, video not.
        let mut cs = CompleteSharing::new();
        assert!(cs.decide(&req(ServiceClass::Text), &cell(35)).admits());
        assert!(cs.decide(&req(ServiceClass::Voice), &cell(35)).admits());
        assert!(!cs.decide(&req(ServiceClass::Video), &cell(35)).admits());
    }

    #[test]
    fn ignores_call_kind() {
        let mut cs = CompleteSharing::new();
        let new = CallRequest::new(
            CallId(1),
            ServiceClass::Voice,
            CallKind::New,
            MobilityInfo::stationary(),
        );
        let handoff = CallRequest::new(
            CallId(2),
            ServiceClass::Voice,
            CallKind::Handoff,
            MobilityInfo::stationary(),
        );
        assert_eq!(cs.decide(&new, &cell(38)).admits(), cs.decide(&handoff, &cell(38)).admits());
    }
}
