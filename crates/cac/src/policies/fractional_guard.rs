//! Fractional Guard Channel — probabilistic thinning of new calls.
//!
//! The classic fractional guard-channel policy admits a new call with a
//! probability that decreases as the cell fills, instead of the hard
//! cutoff of [`GuardChannel`](crate::policies::GuardChannel).
//!
//! To keep simulations reproducible without importing an RNG into this
//! crate, the implementation uses **deterministic error diffusion**: an
//! accumulator gains the admission probability on every new-call arrival
//! and a call is admitted when the accumulator reaches 1. Over any long
//! arrival sequence the admitted fraction converges to the configured
//! probability exactly, with the lowest possible variance.

use crate::controller::{AdmissionController, AdmissionPlan};
use crate::decision::Decision;
use crate::ledger::BandwidthLedger;
use crate::traffic::{CallKind, CallRequest};

/// Fractional guard channel with linear admission-probability decay.
///
/// New-call admission probability as a function of utilization `u`:
///
/// ```text
/// p(u) = 1                              for u <= start
/// p(u) = 1 - (u - start)/(end - start)  for start < u < end
/// p(u) = 0                              for u >= end
/// ```
///
/// Handoffs bypass the thinning entirely (subject to capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct FractionalGuardChannel {
    start: f64,
    end: f64,
    credit: f64,
}

impl FractionalGuardChannel {
    /// Creates the policy: thinning begins at utilization `start` and
    /// new calls are fully blocked at utilization `end`.
    ///
    /// # Panics
    ///
    /// Panics if `!(0.0 <= start < end <= 1.0)` — these are programmer
    /// configuration constants, not runtime data.
    #[must_use]
    pub fn new(start: f64, end: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&start) && start < end && end <= 1.0,
            "need 0 <= start < end <= 1 (got start={start}, end={end})"
        );
        Self { start, end, credit: 0.0 }
    }

    /// Admission probability for a new call at utilization `u`.
    #[must_use]
    pub fn admission_probability(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        if u <= self.start {
            1.0
        } else if u >= self.end {
            0.0
        } else {
            1.0 - (u - self.start) / (self.end - self.start)
        }
    }
}

impl AdmissionController for FractionalGuardChannel {
    fn name(&self) -> &str {
        "FractionalGuard"
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        if !cell.can_fit(request.demand()) {
            return AdmissionPlan::gate(Decision::binary(false));
        }
        AdmissionPlan::gate(match request.kind {
            CallKind::Handoff => Decision::binary(true),
            CallKind::New => {
                let p = self.admission_probability(cell.utilization());
                self.credit += p;
                if self.credit >= 1.0 {
                    self.credit -= 1.0;
                    // Soft score mirrors how comfortable the admission was.
                    Decision::accept(2.0 * p - 1.0)
                } else {
                    Decision::reject(2.0 * p - 1.0)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{CallId, MobilityInfo, ServiceClass, ServiceProfile};
    use crate::units::BandwidthUnits;

    fn req(kind: CallKind) -> CallRequest {
        CallRequest::new(CallId(1), ServiceClass::Text, kind, MobilityInfo::stationary())
    }

    fn cell(occupied: u32) -> BandwidthLedger {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        if occupied > 0 {
            l.allocate(
                CallId(999),
                ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
            )
            .unwrap();
        }
        l
    }

    #[test]
    fn probability_profile() {
        let fg = FractionalGuardChannel::new(0.5, 1.0);
        assert_eq!(fg.admission_probability(0.0), 1.0);
        assert_eq!(fg.admission_probability(0.5), 1.0);
        assert!((fg.admission_probability(0.75) - 0.5).abs() < 1e-12);
        assert_eq!(fg.admission_probability(1.0), 0.0);
    }

    #[test]
    fn full_admission_below_start() {
        let mut fg = FractionalGuardChannel::new(0.5, 1.0);
        for _ in 0..100 {
            assert!(fg.decide(&req(CallKind::New), &cell(10)).admits());
        }
    }

    #[test]
    fn error_diffusion_converges_to_probability() {
        let mut fg = FractionalGuardChannel::new(0.5, 1.0);
        // Utilization 0.75 => p = 0.5: exactly half of arrivals admitted.
        let admitted =
            (0..1000).filter(|_| fg.decide(&req(CallKind::New), &cell(30)).admits()).count();
        assert_eq!(admitted, 500);
    }

    #[test]
    fn handoffs_bypass_thinning() {
        let mut fg = FractionalGuardChannel::new(0.1, 0.5);
        // Utilization 0.975 — new calls fully blocked, handoffs pass.
        assert!(fg.decide(&req(CallKind::Handoff), &cell(39)).admits());
        assert!(!fg.decide(&req(CallKind::New), &cell(39)).admits());
    }

    #[test]
    fn capacity_still_binds() {
        let mut fg = FractionalGuardChannel::new(0.5, 1.0);
        let full = cell(40);
        assert!(!fg.decide(&req(CallKind::Handoff), &full).admits());
        assert!(!fg.decide(&req(CallKind::New), &full).admits());
    }

    #[test]
    #[should_panic(expected = "need 0 <= start < end <= 1")]
    fn rejects_bad_configuration() {
        let _ = FractionalGuardChannel::new(0.9, 0.5);
    }

    #[test]
    fn determinism_across_clones() {
        let fg = FractionalGuardChannel::new(0.2, 0.8);
        let mut a = fg.clone();
        let mut b = fg;
        for occupied in [10, 20, 25, 30, 18, 22] {
            let da = a.decide(&req(CallKind::New), &cell(occupied));
            let db = b.decide(&req(CallKind::New), &cell(occupied));
            assert_eq!(da.admits(), db.admits());
        }
    }
}
