//! Traffic classes and call descriptors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::BandwidthUnits;

/// The paper's three service classes, with their per-call bandwidth demand
/// (§4: "The requested size was 1, 5 and 10 BU for text, voice and video").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Queue-able, delay-tolerant data traffic (1 BU).
    Text,
    /// Real-time audio (5 BU).
    Voice,
    /// Real-time video (10 BU).
    Video,
}

impl ServiceClass {
    /// All classes, in demand order.
    pub const ALL: [ServiceClass; 3] =
        [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video];

    /// Bandwidth demanded by one call of this class.
    #[must_use]
    pub const fn demand(self) -> BandwidthUnits {
        match self {
            ServiceClass::Text => BandwidthUnits::new(1),
            ServiceClass::Voice => BandwidthUnits::new(5),
            ServiceClass::Video => BandwidthUnits::new(10),
        }
    }

    /// Whether the class carries real-time traffic (drives the paper's
    /// RTC/NRTC differentiated-service counters).
    #[must_use]
    pub const fn is_real_time(self) -> bool {
        matches!(self, ServiceClass::Voice | ServiceClass::Video)
    }

    /// The crisp value fed to FLC2's `R` (required bandwidth) input — the
    /// demand in BU, over the paper's `[0, 10]` universe.
    #[must_use]
    pub fn request_level(self) -> f64 {
        f64::from(self.demand().get())
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceClass::Text => "text",
            ServiceClass::Voice => "voice",
            ServiceClass::Video => "video",
        };
        f.write_str(s)
    }
}

/// The bandwidth contract of one call: how much it asks for, how far it
/// can be squeezed, and how long it is expected to last.
///
/// The paper's calls are rigid — a voice call costs 5 BU, full stop. An
/// *elastic* profile (cf. Chowdhury et al., arXiv:1412.3630) instead
/// spans `[rb_cost_min, rb_cost_nominal]`: the ledger grants the nominal
/// cost when it can, and may degrade the allocation down to — but never
/// below — the floor to squeeze in higher-priority traffic, re-upgrading
/// when bandwidth frees up. A profile with `rb_cost_min ==
/// rb_cost_nominal` (every [`ServiceProfile::paper`] profile) degenerates
/// to the paper's rigid behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// The service class this profile belongs to.
    pub class: ServiceClass,
    /// The QoS floor in bandwidth units: the least allocation the call
    /// can run on. Never violated by degradation.
    pub rb_cost_min: BandwidthUnits,
    /// The nominal (full-quality) allocation, granted when capacity
    /// allows.
    pub rb_cost_nominal: BandwidthUnits,
    /// The floor as a fraction of nominal in `(0, 1]` — kept alongside
    /// `rb_cost_min` as the declarative knob it was derived from.
    pub qos_floor: f64,
    /// Expected call duration in seconds (drives per-class holding-time
    /// draws in workload generation; advisory elsewhere).
    pub mean_duration_s: f64,
}

impl ServiceProfile {
    /// Mean call duration assumed when a request is built without an
    /// explicit profile (the paper does not pin one; 180 s is the
    /// classical 3-minute call).
    pub const DEFAULT_MEAN_DURATION_S: f64 = 180.0;

    /// The paper's rigid profile for `class`: floor == nominal ==
    /// [`ServiceClass::demand`], so degradation is impossible.
    #[must_use]
    pub fn paper(class: ServiceClass) -> Self {
        Self::fixed(class, class.demand())
    }

    /// A rigid (inelastic) profile with an arbitrary cost.
    #[must_use]
    pub fn fixed(class: ServiceClass, cost: BandwidthUnits) -> Self {
        Self {
            class,
            rb_cost_min: cost,
            rb_cost_nominal: cost,
            qos_floor: 1.0,
            mean_duration_s: Self::DEFAULT_MEAN_DURATION_S,
        }
    }

    /// An elastic profile: `qos_floor` (clamped to `(0, 1]`) scales the
    /// nominal cost down to the floor, which is rounded up and kept in
    /// `[1, nominal]` so every call always holds at least 1 BU.
    ///
    /// # Panics
    ///
    /// Panics when `nominal` is zero or `mean_duration_s` is not finite
    /// and positive.
    #[must_use]
    pub fn elastic(
        class: ServiceClass,
        nominal: BandwidthUnits,
        qos_floor: f64,
        mean_duration_s: f64,
    ) -> Self {
        assert!(!nominal.is_zero(), "zero-bandwidth profile");
        assert!(
            mean_duration_s.is_finite() && mean_duration_s > 0.0,
            "bad mean duration {mean_duration_s}"
        );
        let qos_floor = if qos_floor.is_finite() { qos_floor.clamp(0.0, 1.0) } else { 1.0 };
        let floor_bu =
            ((f64::from(nominal.get()) * qos_floor).ceil() as u32).clamp(1, nominal.get());
        Self {
            class,
            rb_cost_min: BandwidthUnits::new(floor_bu),
            rb_cost_nominal: nominal,
            qos_floor,
            mean_duration_s,
        }
    }

    /// Whether the profile has any room to degrade (`floor < nominal`).
    #[must_use]
    pub fn is_elastic(&self) -> bool {
        self.rb_cost_min < self.rb_cost_nominal
    }

    /// The degradable width `nominal - floor`.
    #[must_use]
    pub fn slack(&self) -> BandwidthUnits {
        self.rb_cost_nominal - self.rb_cost_min
    }
}

impl fmt::Display for ServiceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}..{}]", self.class, self.rb_cost_min.get(), self.rb_cost_nominal.get())
    }
}

/// One [`ServiceProfile`] per service class — the service contract a
/// whole workload runs under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfileSet {
    /// Profile for text calls.
    pub text: ServiceProfile,
    /// Profile for voice calls.
    pub voice: ServiceProfile,
    /// Profile for video calls.
    pub video: ServiceProfile,
}

impl ServiceProfileSet {
    /// Builds a set from three per-class profiles.
    ///
    /// # Panics
    ///
    /// Panics when a profile sits in the wrong slot.
    #[must_use]
    pub fn new(text: ServiceProfile, voice: ServiceProfile, video: ServiceProfile) -> Self {
        assert_eq!(text.class, ServiceClass::Text, "text slot holds {}", text.class);
        assert_eq!(voice.class, ServiceClass::Voice, "voice slot holds {}", voice.class);
        assert_eq!(video.class, ServiceClass::Video, "video slot holds {}", video.class);
        Self { text, voice, video }
    }

    /// The paper's rigid 1/5/10 BU profiles — workloads on this set
    /// behave exactly like the pre-elastic simulator.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            text: ServiceProfile::paper(ServiceClass::Text),
            voice: ServiceProfile::paper(ServiceClass::Voice),
            video: ServiceProfile::paper(ServiceClass::Video),
        }
    }

    /// Elastic variants of the paper's costs: voice and video accept
    /// degradation down to `qos_floor` of nominal; text (1 BU) has no
    /// room to shrink. Per-class mean durations are staggered
    /// (60/120/180 s) so classes also differ in holding time.
    #[must_use]
    pub fn elastic_paper(qos_floor: f64) -> Self {
        Self {
            text: ServiceProfile::elastic(
                ServiceClass::Text,
                ServiceClass::Text.demand(),
                1.0,
                60.0,
            ),
            voice: ServiceProfile::elastic(
                ServiceClass::Voice,
                ServiceClass::Voice.demand(),
                qos_floor,
                120.0,
            ),
            video: ServiceProfile::elastic(
                ServiceClass::Video,
                ServiceClass::Video.demand(),
                qos_floor,
                180.0,
            ),
        }
    }

    /// The profile for `class`.
    #[must_use]
    pub fn profile_of(&self, class: ServiceClass) -> ServiceProfile {
        match class {
            ServiceClass::Text => self.text,
            ServiceClass::Voice => self.voice,
            ServiceClass::Video => self.video,
        }
    }
}

impl Default for ServiceProfileSet {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-class active-call counts of one cell — the multi-class
/// replacement for the paper's scalar RTC/NRTC pair (which it still
/// derives, via [`ClassCounts::real_time`] / [`ClassCounts::non_real_time`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Active text calls.
    pub text: u32,
    /// Active voice calls.
    pub voice: u32,
    /// Active video calls.
    pub video: u32,
}

impl ClassCounts {
    /// The count for `class`.
    #[must_use]
    pub fn of(&self, class: ServiceClass) -> u32 {
        match class {
            ServiceClass::Text => self.text,
            ServiceClass::Voice => self.voice,
            ServiceClass::Video => self.video,
        }
    }

    /// Bumps the count for `class`.
    pub fn increment(&mut self, class: ServiceClass) {
        match class {
            ServiceClass::Text => self.text += 1,
            ServiceClass::Voice => self.voice += 1,
            ServiceClass::Video => self.video += 1,
        }
    }

    /// Drops the count for `class`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, wraps in release) when the count is
    /// already zero — a bookkeeping bug upstream.
    pub fn decrement(&mut self, class: ServiceClass) {
        match class {
            ServiceClass::Text => self.text -= 1,
            ServiceClass::Voice => self.voice -= 1,
            ServiceClass::Video => self.video -= 1,
        }
    }

    /// The paper's Real Time Counter (RTC): voice + video calls.
    #[must_use]
    pub fn real_time(&self) -> u32 {
        self.voice + self.video
    }

    /// The paper's Non Real Time Counter (NRTC): text calls.
    #[must_use]
    pub fn non_real_time(&self) -> u32 {
        self.text
    }

    /// Total active calls.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.text + self.voice + self.video
    }
}

/// Whether a request is a brand-new call or an ongoing call handed off
/// from a neighboring cell. Handoffs are dropped (not blocked) on
/// rejection, which users perceive as far worse — CAC schemes treat them
/// with priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// A new call originating in the cell.
    New,
    /// An active call arriving from a neighbor cell.
    Handoff,
}

impl fmt::Display for CallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CallKind::New => "new",
            CallKind::Handoff => "handoff",
        })
    }
}

/// Unique identifier of a call across the whole network.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CallId(pub u64);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call#{}", self.0)
    }
}

/// Unique identifier of a cell / base station.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CellId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// The GPS-derived mobility observation the paper feeds to FLC1:
/// user speed, heading deviation from the base station, and distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityInfo {
    /// User speed in km/h (paper universe: 0–120).
    pub speed_kmh: f64,
    /// Angle between the user's heading and the bearing toward the BS, in
    /// degrees (paper universe: −180…180; 0 = heading straight at the BS).
    pub angle_deg: f64,
    /// Distance between user and BS in km (paper universe: 0–10).
    pub distance_km: f64,
}

impl MobilityInfo {
    /// Creates a mobility observation, normalizing the angle into
    /// `(-180, 180]` and clamping speed/distance at zero.
    ///
    /// Non-finite values pass through unchanged so that
    /// [`MobilityInfo::is_finite`] can still detect a corrupted GPS fix —
    /// silently coercing NaN to 0 would turn garbage into a "perfect"
    /// stationary reading.
    #[must_use]
    pub fn new(speed_kmh: f64, angle_deg: f64, distance_km: f64) -> Self {
        // `if v < 0.0` (not `v.max(0.0)`) so NaN is preserved, not masked.
        Self {
            speed_kmh: if speed_kmh < 0.0 { 0.0 } else { speed_kmh },
            angle_deg: normalize_angle(angle_deg),
            distance_km: if distance_km < 0.0 { 0.0 } else { distance_km },
        }
    }

    /// A stationary observation at the cell center — the most favorable
    /// input FLC1 can see; useful as a neutral default in tests.
    #[must_use]
    pub fn stationary() -> Self {
        Self { speed_kmh: 0.0, angle_deg: 0.0, distance_km: 0.0 }
    }

    /// `true` when every field is finite (a corrupted GPS fix is not).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.speed_kmh.is_finite() && self.angle_deg.is_finite() && self.distance_km.is_finite()
    }
}

/// Wraps an angle into `(-180, 180]` degrees.
#[must_use]
pub fn normalize_angle(angle_deg: f64) -> f64 {
    if !angle_deg.is_finite() {
        return angle_deg;
    }
    let mut a = angle_deg % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// A complete admission request: who is asking, for what, and how they are
/// moving.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallRequest {
    /// Network-unique call identifier.
    pub id: CallId,
    /// Requested service class.
    pub class: ServiceClass,
    /// New call or handoff.
    pub kind: CallKind,
    /// GPS mobility observation at request time.
    pub mobility: MobilityInfo,
    /// The call's bandwidth contract. Defaults to the paper's rigid
    /// per-class profile; elastic workloads attach their own via
    /// [`CallRequest::with_profile`].
    pub profile: ServiceProfile,
}

impl CallRequest {
    /// Convenience constructor using the paper's rigid profile for
    /// `class` (floor == nominal == the class demand).
    #[must_use]
    pub fn new(id: CallId, class: ServiceClass, kind: CallKind, mobility: MobilityInfo) -> Self {
        Self { id, class, kind, mobility, profile: ServiceProfile::paper(class) }
    }

    /// Replaces the bandwidth contract (and aligns `class` with it).
    #[must_use]
    pub fn with_profile(mut self, profile: ServiceProfile) -> Self {
        self.class = profile.class;
        self.profile = profile;
        self
    }

    /// Nominal bandwidth this request asks for.
    #[must_use]
    pub fn demand(&self) -> BandwidthUnits {
        self.profile.rb_cost_nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demands_match_paper() {
        assert_eq!(ServiceClass::Text.demand().get(), 1);
        assert_eq!(ServiceClass::Voice.demand().get(), 5);
        assert_eq!(ServiceClass::Video.demand().get(), 10);
    }

    #[test]
    fn real_time_split_matches_paper() {
        assert!(!ServiceClass::Text.is_real_time());
        assert!(ServiceClass::Voice.is_real_time());
        assert!(ServiceClass::Video.is_real_time());
    }

    #[test]
    fn request_levels_span_flc2_universe() {
        for class in ServiceClass::ALL {
            let r = class.request_level();
            assert!((0.0..=10.0).contains(&r));
        }
    }

    #[test]
    fn angle_normalization() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert_eq!(normalize_angle(180.0), 180.0);
        assert_eq!(normalize_angle(-180.0), 180.0);
        assert_eq!(normalize_angle(190.0), -170.0);
        assert_eq!(normalize_angle(-190.0), 170.0);
        assert_eq!(normalize_angle(360.0), 0.0);
        assert_eq!(normalize_angle(720.0 + 45.0), 45.0);
    }

    #[test]
    fn mobility_new_sanitizes() {
        let m = MobilityInfo::new(-5.0, 270.0, -1.0);
        assert_eq!(m.speed_kmh, 0.0);
        assert_eq!(m.angle_deg, -90.0);
        assert_eq!(m.distance_km, 0.0);
        assert!(m.is_finite());
        assert!(!MobilityInfo::new(f64::NAN, 0.0, 0.0).is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServiceClass::Voice.to_string(), "voice");
        assert_eq!(CallKind::Handoff.to_string(), "handoff");
        assert_eq!(CallId(7).to_string(), "call#7");
        assert_eq!(CellId(3).to_string(), "cell#3");
    }

    #[test]
    fn request_demand_delegates() {
        let req = CallRequest::new(
            CallId(1),
            ServiceClass::Video,
            CallKind::New,
            MobilityInfo::stationary(),
        );
        assert_eq!(req.demand().get(), 10);
        assert_eq!(req.profile, ServiceProfile::paper(ServiceClass::Video));
        assert!(!req.profile.is_elastic());
    }

    #[test]
    fn elastic_profile_floor_rounds_up_within_band() {
        let p = ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 0.5, 180.0);
        assert_eq!(p.rb_cost_min.get(), 5);
        assert_eq!(p.rb_cost_nominal.get(), 10);
        assert!(p.is_elastic());
        assert_eq!(p.slack().get(), 5);
        // ceil(5 * 0.3) = 2
        let voice = ServiceProfile::elastic(ServiceClass::Voice, BandwidthUnits::new(5), 0.3, 60.0);
        assert_eq!(voice.rb_cost_min.get(), 2);
        // 1-BU nominal cannot shrink below 1 even with a tiny floor.
        let text = ServiceProfile::elastic(ServiceClass::Text, BandwidthUnits::new(1), 0.1, 30.0);
        assert_eq!(text.rb_cost_min.get(), 1);
        assert!(!text.is_elastic());
        // Out-of-range floors clamp into (0, 1].
        let clamped =
            ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 7.0, 30.0);
        assert_eq!(clamped.rb_cost_min.get(), 10);
    }

    #[test]
    fn with_profile_aligns_class() {
        let elastic =
            ServiceProfile::elastic(ServiceClass::Voice, BandwidthUnits::new(5), 0.4, 120.0);
        let req = CallRequest::new(
            CallId(1),
            ServiceClass::Video,
            CallKind::Handoff,
            MobilityInfo::stationary(),
        )
        .with_profile(elastic);
        assert_eq!(req.class, ServiceClass::Voice);
        assert_eq!(req.demand().get(), 5);
        assert_eq!(req.profile.rb_cost_min.get(), 2);
    }

    #[test]
    fn profile_set_dispatches_by_class() {
        let set = ServiceProfileSet::paper();
        for class in ServiceClass::ALL {
            assert_eq!(set.profile_of(class).class, class);
            assert_eq!(set.profile_of(class).rb_cost_nominal, class.demand());
            assert!(!set.profile_of(class).is_elastic());
        }
        let elastic = ServiceProfileSet::elastic_paper(0.5);
        assert!(elastic.voice.is_elastic());
        assert!(elastic.video.is_elastic());
        assert!(!elastic.text.is_elastic(), "1-BU text has no room to degrade");
        assert!(elastic.text.mean_duration_s < elastic.video.mean_duration_s);
    }

    #[test]
    fn class_counts_roundtrip() {
        let mut counts = ClassCounts::default();
        counts.increment(ServiceClass::Voice);
        counts.increment(ServiceClass::Voice);
        counts.increment(ServiceClass::Video);
        counts.increment(ServiceClass::Text);
        assert_eq!(counts.of(ServiceClass::Voice), 2);
        assert_eq!(counts.real_time(), 3);
        assert_eq!(counts.non_real_time(), 1);
        assert_eq!(counts.total(), 4);
        counts.decrement(ServiceClass::Voice);
        assert_eq!(counts.real_time(), 2);
        assert_eq!(counts.total(), 3);
    }
}
