//! Traffic classes and call descriptors.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::BandwidthUnits;

/// The paper's three service classes, with their per-call bandwidth demand
/// (§4: "The requested size was 1, 5 and 10 BU for text, voice and video").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ServiceClass {
    /// Queue-able, delay-tolerant data traffic (1 BU).
    Text,
    /// Real-time audio (5 BU).
    Voice,
    /// Real-time video (10 BU).
    Video,
}

impl ServiceClass {
    /// All classes, in demand order.
    pub const ALL: [ServiceClass; 3] =
        [ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video];

    /// Bandwidth demanded by one call of this class.
    #[must_use]
    pub const fn demand(self) -> BandwidthUnits {
        match self {
            ServiceClass::Text => BandwidthUnits::new(1),
            ServiceClass::Voice => BandwidthUnits::new(5),
            ServiceClass::Video => BandwidthUnits::new(10),
        }
    }

    /// Whether the class carries real-time traffic (drives the paper's
    /// RTC/NRTC differentiated-service counters).
    #[must_use]
    pub const fn is_real_time(self) -> bool {
        matches!(self, ServiceClass::Voice | ServiceClass::Video)
    }

    /// The crisp value fed to FLC2's `R` (required bandwidth) input — the
    /// demand in BU, over the paper's `[0, 10]` universe.
    #[must_use]
    pub fn request_level(self) -> f64 {
        f64::from(self.demand().get())
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceClass::Text => "text",
            ServiceClass::Voice => "voice",
            ServiceClass::Video => "video",
        };
        f.write_str(s)
    }
}

/// Whether a request is a brand-new call or an ongoing call handed off
/// from a neighboring cell. Handoffs are dropped (not blocked) on
/// rejection, which users perceive as far worse — CAC schemes treat them
/// with priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// A new call originating in the cell.
    New,
    /// An active call arriving from a neighbor cell.
    Handoff,
}

impl fmt::Display for CallKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CallKind::New => "new",
            CallKind::Handoff => "handoff",
        })
    }
}

/// Unique identifier of a call across the whole network.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CallId(pub u64);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call#{}", self.0)
    }
}

/// Unique identifier of a cell / base station.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CellId(pub u32);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell#{}", self.0)
    }
}

/// The GPS-derived mobility observation the paper feeds to FLC1:
/// user speed, heading deviation from the base station, and distance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobilityInfo {
    /// User speed in km/h (paper universe: 0–120).
    pub speed_kmh: f64,
    /// Angle between the user's heading and the bearing toward the BS, in
    /// degrees (paper universe: −180…180; 0 = heading straight at the BS).
    pub angle_deg: f64,
    /// Distance between user and BS in km (paper universe: 0–10).
    pub distance_km: f64,
}

impl MobilityInfo {
    /// Creates a mobility observation, normalizing the angle into
    /// `(-180, 180]` and clamping speed/distance at zero.
    ///
    /// Non-finite values pass through unchanged so that
    /// [`MobilityInfo::is_finite`] can still detect a corrupted GPS fix —
    /// silently coercing NaN to 0 would turn garbage into a "perfect"
    /// stationary reading.
    #[must_use]
    pub fn new(speed_kmh: f64, angle_deg: f64, distance_km: f64) -> Self {
        // `if v < 0.0` (not `v.max(0.0)`) so NaN is preserved, not masked.
        Self {
            speed_kmh: if speed_kmh < 0.0 { 0.0 } else { speed_kmh },
            angle_deg: normalize_angle(angle_deg),
            distance_km: if distance_km < 0.0 { 0.0 } else { distance_km },
        }
    }

    /// A stationary observation at the cell center — the most favorable
    /// input FLC1 can see; useful as a neutral default in tests.
    #[must_use]
    pub fn stationary() -> Self {
        Self { speed_kmh: 0.0, angle_deg: 0.0, distance_km: 0.0 }
    }

    /// `true` when every field is finite (a corrupted GPS fix is not).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.speed_kmh.is_finite() && self.angle_deg.is_finite() && self.distance_km.is_finite()
    }
}

/// Wraps an angle into `(-180, 180]` degrees.
#[must_use]
pub fn normalize_angle(angle_deg: f64) -> f64 {
    if !angle_deg.is_finite() {
        return angle_deg;
    }
    let mut a = angle_deg % 360.0;
    if a <= -180.0 {
        a += 360.0;
    } else if a > 180.0 {
        a -= 360.0;
    }
    a
}

/// A complete admission request: who is asking, for what, and how they are
/// moving.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CallRequest {
    /// Network-unique call identifier.
    pub id: CallId,
    /// Requested service class.
    pub class: ServiceClass,
    /// New call or handoff.
    pub kind: CallKind,
    /// GPS mobility observation at request time.
    pub mobility: MobilityInfo,
}

impl CallRequest {
    /// Convenience constructor.
    #[must_use]
    pub fn new(id: CallId, class: ServiceClass, kind: CallKind, mobility: MobilityInfo) -> Self {
        Self { id, class, kind, mobility }
    }

    /// Bandwidth this request needs.
    #[must_use]
    pub fn demand(&self) -> BandwidthUnits {
        self.class.demand()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demands_match_paper() {
        assert_eq!(ServiceClass::Text.demand().get(), 1);
        assert_eq!(ServiceClass::Voice.demand().get(), 5);
        assert_eq!(ServiceClass::Video.demand().get(), 10);
    }

    #[test]
    fn real_time_split_matches_paper() {
        assert!(!ServiceClass::Text.is_real_time());
        assert!(ServiceClass::Voice.is_real_time());
        assert!(ServiceClass::Video.is_real_time());
    }

    #[test]
    fn request_levels_span_flc2_universe() {
        for class in ServiceClass::ALL {
            let r = class.request_level();
            assert!((0.0..=10.0).contains(&r));
        }
    }

    #[test]
    fn angle_normalization() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert_eq!(normalize_angle(180.0), 180.0);
        assert_eq!(normalize_angle(-180.0), 180.0);
        assert_eq!(normalize_angle(190.0), -170.0);
        assert_eq!(normalize_angle(-190.0), 170.0);
        assert_eq!(normalize_angle(360.0), 0.0);
        assert_eq!(normalize_angle(720.0 + 45.0), 45.0);
    }

    #[test]
    fn mobility_new_sanitizes() {
        let m = MobilityInfo::new(-5.0, 270.0, -1.0);
        assert_eq!(m.speed_kmh, 0.0);
        assert_eq!(m.angle_deg, -90.0);
        assert_eq!(m.distance_km, 0.0);
        assert!(m.is_finite());
        assert!(!MobilityInfo::new(f64::NAN, 0.0, 0.0).is_finite());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServiceClass::Voice.to_string(), "voice");
        assert_eq!(CallKind::Handoff.to_string(), "handoff");
        assert_eq!(CallId(7).to_string(), "call#7");
        assert_eq!(CellId(3).to_string(), "cell#3");
    }

    #[test]
    fn request_demand_delegates() {
        let req = CallRequest::new(
            CallId(1),
            ServiceClass::Video,
            CallKind::New,
            MobilityInfo::stationary(),
        );
        assert_eq!(req.demand().get(), 10);
    }
}
