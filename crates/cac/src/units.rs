//! Bandwidth accounting newtypes.
//!
//! The paper measures capacity in **Bandwidth Units (BU)**: a base station
//! owns 40 BU; text, voice and video calls request 1, 5 and 10 BU.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A quantity of bandwidth, in the paper's Bandwidth Units (BU).
///
/// Arithmetic is saturating-checked: [`Add`] panics on overflow in debug
/// builds like the underlying `u32`, while the explicit
/// [`BandwidthUnits::checked_sub`] supports the ledger's refusal logic.
///
/// # Examples
///
/// ```
/// use facs_cac::BandwidthUnits;
///
/// let capacity = BandwidthUnits::new(40);
/// let video = BandwidthUnits::new(10);
/// assert_eq!(capacity - video, BandwidthUnits::new(30));
/// assert!(video <= capacity);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BandwidthUnits(u32);

impl BandwidthUnits {
    /// Zero bandwidth.
    pub const ZERO: BandwidthUnits = BandwidthUnits(0);

    /// Creates a quantity of `units` BU.
    #[must_use]
    pub const fn new(units: u32) -> Self {
        Self(units)
    }

    /// The raw unit count.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Checked subtraction; `None` when `other > self`.
    #[must_use]
    pub const fn checked_sub(self, other: Self) -> Option<Self> {
        match self.0.checked_sub(other.0) {
            Some(v) => Some(Self(v)),
            None => None,
        }
    }

    /// Saturating subtraction (floors at zero).
    #[must_use]
    pub const fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// This quantity as a fraction of `total` (0.0 when `total` is zero).
    #[must_use]
    pub fn fraction_of(self, total: Self) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            f64::from(self.0) / f64::from(total.0)
        }
    }

    /// `true` when the quantity is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for BandwidthUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} BU", self.0)
    }
}

impl From<u32> for BandwidthUnits {
    fn from(units: u32) -> Self {
        Self(units)
    }
}

impl From<BandwidthUnits> for u32 {
    fn from(bu: BandwidthUnits) -> Self {
        bu.0
    }
}

impl Add for BandwidthUnits {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for BandwidthUnits {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for BandwidthUnits {
    type Output = Self;

    /// # Panics
    ///
    /// Panics on underflow; use [`BandwidthUnits::checked_sub`] when the
    /// subtrahend may exceed `self`.
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for BandwidthUnits {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Sum for BandwidthUnits {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|b| b.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_works() {
        let a = BandwidthUnits::new(30);
        let b = BandwidthUnits::new(10);
        assert_eq!(a + b, BandwidthUnits::new(40));
        assert_eq!(a - b, BandwidthUnits::new(20));
        let mut c = a;
        c += b;
        c -= BandwidthUnits::new(5);
        assert_eq!(c.get(), 35);
    }

    #[test]
    fn checked_sub_refuses_underflow() {
        let a = BandwidthUnits::new(5);
        let b = BandwidthUnits::new(10);
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.checked_sub(a), Some(BandwidthUnits::new(5)));
        assert_eq!(a.saturating_sub(b), BandwidthUnits::ZERO);
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(BandwidthUnits::new(10).fraction_of(BandwidthUnits::new(40)), 0.25);
        assert_eq!(BandwidthUnits::new(10).fraction_of(BandwidthUnits::ZERO), 0.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(BandwidthUnits::new(1) < BandwidthUnits::new(5));
        assert_eq!(BandwidthUnits::new(40).to_string(), "40 BU");
    }

    #[test]
    fn sums() {
        let total: BandwidthUnits = [1u32, 5, 10].into_iter().map(BandwidthUnits::new).sum();
        assert_eq!(total.get(), 16);
    }
}
