//! # facs-cac — call-admission-control abstractions for cellular networks
//!
//! This crate is the shared vocabulary of the FACS reproduction: bandwidth
//! units and ledgers, traffic classes, admission requests, soft decisions,
//! the [`AdmissionController`] trait every policy implements, and the
//! classical baseline policies the paper's related-work section surveys
//! (Complete Sharing, Guard Channel, Fractional Guard Channel,
//! Multi-Priority Threshold).
//!
//! The FACS controller itself lives in the `facs` crate; the Shadow
//! Cluster Concept baseline in `facs-scc`; the simulator driving them in
//! `facs-cellsim`.
//!
//! Calls carry a [`ServiceProfile`] — a `[floor, nominal]` bandwidth
//! band — and controllers answer with an [`AdmissionPlan`]: admit at
//! nominal, admit degraded (listing the per-call squeezes that make
//! room), or reject. Rigid paper-style profiles (`floor == nominal`)
//! make the elastic machinery degenerate to classic unit-cost CAC.
//!
//! ## Example: a guard-channel cell
//!
//! ```
//! use facs_cac::policies::GuardChannel;
//! use facs_cac::{
//!     AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
//!     MobilityInfo, ServiceClass,
//! };
//!
//! # fn main() -> Result<(), facs_cac::LedgerError> {
//! let mut ledger = BandwidthLedger::new(BandwidthUnits::new(40));
//! let mut policy = GuardChannel::new(BandwidthUnits::new(10));
//!
//! let request = CallRequest::new(
//!     CallId(1),
//!     ServiceClass::Video,
//!     CallKind::New,
//!     MobilityInfo::new(30.0, 0.0, 2.0),
//! );
//! let plan = policy.decide(&request, &ledger);
//! if plan.admits() {
//!     ledger.allocate(request.id, request.profile)?;
//! }
//! assert_eq!(ledger.occupied().get(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod decision;
pub mod forecast;
pub mod ledger;
pub mod policies;
pub mod traffic;
pub mod units;

pub use controller::{AdmissionController, AdmissionPlan, BoxedController, ControllerFactory};
pub use decision::{Decision, Verdict};
pub use forecast::{
    EwmaHoltForecaster, InterarrivalEstimator, LoadForecaster, RecurrentForecaster,
};
pub use ledger::{Allocation, BandwidthLedger, CellSnapshot, LedgerError, Reallocation};
pub use traffic::{
    normalize_angle, CallId, CallKind, CallRequest, CellId, ClassCounts, MobilityInfo,
    ServiceClass, ServiceProfile, ServiceProfileSet,
};
pub use units::BandwidthUnits;

/// Commonly used items, for glob import in applications and examples.
pub mod prelude {
    pub use crate::controller::{AdmissionController, AdmissionPlan, BoxedController};
    pub use crate::decision::{Decision, Verdict};
    pub use crate::forecast::{EwmaHoltForecaster, LoadForecaster, RecurrentForecaster};
    pub use crate::ledger::{BandwidthLedger, CellSnapshot, Reallocation};
    pub use crate::traffic::{
        CallId, CallKind, CallRequest, CellId, ClassCounts, MobilityInfo, ServiceClass,
        ServiceProfile, ServiceProfileSet,
    };
    pub use crate::units::BandwidthUnits;
}
