//! Per-cell bandwidth bookkeeping.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::traffic::{CallId, ServiceClass};
use crate::units::BandwidthUnits;

/// Errors from ledger operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LedgerError {
    /// Allocation refused: not enough free bandwidth.
    Insufficient {
        /// Requested amount.
        requested: BandwidthUnits,
        /// Currently free amount.
        free: BandwidthUnits,
    },
    /// The call is already holding an allocation in this ledger.
    AlreadyAllocated(CallId),
    /// Release of a call this ledger never admitted (or already released).
    UnknownCall(CallId),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Insufficient { requested, free } => {
                write!(f, "insufficient bandwidth: requested {requested}, free {free}")
            }
            LedgerError::AlreadyAllocated(id) => write!(f, "{id} already holds an allocation"),
            LedgerError::UnknownCall(id) => write!(f, "{id} holds no allocation"),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Tracks the bandwidth allocations of one cell, including the paper's
/// RTC/NRTC differentiated-service counters.
///
/// Invariant: `occupied() + free() == capacity()` at all times, and
/// `occupied()` equals the sum of all outstanding allocations.
///
/// # Examples
///
/// ```
/// use facs_cac::{BandwidthLedger, BandwidthUnits, CallId, ServiceClass};
///
/// # fn main() -> Result<(), facs_cac::LedgerError> {
/// let mut ledger = BandwidthLedger::new(BandwidthUnits::new(40));
/// ledger.allocate(CallId(1), ServiceClass::Video)?;
/// ledger.allocate(CallId(2), ServiceClass::Voice)?;
/// assert_eq!(ledger.occupied().get(), 15);
/// assert_eq!(ledger.real_time_calls(), 2);
/// ledger.release(CallId(1))?;
/// assert_eq!(ledger.occupied().get(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthLedger {
    capacity: BandwidthUnits,
    occupied: BandwidthUnits,
    allocations: HashMap<CallId, ServiceClass>,
    real_time_calls: u32,
    non_real_time_calls: u32,
}

impl BandwidthLedger {
    /// Creates an empty ledger with the given capacity.
    #[must_use]
    pub fn new(capacity: BandwidthUnits) -> Self {
        Self {
            capacity,
            occupied: BandwidthUnits::ZERO,
            allocations: HashMap::new(),
            real_time_calls: 0,
            non_real_time_calls: 0,
        }
    }

    /// Total capacity (the paper's 40 BU per base station).
    #[must_use]
    pub fn capacity(&self) -> BandwidthUnits {
        self.capacity
    }

    /// Currently allocated bandwidth — the paper's *Counter state* `Cs`.
    #[must_use]
    pub fn occupied(&self) -> BandwidthUnits {
        self.occupied
    }

    /// Currently free bandwidth.
    #[must_use]
    pub fn free(&self) -> BandwidthUnits {
        self.capacity - self.occupied
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.occupied.fraction_of(self.capacity)
    }

    /// Number of active calls.
    #[must_use]
    pub fn active_calls(&self) -> usize {
        self.allocations.len()
    }

    /// The paper's Real Time Counter (RTC): active voice + video calls.
    #[must_use]
    pub fn real_time_calls(&self) -> u32 {
        self.real_time_calls
    }

    /// The paper's Non Real Time Counter (NRTC): active text calls.
    #[must_use]
    pub fn non_real_time_calls(&self) -> u32 {
        self.non_real_time_calls
    }

    /// Whether `demand` would fit right now.
    #[must_use]
    pub fn can_fit(&self, demand: BandwidthUnits) -> bool {
        demand <= self.free()
    }

    /// Class of an active call, if present.
    #[must_use]
    pub fn class_of(&self, id: CallId) -> Option<ServiceClass> {
        self.allocations.get(&id).copied()
    }

    /// Allocates bandwidth for a call.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::Insufficient`] — not enough free bandwidth (the
    ///   ledger is left unchanged);
    /// * [`LedgerError::AlreadyAllocated`] — `id` is already active.
    pub fn allocate(&mut self, id: CallId, class: ServiceClass) -> Result<(), LedgerError> {
        let demand = class.demand();
        if self.allocations.contains_key(&id) {
            return Err(LedgerError::AlreadyAllocated(id));
        }
        if !self.can_fit(demand) {
            return Err(LedgerError::Insufficient { requested: demand, free: self.free() });
        }
        self.allocations.insert(id, class);
        self.occupied += demand;
        if class.is_real_time() {
            self.real_time_calls += 1;
        } else {
            self.non_real_time_calls += 1;
        }
        Ok(())
    }

    /// Releases a call's bandwidth, returning its class.
    ///
    /// # Errors
    ///
    /// [`LedgerError::UnknownCall`] when `id` holds no allocation.
    pub fn release(&mut self, id: CallId) -> Result<ServiceClass, LedgerError> {
        let class = self.allocations.remove(&id).ok_or(LedgerError::UnknownCall(id))?;
        self.occupied -= class.demand();
        if class.is_real_time() {
            self.real_time_calls -= 1;
        } else {
            self.non_real_time_calls -= 1;
        }
        Ok(class)
    }

    /// Iterates over `(call, class)` pairs of active allocations in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (CallId, ServiceClass)> + '_ {
        self.allocations.iter().map(|(&id, &class)| (id, class))
    }

    /// A read-only snapshot for admission controllers.
    #[must_use]
    pub fn snapshot(&self) -> CellSnapshot {
        CellSnapshot {
            capacity: self.capacity,
            occupied: self.occupied,
            real_time_calls: self.real_time_calls,
            non_real_time_calls: self.non_real_time_calls,
        }
    }
}

/// An immutable view of a cell's load, handed to
/// [`AdmissionController::decide`](crate::controller::AdmissionController::decide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSnapshot {
    /// Total capacity.
    pub capacity: BandwidthUnits,
    /// Currently allocated bandwidth (the paper's `Cs` input).
    pub occupied: BandwidthUnits,
    /// Active real-time calls (paper's RTC).
    pub real_time_calls: u32,
    /// Active non-real-time calls (paper's NRTC).
    pub non_real_time_calls: u32,
}

impl CellSnapshot {
    /// An empty cell with `capacity`.
    #[must_use]
    pub fn empty(capacity: BandwidthUnits) -> Self {
        Self {
            capacity,
            occupied: BandwidthUnits::ZERO,
            real_time_calls: 0,
            non_real_time_calls: 0,
        }
    }

    /// Free bandwidth.
    #[must_use]
    pub fn free(&self) -> BandwidthUnits {
        self.capacity.saturating_sub(self.occupied)
    }

    /// Occupancy fraction in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.occupied.fraction_of(self.capacity)
    }

    /// Whether `demand` fits in the free bandwidth.
    #[must_use]
    pub fn can_fit(&self, demand: BandwidthUnits) -> bool {
        demand <= self.free()
    }

    /// The crisp counter-state value fed to FLC2's `Cs` input: occupied BU
    /// over the paper's `[0, 40]` universe (scaled if capacity differs).
    #[must_use]
    pub fn counter_state(&self) -> f64 {
        f64::from(self.occupied.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_ledger() -> BandwidthLedger {
        // 40 BU: 2 video (20) + 3 voice (15) + 5 text (5) = 40.
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        l.allocate(CallId(1), ServiceClass::Video).unwrap();
        l.allocate(CallId(2), ServiceClass::Video).unwrap();
        l.allocate(CallId(3), ServiceClass::Voice).unwrap();
        l.allocate(CallId(4), ServiceClass::Voice).unwrap();
        l.allocate(CallId(5), ServiceClass::Voice).unwrap();
        for i in 6..=10 {
            l.allocate(CallId(i), ServiceClass::Text).unwrap();
        }
        l
    }

    #[test]
    fn conservation_invariant() {
        let l = full_ledger();
        assert_eq!(l.occupied() + l.free(), l.capacity());
        assert_eq!(l.occupied().get(), 40);
        assert_eq!(l.free(), BandwidthUnits::ZERO);
        assert_eq!(l.utilization(), 1.0);
    }

    #[test]
    fn counters_track_classes() {
        let l = full_ledger();
        assert_eq!(l.real_time_calls(), 5);
        assert_eq!(l.non_real_time_calls(), 5);
        assert_eq!(l.active_calls(), 10);
    }

    #[test]
    fn refuses_over_allocation_without_side_effects() {
        let mut l = full_ledger();
        let before = l.clone();
        let err = l.allocate(CallId(99), ServiceClass::Text).unwrap_err();
        assert_eq!(
            err,
            LedgerError::Insufficient {
                requested: BandwidthUnits::new(1),
                free: BandwidthUnits::ZERO
            }
        );
        assert_eq!(l, before, "failed allocation must not mutate the ledger");
    }

    #[test]
    fn refuses_duplicate_allocation() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        l.allocate(CallId(1), ServiceClass::Voice).unwrap();
        let err = l.allocate(CallId(1), ServiceClass::Text).unwrap_err();
        assert_eq!(err, LedgerError::AlreadyAllocated(CallId(1)));
        assert_eq!(l.occupied().get(), 5);
    }

    #[test]
    fn release_returns_class_and_frees() {
        let mut l = full_ledger();
        assert_eq!(l.release(CallId(1)).unwrap(), ServiceClass::Video);
        assert_eq!(l.free().get(), 10);
        assert_eq!(l.real_time_calls(), 4);
        assert_eq!(l.release(CallId(1)).unwrap_err(), LedgerError::UnknownCall(CallId(1)));
    }

    #[test]
    fn release_then_reallocate_cycles() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(10));
        for round in 0..100 {
            let id = CallId(round);
            l.allocate(id, ServiceClass::Video).unwrap();
            assert!(!l.can_fit(BandwidthUnits::new(1)));
            l.release(id).unwrap();
            assert_eq!(l.occupied(), BandwidthUnits::ZERO);
        }
    }

    #[test]
    fn snapshot_reflects_state() {
        let l = full_ledger();
        let s = l.snapshot();
        assert_eq!(s.capacity, l.capacity());
        assert_eq!(s.occupied, l.occupied());
        assert_eq!(s.real_time_calls, 5);
        assert_eq!(s.counter_state(), 40.0);
        assert!(!s.can_fit(BandwidthUnits::new(1)));
    }

    #[test]
    fn snapshot_empty() {
        let s = CellSnapshot::empty(BandwidthUnits::new(40));
        assert_eq!(s.free().get(), 40);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.can_fit(BandwidthUnits::new(40)));
        assert!(!s.can_fit(BandwidthUnits::new(41)));
    }

    #[test]
    fn class_of_lookup() {
        let l = full_ledger();
        assert_eq!(l.class_of(CallId(1)), Some(ServiceClass::Video));
        assert_eq!(l.class_of(CallId(99)), None);
    }

    #[test]
    fn iter_covers_all_allocations() {
        let l = full_ledger();
        let total: BandwidthUnits = l.iter().map(|(_, c)| c.demand()).sum();
        assert_eq!(total, l.occupied());
    }
}
