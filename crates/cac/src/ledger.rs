//! Per-cell bandwidth bookkeeping with elastic (degradable)
//! allocations.
//!
//! Every active call holds an allocation somewhere in its profile's
//! `[rb_cost_min, rb_cost_nominal]` band. The ledger can *degrade*
//! elastic calls toward their QoS floor to make room for
//! higher-priority traffic ([`BandwidthLedger::degrade_to_fit`]) and
//! *re-upgrade* them toward nominal when bandwidth frees up
//! ([`BandwidthLedger::reupgrade_on_release`]). Both directions move one
//! bandwidth unit at a time in fair-share order, so the squeeze is
//! spread across the calls with the most slack and the recovery goes to
//! the calls farthest below nominal. All iteration is over a `BTreeMap`,
//! keeping reallocation order deterministic for the sharded simulator.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::traffic::{CallId, ClassCounts, ServiceClass, ServiceProfile};
use crate::units::BandwidthUnits;

/// Errors from ledger operations.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum LedgerError {
    /// Allocation refused: not enough free bandwidth.
    Insufficient {
        /// Requested amount.
        requested: BandwidthUnits,
        /// Currently free amount.
        free: BandwidthUnits,
    },
    /// The call is already holding an allocation in this ledger.
    AlreadyAllocated(CallId),
    /// Release of a call this ledger never admitted (or already released).
    UnknownCall(CallId),
    /// A grant outside the profile's `[floor, nominal]` band.
    GrantOutOfBand {
        /// The offending grant.
        grant: BandwidthUnits,
        /// The profile's QoS floor.
        floor: BandwidthUnits,
        /// The profile's nominal cost.
        nominal: BandwidthUnits,
    },
    /// A squeeze that names an unknown call, raises an allocation, or
    /// dips below the victim's QoS floor.
    InvalidSqueeze(CallId),
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Insufficient { requested, free } => {
                write!(f, "insufficient bandwidth: requested {requested}, free {free}")
            }
            LedgerError::AlreadyAllocated(id) => write!(f, "{id} already holds an allocation"),
            LedgerError::UnknownCall(id) => write!(f, "{id} holds no allocation"),
            LedgerError::GrantOutOfBand { grant, floor, nominal } => {
                write!(f, "grant {grant} outside the [{floor}, {nominal}] profile band")
            }
            LedgerError::InvalidSqueeze(id) => {
                write!(f, "squeeze on {id} is unknown, non-shrinking, or below its QoS floor")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// One call's live allocation: its service contract plus the bandwidth
/// it currently holds (always within `[rb_cost_min, rb_cost_nominal]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// The call's service contract.
    pub profile: ServiceProfile,
    /// The bandwidth currently granted.
    pub allocated: BandwidthUnits,
}

impl Allocation {
    /// How far the call sits above its QoS floor (reclaimable slack).
    #[must_use]
    pub fn slack(&self) -> BandwidthUnits {
        self.allocated - self.profile.rb_cost_min
    }

    /// How far the call sits below nominal (re-upgrade deficit).
    #[must_use]
    pub fn deficit(&self) -> BandwidthUnits {
        self.profile.rb_cost_nominal - self.allocated
    }

    /// Whether the call runs below its nominal allocation.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.allocated < self.profile.rb_cost_nominal
    }
}

/// One bandwidth change applied to an existing call: squeezes shrink
/// (`to < from`, toward the floor), re-upgrades grow (`to > from`,
/// toward nominal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reallocation {
    /// The affected call.
    pub call: CallId,
    /// Allocation before the change.
    pub from: BandwidthUnits,
    /// Allocation after the change.
    pub to: BandwidthUnits,
}

/// Tracks the per-call bandwidth allocations of one cell.
///
/// Invariants, `debug_assert`-checked after every mutation:
/// * conservation — `occupied()` equals the sum of all outstanding
///   allocations, and `occupied() + free() == capacity()`;
/// * QoS floor — every allocation stays inside its profile's
///   `[rb_cost_min, rb_cost_nominal]` band.
///
/// # Examples
///
/// ```
/// use facs_cac::{BandwidthLedger, BandwidthUnits, CallId, ServiceClass, ServiceProfile};
///
/// # fn main() -> Result<(), facs_cac::LedgerError> {
/// let mut ledger = BandwidthLedger::new(BandwidthUnits::new(40));
/// ledger.allocate(CallId(1), ServiceProfile::paper(ServiceClass::Video))?;
/// ledger.allocate(CallId(2), ServiceProfile::paper(ServiceClass::Voice))?;
/// assert_eq!(ledger.occupied().get(), 15);
/// assert_eq!(ledger.counts().real_time(), 2);
/// ledger.release(CallId(1))?;
/// assert_eq!(ledger.occupied().get(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BandwidthLedger {
    capacity: BandwidthUnits,
    occupied: BandwidthUnits,
    allocations: BTreeMap<CallId, Allocation>,
    counts: ClassCounts,
}

impl BandwidthLedger {
    /// Creates an empty ledger with the given capacity.
    #[must_use]
    pub fn new(capacity: BandwidthUnits) -> Self {
        Self {
            capacity,
            occupied: BandwidthUnits::ZERO,
            allocations: BTreeMap::new(),
            counts: ClassCounts::default(),
        }
    }

    /// Total capacity (the paper's 40 BU per base station).
    #[must_use]
    pub fn capacity(&self) -> BandwidthUnits {
        self.capacity
    }

    /// Currently allocated bandwidth — the paper's *Counter state* `Cs`.
    #[must_use]
    pub fn occupied(&self) -> BandwidthUnits {
        self.occupied
    }

    /// Currently free bandwidth.
    #[must_use]
    pub fn free(&self) -> BandwidthUnits {
        self.capacity - self.occupied
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.occupied.fraction_of(self.capacity)
    }

    /// Number of active calls.
    #[must_use]
    pub fn active_calls(&self) -> usize {
        self.allocations.len()
    }

    /// Per-class active-call counts (the multi-class generalization of
    /// the paper's RTC/NRTC pair).
    #[must_use]
    pub fn counts(&self) -> ClassCounts {
        self.counts
    }

    /// Whether `demand` would fit right now, without degrading anyone.
    #[must_use]
    pub fn can_fit(&self, demand: BandwidthUnits) -> bool {
        demand <= self.free()
    }

    /// Class of an active call, if present.
    #[must_use]
    pub fn class_of(&self, id: CallId) -> Option<ServiceClass> {
        self.allocations.get(&id).map(|a| a.profile.class)
    }

    /// Service profile of an active call, if present.
    #[must_use]
    pub fn profile_of(&self, id: CallId) -> Option<ServiceProfile> {
        self.allocations.get(&id).map(|a| a.profile)
    }

    /// Bandwidth currently granted to an active call, if present.
    #[must_use]
    pub fn allocated_to(&self, id: CallId) -> Option<BandwidthUnits> {
        self.allocations.get(&id).map(|a| a.allocated)
    }

    /// Total bandwidth the ledger could still reclaim by degrading every
    /// elastic call to its floor.
    #[must_use]
    pub fn reclaimable(&self) -> BandwidthUnits {
        self.allocations.values().map(Allocation::slack).sum()
    }

    /// Allocates the profile's nominal bandwidth for a call.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::Insufficient`] — not enough free bandwidth (the
    ///   ledger is left unchanged);
    /// * [`LedgerError::AlreadyAllocated`] — `id` is already active.
    pub fn allocate(&mut self, id: CallId, profile: ServiceProfile) -> Result<(), LedgerError> {
        self.allocate_at(id, profile, profile.rb_cost_nominal)
    }

    /// Allocates `grant` bandwidth units for a call, anywhere in its
    /// profile's `[floor, nominal]` band.
    ///
    /// # Errors
    ///
    /// * [`LedgerError::GrantOutOfBand`] — `grant` outside the band;
    /// * [`LedgerError::Insufficient`] — not enough free bandwidth;
    /// * [`LedgerError::AlreadyAllocated`] — `id` is already active.
    ///
    /// The ledger is left unchanged on every error.
    pub fn allocate_at(
        &mut self,
        id: CallId,
        profile: ServiceProfile,
        grant: BandwidthUnits,
    ) -> Result<(), LedgerError> {
        if grant < profile.rb_cost_min || grant > profile.rb_cost_nominal {
            return Err(LedgerError::GrantOutOfBand {
                grant,
                floor: profile.rb_cost_min,
                nominal: profile.rb_cost_nominal,
            });
        }
        if self.allocations.contains_key(&id) {
            return Err(LedgerError::AlreadyAllocated(id));
        }
        if !self.can_fit(grant) {
            return Err(LedgerError::Insufficient { requested: grant, free: self.free() });
        }
        self.allocations.insert(id, Allocation { profile, allocated: grant });
        self.occupied += grant;
        self.counts.increment(profile.class);
        self.assert_conserved();
        Ok(())
    }

    /// Plans the squeezes needed to free `demand` bandwidth units, without
    /// applying them. Returns `None` when even degrading every elastic
    /// call to its floor cannot free enough.
    ///
    /// Fair-share order: bandwidth is reclaimed one unit at a time from
    /// the call with the most remaining slack (allocation minus floor),
    /// ties broken toward the lowest [`CallId`] — so the squeeze spreads
    /// across the least-degraded calls instead of flooring one victim.
    #[must_use]
    pub fn degradation_squeezes(&self, demand: BandwidthUnits) -> Option<Vec<Reallocation>> {
        let mut needed = demand.get().saturating_sub(self.free().get());
        if needed == 0 {
            return Some(Vec::new());
        }
        if needed > self.reclaimable().get() {
            return None;
        }
        // Working copy of (slack, id) — small per-cell populations make
        // the unit-by-unit scan cheap and keep the order obviously fair.
        let mut working: BTreeMap<CallId, Allocation> = self
            .allocations
            .iter()
            .filter(|(_, a)| !a.slack().is_zero())
            .map(|(&id, &a)| (id, a))
            .collect();
        while needed > 0 {
            let (&victim, _) = working
                .iter()
                .max_by_key(|(&id, a)| (a.slack(), std::cmp::Reverse(id)))
                .expect("reclaimable() guaranteed enough slack");
            let entry = working.get_mut(&victim).expect("victim just found");
            entry.allocated -= BandwidthUnits::new(1);
            needed -= 1;
        }
        Some(
            working
                .into_iter()
                .filter(|(id, a)| a.allocated < self.allocations[id].allocated)
                .map(|(id, a)| Reallocation {
                    call: id,
                    from: self.allocations[&id].allocated,
                    to: a.allocated,
                })
                .collect(),
        )
    }

    /// Validates and applies a list of squeezes, returning the bandwidth
    /// freed. All-or-nothing: on error the ledger is unchanged.
    ///
    /// # Errors
    ///
    /// [`LedgerError::InvalidSqueeze`] when a squeeze names an unknown
    /// call, does not shrink its allocation, or dips below its QoS floor.
    pub fn apply_squeezes(
        &mut self,
        squeezes: &[Reallocation],
    ) -> Result<BandwidthUnits, LedgerError> {
        let mut freed = BandwidthUnits::ZERO;
        for s in squeezes {
            let alloc = self.allocations.get(&s.call).ok_or(LedgerError::InvalidSqueeze(s.call))?;
            if s.from != alloc.allocated
                || s.to >= alloc.allocated
                || s.to < alloc.profile.rb_cost_min
            {
                return Err(LedgerError::InvalidSqueeze(s.call));
            }
            freed += alloc.allocated - s.to;
        }
        // Squeezes naming the same call twice would double-free; the plan
        // builder never emits duplicates, and the `from` check above
        // rejects them (the second occurrence's `from` is stale).
        for s in squeezes {
            let alloc = self.allocations.get_mut(&s.call).expect("validated above");
            alloc.allocated = s.to;
        }
        self.occupied -= freed;
        self.assert_conserved();
        Ok(freed)
    }

    /// Plans and applies the squeezes needed to free `demand` bandwidth
    /// units, returning the applied reallocations. Returns `None` (ledger
    /// unchanged) when the demand cannot be met even at full degradation.
    pub fn degrade_to_fit(&mut self, demand: BandwidthUnits) -> Option<Vec<Reallocation>> {
        let squeezes = self.degradation_squeezes(demand)?;
        self.apply_squeezes(&squeezes).expect("planned squeezes are valid");
        Some(squeezes)
    }

    /// Atomically applies an admission plan: squeezes first, then the
    /// admitted call's allocation at `grant`. On any error the ledger is
    /// left exactly as it was — a stale plan (raced by another admission)
    /// degrades to a rejection at the call site.
    ///
    /// # Errors
    ///
    /// Any of [`LedgerError::InvalidSqueeze`],
    /// [`LedgerError::GrantOutOfBand`], [`LedgerError::Insufficient`],
    /// [`LedgerError::AlreadyAllocated`].
    pub fn admit_with_plan(
        &mut self,
        id: CallId,
        profile: ServiceProfile,
        grant: BandwidthUnits,
        squeezes: &[Reallocation],
    ) -> Result<(), LedgerError> {
        if grant < profile.rb_cost_min || grant > profile.rb_cost_nominal {
            return Err(LedgerError::GrantOutOfBand {
                grant,
                floor: profile.rb_cost_min,
                nominal: profile.rb_cost_nominal,
            });
        }
        if self.allocations.contains_key(&id) {
            return Err(LedgerError::AlreadyAllocated(id));
        }
        // Validate squeezes without mutating (mirror of apply_squeezes).
        let mut freed = BandwidthUnits::ZERO;
        for s in squeezes {
            let alloc = self.allocations.get(&s.call).ok_or(LedgerError::InvalidSqueeze(s.call))?;
            if s.from != alloc.allocated
                || s.to >= alloc.allocated
                || s.to < alloc.profile.rb_cost_min
            {
                return Err(LedgerError::InvalidSqueeze(s.call));
            }
            freed += alloc.allocated - s.to;
        }
        if grant > self.free() + freed {
            return Err(LedgerError::Insufficient { requested: grant, free: self.free() + freed });
        }
        self.apply_squeezes(squeezes).expect("validated above");
        self.allocate_at(id, profile, grant).expect("freed bandwidth covers the grant");
        Ok(())
    }

    /// Redistributes free bandwidth to degraded calls, one unit at a time
    /// to the call with the largest deficit (nominal minus allocation),
    /// ties broken toward the lowest [`CallId`]. Returns the applied
    /// re-upgrades (empty when nothing was degraded or nothing is free).
    ///
    /// Call after every release so elastic calls recover their nominal
    /// quality as soon as bandwidth allows.
    pub fn reupgrade_on_release(&mut self) -> Vec<Reallocation> {
        let mut free = self.free().get();
        if free == 0 {
            return Vec::new();
        }
        let before: BTreeMap<CallId, BandwidthUnits> = self
            .allocations
            .iter()
            .filter(|(_, a)| a.is_degraded())
            .map(|(&id, a)| (id, a.allocated))
            .collect();
        if before.is_empty() {
            return Vec::new();
        }
        while free > 0 {
            let Some((&target, _)) = self
                .allocations
                .iter()
                .filter(|(_, a)| a.is_degraded())
                .max_by_key(|(&id, a)| (a.deficit(), std::cmp::Reverse(id)))
            else {
                break;
            };
            let alloc = self.allocations.get_mut(&target).expect("target just found");
            alloc.allocated += BandwidthUnits::new(1);
            self.occupied += BandwidthUnits::new(1);
            free -= 1;
        }
        self.assert_conserved();
        before
            .into_iter()
            .filter(|(id, from)| self.allocations[id].allocated > *from)
            .map(|(id, from)| Reallocation { call: id, from, to: self.allocations[&id].allocated })
            .collect()
    }

    /// Releases a call's bandwidth, returning its profile.
    ///
    /// Does **not** re-upgrade the survivors; call
    /// [`reupgrade_on_release`](Self::reupgrade_on_release) afterwards
    /// when degraded calls should reclaim the freed bandwidth.
    ///
    /// # Errors
    ///
    /// [`LedgerError::UnknownCall`] when `id` holds no allocation.
    pub fn release(&mut self, id: CallId) -> Result<ServiceProfile, LedgerError> {
        let alloc = self.allocations.remove(&id).ok_or(LedgerError::UnknownCall(id))?;
        self.occupied -= alloc.allocated;
        self.counts.decrement(alloc.profile.class);
        self.assert_conserved();
        Ok(alloc.profile)
    }

    /// Iterates over `(call, allocation)` pairs of active calls in
    /// ascending [`CallId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (CallId, Allocation)> + '_ {
        self.allocations.iter().map(|(&id, &a)| (id, a))
    }

    /// A read-only snapshot for admission controllers.
    #[must_use]
    pub fn snapshot(&self) -> CellSnapshot {
        CellSnapshot { capacity: self.capacity, occupied: self.occupied, counts: self.counts }
    }

    /// Debug-build check of the conservation and QoS-floor invariants.
    fn assert_conserved(&self) {
        debug_assert_eq!(
            self.allocations.values().map(|a| a.allocated).sum::<BandwidthUnits>(),
            self.occupied,
            "ledger conservation broken: occupied diverged from the allocation sum"
        );
        debug_assert!(self.occupied <= self.capacity, "ledger over capacity");
        debug_assert!(
            self.allocations.values().all(|a| a.allocated >= a.profile.rb_cost_min
                && a.allocated <= a.profile.rb_cost_nominal),
            "an allocation left its [floor, nominal] band"
        );
    }
}

/// An immutable view of a cell's load, handed to FACS evaluation and the
/// post-admission controller hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSnapshot {
    /// Total capacity.
    pub capacity: BandwidthUnits,
    /// Currently allocated bandwidth (the paper's `Cs` input).
    pub occupied: BandwidthUnits,
    /// Per-class active-call counts (generalizes the paper's RTC/NRTC).
    pub counts: ClassCounts,
}

impl CellSnapshot {
    /// An empty cell with `capacity`.
    #[must_use]
    pub fn empty(capacity: BandwidthUnits) -> Self {
        Self { capacity, occupied: BandwidthUnits::ZERO, counts: ClassCounts::default() }
    }

    /// A cell at a given occupancy with no per-class attribution — for
    /// tests and load sweeps that only care about the `Cs` axis.
    #[must_use]
    pub fn loaded(capacity: BandwidthUnits, occupied: BandwidthUnits) -> Self {
        Self { capacity, occupied, counts: ClassCounts::default() }
    }

    /// Free bandwidth.
    #[must_use]
    pub fn free(&self) -> BandwidthUnits {
        self.capacity.saturating_sub(self.occupied)
    }

    /// Occupancy fraction in `[0, 1]`.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.occupied.fraction_of(self.capacity)
    }

    /// Whether `demand` fits in the free bandwidth.
    #[must_use]
    pub fn can_fit(&self, demand: BandwidthUnits) -> bool {
        demand <= self.free()
    }

    /// The crisp counter-state value fed to FLC2's `Cs` input: occupied BU
    /// over the paper's `[0, 40]` universe (scaled if capacity differs).
    #[must_use]
    pub fn counter_state(&self) -> f64 {
        f64::from(self.occupied.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_ledger() -> BandwidthLedger {
        // 40 BU: 2 video (20) + 3 voice (15) + 5 text (5) = 40.
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        l.allocate(CallId(1), ServiceProfile::paper(ServiceClass::Video)).unwrap();
        l.allocate(CallId(2), ServiceProfile::paper(ServiceClass::Video)).unwrap();
        l.allocate(CallId(3), ServiceProfile::paper(ServiceClass::Voice)).unwrap();
        l.allocate(CallId(4), ServiceProfile::paper(ServiceClass::Voice)).unwrap();
        l.allocate(CallId(5), ServiceProfile::paper(ServiceClass::Voice)).unwrap();
        for i in 6..=10 {
            l.allocate(CallId(i), ServiceProfile::paper(ServiceClass::Text)).unwrap();
        }
        l
    }

    /// Elastic video profile: nominal 10, floor 5.
    fn elastic_video() -> ServiceProfile {
        ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 0.5, 180.0)
    }

    /// Elastic voice profile: nominal 5, floor 2 (ceil(5 * 0.4)).
    fn elastic_voice() -> ServiceProfile {
        ServiceProfile::elastic(ServiceClass::Voice, BandwidthUnits::new(5), 0.4, 120.0)
    }

    #[test]
    fn conservation_invariant() {
        let l = full_ledger();
        assert_eq!(l.occupied() + l.free(), l.capacity());
        assert_eq!(l.occupied().get(), 40);
        assert_eq!(l.free(), BandwidthUnits::ZERO);
        assert_eq!(l.utilization(), 1.0);
    }

    #[test]
    fn counters_track_classes() {
        let l = full_ledger();
        assert_eq!(l.counts().real_time(), 5);
        assert_eq!(l.counts().non_real_time(), 5);
        assert_eq!(l.counts(), ClassCounts { text: 5, voice: 3, video: 2 });
        assert_eq!(l.counts().total(), 10);
        assert_eq!(l.active_calls(), 10);
    }

    #[test]
    fn refuses_over_allocation_without_side_effects() {
        let mut l = full_ledger();
        let before = l.clone();
        let err = l.allocate(CallId(99), ServiceProfile::paper(ServiceClass::Text)).unwrap_err();
        assert_eq!(
            err,
            LedgerError::Insufficient {
                requested: BandwidthUnits::new(1),
                free: BandwidthUnits::ZERO
            }
        );
        assert_eq!(l, before, "failed allocation must not mutate the ledger");
    }

    #[test]
    fn refuses_duplicate_allocation() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        l.allocate(CallId(1), ServiceProfile::paper(ServiceClass::Voice)).unwrap();
        let err = l.allocate(CallId(1), ServiceProfile::paper(ServiceClass::Text)).unwrap_err();
        assert_eq!(err, LedgerError::AlreadyAllocated(CallId(1)));
        assert_eq!(l.occupied().get(), 5);
    }

    #[test]
    fn refuses_grant_outside_band() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
        let profile = elastic_video(); // [5, 10]
        let low = l.allocate_at(CallId(1), profile, BandwidthUnits::new(4)).unwrap_err();
        assert!(matches!(low, LedgerError::GrantOutOfBand { .. }));
        let high = l.allocate_at(CallId(1), profile, BandwidthUnits::new(11)).unwrap_err();
        assert!(matches!(high, LedgerError::GrantOutOfBand { .. }));
        assert_eq!(l.occupied(), BandwidthUnits::ZERO);
        l.allocate_at(CallId(1), profile, BandwidthUnits::new(7)).unwrap();
        assert_eq!(l.allocated_to(CallId(1)), Some(BandwidthUnits::new(7)));
    }

    #[test]
    fn release_returns_profile_and_frees() {
        let mut l = full_ledger();
        assert_eq!(l.release(CallId(1)).unwrap().class, ServiceClass::Video);
        assert_eq!(l.free().get(), 10);
        assert_eq!(l.counts().real_time(), 4);
        assert_eq!(l.release(CallId(1)).unwrap_err(), LedgerError::UnknownCall(CallId(1)));
    }

    #[test]
    fn release_then_reallocate_cycles() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(10));
        for round in 0..100 {
            let id = CallId(round);
            l.allocate(id, ServiceProfile::paper(ServiceClass::Video)).unwrap();
            assert!(!l.can_fit(BandwidthUnits::new(1)));
            l.release(id).unwrap();
            assert_eq!(l.occupied(), BandwidthUnits::ZERO);
        }
    }

    #[test]
    fn snapshot_reflects_state() {
        let l = full_ledger();
        let s = l.snapshot();
        assert_eq!(s.capacity, l.capacity());
        assert_eq!(s.occupied, l.occupied());
        assert_eq!(s.counts.real_time(), 5);
        assert_eq!(s.counter_state(), 40.0);
        assert!(!s.can_fit(BandwidthUnits::new(1)));
    }

    #[test]
    fn snapshot_empty_and_loaded() {
        let s = CellSnapshot::empty(BandwidthUnits::new(40));
        assert_eq!(s.free().get(), 40);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.can_fit(BandwidthUnits::new(40)));
        assert!(!s.can_fit(BandwidthUnits::new(41)));
        let loaded = CellSnapshot::loaded(BandwidthUnits::new(40), BandwidthUnits::new(25));
        assert_eq!(loaded.free().get(), 15);
        assert_eq!(loaded.counts.total(), 0);
    }

    #[test]
    fn class_of_lookup() {
        let l = full_ledger();
        assert_eq!(l.class_of(CallId(1)), Some(ServiceClass::Video));
        assert_eq!(l.profile_of(CallId(1)).unwrap().rb_cost_nominal.get(), 10);
        assert_eq!(l.class_of(CallId(99)), None);
        assert_eq!(l.profile_of(CallId(99)), None);
    }

    #[test]
    fn iter_covers_all_allocations() {
        let l = full_ledger();
        let total: BandwidthUnits = l.iter().map(|(_, a)| a.allocated).sum();
        assert_eq!(total, l.occupied());
    }

    // --- elastic behavior ---------------------------------------------

    #[test]
    fn degrade_exactly_to_floor() {
        // Two elastic videos at nominal fill 20/20; a 10-BU demand forces
        // both exactly to their 5-BU floors — not one unit further.
        let mut l = BandwidthLedger::new(BandwidthUnits::new(20));
        l.allocate(CallId(1), elastic_video()).unwrap();
        l.allocate(CallId(2), elastic_video()).unwrap();
        let squeezes = l.degrade_to_fit(BandwidthUnits::new(10)).expect("slack covers the demand");
        assert_eq!(l.free().get(), 10);
        assert_eq!(l.allocated_to(CallId(1)), Some(BandwidthUnits::new(5)));
        assert_eq!(l.allocated_to(CallId(2)), Some(BandwidthUnits::new(5)));
        assert_eq!(squeezes.len(), 2);
        assert!(squeezes.iter().all(|s| s.to.get() == 5 && s.from.get() == 10));
        assert_eq!(l.reclaimable(), BandwidthUnits::ZERO);
    }

    #[test]
    fn fair_share_spreads_the_squeeze() {
        // Fresh call at nominal (slack 5) next to an already-degraded one
        // (slack 2): reclaiming 3 BU must hit the fresh call first.
        let mut l = BandwidthLedger::new(BandwidthUnits::new(17));
        l.allocate_at(CallId(1), elastic_video(), BandwidthUnits::new(7)).unwrap();
        l.allocate(CallId(2), elastic_video()).unwrap();
        let squeezes = l.degrade_to_fit(BandwidthUnits::new(3)).unwrap();
        assert_eq!(
            squeezes,
            vec![Reallocation {
                call: CallId(2),
                from: BandwidthUnits::new(10),
                to: BandwidthUnits::new(7),
            }]
        );
        assert_eq!(l.allocated_to(CallId(1)), Some(BandwidthUnits::new(7)));
    }

    #[test]
    fn degradation_plan_that_still_does_not_fit() {
        // Floors sum to 10 in a 20-BU cell: total slack is 10, so a
        // 15-BU demand is infeasible and the ledger must be untouched.
        let mut l = BandwidthLedger::new(BandwidthUnits::new(20));
        l.allocate(CallId(1), elastic_video()).unwrap();
        l.allocate(CallId(2), elastic_video()).unwrap();
        let before = l.clone();
        assert_eq!(l.degradation_squeezes(BandwidthUnits::new(15)), None);
        assert_eq!(l.degrade_to_fit(BandwidthUnits::new(15)), None);
        assert_eq!(l, before);
    }

    #[test]
    fn zero_width_profiles_cannot_degrade() {
        // Inelastic (paper) profiles have no slack: degradation plans
        // reclaim nothing, so a full cell stays full — bit-for-bit the
        // pre-elastic ledger's behavior.
        let mut l = full_ledger();
        assert_eq!(l.reclaimable(), BandwidthUnits::ZERO);
        assert_eq!(l.degrade_to_fit(BandwidthUnits::new(1)), None);
        assert!(l.reupgrade_on_release().is_empty());
        l.release(CallId(10)).unwrap();
        assert!(l.reupgrade_on_release().is_empty(), "nominal calls never re-upgrade");
        assert_eq!(l.free().get(), 1);
    }

    #[test]
    fn reupgrade_ordering_after_multiple_releases() {
        // Cell of 22: video degraded to 5 (deficit 5), two voices degraded
        // to 2 (deficit 3 each), plus a rigid 10-BU filler. Releasing the
        // filler frees 10: the video (largest deficit) recovers first,
        // then the deficit-3 voices, lowest CallId first — and everyone
        // lands back at nominal with 1 BU spare.
        let mut l = BandwidthLedger::new(BandwidthUnits::new(22));
        l.allocate_at(CallId(1), elastic_video(), BandwidthUnits::new(5)).unwrap();
        l.allocate_at(CallId(2), elastic_voice(), BandwidthUnits::new(2)).unwrap();
        l.allocate_at(CallId(3), elastic_voice(), BandwidthUnits::new(2)).unwrap();
        l.allocate(CallId(4), ServiceProfile::fixed(ServiceClass::Video, BandwidthUnits::new(10)))
            .unwrap();
        assert_eq!(l.free().get(), 3);

        // Partial recovery first: 3 free BU all flow to the video, whose
        // deficit (5) dominates the voices' (3).
        let first = l.reupgrade_on_release();
        assert_eq!(
            first,
            vec![Reallocation {
                call: CallId(1),
                from: BandwidthUnits::new(5),
                to: BandwidthUnits::new(8),
            }]
        );

        l.release(CallId(4)).unwrap();
        let second = l.reupgrade_on_release();
        // 10 freed: video takes 2 (to nominal 10), each voice takes 3.
        assert_eq!(second.len(), 3);
        assert_eq!(l.allocated_to(CallId(1)), Some(BandwidthUnits::new(10)));
        assert_eq!(l.allocated_to(CallId(2)), Some(BandwidthUnits::new(5)));
        assert_eq!(l.allocated_to(CallId(3)), Some(BandwidthUnits::new(5)));
        assert_eq!(l.free().get(), 2);
        assert!(l.reupgrade_on_release().is_empty(), "everyone back at nominal");
    }

    #[test]
    fn admit_with_plan_is_atomic() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(20));
        l.allocate(CallId(1), elastic_video()).unwrap();
        l.allocate(CallId(2), elastic_video()).unwrap();
        let squeezes = l.degradation_squeezes(BandwidthUnits::new(5)).unwrap();
        let before = l.clone();

        // A stale plan (victim already released) must change nothing.
        let mut stale = squeezes.clone();
        stale[0].call = CallId(77);
        let err = l
            .admit_with_plan(CallId(3), elastic_voice(), BandwidthUnits::new(5), &stale)
            .unwrap_err();
        assert_eq!(err, LedgerError::InvalidSqueeze(CallId(77)));
        assert_eq!(l, before, "failed plan must not mutate the ledger");

        // The valid plan admits the voice call at its 5-BU grant.
        l.admit_with_plan(CallId(3), elastic_voice(), BandwidthUnits::new(5), &squeezes).unwrap();
        assert_eq!(l.allocated_to(CallId(3)), Some(BandwidthUnits::new(5)));
        assert_eq!(l.occupied(), l.capacity());
    }

    #[test]
    fn apply_squeezes_rejects_floor_violations() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(10));
        l.allocate(CallId(1), elastic_video()).unwrap();
        let below_floor = [Reallocation {
            call: CallId(1),
            from: BandwidthUnits::new(10),
            to: BandwidthUnits::new(4),
        }];
        assert_eq!(
            l.apply_squeezes(&below_floor).unwrap_err(),
            LedgerError::InvalidSqueeze(CallId(1))
        );
        let growing = [Reallocation {
            call: CallId(1),
            from: BandwidthUnits::new(10),
            to: BandwidthUnits::new(10),
        }];
        assert_eq!(l.apply_squeezes(&growing).unwrap_err(), LedgerError::InvalidSqueeze(CallId(1)));
        assert_eq!(l.allocated_to(CallId(1)), Some(BandwidthUnits::new(10)));
    }

    #[test]
    fn degrade_then_reupgrade_round_trips() {
        let mut l = BandwidthLedger::new(BandwidthUnits::new(20));
        l.allocate(CallId(1), elastic_video()).unwrap();
        l.allocate(CallId(2), elastic_video()).unwrap();
        l.degrade_to_fit(BandwidthUnits::new(5)).unwrap();
        l.allocate(CallId(3), ServiceProfile::fixed(ServiceClass::Voice, BandwidthUnits::new(5)))
            .unwrap();
        l.release(CallId(3)).unwrap();
        let ups = l.reupgrade_on_release();
        assert!(!ups.is_empty());
        assert_eq!(l.allocated_to(CallId(1)), Some(BandwidthUnits::new(10)));
        assert_eq!(l.allocated_to(CallId(2)), Some(BandwidthUnits::new(10)));
        assert_eq!(l.occupied().get(), 20);
    }
}
