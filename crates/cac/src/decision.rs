//! Admission decisions, including the paper's five-level soft verdicts.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The paper's soft decision levels for FLC2's `A/R` output
/// (`{Reject, Weak Reject, Not Reject Not Accept, Weak Accept, Accept}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// Firm rejection.
    Reject,
    /// Leaning toward rejection.
    WeakReject,
    /// Neutral — the paper's "not reject, not accept".
    Undecided,
    /// Leaning toward acceptance.
    WeakAccept,
    /// Firm acceptance.
    Accept,
}

impl Verdict {
    /// Maps a crisp score in `[-1, 1]` to the nearest verdict level, using
    /// the centers of the paper's five output terms (−1, −0.5, 0, 0.5, 1).
    #[must_use]
    pub fn from_score(score: f64) -> Self {
        match score {
            s if s <= -0.75 => Verdict::Reject,
            s if s <= -0.25 => Verdict::WeakReject,
            s if s < 0.25 => Verdict::Undecided,
            s if s < 0.75 => Verdict::WeakAccept,
            _ => Verdict::Accept,
        }
    }

    /// The canonical score at the center of this verdict's output term.
    #[must_use]
    pub fn canonical_score(self) -> f64 {
        match self {
            Verdict::Reject => -1.0,
            Verdict::WeakReject => -0.5,
            Verdict::Undecided => 0.0,
            Verdict::WeakAccept => 0.5,
            Verdict::Accept => 1.0,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Reject => "reject",
            Verdict::WeakReject => "weak-reject",
            Verdict::Undecided => "undecided",
            Verdict::WeakAccept => "weak-accept",
            Verdict::Accept => "accept",
        })
    }
}

/// The outcome of one admission decision: the binary gate plus the
/// controller's soft evidence.
///
/// # Margin sign convention
///
/// The `margin` is the signed distance of the soft score from the
/// boundary the decision was gated on, and its sign is always
/// *verdict-consistent*: `margin > 0` exactly when the decision admits
/// (up to the measure-zero boundary case `margin == 0`). Every
/// constructor upholds this — [`Decision::from_score`] carries
/// `score - threshold`, while the boundary-free constructors
/// ([`Decision::accept`], [`Decision::reject`], [`Decision::binary`])
/// carry `±|score|`, so a rejection at a high score still reports a
/// non-positive margin. The invariant is `debug_assert`ed in the
/// constructors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    admit: bool,
    score: f64,
    margin: f64,
    verdict: Verdict,
}

impl Decision {
    /// An acceptance with the given soft score in `[-1, 1]`.
    #[must_use]
    pub fn accept(score: f64) -> Self {
        let score = score.clamp(-1.0, 1.0);
        let margin = score.abs();
        debug_assert!(margin >= 0.0, "acceptance margin must be non-negative");
        Self { admit: true, score, margin, verdict: Verdict::from_score(score) }
    }

    /// A rejection with the given soft score in `[-1, 1]`.
    #[must_use]
    pub fn reject(score: f64) -> Self {
        let score = score.clamp(-1.0, 1.0);
        let margin = -score.abs();
        debug_assert!(margin <= 0.0, "rejection margin must be non-positive");
        Self { admit: false, score, margin, verdict: Verdict::from_score(score) }
    }

    /// Gates a soft score with an acceptance threshold: admit iff
    /// `score > threshold`. This is how FACS turns FLC2's defuzzified
    /// `A/R` value into a binary decision.
    #[must_use]
    pub fn from_score(score: f64, threshold: f64) -> Self {
        let score = score.clamp(-1.0, 1.0);
        let admit = score > threshold;
        let margin = score - threshold;
        debug_assert!(
            admit == (margin > 0.0),
            "margin sign must track the verdict: admit={admit}, margin={margin}"
        );
        Self { admit, score, margin, verdict: Verdict::from_score(score) }
    }

    /// A crisp binary decision with canonical scores ±1.
    #[must_use]
    pub fn binary(admit: bool) -> Self {
        if admit {
            Self::accept(1.0)
        } else {
            Self::reject(-1.0)
        }
    }

    /// Whether the call is admitted.
    #[must_use]
    pub fn admits(&self) -> bool {
        self.admit
    }

    /// The soft score in `[-1, 1]` (higher = stronger acceptance).
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The five-level verdict corresponding to the score.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        self.verdict
    }

    /// The decision margin — see the [type-level sign
    /// convention](Decision#margin-sign-convention): `margin > 0` exactly
    /// when the decision admits, up to the boundary case.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.margin
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (score {:+.3}, {})",
            if self.admit { "ADMIT" } else { "DENY" },
            self.score,
            self.verdict
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_banding_matches_term_centers() {
        assert_eq!(Verdict::from_score(-1.0), Verdict::Reject);
        assert_eq!(Verdict::from_score(-0.8), Verdict::Reject);
        assert_eq!(Verdict::from_score(-0.5), Verdict::WeakReject);
        assert_eq!(Verdict::from_score(-0.3), Verdict::WeakReject);
        assert_eq!(Verdict::from_score(0.0), Verdict::Undecided);
        assert_eq!(Verdict::from_score(0.24), Verdict::Undecided);
        assert_eq!(Verdict::from_score(0.5), Verdict::WeakAccept);
        assert_eq!(Verdict::from_score(0.74), Verdict::WeakAccept);
        assert_eq!(Verdict::from_score(0.75), Verdict::Accept);
        assert_eq!(Verdict::from_score(1.0), Verdict::Accept);
    }

    #[test]
    fn verdict_round_trips_through_canonical_score() {
        for v in [
            Verdict::Reject,
            Verdict::WeakReject,
            Verdict::Undecided,
            Verdict::WeakAccept,
            Verdict::Accept,
        ] {
            assert_eq!(Verdict::from_score(v.canonical_score()), v);
        }
    }

    #[test]
    fn verdicts_are_ordered() {
        assert!(Verdict::Reject < Verdict::WeakReject);
        assert!(Verdict::WeakReject < Verdict::Undecided);
        assert!(Verdict::Undecided < Verdict::WeakAccept);
        assert!(Verdict::WeakAccept < Verdict::Accept);
    }

    #[test]
    fn threshold_gate() {
        assert!(Decision::from_score(0.1, 0.0).admits());
        assert!(!Decision::from_score(0.0, 0.0).admits());
        assert!(!Decision::from_score(-0.1, 0.0).admits());
        // Stricter threshold.
        assert!(!Decision::from_score(0.1, 0.25).admits());
        // Permissive threshold.
        assert!(Decision::from_score(-0.1, -0.5).admits());
    }

    #[test]
    fn scores_are_clamped() {
        assert_eq!(Decision::accept(5.0).score(), 1.0);
        assert_eq!(Decision::reject(-5.0).score(), -1.0);
    }

    #[test]
    fn margin_is_signed_distance_from_the_gate() {
        let d = Decision::from_score(0.4, 0.1);
        assert!(d.admits());
        assert!((d.margin() - 0.3).abs() < 1e-12);
        let d = Decision::from_score(-0.2, 0.1);
        assert!(!d.admits());
        assert!((d.margin() + 0.3).abs() < 1e-12);
        // Gate-constructed decisions: margin sign tracks the verdict.
        for score in [-1.0, -0.3, 0.0, 0.1001, 0.7, 1.0] {
            let d = Decision::from_score(score, 0.1);
            assert_eq!(d.admits(), d.margin() > 0.0, "score {score}");
        }
        // Boundary-free constructors use a zero boundary.
        assert_eq!(Decision::binary(true).margin(), 1.0);
        assert_eq!(Decision::binary(false).margin(), -1.0);
        assert_eq!(Decision::accept(0.5).margin(), 0.5);
    }

    #[test]
    fn binary_decisions() {
        let a = Decision::binary(true);
        assert!(a.admits());
        assert_eq!(a.verdict(), Verdict::Accept);
        let r = Decision::binary(false);
        assert!(!r.admits());
        assert_eq!(r.verdict(), Verdict::Reject);
    }

    #[test]
    fn display_is_informative() {
        let d = Decision::from_score(0.5, 0.0);
        let s = d.to_string();
        assert!(s.contains("ADMIT"));
        assert!(s.contains("weak-accept"));
    }
}
