//! The admission-controller abstraction every CAC policy implements.

use crate::decision::Decision;
use crate::ledger::CellSnapshot;
use crate::traffic::{CallId, CallRequest, ServiceClass};

/// A call admission control policy for one cell.
///
/// The simulator calls [`decide`](AdmissionController::decide) for every
/// arriving request (new or handoff) and then notifies the controller of
/// the outcome via [`on_admitted`](AdmissionController::on_admitted) /
/// [`on_released`](AdmissionController::on_released), letting stateful
/// policies (guard channels, fractional policies, SCC projections, FACS
/// counters) track the cell.
///
/// Implementations must be deterministic given the same call sequence —
/// the reproduction relies on seeded, repeatable runs. Policies that need
/// randomness derive it from their own seeded state, never from global
/// entropy.
///
/// Controllers are `Send` so per-cell actors can own them on worker
/// threads.
pub trait AdmissionController: Send {
    /// A short human-readable policy name (e.g. `"FACS"`, `"SCC"`).
    fn name(&self) -> &str;

    /// Decides whether to admit `request` given the current `cell` load.
    ///
    /// Returning an admitting [`Decision`] does **not** allocate bandwidth;
    /// the caller performs the allocation and only then calls
    /// [`on_admitted`](AdmissionController::on_admitted). A decision to
    /// admit a request that no longer fits is downgraded to a rejection by
    /// the caller.
    fn decide(&mut self, request: &CallRequest, cell: &CellSnapshot) -> Decision;

    /// Called after `request` was admitted and its bandwidth allocated.
    fn on_admitted(&mut self, request: &CallRequest, cell: &CellSnapshot) {
        let _ = (request, cell);
    }

    /// Called after call `call` of `class` ended (completion or outbound
    /// handoff) and its bandwidth was released.
    fn on_released(&mut self, call: CallId, class: ServiceClass, cell: &CellSnapshot) {
        let _ = (call, class, cell);
    }

    /// Whether this controller's mutable state is confined to its own
    /// cell (the default). Controllers that share cross-cell state —
    /// e.g. SCC's cluster-wide shadow board — must return `false`: the
    /// sharded simulation kernel refuses to run them on more than one
    /// shard, because concurrent shards would interleave their shared
    /// updates nondeterministically and break bit-reproducibility.
    fn is_cell_local(&self) -> bool {
        true
    }
}

/// Object-safe boxed controller, the form the simulator stores per cell.
pub type BoxedController = Box<dyn AdmissionController>;

impl AdmissionController for BoxedController {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn decide(&mut self, request: &CallRequest, cell: &CellSnapshot) -> Decision {
        self.as_mut().decide(request, cell)
    }

    fn on_admitted(&mut self, request: &CallRequest, cell: &CellSnapshot) {
        self.as_mut().on_admitted(request, cell);
    }

    fn on_released(&mut self, call: CallId, class: ServiceClass, cell: &CellSnapshot) {
        self.as_mut().on_released(call, class, cell);
    }

    fn is_cell_local(&self) -> bool {
        self.as_ref().is_cell_local()
    }
}

/// A factory producing one controller instance per cell, so multi-cell
/// simulations can give every base station its own policy state.
pub trait ControllerFactory {
    /// Builds a fresh controller for one cell.
    fn build(&self) -> BoxedController;

    /// The policy name shared by all instances.
    fn policy_name(&self) -> &str;
}

impl<F> ControllerFactory for F
where
    F: Fn() -> BoxedController,
{
    fn build(&self) -> BoxedController {
        self()
    }

    fn policy_name(&self) -> &str {
        "closure-policy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;
    use crate::ledger::CellSnapshot;
    use crate::traffic::{CallId, CallKind, CallRequest, MobilityInfo, ServiceClass};
    use crate::units::BandwidthUnits;

    /// A controller that admits everything and counts notifications.
    struct CountingController {
        admitted: usize,
        released: usize,
    }

    impl AdmissionController for CountingController {
        fn name(&self) -> &str {
            "counting"
        }

        fn decide(&mut self, _request: &CallRequest, _cell: &CellSnapshot) -> Decision {
            Decision::binary(true)
        }

        fn on_admitted(&mut self, _request: &CallRequest, _cell: &CellSnapshot) {
            self.admitted += 1;
        }

        fn on_released(&mut self, _call: CallId, _class: ServiceClass, _cell: &CellSnapshot) {
            self.released += 1;
        }
    }

    fn request() -> CallRequest {
        CallRequest::new(CallId(1), ServiceClass::Voice, CallKind::New, MobilityInfo::stationary())
    }

    #[test]
    fn boxed_controller_delegates() {
        let mut boxed: BoxedController = Box::new(CountingController { admitted: 0, released: 0 });
        let cell = CellSnapshot::empty(BandwidthUnits::new(40));
        assert_eq!(boxed.name(), "counting");
        assert!(boxed.decide(&request(), &cell).admits());
        boxed.on_admitted(&request(), &cell);
        boxed.on_released(CallId(1), ServiceClass::Voice, &cell);
    }

    #[test]
    fn closures_are_factories() {
        let factory =
            || -> BoxedController { Box::new(CountingController { admitted: 0, released: 0 }) };
        let a = factory.build();
        let b = factory.build();
        assert_eq!(a.name(), "counting");
        assert_eq!(b.name(), "counting");
        assert_eq!(ControllerFactory::policy_name(&factory), "closure-policy");
    }

    #[test]
    fn default_hooks_are_no_ops() {
        struct Minimal;
        impl AdmissionController for Minimal {
            fn name(&self) -> &str {
                "minimal"
            }
            fn decide(&mut self, _r: &CallRequest, _c: &CellSnapshot) -> Decision {
                Decision::binary(false)
            }
        }
        let mut m = Minimal;
        let cell = CellSnapshot::empty(BandwidthUnits::new(40));
        m.on_admitted(&request(), &cell);
        m.on_released(CallId(1), ServiceClass::Text, &cell);
        assert!(!m.decide(&request(), &cell).admits());
    }
}
