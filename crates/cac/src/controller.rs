//! The admission-controller abstraction every CAC policy implements.

use crate::decision::Decision;
use crate::ledger::{BandwidthLedger, CellSnapshot, Reallocation};
use crate::traffic::{CallId, CallRequest, ServiceClass, ServiceProfile};
use crate::units::BandwidthUnits;

/// The outcome of an admission decision: not just admit/reject, but *how*
/// to admit — at full quality, or by degrading existing elastic calls
/// toward their QoS floors to make room.
///
/// A plan is a proposal; the caller (simulator shard, distributed actor)
/// applies it against the live [`BandwidthLedger`] atomically and
/// downgrades a plan that no longer fits to a rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionPlan {
    /// Admit at the profile's nominal bandwidth; nobody else is touched.
    Admit(Decision),
    /// Admit at `grant` bandwidth units (somewhere in the request
    /// profile's `[floor, nominal]` band) after applying `squeezes` to
    /// existing calls. An empty squeeze list means only the entering
    /// call itself is degraded.
    AdmitDegraded {
        /// The fuzzy/policy decision that backed the admission.
        decision: Decision,
        /// Per-call degradations to apply before allocating.
        squeezes: Vec<Reallocation>,
        /// Bandwidth granted to the entering call.
        grant: BandwidthUnits,
    },
    /// Turn the request away.
    Reject(Decision),
}

impl AdmissionPlan {
    /// Lifts a plain [`Decision`] into a plan: admit-as-is or reject.
    /// This is the bridge for classic (inelastic) policies.
    #[must_use]
    pub fn gate(decision: Decision) -> Self {
        if decision.admits() {
            AdmissionPlan::Admit(decision)
        } else {
            AdmissionPlan::Reject(decision)
        }
    }

    /// Whether the plan admits the request (possibly degraded).
    #[must_use]
    pub fn admits(&self) -> bool {
        !matches!(self, AdmissionPlan::Reject(_))
    }

    /// Whether admission involves degradation (of the entering call or
    /// of existing calls).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        matches!(self, AdmissionPlan::AdmitDegraded { .. })
    }

    /// The underlying policy decision.
    #[must_use]
    pub fn decision(&self) -> Decision {
        match self {
            AdmissionPlan::Admit(d)
            | AdmissionPlan::AdmitDegraded { decision: d, .. }
            | AdmissionPlan::Reject(d) => *d,
        }
    }
}

/// A call admission control policy for one cell.
///
/// The simulator calls [`decide`](AdmissionController::decide) for every
/// arriving request (new or handoff) with read access to the cell's full
/// [`BandwidthLedger`] — so elastic policies can plan per-call squeezes —
/// and then notifies the controller of the outcome via
/// [`on_admitted`](AdmissionController::on_admitted) /
/// [`on_released`](AdmissionController::on_released). The time-stepped
/// [`observe`](AdmissionController::observe) hook fires once per epoch
/// sample, letting stateful policies track load trends between requests.
///
/// Implementations must be deterministic given the same call sequence —
/// the reproduction relies on seeded, repeatable runs. Policies that need
/// randomness derive it from their own seeded state, never from global
/// entropy.
///
/// Controllers are `Send` so per-cell actors can own them on worker
/// threads.
pub trait AdmissionController: Send {
    /// A short human-readable policy name (e.g. `"FACS"`, `"SCC"`).
    fn name(&self) -> &str;

    /// Plans the admission of `request` given the current `cell` ledger.
    ///
    /// Returning an admitting [`AdmissionPlan`] does **not** allocate
    /// bandwidth; the caller applies the plan atomically and only then
    /// calls [`on_admitted`](AdmissionController::on_admitted). A plan
    /// that no longer fits (stale squeezes, raced capacity) is downgraded
    /// to a rejection by the caller.
    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan;

    /// A conservative pre-screen: returns `true` only when the
    /// controller can prove, from the service profile and the ledger
    /// alone, that [`decide`](AdmissionController::decide) would deny a
    /// request carrying `profile` — for any mobility and either call
    /// kind. The engine then records the denial without building the
    /// full request, which on saturated cells skips the dominant
    /// per-arrival cost. Must never return `true` when admission is
    /// possible; the default claims nothing.
    fn fast_reject(&self, profile: &ServiceProfile, cell: &BandwidthLedger) -> bool {
        let _ = (profile, cell);
        false
    }

    /// Time-stepped load sample. Default: no-op.
    ///
    /// # Ordering contract
    ///
    /// The simulation kernel calls `observe` **exactly once per cell per
    /// epoch**, at the epoch's barrier time `t`, *after* every admission
    /// and release of that epoch (all events with time `<= t`) and
    /// *before* any [`decide`](AdmissionController::decide) of the next
    /// epoch (all events with time `> t`). `now_s` is therefore strictly
    /// increasing across calls, and the ledger passed here is the cell's
    /// settled end-of-epoch state. No pulse fires before the first
    /// epoch: a controller may see `decide` before its first `observe`
    /// (cold start). The kernel `debug_assert!`s this contract at both
    /// call sites.
    ///
    /// Runtimes without an epoch clock (the message-driven
    /// `facs-distrib` actors) never call `observe`; stateful policies
    /// must degrade gracefully to reactive behavior when the hook stays
    /// silent.
    fn observe(&mut self, now_s: f64, cell: &BandwidthLedger) {
        let _ = (now_s, cell);
    }

    /// Called after `request` was admitted and its bandwidth allocated.
    fn on_admitted(&mut self, request: &CallRequest, cell: &CellSnapshot) {
        let _ = (request, cell);
    }

    /// Called after call `call` of `class` ended (completion or outbound
    /// handoff) and its bandwidth was released.
    fn on_released(&mut self, call: CallId, class: ServiceClass, cell: &CellSnapshot) {
        let _ = (call, class, cell);
    }

    /// Whether this controller's mutable state is confined to its own
    /// cell (the default). Controllers that share cross-cell state —
    /// e.g. SCC's cluster-wide shadow board — must return `false`: the
    /// sharded simulation kernel refuses to run them on more than one
    /// shard, because concurrent shards would interleave their shared
    /// updates nondeterministically and break bit-reproducibility.
    fn is_cell_local(&self) -> bool {
        true
    }
}

/// Object-safe boxed controller, the form the simulator stores per cell.
pub type BoxedController = Box<dyn AdmissionController>;

impl AdmissionController for BoxedController {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn decide(&mut self, request: &CallRequest, cell: &BandwidthLedger) -> AdmissionPlan {
        self.as_mut().decide(request, cell)
    }

    fn fast_reject(&self, profile: &ServiceProfile, cell: &BandwidthLedger) -> bool {
        self.as_ref().fast_reject(profile, cell)
    }

    fn observe(&mut self, now_s: f64, cell: &BandwidthLedger) {
        self.as_mut().observe(now_s, cell);
    }

    fn on_admitted(&mut self, request: &CallRequest, cell: &CellSnapshot) {
        self.as_mut().on_admitted(request, cell);
    }

    fn on_released(&mut self, call: CallId, class: ServiceClass, cell: &CellSnapshot) {
        self.as_mut().on_released(call, class, cell);
    }

    fn is_cell_local(&self) -> bool {
        self.as_ref().is_cell_local()
    }
}

/// A factory producing one controller instance per cell, so multi-cell
/// simulations can give every base station its own policy state.
pub trait ControllerFactory {
    /// Builds a fresh controller for one cell.
    fn build(&self) -> BoxedController;

    /// The policy name shared by all instances.
    fn policy_name(&self) -> &str;
}

impl<F> ControllerFactory for F
where
    F: Fn() -> BoxedController,
{
    fn build(&self) -> BoxedController {
        self()
    }

    fn policy_name(&self) -> &str {
        "closure-policy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Decision;
    use crate::traffic::{CallId, CallKind, CallRequest, MobilityInfo, ServiceClass};
    use crate::units::BandwidthUnits;

    /// A controller that admits everything and counts notifications.
    struct CountingController {
        admitted: usize,
        released: usize,
        observed: usize,
    }

    impl AdmissionController for CountingController {
        fn name(&self) -> &str {
            "counting"
        }

        fn decide(&mut self, _request: &CallRequest, _cell: &BandwidthLedger) -> AdmissionPlan {
            AdmissionPlan::gate(Decision::binary(true))
        }

        fn observe(&mut self, _now_s: f64, _cell: &BandwidthLedger) {
            self.observed += 1;
        }

        fn on_admitted(&mut self, _request: &CallRequest, _cell: &CellSnapshot) {
            self.admitted += 1;
        }

        fn on_released(&mut self, _call: CallId, _class: ServiceClass, _cell: &CellSnapshot) {
            self.released += 1;
        }
    }

    fn request() -> CallRequest {
        CallRequest::new(CallId(1), ServiceClass::Voice, CallKind::New, MobilityInfo::stationary())
    }

    fn empty_cell() -> BandwidthLedger {
        BandwidthLedger::new(BandwidthUnits::new(40))
    }

    #[test]
    fn boxed_controller_delegates() {
        let mut boxed: BoxedController =
            Box::new(CountingController { admitted: 0, released: 0, observed: 0 });
        let cell = empty_cell();
        assert_eq!(boxed.name(), "counting");
        assert!(boxed.decide(&request(), &cell).admits());
        boxed.observe(0.0, &cell);
        boxed.on_admitted(&request(), &cell.snapshot());
        boxed.on_released(CallId(1), ServiceClass::Voice, &cell.snapshot());
    }

    #[test]
    fn closures_are_factories() {
        let factory = || -> BoxedController {
            Box::new(CountingController { admitted: 0, released: 0, observed: 0 })
        };
        let a = factory.build();
        let b = factory.build();
        assert_eq!(a.name(), "counting");
        assert_eq!(b.name(), "counting");
        assert_eq!(ControllerFactory::policy_name(&factory), "closure-policy");
    }

    #[test]
    fn default_hooks_are_no_ops() {
        struct Minimal;
        impl AdmissionController for Minimal {
            fn name(&self) -> &str {
                "minimal"
            }
            fn decide(&mut self, _r: &CallRequest, _c: &BandwidthLedger) -> AdmissionPlan {
                AdmissionPlan::gate(Decision::binary(false))
            }
        }
        let mut m = Minimal;
        let cell = empty_cell();
        m.observe(1.0, &cell);
        m.on_admitted(&request(), &cell.snapshot());
        m.on_released(CallId(1), ServiceClass::Text, &cell.snapshot());
        assert!(!m.decide(&request(), &cell).admits());
    }

    #[test]
    fn plan_accessors() {
        let admit = AdmissionPlan::gate(Decision::binary(true));
        assert!(admit.admits() && !admit.is_degraded());
        assert!(admit.decision().admits());
        let reject = AdmissionPlan::gate(Decision::binary(false));
        assert!(!reject.admits() && !reject.is_degraded());
        let degraded = AdmissionPlan::AdmitDegraded {
            decision: Decision::binary(true),
            squeezes: Vec::new(),
            grant: BandwidthUnits::new(3),
        };
        assert!(degraded.admits() && degraded.is_degraded());
    }
}
