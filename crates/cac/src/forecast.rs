//! Per-cell load forecasting for predictive admission control.
//!
//! The related work replaces reactive CAC with prediction: an RNN-based
//! controller forecasts per-class load (arXiv:1004.3563) and an
//! intelligent decision mechanism conditions admission on predicted
//! network state (arXiv:1004.4444). This module provides the substrate:
//! a [`LoadForecaster`] fed one occupancy sample per epoch from the
//! [`observe`](crate::AdmissionController::observe) hook, answering
//! "where will this cell's load be `h` seconds from now?".
//!
//! Two implementations ship:
//!
//! * [`EwmaHoltForecaster`] — exponentially weighted level + Holt linear
//!   trend, the classical double-smoothing baseline;
//! * [`RecurrentForecaster`] — a small Elman-style recurrent network
//!   (single `tanh` hidden layer) trained online by one-step truncated
//!   backpropagation, pure `f64`, no external dependencies.
//!
//! Both are **deterministic given the sample stream**: no wall-clock, no
//! global entropy (the recurrent net's initial weights come from a fixed
//! seeded xorshift), every update a fixed sequence of float ops. A
//! forecaster owned by a cell-local controller therefore preserves the
//! kernel's bit-reproducibility across shard counts.

/// A streaming one-dimensional load forecaster.
///
/// Samples arrive in strictly increasing time order at a roughly uniform
/// cadence (the simulation's movement tick). Implementations must be
/// deterministic: identical sample streams yield bit-identical forecasts.
pub trait LoadForecaster: std::fmt::Debug + Send {
    /// Short model name (e.g. `"ewma"`, `"rnn"`).
    fn name(&self) -> &'static str;

    /// Feeds one occupancy sample (in BU) observed at `now_s` seconds.
    fn observe(&mut self, now_s: f64, occupied_bu: f64);

    /// Predicted occupancy (BU, `>= 0`) `horizon_s` seconds past the
    /// last sample. Before any sample arrives the forecast is 0; with
    /// few samples implementations fall back toward the last value.
    fn forecast(&self, horizon_s: f64) -> f64;

    /// Number of samples consumed so far.
    fn samples(&self) -> u64;
}

/// EWMA level + Holt linear-trend forecaster.
///
/// With smoothing factors `alpha` (level) and `beta` (trend), each
/// sample `x` at elapsed `dt` seconds updates
///
/// ```text
/// level' = alpha * x + (1 - alpha) * (level + trend * dt)
/// trend' = beta * (level' - level) / dt + (1 - beta) * trend
/// ```
///
/// and `forecast(h) = max(0, level + trend * h)`. `beta = 0` degenerates
/// to a plain EWMA (the trend stays 0), which
/// [`EwmaHoltForecaster::ewma`] exposes directly.
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaHoltForecaster {
    alpha: f64,
    beta: f64,
    level: f64,
    /// Trend in BU per second.
    trend: f64,
    last_t: f64,
    samples: u64,
}

impl EwmaHoltForecaster {
    /// Creates a Holt forecaster with level factor `alpha` and trend
    /// factor `beta`, both clamped into `[0, 1]`.
    #[must_use]
    pub fn new(alpha: f64, beta: f64) -> Self {
        Self {
            alpha: alpha.clamp(0.0, 1.0),
            beta: beta.clamp(0.0, 1.0),
            level: 0.0,
            trend: 0.0,
            last_t: 0.0,
            samples: 0,
        }
    }

    /// A trend-free EWMA with smoothing factor `alpha`.
    #[must_use]
    pub fn ewma(alpha: f64) -> Self {
        Self::new(alpha, 0.0)
    }

    /// The defaults used by the predictive FACS controller: responsive
    /// level, damped trend.
    #[must_use]
    pub fn default_profile() -> Self {
        Self::new(0.4, 0.2)
    }

    /// The smoothed level (BU).
    #[must_use]
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The smoothed trend (BU per second).
    #[must_use]
    pub fn trend(&self) -> f64 {
        self.trend
    }
}

impl LoadForecaster for EwmaHoltForecaster {
    fn name(&self) -> &'static str {
        if self.beta == 0.0 {
            "ewma"
        } else {
            "holt"
        }
    }

    fn observe(&mut self, now_s: f64, occupied_bu: f64) {
        if !occupied_bu.is_finite() || !now_s.is_finite() {
            return;
        }
        if self.samples == 0 {
            self.level = occupied_bu;
            self.trend = 0.0;
        } else {
            let dt = (now_s - self.last_t).max(f64::MIN_POSITIVE);
            let prev_level = self.level;
            let predicted = self.level + self.trend * dt;
            self.level = self.alpha * occupied_bu + (1.0 - self.alpha) * predicted;
            self.trend =
                self.beta * (self.level - prev_level) / dt + (1.0 - self.beta) * self.trend;
        }
        self.last_t = now_s;
        self.samples += 1;
    }

    fn forecast(&self, horizon_s: f64) -> f64 {
        (self.level + self.trend * horizon_s.max(0.0)).max(0.0)
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

/// Hidden-layer width of the recurrent forecaster. Small on purpose: the
/// model runs once per cell per epoch and must cost microseconds.
const HIDDEN: usize = 8;
/// Inputs: normalized occupancy, its one-step delta, and a constant bias.
const INPUTS: usize = 3;
/// Gradient clip bound — keeps online SGD stable on bursty load without
/// any data-dependent branching.
const GRAD_CLIP: f64 = 1.0;
/// Multi-step forecasts iterate the network at most this many steps.
const MAX_ROLLOUT: usize = 32;

/// A small Elman-style recurrent forecaster trained online.
///
/// State: `h_t = tanh(Wx · u_t + Wh · h_{t-1})` with
/// `u_t = [x_t / scale, (x_t - x_{t-1}) / scale, 1]`; the one-step
/// prediction is `ŷ_t = wo · h_t + b`. On each new sample the previous
/// prediction's squared error is backpropagated one step (truncated
/// BPTT: `h_{t-1}` is treated as a constant), with a fixed learning
/// rate and per-parameter gradient clipping.
///
/// Multi-step forecasts ([`LoadForecaster::forecast`]) roll the network
/// forward on its own predictions at the observed sample cadence.
///
/// Everything is plain `f64` arithmetic in a fixed order, and the
/// initial weights come from a seeded xorshift — the model is
/// bit-deterministic given the sample stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RecurrentForecaster {
    /// Input → hidden weights, `[hidden][input]`.
    wx: [[f64; INPUTS]; HIDDEN],
    /// Hidden → hidden recurrent weights, `[hidden][hidden]`.
    wh: [[f64; HIDDEN]; HIDDEN],
    /// Hidden → output weights.
    wo: [f64; HIDDEN],
    /// Output bias.
    bo: f64,
    /// Current hidden state.
    h: [f64; HIDDEN],
    /// Hidden state one step back (for the truncated BPTT update).
    h_prev: [f64; HIDDEN],
    /// Input vector that produced `h`.
    u: [f64; INPUTS],
    /// Prediction made from `h` (normalized), scored on the next sample.
    pending: f64,
    /// Normalization scale (the cell capacity in BU).
    scale: f64,
    /// Learning rate.
    eta: f64,
    last_x: f64,
    last_t: f64,
    /// Running mean sample spacing, for horizon → step conversion.
    mean_dt: f64,
    samples: u64,
}

impl RecurrentForecaster {
    /// Creates a forecaster normalizing occupancy by `scale_bu`
    /// (typically the cell capacity) with learning rate `eta`.
    #[must_use]
    pub fn new(scale_bu: f64, eta: f64) -> Self {
        // Fixed-seed xorshift64* for the initial weights: deterministic,
        // and identical across every cell so cloned prototypes agree.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut small = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mantissa = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64;
            // Uniform in [-0.25, 0.25].
            (mantissa / (1u64 << 53) as f64) * 0.5 - 0.25
        };
        let mut wx = [[0.0; INPUTS]; HIDDEN];
        for row in &mut wx {
            for w in row.iter_mut() {
                *w = small();
            }
        }
        let mut wh = [[0.0; HIDDEN]; HIDDEN];
        for row in &mut wh {
            for w in row.iter_mut() {
                *w = small();
            }
        }
        let mut wo = [0.0; HIDDEN];
        for w in &mut wo {
            *w = small();
        }
        Self {
            wx,
            wh,
            wo,
            bo: 0.0,
            h: [0.0; HIDDEN],
            h_prev: [0.0; HIDDEN],
            u: [0.0; INPUTS],
            pending: 0.0,
            scale: scale_bu.max(1.0),
            eta: eta.max(0.0),
            last_x: 0.0,
            last_t: 0.0,
            mean_dt: 0.0,
            samples: 0,
        }
    }

    /// The defaults used by the predictive FACS controller.
    #[must_use]
    pub fn default_profile(scale_bu: f64) -> Self {
        Self::new(scale_bu, 0.05)
    }

    /// One forward step from hidden state `h` and input `u`; returns the
    /// new hidden state and the normalized prediction.
    fn step(&self, h: &[f64; HIDDEN], u: &[f64; INPUTS]) -> ([f64; HIDDEN], f64) {
        let mut next = [0.0; HIDDEN];
        for (i, ni) in next.iter_mut().enumerate() {
            let mut z = 0.0;
            for (j, &uj) in u.iter().enumerate() {
                z += self.wx[i][j] * uj;
            }
            for (j, &hj) in h.iter().enumerate() {
                z += self.wh[i][j] * hj;
            }
            *ni = z.tanh();
        }
        let mut y = self.bo;
        for (&wi, &ni) in self.wo.iter().zip(&next) {
            y += wi * ni;
        }
        (next, y)
    }

    /// Backpropagates the pending prediction's error against the
    /// realized normalized sample `target`, one step deep.
    fn learn(&mut self, target: f64) {
        let clip = |g: f64| g.clamp(-GRAD_CLIP, GRAD_CLIP);
        // d(0.5 e^2)/dy = e
        let e = clip(self.pending - target);
        // Output layer.
        let h = self.h;
        for (wi, &hi) in self.wo.iter_mut().zip(&h) {
            *wi -= self.eta * clip(e * hi);
        }
        self.bo -= self.eta * clip(e);
        // Hidden layer through tanh', holding h_prev constant
        // (truncated BPTT depth 1).
        for (i, &hi) in h.iter().enumerate() {
            let dzi = clip(e * self.wo[i] * (1.0 - hi * hi));
            for (wij, &uj) in self.wx[i].iter_mut().zip(&self.u) {
                *wij -= self.eta * clip(dzi * uj);
            }
            for (wij, &hj) in self.wh[i].iter_mut().zip(&self.h_prev) {
                *wij -= self.eta * clip(dzi * hj);
            }
        }
    }
}

impl LoadForecaster for RecurrentForecaster {
    fn name(&self) -> &'static str {
        "rnn"
    }

    fn observe(&mut self, now_s: f64, occupied_bu: f64) {
        if !occupied_bu.is_finite() || !now_s.is_finite() {
            return;
        }
        let x = occupied_bu / self.scale;
        if self.samples > 0 {
            self.learn(x);
            let dt = (now_s - self.last_t).max(0.0);
            // Running mean cadence (exact incremental mean).
            self.mean_dt += (dt - self.mean_dt) / self.samples as f64;
        }
        let u = [x, x - self.last_x, 1.0];
        let (h_next, y) = self.step(&self.h, &u);
        self.h_prev = self.h;
        self.h = h_next;
        self.u = u;
        self.pending = y;
        self.last_x = x;
        self.last_t = now_s;
        self.samples += 1;
    }

    fn forecast(&self, horizon_s: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let step_s = if self.mean_dt > 0.0 { self.mean_dt } else { 1.0 };
        let steps = (horizon_s.max(0.0) / step_s).round() as usize;
        let steps = steps.clamp(1, MAX_ROLLOUT);
        // The first step's prediction is already pending; further steps
        // roll the network on its own (clamped) output.
        let mut h = self.h;
        let mut x = self.last_x;
        let mut y = self.pending;
        for _ in 1..steps {
            let next_x = y.clamp(0.0, 1.5);
            let u = [next_x, next_x - x, 1.0];
            let (h_next, y_next) = self.step(&h, &u);
            h = h_next;
            x = next_x;
            y = y_next;
        }
        (y * self.scale).max(0.0)
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

/// Online estimator of the mean interarrival of a recurring event —
/// used by the predictive controller to set the forecast horizon to the
/// cell's mean handoff interarrival, as the related work prescribes.
///
/// Events are *counted* as they occur (no timestamps needed at the
/// decision site); elapsed time advances at the epoch cadence. The mean
/// interarrival is simply `elapsed / events`, with a configurable
/// default until enough events accumulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterarrivalEstimator {
    events: u64,
    first_t: f64,
    last_t: f64,
    started: bool,
    default_s: f64,
    min_events: u64,
}

impl InterarrivalEstimator {
    /// Creates an estimator that answers `default_s` until `min_events`
    /// events have been counted.
    #[must_use]
    pub fn new(default_s: f64, min_events: u64) -> Self {
        Self {
            events: 0,
            first_t: 0.0,
            last_t: 0.0,
            started: false,
            default_s: default_s.max(0.0),
            min_events: min_events.max(1),
        }
    }

    /// Counts one event occurrence.
    pub fn record_event(&mut self) {
        self.events += 1;
    }

    /// Advances the elapsed-time clock to `now_s` (monotone).
    pub fn advance(&mut self, now_s: f64) {
        if !self.started {
            self.first_t = now_s;
            self.started = true;
        }
        self.last_t = self.last_t.max(now_s);
    }

    /// The estimated mean interarrival in seconds.
    #[must_use]
    pub fn mean_interarrival_s(&self) -> f64 {
        let elapsed = self.last_t - self.first_t;
        if self.events < self.min_events || elapsed <= 0.0 {
            self.default_s
        } else {
            elapsed / self.events as f64
        }
    }

    /// Events counted so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_matches_closed_form() {
        let alpha = 0.3;
        let xs = [10.0, 14.0, 9.0, 20.0, 18.0, 25.0, 7.0, 13.0];
        let mut f = EwmaHoltForecaster::ewma(alpha);
        for (i, &x) in xs.iter().enumerate() {
            f.observe(i as f64 * 5.0, x);
        }
        // Closed form with level_0 = x_0:
        // level_n = (1-a)^n x_0 + a * sum_{k=1..n} (1-a)^{n-k} x_k.
        let n = xs.len() - 1;
        let mut expect = (1.0 - alpha).powi(n as i32) * xs[0];
        for (k, &x) in xs.iter().enumerate().skip(1) {
            expect += alpha * (1.0 - alpha).powi((n - k) as i32) * x;
        }
        assert!(
            (f.level() - expect).abs() < 1e-9,
            "recursive {} vs closed form {expect}",
            f.level()
        );
        assert_eq!(f.trend(), 0.0, "beta = 0 must never grow a trend");
        assert_eq!(f.forecast(100.0), f.level(), "trend-free forecast is flat");
        assert_eq!(f.samples(), xs.len() as u64);
    }

    #[test]
    fn holt_tracks_a_linear_ramp() {
        let mut f = EwmaHoltForecaster::new(0.5, 0.3);
        // x(t) = 2 + 0.6 t sampled every 5 s.
        for i in 0..200 {
            let t = f64::from(i) * 5.0;
            f.observe(t, 2.0 + 0.6 * t);
        }
        let t_last = 199.0 * 5.0;
        for horizon in [5.0, 10.0, 20.0] {
            let truth = 2.0 + 0.6 * (t_last + horizon);
            let got = f.forecast(horizon);
            assert!(
                (got - truth).abs() < 1.0,
                "horizon {horizon}: forecast {got} vs truth {truth}"
            );
        }
        assert!((f.trend() - 0.6).abs() < 0.05, "trend {} should approach 0.6", f.trend());
    }

    #[test]
    fn forecasts_never_go_negative() {
        let mut f = EwmaHoltForecaster::new(0.5, 0.5);
        for i in 0..20 {
            // A steep dive toward zero.
            f.observe(f64::from(i), (40.0 - 10.0 * f64::from(i)).max(0.0));
        }
        assert!(f.forecast(50.0) >= 0.0);
        let mut r = RecurrentForecaster::default_profile(40.0);
        for i in 0..20 {
            r.observe(f64::from(i), 0.0);
        }
        assert!(r.forecast(10.0) >= 0.0);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut f = EwmaHoltForecaster::ewma(0.5);
        f.observe(0.0, 10.0);
        f.observe(1.0, f64::NAN);
        f.observe(f64::INFINITY, 20.0);
        assert_eq!(f.samples(), 1);
        assert_eq!(f.level(), 10.0);
        let mut r = RecurrentForecaster::default_profile(40.0);
        r.observe(0.0, f64::NAN);
        assert_eq!(r.samples(), 0);
    }

    #[test]
    fn recurrent_model_learns_a_periodic_load() {
        // A period-2 square wave: the naive last-value forecast is
        // always wrong by the full swing (MAE 30); a converged model
        // must learn the alternation from the input alone.
        let mut f = RecurrentForecaster::default_profile(40.0);
        let wave = |i: u64| if i % 2 == 0 { 5.0 } else { 35.0 };
        for i in 0..1500u64 {
            f.observe(i as f64 * 5.0, wave(i));
        }
        // Score one-step forecasts over a held-out tail.
        let mut model_mae = 0.0;
        let mut naive_mae = 0.0;
        let mut n = 0.0;
        for i in 1500..1700u64 {
            let truth = wave(i);
            model_mae += (f.forecast(5.0) - truth).abs();
            naive_mae += (wave(i - 1) - truth).abs();
            n += 1.0;
            f.observe(i as f64 * 5.0, truth);
        }
        model_mae /= n;
        naive_mae /= n;
        assert!((naive_mae - 30.0).abs() < 1e-9);
        assert!(
            model_mae < 10.0,
            "converged model MAE {model_mae} should be far below naive {naive_mae}"
        );
    }

    #[test]
    fn recurrent_model_is_deterministic() {
        let run = || {
            let mut f = RecurrentForecaster::default_profile(40.0);
            for i in 0..500u64 {
                let x = 20.0 + 15.0 * (i as f64 * 0.37).sin();
                f.observe(i as f64 * 5.0, x);
            }
            (f.forecast(5.0), f.forecast(20.0))
        };
        let (a1, a2) = run();
        let (b1, b2) = run();
        assert_eq!(a1.to_bits(), b1.to_bits());
        assert_eq!(a2.to_bits(), b2.to_bits());
    }

    #[test]
    fn cloned_forecasters_evolve_identically() {
        let mut a = RecurrentForecaster::default_profile(40.0);
        for i in 0..50u64 {
            a.observe(i as f64, (i % 7) as f64);
        }
        let mut b = a.clone();
        for i in 50..120u64 {
            let x = (i % 11) as f64;
            a.observe(i as f64, x);
            b.observe(i as f64, x);
        }
        assert_eq!(a, b);
        assert_eq!(a.forecast(3.0).to_bits(), b.forecast(3.0).to_bits());
    }

    #[test]
    fn interarrival_estimator_defaults_then_measures() {
        let mut est = InterarrivalEstimator::new(7.5, 4);
        assert_eq!(est.mean_interarrival_s(), 7.5, "no data: default");
        est.advance(0.0);
        est.record_event();
        est.record_event();
        est.advance(30.0);
        assert_eq!(est.mean_interarrival_s(), 7.5, "below min_events: default");
        est.record_event();
        est.record_event();
        est.advance(40.0);
        assert_eq!(est.events(), 4);
        assert!((est.mean_interarrival_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn forecaster_trait_objects_work() {
        let mut boxed: Vec<Box<dyn LoadForecaster>> = vec![
            Box::new(EwmaHoltForecaster::default_profile()),
            Box::new(RecurrentForecaster::default_profile(40.0)),
        ];
        for f in &mut boxed {
            for i in 0..10u64 {
                f.observe(i as f64 * 5.0, 12.0);
            }
            assert_eq!(f.samples(), 10);
            assert!(f.forecast(5.0).is_finite());
        }
    }
}
