//! Property-based tests for the CAC substrate invariants.

use facs_cac::policies::{CompleteSharing, FractionalGuardChannel, GuardChannel, ThresholdPolicy};
use facs_cac::{
    AdmissionController, BandwidthLedger, BandwidthUnits, CallId, CallKind, CallRequest,
    MobilityInfo, ServiceClass, ServiceProfile, Verdict,
};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = ServiceClass> {
    prop::sample::select(vec![ServiceClass::Text, ServiceClass::Voice, ServiceClass::Video])
}

fn arb_kind() -> impl Strategy<Value = CallKind> {
    prop::sample::select(vec![CallKind::New, CallKind::Handoff])
}

/// A 40-BU cell pre-loaded to `occupied` via one rigid filler call.
fn cell(occupied: u32) -> BandwidthLedger {
    let mut l = BandwidthLedger::new(BandwidthUnits::new(40));
    if occupied > 0 {
        l.allocate(
            CallId(999),
            ServiceProfile::fixed(ServiceClass::Text, BandwidthUnits::new(occupied)),
        )
        .unwrap();
    }
    l
}

#[derive(Debug, Clone)]
enum Op {
    Allocate(u64, ServiceClass),
    Release(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32, arb_class()).prop_map(|(id, c)| Op::Allocate(id, c)),
            (0u64..32).prop_map(Op::Release),
        ],
        0..200,
    )
}

#[derive(Debug, Clone)]
enum ElasticOp {
    Allocate(u64, ServiceClass, u8),
    Release(u64),
    DegradeToFit(u8),
    Reupgrade,
}

fn arb_elastic_ops() -> impl Strategy<Value = Vec<ElasticOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..32, arb_class(), 0u8..=10).prop_map(|(id, c, f)| ElasticOp::Allocate(id, c, f)),
            (0u64..32).prop_map(ElasticOp::Release),
            (1u8..=20).prop_map(ElasticOp::DegradeToFit),
            proptest::strategy::Just(ElasticOp::Reupgrade),
        ],
        0..200,
    )
}

proptest! {
    /// The ledger conserves bandwidth under any operation sequence:
    /// occupied + free == capacity, and occupied equals the sum of live
    /// allocations.
    #[test]
    fn ledger_conservation(ops in arb_ops(), capacity in 1u32..200) {
        let capacity = BandwidthUnits::new(capacity);
        let mut ledger = BandwidthLedger::new(capacity);
        let mut live: std::collections::HashMap<u64, ServiceClass> = Default::default();
        for op in ops {
            match op {
                Op::Allocate(id, class) => {
                    let ok = ledger.allocate(CallId(id), ServiceProfile::paper(class)).is_ok();
                    let expect_ok = !live.contains_key(&id)
                        && class.demand() <= capacity - live.values().map(|c| c.demand()).sum::<BandwidthUnits>();
                    prop_assert_eq!(ok, expect_ok, "allocate({}, {:?})", id, class);
                    if ok {
                        live.insert(id, class);
                    }
                }
                Op::Release(id) => {
                    let ok = ledger.release(CallId(id)).is_ok();
                    prop_assert_eq!(ok, live.remove(&id).is_some(), "release({})", id);
                }
            }
            // Invariants after every step.
            let model_occupied: BandwidthUnits = live.values().map(|c| c.demand()).sum();
            prop_assert_eq!(ledger.occupied(), model_occupied);
            prop_assert_eq!(ledger.occupied() + ledger.free(), capacity);
            prop_assert_eq!(ledger.active_calls(), live.len());
            let rt = live.values().filter(|c| c.is_real_time()).count() as u32;
            prop_assert_eq!(ledger.counts().real_time(), rt);
            prop_assert_eq!(ledger.counts().non_real_time(), live.len() as u32 - rt);
        }
    }

    /// The elastic ledger keeps every allocation inside its profile band
    /// and conserves bandwidth under arbitrary interleavings of
    /// allocation, release, degradation, and re-upgrade.
    #[test]
    fn elastic_ledger_respects_floors(ops in arb_elastic_ops(), capacity in 10u32..100) {
        let capacity = BandwidthUnits::new(capacity);
        let mut ledger = BandwidthLedger::new(capacity);
        for op in ops {
            match op {
                ElasticOp::Allocate(id, class, floor_tenths) => {
                    let profile = ServiceProfile::elastic(
                        class,
                        class.demand(),
                        f64::from(floor_tenths) / 10.0,
                        60.0,
                    );
                    let _ = ledger.allocate(CallId(id), profile);
                }
                ElasticOp::Release(id) => {
                    let _ = ledger.release(CallId(id));
                }
                ElasticOp::DegradeToFit(demand) => {
                    let demand = BandwidthUnits::new(u32::from(demand));
                    let before_free = ledger.free();
                    match ledger.degrade_to_fit(demand) {
                        Some(_) => prop_assert!(ledger.free() >= demand),
                        None => prop_assert_eq!(ledger.free(), before_free, "failed degrade mutated"),
                    }
                }
                ElasticOp::Reupgrade => {
                    let _ = ledger.reupgrade_on_release();
                }
            }
            // Invariants after every step.
            prop_assert_eq!(ledger.occupied() + ledger.free(), capacity);
            let total: BandwidthUnits = ledger.iter().map(|(_, a)| a.allocated).sum();
            prop_assert_eq!(total, ledger.occupied());
            for (id, alloc) in ledger.iter() {
                prop_assert!(
                    alloc.allocated >= alloc.profile.rb_cost_min
                        && alloc.allocated <= alloc.profile.rb_cost_nominal,
                    "{} left its band: {} not in [{}, {}]",
                    id, alloc.allocated, alloc.profile.rb_cost_min, alloc.profile.rb_cost_nominal
                );
            }
        }
        // After a final re-upgrade with everything settled, no call may
        // stay degraded while free bandwidth remains.
        ledger.reupgrade_on_release();
        if !ledger.free().is_zero() {
            prop_assert!(ledger.iter().all(|(_, a)| !a.is_degraded()));
        }
    }

    /// Complete sharing admits exactly when the demand fits.
    #[test]
    fn complete_sharing_is_fit_test(occupied in 0u32..=40, class in arb_class(), kind in arb_kind()) {
        let req = CallRequest::new(CallId(0), class, kind, MobilityInfo::stationary());
        let mut cs = CompleteSharing::new();
        prop_assert_eq!(
            cs.decide(&req, &cell(occupied)).admits(),
            class.demand().get() + occupied <= 40
        );
    }

    /// Guard channel: a handoff is admitted whenever the equivalent new
    /// call is (handoff priority), and never exceeds capacity.
    #[test]
    fn guard_channel_priority(
        occupied in 0u32..=40,
        guard in 0u32..=40,
        class in arb_class(),
    ) {
        let cell = cell(occupied);
        let mut gc = GuardChannel::new(BandwidthUnits::new(guard));
        let new = CallRequest::new(CallId(0), class, CallKind::New, MobilityInfo::stationary());
        let ho = CallRequest::new(CallId(1), class, CallKind::Handoff, MobilityInfo::stationary());
        let new_ok = gc.decide(&new, &cell).admits();
        let ho_ok = gc.decide(&ho, &cell).admits();
        prop_assert!(!new_ok || ho_ok);
        if ho_ok {
            prop_assert!(occupied + class.demand().get() <= 40);
        }
    }

    /// Fractional guard: over n arrivals at fixed utilization, admitted
    /// count differs from n*p by at most 1 (error-diffusion tightness).
    #[test]
    fn fractional_guard_tracks_probability(
        occupied in 0u32..=40,
        n in 1usize..500,
    ) {
        let mut fg = FractionalGuardChannel::new(0.25, 0.95);
        let cell = cell(occupied);
        let req = CallRequest::new(
            CallId(0), ServiceClass::Text, CallKind::New, MobilityInfo::stationary());
        prop_assume!(cell.can_fit(req.demand()));
        let p = fg.admission_probability(cell.utilization());
        let admitted = (0..n).filter(|_| fg.decide(&req, &cell).admits()).count();
        let expected = p * n as f64;
        prop_assert!((admitted as f64 - expected).abs() <= 1.0 + 1e-9,
            "admitted {} of {} expected {:.2}", admitted, n, expected);
    }

    /// Threshold policy never admits past capacity nor past the class
    /// threshold (+bonus for handoffs).
    #[test]
    fn threshold_policy_respects_limits(
        occupied in 0u32..=40,
        t_text in 0u32..=40,
        t_voice in 0u32..=40,
        t_video in 0u32..=40,
        bonus in 0u32..=10,
        class in arb_class(),
        kind in arb_kind(),
    ) {
        let mut p = ThresholdPolicy::builder(BandwidthUnits::new(40))
            .text(BandwidthUnits::new(t_text))
            .voice(BandwidthUnits::new(t_voice))
            .video(BandwidthUnits::new(t_video))
            .handoff_bonus(BandwidthUnits::new(bonus))
            .build();
        let req = CallRequest::new(CallId(0), class, kind, MobilityInfo::stationary());
        if p.decide(&req, &cell(occupied)).admits() {
            let after = occupied + class.demand().get();
            prop_assert!(after <= 40);
            let mut limit = p.threshold(class).get();
            if kind == CallKind::Handoff {
                limit += bonus;
            }
            prop_assert!(after <= limit.min(40));
        }
    }

    /// Verdict banding is monotone in the score.
    #[test]
    fn verdict_monotone(a in -1.0_f64..1.0, b in -1.0_f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Verdict::from_score(lo) <= Verdict::from_score(hi));
    }

    /// Angle normalization lands in (-180, 180] and preserves the heading
    /// modulo 360.
    #[test]
    fn normalize_angle_range(angle in -1e5_f64..1e5) {
        let n = facs_cac::normalize_angle(angle);
        prop_assert!(n > -180.0 - 1e-9 && n <= 180.0 + 1e-9, "{n}");
        let diff = (angle - n).rem_euclid(360.0);
        prop_assert!(diff.abs() < 1e-6 || (diff - 360.0).abs() < 1e-6, "angle={angle} n={n}");
    }
}
