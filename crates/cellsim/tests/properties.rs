//! Property-based tests over the simulator substrate invariants.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use facs_cac::policies::GuardChannel;
use facs_cac::{BandwidthUnits, BoxedController};
use facs_cellsim::erlang::erlang_b;
use facs_cellsim::events::{EngineEvent, EngineQueue, Event, EventQueue, UserId};
use facs_cellsim::geometry::{HexCoord, HexGrid, Point};
use facs_cellsim::mobility::{MobileState, MobilityModel, Walker};
use facs_cellsim::rng::SimRng;
use facs_cellsim::time::{SimDuration, SimTime};
use facs_cellsim::{HoldingTimes, Simulation, SimulationConfig, TraceDigest, Workload};
use proptest::prelude::*;

/// Reference priority queue over the same content keys the calendar
/// queue orders by.
type ModelHeap = BinaryHeap<Reverse<(SimTime, (u8, u64, u32))>>;

/// The calendar queue's content-defined tie-break key, recomputed here
/// so the reference model cannot drift from the production ordering
/// contract (call-ends before arrivals, then user, then generation).
fn engine_key(event: EngineEvent) -> (u8, u64, u32) {
    match event {
        EngineEvent::CallEnd { user, generation } => (0, user.0, generation),
        EngineEvent::Arrival { user } => (1, user.0, 0),
    }
}

proptest! {
    /// Hex-grid size follows the centered hexagonal numbers 3r(r+1)+1.
    #[test]
    fn grid_size_formula(radius in 0u32..6) {
        let grid = HexGrid::new(radius, 1.0);
        prop_assert_eq!(grid.len() as u32, 3 * radius * (radius + 1) + 1);
    }

    /// Neighbor relations are symmetric and distinct for every grid.
    #[test]
    fn neighbor_symmetry(radius in 0u32..5) {
        let grid = HexGrid::new(radius, 1.0);
        for id in grid.cell_ids() {
            let neighbors = grid.neighbors_of(id);
            prop_assert!(neighbors.len() <= 6);
            for n in &neighbors {
                prop_assert!(*n != id);
                prop_assert!(grid.neighbors_of(*n).contains(&id));
            }
        }
    }

    /// `locate` returns the nearest center: no other cell is strictly
    /// closer to the query point.
    #[test]
    fn locate_is_nearest_center(
        radius in 1u32..4,
        x in -5.0_f64..5.0,
        y in -5.0_f64..5.0,
    ) {
        let grid = HexGrid::new(radius, 1.5);
        let p = Point::new(x, y);
        let located = grid.locate(p);
        let d_located = grid.center_of(located).distance_to(p);
        for id in grid.cell_ids() {
            let d = grid.center_of(id).distance_to(p);
            prop_assert!(d_located <= d + 1e-12, "{id} closer than {located}");
        }
    }

    /// Grid distance is a metric between cells (symmetric, triangle
    /// inequality against the center).
    #[test]
    fn grid_distance_metric(q1 in -5i32..5, r1 in -5i32..5, q2 in -5i32..5, r2 in -5i32..5) {
        let a = HexCoord::new(q1, r1);
        let b = HexCoord::new(q2, r2);
        let center = HexCoord::CENTER;
        prop_assert_eq!(a.grid_distance(b), b.grid_distance(a));
        prop_assert_eq!(a.grid_distance(a), 0);
        prop_assert!(a.grid_distance(b) <= a.grid_distance(center) + center.grid_distance(b));
    }

    /// Bearing/step are consistent: stepping along the bearing to a
    /// target moves directly toward it.
    #[test]
    fn bearing_step_consistency(
        x in -10.0_f64..10.0,
        y in -10.0_f64..10.0,
        tx in -10.0_f64..10.0,
        ty in -10.0_f64..10.0,
    ) {
        let from = Point::new(x, y);
        let to = Point::new(tx, ty);
        let d = from.distance_to(to);
        prop_assume!(d > 1e-6);
        let stepped = from.step(from.bearing_to(to), d);
        prop_assert!(stepped.distance_to(to) < 1e-9 * (1.0 + d));
    }

    /// The event queue is a stable priority queue: pops are sorted by
    /// time, ties in insertion order.
    #[test]
    fn event_queue_stable_order(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(
                SimTime::from_micros(t),
                Event::Arrival { user: UserId(i as u64) },
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((time, event)) = queue.pop() {
            let Event::Arrival { user } = event else { unreachable!() };
            if let Some((lt, lu)) = last {
                prop_assert!(time > lt || (time == lt && user.0 > lu),
                    "order violated: ({time}, {user}) after ({lt}, {lu})");
            }
            last = Some((time, user.0));
        }
    }

    /// The walker conserves speed and moves at most speed × time.
    #[test]
    fn walker_kinematics(speed in 0.1_f64..120.0, steps in 1usize..200, seed in 0u64..50) {
        let mut model = Walker::paper_default();
        let mut state = MobileState::new(Point::ORIGIN, 0.0, speed);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..steps {
            model.step(&mut state, 1.0, &mut rng);
            prop_assert_eq!(state.speed_kmh, speed);
            prop_assert!((-180.0 - 1e9..=180.0).contains(&state.heading_deg));
        }
        let max_path = speed * steps as f64 / 3600.0;
        prop_assert!(Point::ORIGIN.distance_to(state.position) <= max_path + 1e-9);
    }

    /// Observation invariants: distance is the true Euclidean distance,
    /// angle in (-180, 180].
    #[test]
    fn observation_invariants(
        px in -20.0_f64..20.0,
        py in -20.0_f64..20.0,
        heading in -180.0_f64..180.0,
        speed in 0.0_f64..120.0,
    ) {
        let state = MobileState::new(Point::new(px, py), heading, speed);
        let obs = state.observe(Point::ORIGIN);
        let true_distance = (px * px + py * py).sqrt();
        prop_assert!((obs.distance_km - true_distance).abs() < 1e-9);
        prop_assert!(obs.angle_deg > -180.0 - 1e-9 && obs.angle_deg <= 180.0 + 1e-9);
        prop_assert_eq!(obs.speed_kmh, speed);
    }

    /// Erlang-B stays in [0, 1) and is monotone in load.
    #[test]
    fn erlang_b_bounds(servers in 1u32..60, tenths in 1u32..500) {
        let a = f64::from(tenths) / 10.0;
        let b = erlang_b(servers, a);
        prop_assert!((0.0..1.0).contains(&b));
        prop_assert!(erlang_b(servers, a + 0.1) >= b);
        prop_assert!(erlang_b(servers + 1, a) <= b);
    }

    /// The calendar queue pops the exact `(time, key)` sequence a
    /// reference `BinaryHeap` over the same content keys would, across
    /// every internal path: current-bucket incursions (mid-drain
    /// scheduling), ring buckets, same-instant ties on epoch
    /// boundaries, and far-future events that overflow the ring and
    /// migrate back. Also exercises the `pop_within` limit contract.
    #[test]
    fn calendar_queue_matches_reference_heap(
        first in prop::collection::vec((0u8..3, 0u64..40_000_000), 1..80),
        second in prop::collection::vec((0u8..3, 0u64..40_000_000), 0..40),
        drained in 0usize..40,
        limit_us in 1u64..60_000_000,
    ) {
        let epoch = SimDuration::from_micros(5_000_000);
        let mut queue = EngineQueue::with_epoch(epoch);
        let mut model = ModelHeap::new();
        let push = |queue: &mut EngineQueue,
                        model: &mut ModelHeap,
                        shape: u8,
                        raw_us: u64,
                        user: u64| {
            let time = match shape {
                // Same-instant tie pinned to an epoch boundary.
                0 => SimTime::from_micros(raw_us / 5_000_000 * 5_000_000),
                // Far future: past the 4096-bucket ring, into overflow.
                1 => SimTime::from_micros(25_000_000_000 + raw_us),
                // Ordinary near-term event.
                _ => SimTime::from_micros(raw_us),
            };
            let event = if user % 4 == 0 {
                EngineEvent::Arrival { user: UserId(user) }
            } else {
                EngineEvent::CallEnd { user: UserId(user), generation: (user % 3) as u32 }
            };
            queue.schedule(time, event);
            model.push(Reverse((time, engine_key(event))));
        };
        for (i, &(shape, raw)) in first.iter().enumerate() {
            push(&mut queue, &mut model, shape, raw, i as u64);
        }
        // Drain part of the schedule, then keep scheduling: later pushes
        // can land in (or before) the bucket currently draining, the
        // incursion path a plain heap never needs.
        for _ in 0..drained.min(first.len()) {
            let (time, event, _) = queue.pop_within(SimTime::from_micros(u64::MAX)).unwrap();
            let Reverse(expected) = model.pop().unwrap();
            prop_assert_eq!((time, engine_key(event)), expected);
        }
        for (i, &(shape, raw)) in second.iter().enumerate() {
            push(&mut queue, &mut model, shape, raw, (first.len() + i) as u64);
        }
        // Bounded drain: pop_within must stop exactly where the model's
        // next entry crosses the limit...
        let limit = SimTime::from_micros(limit_us);
        while let Some((time, event, _)) = queue.pop_within(limit) {
            prop_assert!(time <= limit);
            let Reverse(expected) = model.pop().unwrap();
            prop_assert_eq!((time, engine_key(event)), expected);
        }
        if let Some(Reverse((next, _))) = model.peek() {
            prop_assert!(*next > limit, "pop_within({limit}) stopped early of {next}");
        }
        // ...and the unbounded drain must finish the identical sequence.
        while let Some((time, event, _)) = queue.pop_within(SimTime::from_micros(u64::MAX)) {
            let Reverse(expected) = model.pop().unwrap();
            prop_assert_eq!((time, engine_key(event)), expected);
        }
        prop_assert!(model.is_empty());
        prop_assert!(queue.is_empty());
    }

    /// Chunk-boundary placement never changes streamed synthesis: for
    /// any chunk size the stream yields exactly the eager `generate`
    /// sequence (same users, same order, same draws), because all
    /// randomness flows through one sequential RNG regardless of where
    /// the chunk boundaries fall.
    #[test]
    fn stream_chunking_never_changes_specs(
        requests in 1usize..120,
        seed in 0u64..1_000,
        chunk in prop::sample::select(vec![1usize, 7, 4096]),
    ) {
        let grid = HexGrid::new(1, 2.0);
        let holding = HoldingTimes::new(30.0);
        let workload = Workload::default();
        let eager = workload.generate(&grid, requests, 120.0, holding, seed);
        let mut stream = workload.stream(&grid, requests, 120.0, holding, seed, chunk);
        let mut streamed = Vec::new();
        let mut user = 0u64;
        while let Some(chunk) = stream.next_chunk() {
            prop_assert_eq!(chunk.first_user, user, "chunks must be contiguous");
            user += chunk.specs.len() as u64;
            streamed.extend(chunk.specs.iter().map(|s| format!("{s:?}")));
            stream.recycle(chunk);
        }
        prop_assert_eq!(streamed.len(), eager.len());
        for (i, (s, e)) in streamed.iter().zip(&eager).enumerate() {
            prop_assert_eq!(s, &format!("{e:?}"), "spec {i} diverged at chunk size {chunk}");
        }
    }
}

/// Builds one guard-channel controller per cell — simple, deterministic,
/// and stateful enough that any event-order divergence shows up in the
/// trace digest.
fn guard_controllers(grid_cells: usize) -> Vec<BoxedController> {
    (0..grid_cells)
        .map(|_| Box::new(GuardChannel::new(BandwidthUnits::new(4))) as BoxedController)
        .collect()
}

/// The full-trace digest (every decision, reallocation, completion, and
/// exit event) is bit-identical across 1–7 shards with the
/// work-stealing pool driver enabled. Worker counts are forced
/// explicitly because auto-sizing resolves to the sequential driver on
/// small CI hosts, which would leave the stealing path uncovered.
#[test]
fn trace_digests_identical_across_shards_and_stealing() {
    let run = |shards: usize, workers: usize| {
        let grid = HexGrid::new(2, 2.0);
        let workload = Workload::default().generate(&grid, 300, 60.0, HoldingTimes::new(12.0), 41);
        let config = SimulationConfig {
            movement_tick_s: 2.0,
            seed: 41,
            shards,
            workers,
            ..SimulationConfig::default()
        };
        let mut sim = Simulation::new(grid, config, guard_controllers(19));
        sim.run_with(workload, TraceDigest::new()).hex()
    };
    let reference = run(1, 1);
    for shards in 1..=7 {
        for workers in [2, 3] {
            assert_eq!(
                reference,
                run(shards, workers),
                "digest diverged at {shards} shards / {workers} workers"
            );
        }
    }
}
