//! Property-based tests over the simulator substrate invariants.

use facs_cellsim::erlang::erlang_b;
use facs_cellsim::events::{Event, EventQueue, UserId};
use facs_cellsim::geometry::{HexCoord, HexGrid, Point};
use facs_cellsim::mobility::{MobileState, MobilityModel, Walker};
use facs_cellsim::rng::SimRng;
use facs_cellsim::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// Hex-grid size follows the centered hexagonal numbers 3r(r+1)+1.
    #[test]
    fn grid_size_formula(radius in 0u32..6) {
        let grid = HexGrid::new(radius, 1.0);
        prop_assert_eq!(grid.len() as u32, 3 * radius * (radius + 1) + 1);
    }

    /// Neighbor relations are symmetric and distinct for every grid.
    #[test]
    fn neighbor_symmetry(radius in 0u32..5) {
        let grid = HexGrid::new(radius, 1.0);
        for id in grid.cell_ids() {
            let neighbors = grid.neighbors_of(id);
            prop_assert!(neighbors.len() <= 6);
            for n in &neighbors {
                prop_assert!(*n != id);
                prop_assert!(grid.neighbors_of(*n).contains(&id));
            }
        }
    }

    /// `locate` returns the nearest center: no other cell is strictly
    /// closer to the query point.
    #[test]
    fn locate_is_nearest_center(
        radius in 1u32..4,
        x in -5.0_f64..5.0,
        y in -5.0_f64..5.0,
    ) {
        let grid = HexGrid::new(radius, 1.5);
        let p = Point::new(x, y);
        let located = grid.locate(p);
        let d_located = grid.center_of(located).distance_to(p);
        for id in grid.cell_ids() {
            let d = grid.center_of(id).distance_to(p);
            prop_assert!(d_located <= d + 1e-12, "{id} closer than {located}");
        }
    }

    /// Grid distance is a metric between cells (symmetric, triangle
    /// inequality against the center).
    #[test]
    fn grid_distance_metric(q1 in -5i32..5, r1 in -5i32..5, q2 in -5i32..5, r2 in -5i32..5) {
        let a = HexCoord::new(q1, r1);
        let b = HexCoord::new(q2, r2);
        let center = HexCoord::CENTER;
        prop_assert_eq!(a.grid_distance(b), b.grid_distance(a));
        prop_assert_eq!(a.grid_distance(a), 0);
        prop_assert!(a.grid_distance(b) <= a.grid_distance(center) + center.grid_distance(b));
    }

    /// Bearing/step are consistent: stepping along the bearing to a
    /// target moves directly toward it.
    #[test]
    fn bearing_step_consistency(
        x in -10.0_f64..10.0,
        y in -10.0_f64..10.0,
        tx in -10.0_f64..10.0,
        ty in -10.0_f64..10.0,
    ) {
        let from = Point::new(x, y);
        let to = Point::new(tx, ty);
        let d = from.distance_to(to);
        prop_assume!(d > 1e-6);
        let stepped = from.step(from.bearing_to(to), d);
        prop_assert!(stepped.distance_to(to) < 1e-9 * (1.0 + d));
    }

    /// The event queue is a stable priority queue: pops are sorted by
    /// time, ties in insertion order.
    #[test]
    fn event_queue_stable_order(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.schedule(
                SimTime::from_micros(t),
                Event::Arrival { user: UserId(i as u64) },
            );
        }
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((time, event)) = queue.pop() {
            let Event::Arrival { user } = event else { unreachable!() };
            if let Some((lt, lu)) = last {
                prop_assert!(time > lt || (time == lt && user.0 > lu),
                    "order violated: ({time}, {user}) after ({lt}, {lu})");
            }
            last = Some((time, user.0));
        }
    }

    /// The walker conserves speed and moves at most speed × time.
    #[test]
    fn walker_kinematics(speed in 0.1_f64..120.0, steps in 1usize..200, seed in 0u64..50) {
        let mut model = Walker::paper_default();
        let mut state = MobileState::new(Point::ORIGIN, 0.0, speed);
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..steps {
            model.step(&mut state, 1.0, &mut rng);
            prop_assert_eq!(state.speed_kmh, speed);
            prop_assert!((-180.0 - 1e9..=180.0).contains(&state.heading_deg));
        }
        let max_path = speed * steps as f64 / 3600.0;
        prop_assert!(Point::ORIGIN.distance_to(state.position) <= max_path + 1e-9);
    }

    /// Observation invariants: distance is the true Euclidean distance,
    /// angle in (-180, 180].
    #[test]
    fn observation_invariants(
        px in -20.0_f64..20.0,
        py in -20.0_f64..20.0,
        heading in -180.0_f64..180.0,
        speed in 0.0_f64..120.0,
    ) {
        let state = MobileState::new(Point::new(px, py), heading, speed);
        let obs = state.observe(Point::ORIGIN);
        let true_distance = (px * px + py * py).sqrt();
        prop_assert!((obs.distance_km - true_distance).abs() < 1e-9);
        prop_assert!(obs.angle_deg > -180.0 - 1e-9 && obs.angle_deg <= 180.0 + 1e-9);
        prop_assert_eq!(obs.speed_kmh, speed);
    }

    /// Erlang-B stays in [0, 1) and is monotone in load.
    #[test]
    fn erlang_b_bounds(servers in 1u32..60, tenths in 1u32..500) {
        let a = f64::from(tenths) / 10.0;
        let b = erlang_b(servers, a);
        prop_assert!((0.0..1.0).contains(&b));
        prop_assert!(erlang_b(servers, a + 0.1) >= b);
        prop_assert!(erlang_b(servers + 1, a) <= b);
    }
}
