//! # facs-cellsim — a discrete-event wireless cellular-network simulator
//!
//! The evaluation substrate of the FACS reproduction. The paper evaluates
//! its admission controller purely in simulation; this crate rebuilds that
//! simulator from the parameters published in §4: hexagonal cells with
//! 40-BU base stations, users with GPS-observable mobility (speed 0–120
//! km/h, direction −180…180°, distance 0–10 km), a 60/30/10 %
//! text/voice/video mix with 1/5/10 BU requests, Poisson arrivals and
//! exponential holding times.
//!
//! ## Architecture
//!
//! * [`geometry`] — hexagonal cell grid, planar points, locating users;
//! * [`mobility`] — walker / random-waypoint / Gauss–Markov models plus
//!   the GPS observation (`(S, A, D)` triple) FLC1 consumes;
//! * [`traffic`] — traffic mix, Poisson arrivals, holding times;
//! * [`events`] — deterministic event queues (the legacy insertion-order
//!   queue and the shard-independent engine queue);
//! * [`engine`] — the sharded deterministic simulation kernel (cells,
//!   users, handoffs, epoch barriers); [`network`] is its compat facade;
//! * [`workload`] — declarative workload descriptions and the named
//!   scenario catalog (hotspot, flash crowd, rush hour, …);
//! * [`fuzz`] — seeded sampling of arbitrary valid workloads with
//!   shrink-on-failure to a minimal reproducing case;
//! * [`scenario`] — the paper's experiment configurations and sweeps;
//! * [`metrics`] — the streaming [`metrics::MetricsSink`] interface,
//!   acceptance/dropping/utilization counters, per-cell load series;
//! * [`validate`] — the invariant-checking sink and the order-insensitive
//!   golden-trace digest behind `--exp validate` / `--exp golden`;
//! * [`rng`] / [`time`] — seeded randomness and integer sim-time.
//!
//! ## Example
//!
//! ```
//! use facs_cac::policies::CompleteSharing;
//! use facs_cac::BoxedController;
//! use facs_cellsim::prelude::*;
//!
//! // Fig. 7-style scenario: 50 requests at a fixed 30 km/h.
//! let config = ScenarioConfig {
//!     requests: 50,
//!     speed: SpeedSpec::Fixed(30.0),
//!     replications: 1,
//!     ..Default::default()
//! };
//! let acceptance = config.acceptance(&|grid: &HexGrid| {
//!     grid.cell_ids()
//!         .map(|_| Box::new(CompleteSharing::new()) as BoxedController)
//!         .collect()
//! });
//! assert!(acceptance > 0.0 && acceptance <= 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod erlang;
pub mod events;
pub mod fuzz;
pub mod geometry;
pub mod metrics;
pub mod mobility;
pub mod network;
pub mod rng;
pub mod scenario;
pub mod stats;
pub mod time;
pub mod traffic;
pub mod validate;
pub mod workload;

pub use engine::{MobilityKind, Simulation, SimulationConfig, UserSpec};
pub use events::{EngineEvent, EngineQueue, Event, EventQueue, UserId};
pub use fuzz::{
    case_complexity, complexity, shrink, shrink_candidates, ControllerSlot, FuzzCase,
    WorkloadFuzzer,
};
pub use geometry::{HexCoord, HexGrid, Point};
pub use metrics::{
    CellLoadSeries, ClassCounters, Metrics, MetricsSink, RegionRollup, RegionRollupSink, Series,
};
pub use mobility::{GaussMarkov, MobileState, MobilityModel, RandomWaypoint, StraightLine, Walker};
pub use rng::SimRng;
pub use scenario::{
    acceptance_curve, offered_load_fraction, paper_request_counts, AngleSpec, ControllerBuilder,
    DistanceSpec, MobilityChoice, ScenarioConfig, SpawnSpec, SpeedSpec,
};
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use traffic::{HoldingTimes, PoissonArrivals, TrafficMix};
pub use validate::{InvariantSink, TraceDigest};
pub use workload::{
    catalog, catalog_names, planet_scale, scenario_by_name, ArrivalPattern, CatalogEntry, Workload,
    WorkloadChunk, WorkloadStream,
};

/// Commonly used items, for glob import in applications and examples.
pub mod prelude {
    pub use crate::engine::{MobilityKind, Simulation, SimulationConfig, UserSpec};
    pub use crate::fuzz::{ControllerSlot, FuzzCase, WorkloadFuzzer};
    pub use crate::geometry::{HexGrid, Point};
    pub use crate::metrics::{CellLoadSeries, Metrics, MetricsSink, RegionRollupSink, Series};
    pub use crate::mobility::{MobileState, MobilityModel, Walker};
    pub use crate::rng::SimRng;
    pub use crate::scenario::{
        acceptance_curve, paper_request_counts, AngleSpec, ControllerBuilder, DistanceSpec,
        MobilityChoice, ScenarioConfig, SpawnSpec, SpeedSpec,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::traffic::{HoldingTimes, PoissonArrivals, TrafficMix};
    pub use crate::validate::{InvariantSink, TraceDigest};
    pub use crate::workload::{
        catalog, scenario_by_name, ArrivalPattern, CatalogEntry, Workload, WorkloadStream,
    };
}
