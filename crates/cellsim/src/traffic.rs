//! Traffic generation: class mix, arrival processes, holding times.

use facs_cac::ServiceClass;
use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// The share of each service class in offered traffic.
///
/// The paper's mix (§4): *"The required bandwidth for voice, video and
/// text was 30%, 10%, and 60%, respectively."*
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// Fraction of text calls.
    pub text: f64,
    /// Fraction of voice calls.
    pub voice: f64,
    /// Fraction of video calls.
    pub video: f64,
}

impl TrafficMix {
    /// The paper's 60 / 30 / 10 % text/voice/video mix.
    pub const PAPER: TrafficMix = TrafficMix { text: 0.6, voice: 0.3, video: 0.1 };

    /// Creates a mix; the weights need not sum to 1 (they are used as
    /// relative weights) but must be non-negative with a positive sum.
    ///
    /// # Panics
    ///
    /// Panics on negative weights or an all-zero mix.
    #[must_use]
    pub fn new(text: f64, voice: f64, video: f64) -> Self {
        assert!(
            text >= 0.0 && voice >= 0.0 && video >= 0.0,
            "negative traffic weight ({text}, {voice}, {video})"
        );
        assert!(text + voice + video > 0.0, "all-zero traffic mix");
        Self { text, voice, video }
    }

    /// A single-class mix (useful in controlled experiments).
    #[must_use]
    pub fn only(class: ServiceClass) -> Self {
        match class {
            ServiceClass::Text => Self { text: 1.0, voice: 0.0, video: 0.0 },
            ServiceClass::Voice => Self { text: 0.0, voice: 1.0, video: 0.0 },
            ServiceClass::Video => Self { text: 0.0, voice: 0.0, video: 1.0 },
        }
    }

    /// Samples a class according to the mix.
    #[must_use]
    pub fn sample(&self, rng: &mut SimRng) -> ServiceClass {
        let idx = rng.weighted_index(&[self.text, self.voice, self.video]);
        ServiceClass::ALL[idx]
    }

    /// The expected bandwidth (BU) of one call drawn from this mix.
    #[must_use]
    pub fn expected_demand_bu(&self) -> f64 {
        let total = self.text + self.voice + self.video;
        (self.text * 1.0 + self.voice * 5.0 + self.video * 10.0) / total
    }
}

impl Default for TrafficMix {
    fn default() -> Self {
        Self::PAPER
    }
}

/// Poisson arrival process: exponential inter-arrival times with a fixed
/// rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    rate_per_s: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given mean arrival rate (calls/second).
    ///
    /// # Panics
    ///
    /// Panics unless the rate is finite and positive.
    #[must_use]
    pub fn new(rate_per_s: f64) -> Self {
        assert!(rate_per_s.is_finite() && rate_per_s > 0.0, "bad rate {rate_per_s}");
        Self { rate_per_s }
    }

    /// A process delivering `count` expected arrivals over `window_s`
    /// seconds — how the paper's "number of requesting connections" maps
    /// onto a rate.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `window_s` is not positive.
    #[must_use]
    pub fn over_window(count: usize, window_s: f64) -> Self {
        assert!(count > 0, "zero arrivals");
        assert!(window_s.is_finite() && window_s > 0.0, "bad window {window_s}");
        Self::new(count as f64 / window_s)
    }

    /// Mean rate in calls/second.
    #[must_use]
    pub fn rate_per_s(&self) -> f64 {
        self.rate_per_s
    }

    /// Draws the next inter-arrival gap, in seconds.
    #[must_use]
    pub fn next_gap_s(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(1.0 / self.rate_per_s)
    }

    /// Generates exactly `count` arrival instants (seconds, ascending) of
    /// a conditioned Poisson process: given `count` arrivals in
    /// `[0, window_s]`, the instants are i.i.d. uniform — so we sample
    /// uniforms and sort.
    #[must_use]
    pub fn arrival_times(count: usize, window_s: f64, rng: &mut SimRng) -> Vec<f64> {
        let mut times: Vec<f64> =
            (0..count).map(|_| rng.uniform_range(0.0, window_s.max(f64::MIN_POSITIVE))).collect();
        times.sort_by(f64::total_cmp);
        times
    }
}

/// Exponentially distributed call holding times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoldingTimes {
    mean_s: f64,
}

impl HoldingTimes {
    /// Creates a distribution with the given mean (seconds).
    ///
    /// # Panics
    ///
    /// Panics unless the mean is finite and positive.
    #[must_use]
    pub fn new(mean_s: f64) -> Self {
        assert!(mean_s.is_finite() && mean_s > 0.0, "bad holding mean {mean_s}");
        Self { mean_s }
    }

    /// Mean holding time in seconds.
    #[must_use]
    pub fn mean_s(&self) -> f64 {
        self.mean_s
    }

    /// Draws one holding time, in seconds.
    #[must_use]
    pub fn sample_s(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(self.mean_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_proportions() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            match TrafficMix::PAPER.sample(&mut rng) {
                ServiceClass::Text => counts[0] += 1,
                ServiceClass::Voice => counts[1] += 1,
                ServiceClass::Video => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.6).abs() < 0.02);
        assert!((counts[1] as f64 / 30_000.0 - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn expected_demand_of_paper_mix() {
        // 0.6*1 + 0.3*5 + 0.1*10 = 3.1 BU.
        assert!((TrafficMix::PAPER.expected_demand_bu() - 3.1).abs() < 1e-12);
    }

    #[test]
    fn single_class_mix() {
        let mut rng = SimRng::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(TrafficMix::only(ServiceClass::Video).sample(&mut rng), ServiceClass::Video);
        }
    }

    #[test]
    #[should_panic(expected = "all-zero traffic mix")]
    fn rejects_zero_mix() {
        let _ = TrafficMix::new(0.0, 0.0, 0.0);
    }

    #[test]
    fn poisson_gap_mean() {
        let arrivals = PoissonArrivals::new(2.0); // 2 calls/s => mean gap 0.5 s
        let mut rng = SimRng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| arrivals.next_gap_s(&mut rng)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn over_window_rate() {
        let arrivals = PoissonArrivals::over_window(100, 50.0);
        assert!((arrivals.rate_per_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_times_are_sorted_in_window() {
        let mut rng = SimRng::seed_from_u64(8);
        let times = PoissonArrivals::arrival_times(500, 100.0, &mut rng);
        assert_eq!(times.len(), 500);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| (0.0..100.0).contains(&t)));
    }

    #[test]
    fn holding_time_mean_converges() {
        let holding = HoldingTimes::new(120.0);
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| holding.sample_s(&mut rng)).sum();
        assert!((sum / n as f64 - 120.0).abs() < 3.0);
    }

    #[test]
    #[should_panic(expected = "bad rate")]
    fn rejects_bad_rate() {
        let _ = PoissonArrivals::new(-1.0);
    }
}
