//! One shard of the simulation world: a group of cells (ledger +
//! controller each), the users whose calls those cells currently serve,
//! and a private event queue.
//!
//! A shard processes an entire epoch — all cell-local events up to the
//! next movement barrier — without communicating; cross-shard traffic
//! (handoffs of in-call users into cells owned by another shard) is
//! exchanged only at the barrier. See the module docs of
//! [`crate::engine`] for why this is deterministic.

use facs_cac::{
    AdmissionPlan, BandwidthLedger, BandwidthUnits, BoxedController, CallId, CallKind, CallRequest,
    CellId, ServiceProfile,
};

use crate::events::{EngineEvent, EngineQueue, UserId};
use crate::geometry::{HexGrid, Point};
use crate::metrics::{DecisionRecord, MetricsSink};
use crate::mobility::{MobileState, MobilityModel};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::{MobilityKind, SimulationConfig, UserSpec};

/// One cell's state plus its utilization bookkeeping.
///
/// The occupied-bandwidth integral is accumulated **per cell**, advanced
/// only when this cell's occupancy changes (and flushed once at the end
/// of the run). Because a cell's event sequence is shard-independent,
/// the exact float-op order of its integral is too — which is what makes
/// `mean_utilization` bit-identical across shard counts.
pub(crate) struct CellUnit {
    pub(crate) id: CellId,
    pub(crate) ledger: BandwidthLedger,
    pub(crate) controller: BoxedController,
    pub(crate) center: Point,
    occupied_integral_bu_s: f64,
    last_change: SimTime,
    /// Barrier time of the last `observe` pulse delivered to this cell's
    /// controller, used to `debug_assert!` the ordering contract
    /// documented on [`AdmissionController::observe`]: every admission at
    /// time `t` precedes the epoch-`t` pulse, and every pulse precedes
    /// all strictly-later admissions.
    ///
    /// [`AdmissionController::observe`]: facs_cac::AdmissionController::observe
    last_observed_s: f64,
}

impl CellUnit {
    pub(crate) fn new(
        id: CellId,
        ledger: BandwidthLedger,
        controller: BoxedController,
        center: Point,
    ) -> Self {
        Self {
            id,
            ledger,
            controller,
            center,
            occupied_integral_bu_s: 0.0,
            last_change: SimTime::ZERO,
            last_observed_s: f64::NEG_INFINITY,
        }
    }

    /// Integrates the current occupancy up to `now`. Must be called
    /// before every occupancy change and once at the end of the run.
    fn integrate_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_secs_f64();
        if dt > 0.0 {
            self.occupied_integral_bu_s += f64::from(self.ledger.occupied().get()) * dt;
            self.last_change = now;
        }
    }

    /// Final flush: returns `(occupied BU·s, capacity BU·s)` over `[0, end]`.
    pub(crate) fn finish(&mut self, end: SimTime) -> (f64, f64) {
        self.integrate_to(end);
        let capacity_bu_s = f64::from(self.ledger.capacity().get()) * end.as_secs_f64();
        (self.occupied_integral_bu_s, capacity_bu_s)
    }
}

/// A user with an active call, registered with the shard owning the
/// serving cell. The record travels whole (including the private RNG
/// stream, so its position is preserved) when the call hands off to a
/// cell on another shard.
struct ActiveUser {
    user: UserId,
    state: MobileState,
    mobility: MobilityKind,
    profile: ServiceProfile,
    rng: SimRng,
    cell: CellId,
    call: CallId,
    end_time: SimTime,
    generation: u32,
}

/// Arena of in-call users: a slab of slots with a free list. Call-end
/// events carry their slot as the queue tag, so dispatch is a direct
/// index instead of a map lookup; a slot reused by a later call is
/// caught by the `(user, generation)` check every call-end performs
/// anyway (the event is then stale, exactly as under the map).
///
/// Slot numbers are *never* part of simulation semantics — iteration
/// for the movement phase sorts by user id first — so the free-list
/// order (which differs across shard layouts) cannot leak into results.
#[derive(Default)]
struct ActiveArena {
    slots: Vec<Option<ActiveUser>>,
    free: Vec<u32>,
    live: usize,
}

impl ActiveArena {
    fn insert(&mut self, record: ActiveUser) -> u32 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = Some(record);
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("more than u32::MAX active calls");
            self.slots.push(Some(record));
            slot
        }
    }

    fn get(&self, slot: u32) -> Option<&ActiveUser> {
        self.slots.get(slot as usize).and_then(Option::as_ref)
    }

    fn remove(&mut self, slot: u32) -> ActiveUser {
        let record = self.slots[slot as usize].take().expect("removed an empty arena slot");
        self.free.push(slot);
        self.live -= 1;
        record
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// A call crossing into a cell owned by (possibly) another shard,
/// exchanged at an epoch barrier. The old cell's bandwidth is already
/// released; the receiving shard decides admission at the target cell.
pub(crate) struct Migrant {
    pub(crate) user: UserId,
    pub(crate) to: CellId,
    state: MobileState,
    mobility: MobilityKind,
    profile: ServiceProfile,
    rng: SimRng,
    call: CallId,
    end_time: SimTime,
    generation: u32,
}

/// Derives a user's private mobility RNG stream from the simulation
/// seed. Streams depend only on `(seed, user)` — never on which shard
/// hosts the user — so any partition sees identical randomness.
fn user_rng(seed: u64, user: u64) -> SimRng {
    SimRng::seed_from_u64(seed ^ user.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A streamed arrival waiting to be dispatched: the routed home cell
/// plus the owned spec (streamed runs have no shared workload slab to
/// reference). Pushed in global user order with nondecreasing times, so
/// FIFO order *is* the content-defined `(time, user)` dispatch order.
pub(crate) struct PendingArrival {
    time_us: u64,
    user: u64,
    cell: CellId,
    spec: UserSpec,
}

pub(crate) struct Shard<'a, S> {
    index: usize,
    shard_count: usize,
    grid: &'a HexGrid,
    config: SimulationConfig,
    /// The owned cells, ascending id (ids ≡ `index` mod `shard_count`).
    pub(crate) cells: Vec<CellUnit>,
    queue: EngineQueue,
    /// The run's full workload, shared read-only across shards; this
    /// shard's arrivals reference it by index, so the (large) specs are
    /// never copied during routing.
    specs: &'a [UserSpec],
    /// Routed arrivals: `(covering cell, workload index)` — the cell is
    /// located once by the router, not re-derived per event. The
    /// workload index doubles as the user id.
    arrivals: Vec<(CellId, u32)>,
    /// Dispatch order over `arrivals`: `(time in µs, slot)` sorted
    /// ascending by [`seal_arrivals`](Self::seal_arrivals) and consumed
    /// by `arrival_cursor`. Slot order equals user-id order, so the sort
    /// key reproduces the content-defined `(time, user)` event order the
    /// queue would impose — arrivals never touch the calendar queue at
    /// all, which carries only call-ends.
    arrival_order: Vec<(u64, u32)>,
    arrival_cursor: usize,
    /// Streamed arrivals delivered by the feeder one epoch window at a
    /// time (plus chunk-granularity overshoot). Mutually exclusive with
    /// the eager slab above: a run populates one or the other.
    pending: std::collections::VecDeque<PendingArrival>,
    active: ActiveArena,
    /// Scratch for the movement phase's `(user, slot)` sort, reused
    /// across epochs.
    movers: Vec<(u64, u32)>,
    pub(crate) sink: S,
}

impl<'a, S: MetricsSink> Shard<'a, S> {
    pub(crate) fn new(
        index: usize,
        shard_count: usize,
        grid: &'a HexGrid,
        specs: &'a [UserSpec],
        config: SimulationConfig,
        cells: Vec<CellUnit>,
        sink: S,
    ) -> Self {
        Self {
            index,
            shard_count,
            grid,
            config,
            cells,
            // Bucket the calendar at the epoch cadence so one epoch's
            // drain range maps onto exactly one bucket.
            queue: EngineQueue::with_epoch(SimDuration::from_secs_f64(config.movement_tick_s)),
            specs,
            arrivals: Vec::new(),
            arrival_order: Vec::new(),
            arrival_cursor: 0,
            pending: std::collections::VecDeque::new(),
            active: ActiveArena::default(),
            movers: Vec::new(),
            sink,
        }
    }

    /// Queues one workload user whose starting position (covered by
    /// `home`, as located by the router) this shard owns.
    /// Pre-sizes the arrival slab so routing appends without
    /// reallocating (each `UserSpec` is large enough that doubling-growth
    /// memcpys dominate the routing pass otherwise).
    pub(crate) fn reserve_arrivals(&mut self, n: usize) {
        self.arrivals.reserve_exact(n);
        self.arrival_order.reserve_exact(n);
    }

    pub(crate) fn push_arrival(&mut self, widx: u32, home: CellId, arrival_s: f64) {
        let slot = u32::try_from(self.arrivals.len()).expect("more than u32::MAX pending arrivals");
        let time = SimTime::from_secs_f64(arrival_s);
        self.arrival_order.push((time.as_micros(), slot));
        self.arrivals.push((home, widx));
    }

    /// Sorts the arrival slab into dispatch order. Must be called once
    /// after routing, before the first `run_events`.
    pub(crate) fn seal_arrivals(&mut self) {
        // Keys are unique (the slot breaks ties), and equal-time entries
        // order by slot == user id, matching the queue's content key.
        self.arrival_order.sort_unstable();
    }

    /// Delivers one streamed arrival. The feeder pushes in global user
    /// order with nondecreasing timestamps, so the FIFO queue needs no
    /// sort — its order already matches the eager slab's sorted
    /// `(time, user)` dispatch order.
    pub(crate) fn push_pending(&mut self, time_us: u64, user: u64, cell: CellId, spec: UserSpec) {
        debug_assert!(
            self.pending.back().map_or(true, |p| (p.time_us, p.user) < (time_us, user)),
            "streamed arrivals must be pushed in (time, user) order"
        );
        self.pending.push_back(PendingArrival { time_us, user, cell, spec });
    }

    /// `true` when the shard has nothing left to do.
    pub(crate) fn idle(&self) -> bool {
        self.arrival_cursor == self.arrival_order.len()
            && self.pending.is_empty()
            && self.queue.is_empty()
            && self.active.is_empty()
    }

    fn cell_mut(&mut self, id: CellId) -> &mut CellUnit {
        let slot = id.0 as usize / self.shard_count;
        let cell = &mut self.cells[slot];
        debug_assert_eq!(cell.id, id, "cell partition arithmetic broke");
        cell
    }

    fn cell(&self, id: CellId) -> &CellUnit {
        let slot = id.0 as usize / self.shard_count;
        let cell = &self.cells[slot];
        debug_assert_eq!(cell.id, id, "cell partition arithmetic broke");
        cell
    }

    /// Consults the controller, then applies its [`AdmissionPlan`]
    /// against the ledger; both must agree before the call is admitted.
    /// A plan the ledger can no longer honor (allocation stopped
    /// fitting, a squeeze went stale) is downgraded to a denial without
    /// mutating anything. Returns the granted bandwidth on admission.
    fn try_admit(
        &mut self,
        now: SimTime,
        cell_id: CellId,
        request: &CallRequest,
    ) -> Option<BandwidthUnits> {
        let cell = self.cell_mut(cell_id);
        // Ordering contract (see `AdmissionController::observe`): every
        // admission of an epoch fires before that epoch's observe pulse,
        // so a decide can never run at or before the last pulse time.
        debug_assert!(
            now.as_secs_f64() > cell.last_observed_s,
            "decide at t={} not after last observe pulse at t={}",
            now.as_secs_f64(),
            cell.last_observed_s
        );
        let plan = cell.controller.decide(request, &cell.ledger);
        let (granted, squeezed) = match plan {
            AdmissionPlan::Reject(_) => return None,
            AdmissionPlan::Admit(_) => {
                cell.integrate_to(now);
                if cell.ledger.allocate(request.id, request.profile).is_err() {
                    return None;
                }
                (request.profile.rb_cost_nominal, Vec::new())
            }
            AdmissionPlan::AdmitDegraded { squeezes, grant, .. } => {
                cell.integrate_to(now);
                if cell
                    .ledger
                    .admit_with_plan(request.id, request.profile, grant, &squeezes)
                    .is_err()
                {
                    return None;
                }
                let squeezed: Vec<(CallId, BandwidthUnits, BandwidthUnits)> = squeezes
                    .iter()
                    .map(|s| {
                        let floor = cell
                            .ledger
                            .profile_of(s.call)
                            .map_or(BandwidthUnits::ZERO, |p| p.rb_cost_min);
                        (s.call, s.to, floor)
                    })
                    .collect();
                (grant, squeezed)
            }
        };
        let after = cell.ledger.snapshot();
        cell.controller.on_admitted(request, &after);
        for (call, to, floor) in squeezed {
            self.sink.on_reallocation(now, cell_id, UserId(call.0), to, floor);
        }
        Some(granted)
    }

    fn release(&mut self, now: SimTime, cell_id: CellId, call: CallId) {
        let cell = self.cell_mut(cell_id);
        cell.integrate_to(now);
        let profile = cell
            .ledger
            .release(call)
            .expect("release of a call the ledger does not hold is a simulator bug");
        // Freed bandwidth flows back to degraded calls before anything
        // else can claim it (fair-share re-upgrade, deepest deficit
        // first).
        let upgrades: Vec<(CallId, BandwidthUnits, BandwidthUnits)> = cell
            .ledger
            .reupgrade_on_release()
            .into_iter()
            .map(|r| {
                let floor =
                    cell.ledger.profile_of(r.call).map_or(BandwidthUnits::ZERO, |p| p.rb_cost_min);
                (r.call, r.to, floor)
            })
            .collect();
        let after = cell.ledger.snapshot();
        cell.controller.on_released(call, profile.class, &after);
        for (upgraded, to, floor) in upgrades {
            self.sink.on_reallocation(now, cell_id, UserId(upgraded.0), to, floor);
        }
    }

    /// Phase A: processes every event with `time <= limit` — arrivals
    /// streamed from the sorted slab, call-ends drained from the
    /// calendar queue, merged on the content-defined order. A call-end
    /// at the same instant as an arrival dispatches first (its event
    /// rank is lower), so the queue is drained up to and including each
    /// arrival's timestamp before the arrival fires.
    pub(crate) fn run_events(&mut self, limit: SimTime) {
        loop {
            // The next arrival instant, whichever backing holds it: the
            // eager sorted slab or the streamed FIFO (never both).
            let next_arrival = self
                .arrival_order
                .get(self.arrival_cursor)
                .map(|&(t, _)| t)
                .or_else(|| self.pending.front().map(|p| p.time_us));
            if !self.queue.is_empty() {
                let bound = next_arrival.map_or(limit, |t| SimTime::from_micros(t).min(limit));
                while let Some((now, event, tag)) = self.queue.pop_within(bound) {
                    match event {
                        EngineEvent::CallEnd { user, generation } => {
                            self.handle_call_end(now, user, generation, tag);
                        }
                        EngineEvent::Arrival { .. } => {
                            unreachable!("arrivals stream from the sorted slab, never the queue")
                        }
                    }
                }
            }
            match next_arrival {
                Some(t) if SimTime::from_micros(t) <= limit => {
                    let now = SimTime::from_micros(t);
                    if let Some(&(_, slot)) = self.arrival_order.get(self.arrival_cursor) {
                        self.arrival_cursor += 1;
                        self.handle_arrival(now, slot);
                        if self.arrival_cursor == self.arrival_order.len()
                            && !self.arrival_order.is_empty()
                        {
                            // The slab is fully consumed: free the routed
                            // arrivals and their dispatch order instead of
                            // holding dead bookkeeping for the rest of the
                            // run (long tails otherwise pin one `(CellId,
                            // u32)` + `(u64, u32)` pair per user).
                            self.arrivals = Vec::new();
                            self.arrival_order = Vec::new();
                            self.arrival_cursor = 0;
                        }
                    } else {
                        let p = self.pending.pop_front().expect("peeked streamed arrival vanished");
                        self.dispatch_arrival(now, UserId(p.user), p.cell, &p.spec);
                    }
                }
                _ => break,
            }
        }
    }

    fn handle_arrival(&mut self, now: SimTime, slot: u32) {
        let (cell_id, widx) = self.arrivals[slot as usize];
        let user = UserId(u64::from(widx));
        let specs = self.specs;
        self.dispatch_arrival(now, user, cell_id, &specs[widx as usize]);
    }

    /// Admission of one new-call arrival, shared by the eager and
    /// streamed backings. `spec` lives outside `self`'s mutable state
    /// (the shared slab or a just-popped pending record).
    fn dispatch_arrival(&mut self, now: SimTime, user: UserId, cell_id: CellId, spec: &UserSpec) {
        let (profile, start) = (spec.profile, spec.start);
        // Saturated cell or off-map request: denied without building the
        // full request — `fast_reject` is a conservative proof that
        // `decide` could not admit, so the record is identical.
        let cell = self.cell(cell_id);
        if cell.controller.fast_reject(&profile, &cell.ledger)
            || self.grid.out_of_coverage(start.position)
        {
            self.sink.on_decision(
                now,
                cell_id,
                &DecisionRecord::denied(user, profile, CallKind::New),
            );
            return;
        }
        let call = CallId(user.0);
        let request =
            CallRequest::new(call, profile.class, CallKind::New, start.observe(cell.center))
                .with_profile(profile);
        let granted = self.try_admit(now, cell_id, &request);
        let record = match granted {
            Some(allocated) => DecisionRecord::admitted(user, profile, CallKind::New, allocated),
            None => DecisionRecord::denied(user, profile, CallKind::New),
        };
        self.sink.on_decision(now, cell_id, &record);
        if granted.is_some() {
            let end_time = now + SimDuration::from_secs_f64(spec.holding_s);
            let slot = self.active.insert(ActiveUser {
                user,
                state: start,
                mobility: spec.mobility.clone(),
                profile,
                rng: user_rng(self.config.seed, user.0),
                cell: cell_id,
                call,
                end_time,
                generation: 0,
            });
            self.queue.schedule_tagged(
                end_time,
                EngineEvent::CallEnd { user, generation: 0 },
                slot,
            );
        }
    }

    fn handle_call_end(&mut self, now: SimTime, user: UserId, generation: u32, slot: u32) {
        // Stale end events — the call handed off (possibly to another
        // shard) after this was scheduled, or was dropped/exited — carry
        // an outdated generation or reference an absent user. The slot
        // may since have been reused by an unrelated call; the
        // `(user, generation)` check rejects that case identically.
        let Some(active) = self.active.get(slot) else { return };
        if active.user != user || active.generation != generation {
            return;
        }
        let (cell, call) = (active.cell, active.call);
        self.release(now, cell, call);
        let _ = self.active.remove(slot);
        self.sink.on_completion(now, cell, user);
    }

    /// Barrier phase 1: advances every in-call user by one movement tick
    /// (each on its own RNG stream), handles coverage exits locally, and
    /// returns the calls that crossed into another cell as migrants
    /// routed to `(target shard, migrant)`. The old cell's bandwidth is
    /// released here, before any admission anywhere is attempted.
    pub(crate) fn run_movement(&mut self, now: SimTime) -> Vec<(usize, Migrant)> {
        enum Motion {
            Exit,
            Cross(CellId),
        }
        let dt = self.config.movement_tick_s;
        // Arena slots carry no deterministic order, so collect the live
        // users and sort by user id: every step, RNG draw, and sink call
        // below then happens in exactly the order the old ascending-id
        // map iteration produced, on any shard layout.
        let mut movers = std::mem::take(&mut self.movers);
        movers.clear();
        movers.extend(
            self.active
                .slots
                .iter()
                .enumerate()
                .filter_map(|(slot, u)| u.as_ref().map(|u| (u.user.0, slot as u32))),
        );
        movers.sort_unstable();
        let mut actions: Vec<(u32, Motion)> = Vec::new();
        for &(_, slot) in &movers {
            let user = self.active.slots[slot as usize].as_mut().expect("live slot vanished");
            let mut state = user.state;
            user.mobility.step(&mut state, dt, &mut user.rng);
            user.state = state;
            self.sink.on_mobility_step(now, user.cell);
            if self.grid.out_of_coverage(state.position) {
                actions.push((slot, Motion::Exit));
            } else {
                let here = self.grid.locate(state.position);
                if here != user.cell {
                    actions.push((slot, Motion::Cross(here)));
                }
            }
        }
        self.movers = movers;
        let mut out = Vec::new();
        // Still ascending user order: each cell sees its departures in
        // the same order a single-shard run would apply.
        for (slot, motion) in actions {
            let user = self.active.remove(slot);
            self.release(now, user.cell, user.call);
            match motion {
                Motion::Exit => self.sink.on_exit(now, user.cell, user.user),
                Motion::Cross(to) => {
                    let target = to.0 as usize % self.shard_count;
                    out.push((
                        target,
                        Migrant {
                            user: user.user,
                            to,
                            state: user.state,
                            mobility: user.mobility,
                            profile: user.profile,
                            rng: user.rng,
                            call: user.call,
                            end_time: user.end_time,
                            generation: user.generation + 1,
                        },
                    ));
                }
            }
        }
        out
    }

    /// Barrier phase 2: admits inbound handoffs at their target cells.
    /// `migrants` must arrive sorted by user id (the caller sorts), so
    /// each cell processes its inbound handoffs in global user order.
    pub(crate) fn run_admissions(&mut self, now: SimTime, migrants: Vec<Migrant>) {
        for m in migrants {
            debug_assert_eq!(m.to.0 as usize % self.shard_count, self.index, "misrouted migrant");
            let request = CallRequest::new(
                m.call,
                m.profile.class,
                CallKind::Handoff,
                m.state.observe(self.cell(m.to).center),
            )
            .with_profile(m.profile);
            let granted = self.try_admit(now, m.to, &request);
            let record = match granted {
                Some(allocated) => {
                    DecisionRecord::admitted(m.user, m.profile, CallKind::Handoff, allocated)
                }
                None => DecisionRecord::denied(m.user, m.profile, CallKind::Handoff),
            };
            self.sink.on_decision(now, m.to, &record);
            if granted.is_some() {
                let slot = self.active.insert(ActiveUser {
                    user: m.user,
                    state: m.state,
                    mobility: m.mobility,
                    profile: m.profile,
                    rng: m.rng,
                    cell: m.to,
                    call: m.call,
                    end_time: m.end_time,
                    generation: m.generation,
                });
                self.queue.schedule_tagged(
                    m.end_time,
                    EngineEvent::CallEnd { user: m.user, generation: m.generation },
                    slot,
                );
            }
            // Denied: the call is dropped mid-handoff; bandwidth was
            // already freed at the source cell.
        }
    }

    /// Epoch-barrier occupancy samples for the time-series sinks, plus
    /// the controllers' time-step [`observe`] hook — the once-per-epoch
    /// pulse that makes stateful/elastic policies possible.
    ///
    /// [`observe`]: facs_cac::AdmissionController::observe
    pub(crate) fn sample_cells(&mut self, now: SimTime) {
        for cell in &mut self.cells {
            // Pulses are strictly increasing per cell (one per epoch
            // barrier); see the `observe` ordering contract.
            debug_assert!(
                now.as_secs_f64() > cell.last_observed_s,
                "observe pulse at t={} not after previous pulse at t={}",
                now.as_secs_f64(),
                cell.last_observed_s
            );
            cell.last_observed_s = now.as_secs_f64();
            cell.controller.observe(now.as_secs_f64(), &cell.ledger);
            self.sink.on_cell_sample(
                now,
                cell.id,
                cell.ledger.occupied().get(),
                cell.ledger.capacity().get(),
            );
        }
    }
}

impl<S> std::fmt::Debug for Shard<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("cells", &self.cells.len())
            .field("active", &self.active.len())
            .field("queued", &self.queue.len())
            .field("arrivals_left", &(self.arrival_order.len() - self.arrival_cursor))
            .field("pending_streamed", &self.pending.len())
            .finish()
    }
}

/// Sorts a barrier's inbound migrants into global user order.
pub(crate) fn sort_migrants(migrants: &mut [Migrant]) {
    migrants.sort_by_key(|m| m.user.0);
}
