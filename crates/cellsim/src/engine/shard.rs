//! One shard of the simulation world: a group of cells (ledger +
//! controller each), the users whose calls those cells currently serve,
//! and a private event queue.
//!
//! A shard processes an entire epoch — all cell-local events up to the
//! next movement barrier — without communicating; cross-shard traffic
//! (handoffs of in-call users into cells owned by another shard) is
//! exchanged only at the barrier. See the module docs of
//! [`crate::engine`] for why this is deterministic.

use std::collections::BTreeMap;

use facs_cac::{
    AdmissionPlan, BandwidthLedger, BandwidthUnits, BoxedController, CallId, CallKind, CallRequest,
    CellId, ServiceProfile,
};

use crate::events::{EngineEvent, EngineQueue, UserId};
use crate::geometry::{HexGrid, Point};
use crate::metrics::{DecisionRecord, MetricsSink};
use crate::mobility::{MobileState, MobilityModel};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::{MobilityKind, SimulationConfig, UserSpec};

/// One cell's state plus its utilization bookkeeping.
///
/// The occupied-bandwidth integral is accumulated **per cell**, advanced
/// only when this cell's occupancy changes (and flushed once at the end
/// of the run). Because a cell's event sequence is shard-independent,
/// the exact float-op order of its integral is too — which is what makes
/// `mean_utilization` bit-identical across shard counts.
pub(crate) struct CellUnit {
    pub(crate) id: CellId,
    pub(crate) ledger: BandwidthLedger,
    pub(crate) controller: BoxedController,
    pub(crate) center: Point,
    occupied_integral_bu_s: f64,
    last_change: SimTime,
}

impl CellUnit {
    pub(crate) fn new(
        id: CellId,
        ledger: BandwidthLedger,
        controller: BoxedController,
        center: Point,
    ) -> Self {
        Self {
            id,
            ledger,
            controller,
            center,
            occupied_integral_bu_s: 0.0,
            last_change: SimTime::ZERO,
        }
    }

    /// Integrates the current occupancy up to `now`. Must be called
    /// before every occupancy change and once at the end of the run.
    fn integrate_to(&mut self, now: SimTime) {
        let dt = now.since(self.last_change).as_secs_f64();
        if dt > 0.0 {
            self.occupied_integral_bu_s += f64::from(self.ledger.occupied().get()) * dt;
            self.last_change = now;
        }
    }

    /// Final flush: returns `(occupied BU·s, capacity BU·s)` over `[0, end]`.
    pub(crate) fn finish(&mut self, end: SimTime) -> (f64, f64) {
        self.integrate_to(end);
        let capacity_bu_s = f64::from(self.ledger.capacity().get()) * end.as_secs_f64();
        (self.occupied_integral_bu_s, capacity_bu_s)
    }
}

/// A user with an active call, registered with the shard owning the
/// serving cell. The record travels whole (including the private RNG
/// stream, so its position is preserved) when the call hands off to a
/// cell on another shard.
struct ActiveUser {
    state: MobileState,
    mobility: MobilityKind,
    profile: ServiceProfile,
    rng: SimRng,
    cell: CellId,
    call: CallId,
    end_time: SimTime,
    generation: u32,
}

/// A call crossing into a cell owned by (possibly) another shard,
/// exchanged at an epoch barrier. The old cell's bandwidth is already
/// released; the receiving shard decides admission at the target cell.
pub(crate) struct Migrant {
    pub(crate) user: UserId,
    pub(crate) to: CellId,
    state: MobileState,
    mobility: MobilityKind,
    profile: ServiceProfile,
    rng: SimRng,
    call: CallId,
    end_time: SimTime,
    generation: u32,
}

/// Derives a user's private mobility RNG stream from the simulation
/// seed. Streams depend only on `(seed, user)` — never on which shard
/// hosts the user — so any partition sees identical randomness.
fn user_rng(seed: u64, user: u64) -> SimRng {
    SimRng::seed_from_u64(seed ^ user.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

pub(crate) struct Shard<'a, S> {
    index: usize,
    shard_count: usize,
    grid: &'a HexGrid,
    config: SimulationConfig,
    /// The owned cells, ascending id (ids ≡ `index` mod `shard_count`).
    pub(crate) cells: Vec<CellUnit>,
    queue: EngineQueue,
    /// Queued arrivals: `(covering cell, spec)` — the cell is located
    /// once by the router, not re-derived per event.
    pending: BTreeMap<u64, (CellId, UserSpec)>,
    active: BTreeMap<u64, ActiveUser>,
    pub(crate) sink: S,
}

impl<'a, S: MetricsSink> Shard<'a, S> {
    pub(crate) fn new(
        index: usize,
        shard_count: usize,
        grid: &'a HexGrid,
        config: SimulationConfig,
        cells: Vec<CellUnit>,
        sink: S,
    ) -> Self {
        Self {
            index,
            shard_count,
            grid,
            config,
            cells,
            queue: EngineQueue::new(),
            pending: BTreeMap::new(),
            active: BTreeMap::new(),
            sink,
        }
    }

    /// Queues one workload user whose starting position (covered by
    /// `home`, as located by the router) this shard owns.
    pub(crate) fn push_arrival(&mut self, user: UserId, home: CellId, spec: UserSpec) {
        self.queue.schedule(SimTime::from_secs_f64(spec.arrival_s), EngineEvent::Arrival { user });
        self.pending.insert(user.0, (home, spec));
    }

    /// `true` when the shard has nothing left to do.
    pub(crate) fn idle(&self) -> bool {
        self.queue.is_empty() && self.active.is_empty()
    }

    fn cell_mut(&mut self, id: CellId) -> &mut CellUnit {
        let slot = id.0 as usize / self.shard_count;
        let cell = &mut self.cells[slot];
        debug_assert_eq!(cell.id, id, "cell partition arithmetic broke");
        cell
    }

    fn cell(&self, id: CellId) -> &CellUnit {
        let slot = id.0 as usize / self.shard_count;
        let cell = &self.cells[slot];
        debug_assert_eq!(cell.id, id, "cell partition arithmetic broke");
        cell
    }

    /// Consults the controller, then applies its [`AdmissionPlan`]
    /// against the ledger; both must agree before the call is admitted.
    /// A plan the ledger can no longer honor (allocation stopped
    /// fitting, a squeeze went stale) is downgraded to a denial without
    /// mutating anything. Returns the granted bandwidth on admission.
    fn try_admit(
        &mut self,
        now: SimTime,
        cell_id: CellId,
        request: &CallRequest,
    ) -> Option<BandwidthUnits> {
        let cell = self.cell_mut(cell_id);
        let plan = cell.controller.decide(request, &cell.ledger);
        let (granted, squeezed) = match plan {
            AdmissionPlan::Reject(_) => return None,
            AdmissionPlan::Admit(_) => {
                cell.integrate_to(now);
                if cell.ledger.allocate(request.id, request.profile).is_err() {
                    return None;
                }
                (request.profile.rb_cost_nominal, Vec::new())
            }
            AdmissionPlan::AdmitDegraded { squeezes, grant, .. } => {
                cell.integrate_to(now);
                if cell
                    .ledger
                    .admit_with_plan(request.id, request.profile, grant, &squeezes)
                    .is_err()
                {
                    return None;
                }
                let squeezed: Vec<(CallId, BandwidthUnits, BandwidthUnits)> = squeezes
                    .iter()
                    .map(|s| {
                        let floor = cell
                            .ledger
                            .profile_of(s.call)
                            .map_or(BandwidthUnits::ZERO, |p| p.rb_cost_min);
                        (s.call, s.to, floor)
                    })
                    .collect();
                (grant, squeezed)
            }
        };
        let after = cell.ledger.snapshot();
        cell.controller.on_admitted(request, &after);
        for (call, to, floor) in squeezed {
            self.sink.on_reallocation(now, cell_id, UserId(call.0), to, floor);
        }
        Some(granted)
    }

    fn release(&mut self, now: SimTime, cell_id: CellId, call: CallId) {
        let cell = self.cell_mut(cell_id);
        cell.integrate_to(now);
        let profile = cell
            .ledger
            .release(call)
            .expect("release of a call the ledger does not hold is a simulator bug");
        // Freed bandwidth flows back to degraded calls before anything
        // else can claim it (fair-share re-upgrade, deepest deficit
        // first).
        let upgrades: Vec<(CallId, BandwidthUnits, BandwidthUnits)> = cell
            .ledger
            .reupgrade_on_release()
            .into_iter()
            .map(|r| {
                let floor =
                    cell.ledger.profile_of(r.call).map_or(BandwidthUnits::ZERO, |p| p.rb_cost_min);
                (r.call, r.to, floor)
            })
            .collect();
        let after = cell.ledger.snapshot();
        cell.controller.on_released(call, profile.class, &after);
        for (upgraded, to, floor) in upgrades {
            self.sink.on_reallocation(now, cell_id, UserId(upgraded.0), to, floor);
        }
    }

    /// Phase A: processes every queued event with `time <= limit` —
    /// arrivals and call-ends, all local to this shard's cells.
    pub(crate) fn run_events(&mut self, limit: SimTime) {
        while let Some(time) = self.queue.peek_time() {
            if time > limit {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            match event {
                EngineEvent::Arrival { user } => self.handle_arrival(now, user),
                EngineEvent::CallEnd { user, generation } => {
                    self.handle_call_end(now, user, generation);
                }
            }
        }
    }

    fn handle_arrival(&mut self, now: SimTime, user: UserId) {
        let (cell_id, spec) = self.pending.remove(&user.0).expect("arrival without a pending spec");
        let position = spec.start.position;
        if self.grid.out_of_coverage(position) {
            // Off-map request: counts as blocked offered traffic.
            self.sink.on_decision(
                now,
                cell_id,
                &DecisionRecord::denied(user, spec.profile, CallKind::New),
            );
            return;
        }
        let call = CallId(user.0);
        let request = CallRequest::new(
            call,
            spec.profile.class,
            CallKind::New,
            spec.start.observe(self.cell(cell_id).center),
        )
        .with_profile(spec.profile);
        let granted = self.try_admit(now, cell_id, &request);
        let record = match granted {
            Some(allocated) => {
                DecisionRecord::admitted(user, spec.profile, CallKind::New, allocated)
            }
            None => DecisionRecord::denied(user, spec.profile, CallKind::New),
        };
        self.sink.on_decision(now, cell_id, &record);
        if granted.is_some() {
            let end_time = now + SimDuration::from_secs_f64(spec.holding_s);
            self.queue.schedule(end_time, EngineEvent::CallEnd { user, generation: 0 });
            self.active.insert(
                user.0,
                ActiveUser {
                    state: spec.start,
                    mobility: spec.mobility,
                    profile: spec.profile,
                    rng: user_rng(self.config.seed, user.0),
                    cell: cell_id,
                    call,
                    end_time,
                    generation: 0,
                },
            );
        }
    }

    fn handle_call_end(&mut self, now: SimTime, user: UserId, generation: u32) {
        // Stale end events — the call handed off (possibly to another
        // shard) after this was scheduled, or was dropped/exited — carry
        // an outdated generation or reference an absent user.
        let Some(active) = self.active.get(&user.0) else { return };
        if active.generation != generation {
            return;
        }
        let (cell, call) = (active.cell, active.call);
        self.release(now, cell, call);
        self.active.remove(&user.0);
        self.sink.on_completion(now, cell, user);
    }

    /// Barrier phase 1: advances every in-call user by one movement tick
    /// (each on its own RNG stream), handles coverage exits locally, and
    /// returns the calls that crossed into another cell as migrants
    /// routed to `(target shard, migrant)`. The old cell's bandwidth is
    /// released here, before any admission anywhere is attempted.
    pub(crate) fn run_movement(&mut self, now: SimTime) -> Vec<(usize, Migrant)> {
        enum Motion {
            Exit,
            Cross(CellId),
        }
        let dt = self.config.movement_tick_s;
        let mut actions: Vec<(u64, Motion)> = Vec::new();
        for (&id, user) in &mut self.active {
            let mut state = user.state;
            user.mobility.step(&mut state, dt, &mut user.rng);
            user.state = state;
            self.sink.on_mobility_step(now, user.cell);
            if self.grid.out_of_coverage(state.position) {
                actions.push((id, Motion::Exit));
            } else {
                let here = self.grid.locate(state.position);
                if here != user.cell {
                    actions.push((id, Motion::Cross(here)));
                }
            }
        }
        let mut out = Vec::new();
        // Ascending user order (BTreeMap iteration): each cell sees its
        // departures in the same order a single-shard run would apply.
        for (id, motion) in actions {
            let user = self.active.remove(&id).expect("moved user vanished");
            self.release(now, user.cell, user.call);
            match motion {
                Motion::Exit => self.sink.on_exit(now, user.cell, UserId(id)),
                Motion::Cross(to) => {
                    let target = to.0 as usize % self.shard_count;
                    out.push((
                        target,
                        Migrant {
                            user: UserId(id),
                            to,
                            state: user.state,
                            mobility: user.mobility,
                            profile: user.profile,
                            rng: user.rng,
                            call: user.call,
                            end_time: user.end_time,
                            generation: user.generation + 1,
                        },
                    ));
                }
            }
        }
        out
    }

    /// Barrier phase 2: admits inbound handoffs at their target cells.
    /// `migrants` must arrive sorted by user id (the caller sorts), so
    /// each cell processes its inbound handoffs in global user order.
    pub(crate) fn run_admissions(&mut self, now: SimTime, migrants: Vec<Migrant>) {
        for m in migrants {
            debug_assert_eq!(m.to.0 as usize % self.shard_count, self.index, "misrouted migrant");
            let request = CallRequest::new(
                m.call,
                m.profile.class,
                CallKind::Handoff,
                m.state.observe(self.cell(m.to).center),
            )
            .with_profile(m.profile);
            let granted = self.try_admit(now, m.to, &request);
            let record = match granted {
                Some(allocated) => {
                    DecisionRecord::admitted(m.user, m.profile, CallKind::Handoff, allocated)
                }
                None => DecisionRecord::denied(m.user, m.profile, CallKind::Handoff),
            };
            self.sink.on_decision(now, m.to, &record);
            if granted.is_some() {
                self.queue.schedule(
                    m.end_time,
                    EngineEvent::CallEnd { user: m.user, generation: m.generation },
                );
                self.active.insert(
                    m.user.0,
                    ActiveUser {
                        state: m.state,
                        mobility: m.mobility,
                        profile: m.profile,
                        rng: m.rng,
                        cell: m.to,
                        call: m.call,
                        end_time: m.end_time,
                        generation: m.generation,
                    },
                );
            }
            // Denied: the call is dropped mid-handoff; bandwidth was
            // already freed at the source cell.
        }
    }

    /// Epoch-barrier occupancy samples for the time-series sinks, plus
    /// the controllers' time-step [`observe`] hook — the once-per-epoch
    /// pulse that makes stateful/elastic policies possible.
    ///
    /// [`observe`]: facs_cac::AdmissionController::observe
    pub(crate) fn sample_cells(&mut self, now: SimTime) {
        for cell in &mut self.cells {
            cell.controller.observe(now.as_secs_f64(), &cell.ledger);
            self.sink.on_cell_sample(
                now,
                cell.id,
                cell.ledger.occupied().get(),
                cell.ledger.capacity().get(),
            );
        }
    }
}

impl<S> std::fmt::Debug for Shard<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("index", &self.index)
            .field("cells", &self.cells.len())
            .field("active", &self.active.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

/// Sorts a barrier's inbound migrants into global user order.
pub(crate) fn sort_migrants(migrants: &mut [Migrant]) {
    migrants.sort_by_key(|m| m.user.0);
}
