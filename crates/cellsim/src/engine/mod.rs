//! The sharded deterministic simulation kernel.
//!
//! The world — cells with ledgers and admission controllers, in-call
//! users, pending arrivals — is partitioned into **cell-group shards**
//! (cell `i` belongs to shard `i % shards`). Each shard runs an
//! independent discrete-event loop over its own [`EngineQueue`] and the
//! shards only interact at **epoch barriers** spaced one movement tick
//! apart, where calls that crossed into a cell owned by another shard
//! are exchanged as migrants.
//!
//! ## Why multi-shard runs are bit-identical to single-shard runs
//!
//! 1. **Conservative lookahead = movement cadence.** Between barriers
//!    every event (arrival, call-end) is local to a single cell: handoffs
//!    — the only cross-cell interaction — can occur *only* at movement
//!    ticks, so a shard can safely simulate a whole epoch without
//!    looking at any other shard.
//! 2. **Shard-independent event order.** [`EngineQueue`] orders events
//!    by `(time, kind, user, generation)` — content, not insertion
//!    order — so each *cell* sees the same event sequence no matter
//!    which queue hosts it.
//! 3. **Per-user RNG streams.** Every user draws mobility noise from a
//!    private stream seeded by `(simulation seed, user id)`; the stream
//!    state travels with the call on migration. No draw ever depends on
//!    how users are grouped.
//! 4. **Ordered barrier exchange.** At a barrier, all source-cell
//!    releases happen before any target-cell admission, and each cell
//!    applies its inbound handoffs in ascending user order.
//! 5. **Ordered folds.** Integer counters are exact sums; per-cell
//!    utilization integrals are accumulated cell-locally and folded in
//!    cell-id order at the end of the run, fixing every float-op order.
//!
//! The guarantee covers every controller whose state is **cell-local**
//! (FACS on both inference backends, complete sharing, guard channels).
//! SCC controllers share a cross-cell shadow board; with more than one
//! shard their board updates would interleave nondeterministically, so
//! controllers declare locality via
//! [`AdmissionController::is_cell_local`] and the kernel **panics**
//! rather than run a shared-state policy on multiple shards.
//!
//! [`EngineQueue`]: crate::events::EngineQueue

mod shard;

use facs_cac::{
    AdmissionController, BandwidthLedger, BandwidthUnits, BoxedController, CellId,
    ControllerFactory, ServiceProfile,
};

use crate::geometry::HexGrid;
use crate::metrics::{Metrics, MetricsSink};
use crate::mobility::{
    GaussMarkov, MobileState, MobilityModel, RandomWaypoint, StraightLine, Walker,
};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::workload::WorkloadStream;

use shard::{sort_migrants, CellUnit, Migrant, Shard};

/// A clonable, serde-friendly sum of the crate's mobility models, so
/// workloads can be described as plain data.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MobilityKind {
    /// Heading-diffusion walker (speed-dependent stability).
    Walker(Walker),
    /// Random waypoint within a disc.
    RandomWaypoint(RandomWaypoint),
    /// Gauss–Markov autoregressive motion.
    GaussMarkov(GaussMarkov),
    /// Constant heading and speed.
    StraightLine,
}

impl MobilityModel for MobilityKind {
    fn step(&mut self, state: &mut MobileState, dt_s: f64, rng: &mut SimRng) {
        match self {
            MobilityKind::Walker(m) => m.step(state, dt_s, rng),
            MobilityKind::RandomWaypoint(m) => m.step(state, dt_s, rng),
            MobilityKind::GaussMarkov(m) => m.step(state, dt_s, rng),
            MobilityKind::StraightLine => StraightLine.step(state, dt_s, rng),
        }
    }

    fn name(&self) -> &str {
        match self {
            MobilityKind::Walker(_) => "walker",
            MobilityKind::RandomWaypoint(_) => "random-waypoint",
            MobilityKind::GaussMarkov(_) => "gauss-markov",
            MobilityKind::StraightLine => "straight-line",
        }
    }
}

/// One user of the workload: when they request, what they request, where
/// they start and how they move.
#[derive(Debug, Clone)]
pub struct UserSpec {
    /// Request instant, seconds from simulation start.
    pub arrival_s: f64,
    /// Requested service profile — the class plus its `[floor, nominal]`
    /// bandwidth band. `ServiceProfile::paper(class)` reproduces the
    /// paper's rigid unit costs.
    pub profile: ServiceProfile,
    /// Kinematic state at request time.
    pub start: MobileState,
    /// Mobility model for the call's lifetime.
    pub mobility: MobilityKind,
    /// Pre-drawn call holding time, seconds (drawn by the workload
    /// generator so admission policy cannot perturb the random stream).
    pub holding_s: f64,
}

/// Simulation-wide constants.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Capacity of every base station (the paper's 40 BU).
    pub capacity: BandwidthUnits,
    /// Movement/handoff processing cadence, seconds — also the epoch
    /// length (conservative lookahead) of the sharded kernel.
    pub movement_tick_s: f64,
    /// Hard stop; events beyond this instant are discarded.
    pub max_time_s: f64,
    /// Seed for the per-user mobility random streams.
    pub seed: u64,
    /// Number of cell-group shards. Clamped to the cell count; `0` and
    /// `1` both mean one shard. Any value produces bit-identical
    /// results for cell-local controllers (see the module docs).
    pub shards: usize,
    /// Worker threads driving the shards. `0` (the default) sizes the
    /// pool to `min(shards, available cores)`; `1` forces the
    /// sequential driver even for many shards (useful on single-core
    /// hosts, where threads only add barrier overhead). Shards are
    /// **work items**, stolen whole — the worker count never affects
    /// results, only wall-clock.
    pub workers: usize,
    /// Pins each shard to one worker (static round-robin assignment,
    /// shard `s` → worker `s % workers`) instead of work-stealing —
    /// keeps every shard's caches warm on one thread at the cost of
    /// load balance. Results are identical either way.
    pub pin_shards: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            capacity: BandwidthUnits::new(40),
            movement_tick_s: 5.0,
            max_time_s: 7_200.0,
            seed: 0xFAC5,
            shards: 1,
            workers: 0,
            pin_shards: false,
        }
    }
}

/// The simulator: owns the grid and the cells (ledger + controller
/// each); each run partitions them into shards, drives the epoch loop,
/// and reassembles the world.
///
/// Build with [`Simulation::new`], then [`Simulation::run`] a workload
/// (or [`Simulation::run_with`] to stream events into a custom
/// [`MetricsSink`]).
pub struct Simulation {
    grid: HexGrid,
    cells: Vec<CellUnit>,
    clock: SimTime,
    config: SimulationConfig,
    metrics: Metrics,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cells", &self.cells.len())
            .field("clock", &self.clock)
            .field("shards", &self.config.shards)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation over `grid` with one controller per cell.
    ///
    /// # Panics
    ///
    /// Panics unless `controllers.len() == grid.len()` — the pairing is a
    /// construction-time contract, not runtime data — and unless the
    /// movement cadence is finite and positive (it is the kernel's epoch
    /// length).
    #[must_use]
    pub fn new(grid: HexGrid, config: SimulationConfig, controllers: Vec<BoxedController>) -> Self {
        assert_eq!(
            controllers.len(),
            grid.len(),
            "need exactly one controller per cell ({} cells, {} controllers)",
            grid.len(),
            controllers.len()
        );
        assert!(
            config.movement_tick_s.is_finite() && config.movement_tick_s > 0.0,
            "bad movement tick {}",
            config.movement_tick_s
        );
        let cells = controllers
            .into_iter()
            .enumerate()
            .map(|(i, controller)| {
                let id = CellId(i as u32);
                CellUnit::new(
                    id,
                    BandwidthLedger::new(config.capacity),
                    controller,
                    grid.center_of(id),
                )
            })
            .collect();
        Self { grid, cells, clock: SimTime::ZERO, config, metrics: Metrics::new() }
    }

    /// Creates a simulation with one controller per cell built by
    /// `factory` — the per-shard construction hook used when every cell
    /// runs the same policy.
    #[must_use]
    pub fn from_factory(
        grid: HexGrid,
        config: SimulationConfig,
        factory: &dyn ControllerFactory,
    ) -> Self {
        let controllers = grid.cell_ids().map(|_| factory.build()).collect();
        Self::new(grid, config, controllers)
    }

    /// Runs the workload to completion and returns the collected metrics.
    ///
    /// Users are admitted at the cell covering their position; admitted
    /// calls hold bandwidth until their holding time elapses, the user
    /// hands off out of a full cell (drop), or the user leaves coverage.
    pub fn run(&mut self, workload: Vec<UserSpec>) -> Metrics {
        let metrics = self.run_with(workload, Metrics::new());
        self.metrics = metrics.clone();
        metrics
    }

    /// Runs the workload, streaming every observable event into `sink`
    /// (forked per shard, folded back in shard order; see
    /// [`MetricsSink`]).
    pub fn run_with<S: MetricsSink>(&mut self, workload: Vec<UserSpec>, sink: S) -> S {
        let shard_count = self.config.shards.clamp(1, self.cells.len().max(1));
        if shard_count > 1 {
            // Bit-identity only holds for cell-local controllers; a
            // shared-state policy (SCC's shadow board) on concurrent
            // shards would be silently nondeterministic, so refuse it.
            if let Some(cell) = self.cells.iter().find(|c| !c.controller.is_cell_local()) {
                panic!(
                    "controller `{}` shares cross-cell state and cannot run on {} shards \
                     without losing bit-reproducibility; use shards = 1",
                    cell.controller.name(),
                    shard_count
                );
            }
        }
        let tick = SimDuration::from_secs_f64(self.config.movement_tick_s);
        assert!(tick.as_micros() > 0, "movement tick rounds to zero microseconds");
        let horizon = SimTime::from_secs_f64(self.config.max_time_s);

        // Partition cells round-robin: shard s owns ids s, s+n, s+2n, …
        let mut per_shard: Vec<Vec<CellUnit>> = (0..shard_count).map(|_| Vec::new()).collect();
        for cell in std::mem::take(&mut self.cells) {
            per_shard[cell.id.0 as usize % shard_count].push(cell);
        }
        let grid = &self.grid;
        let config = self.config;
        let specs: &[UserSpec] = &workload;
        let mut shards: Vec<Shard<'_, S>> = per_shard
            .into_iter()
            .enumerate()
            .map(|(i, cells)| Shard::new(i, shard_count, grid, specs, config, cells, sink.fork()))
            .collect();

        // Route each arrival to the shard owning its covering cell (the
        // locate here is the only one; shards reuse it on dispatch).
        // Shards reference the shared workload slice by index — the
        // (large) specs are never copied out of it.
        let estimate = workload.len() / shard_count;
        for shard in &mut shards {
            shard.reserve_arrivals(estimate + estimate / 4 + 64);
        }
        for (idx, spec) in workload.iter().enumerate() {
            let home = grid.locate(spec.start.position);
            shards[home.0 as usize % shard_count].push_arrival(idx as u32, home, spec.arrival_s);
        }
        for shard in &mut shards {
            shard.seal_arrivals();
        }

        let workers = driver_workers(self.config.workers, shard_count);
        let epochs = if workers <= 1 {
            drive_sequential(&mut shards, tick, horizon)
        } else {
            drive_pool(&mut shards, tick, horizon, workers, self.config.pin_shards)
        };
        let (sink, cells, final_time) = reassemble(sink, shards, tick, epochs, horizon);
        self.cells = cells;
        self.clock = final_time;
        sink
    }

    /// Runs a streamed workload to completion and returns the collected
    /// metrics. See [`Simulation::run_streamed_with`].
    pub fn run_streamed(&mut self, stream: WorkloadStream) -> Metrics {
        let metrics = self.run_streamed_with(stream, Metrics::new());
        self.metrics = metrics.clone();
        metrics
    }

    /// Runs a lazily synthesized workload: users are generated chunk by
    /// chunk from `stream` and routed to their home shards one epoch
    /// window at a time, so peak resident specs are O(active calls + one
    /// chunk) instead of O(total users). Results are bit-identical to
    /// [`Simulation::run_with`] on the eagerly generated workload: the
    /// stream replays the same random draws in the same order, and
    /// per-shard delivery order equals the eager slab's sorted dispatch
    /// order (see the `shard` module).
    pub fn run_streamed_with<S: MetricsSink>(&mut self, stream: WorkloadStream, sink: S) -> S {
        let shard_count = self.config.shards.clamp(1, self.cells.len().max(1));
        if shard_count > 1 {
            if let Some(cell) = self.cells.iter().find(|c| !c.controller.is_cell_local()) {
                panic!(
                    "controller `{}` shares cross-cell state and cannot run on {} shards \
                     without losing bit-reproducibility; use shards = 1",
                    cell.controller.name(),
                    shard_count
                );
            }
        }
        let tick = SimDuration::from_secs_f64(self.config.movement_tick_s);
        assert!(tick.as_micros() > 0, "movement tick rounds to zero microseconds");
        let horizon = SimTime::from_secs_f64(self.config.max_time_s);

        let mut per_shard: Vec<Vec<CellUnit>> = (0..shard_count).map(|_| Vec::new()).collect();
        for cell in std::mem::take(&mut self.cells) {
            per_shard[cell.id.0 as usize % shard_count].push(cell);
        }
        let grid = &self.grid;
        let config = self.config;
        // Streamed shards own their pending specs; the shared slab stays
        // empty.
        let mut shards: Vec<Shard<'_, S>> = per_shard
            .into_iter()
            .enumerate()
            .map(|(i, cells)| Shard::new(i, shard_count, grid, &[], config, cells, sink.fork()))
            .collect();

        let mut feeder = StreamFeeder { stream, grid };
        let workers = driver_workers(self.config.workers, shard_count);
        let epochs = if workers <= 1 {
            drive_sequential_streamed(&mut shards, tick, horizon, &mut feeder)
        } else {
            drive_pool_streamed(
                &mut shards,
                tick,
                horizon,
                workers,
                self.config.pin_shards,
                &mut feeder,
            )
        };
        let (sink, cells, final_time) = reassemble(sink, shards, tick, epochs, horizon);
        self.cells = cells;
        self.clock = final_time;
        sink
    }

    /// Metrics collected by the last [`Simulation::run`].
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The simulation clock (final barrier time after a run).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The grid the simulation runs on.
    #[must_use]
    pub fn grid(&self) -> &HexGrid {
        &self.grid
    }

    /// Occupied bandwidth of a cell (for assertions in tests and the
    /// distributed runtime's cross-checks).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn occupied(&self, cell: CellId) -> BandwidthUnits {
        self.cells[cell.0 as usize].ledger.occupied()
    }
}

/// The instant of barrier `epoch` (exact integer microsecond math, so
/// every shard and driver computes identical barrier times).
fn barrier_time(tick: SimDuration, epoch: u64) -> SimTime {
    SimTime::from_micros(tick.as_micros() * epoch)
}

/// Reassembles a finished run — folds shard sinks in shard order,
/// collects cells back into id order and flushes each cell's
/// utilization integral — the shared tail of the eager and streamed run
/// paths. Returns `(sink, cells, final time)`.
fn reassemble<S: MetricsSink>(
    mut sink: S,
    shards: Vec<Shard<'_, S>>,
    tick: SimDuration,
    epochs: u64,
    horizon: SimTime,
) -> (S, Vec<CellUnit>, SimTime) {
    let final_time =
        if epochs == 0 { SimTime::ZERO } else { barrier_time(tick, epochs).min(horizon) };
    let mut cells: Vec<CellUnit> = Vec::new();
    for shard in shards {
        sink.absorb(shard.sink);
        cells.extend(shard.cells);
    }
    cells.sort_by_key(|c| c.id.0);
    for cell in &mut cells {
        let (occupied_bu_s, capacity_bu_s) = cell.finish(final_time);
        sink.on_cell_utilization(cell.id, occupied_bu_s, capacity_bu_s);
    }
    (sink, cells, final_time)
}

/// Picks the worker count for a run, skipping pool setup (and the
/// `available_parallelism` probe) outright when the pool cannot help:
/// one shard serializes on its own state, and an explicit single worker
/// would only add barrier churn.
fn driver_workers(configured: usize, shard_count: usize) -> usize {
    if shard_count == 1 || configured == 1 {
        1
    } else {
        resolve_workers(configured, shard_count)
    }
}

/// Feeds a [`WorkloadStream`] into the shards' pending-arrival queues,
/// one epoch window at a time. Pull granularity is the stream's chunk
/// size, so a refill can overshoot the window by at most one chunk —
/// that overshoot simply waits in the pending queues.
struct StreamFeeder<'g> {
    stream: WorkloadStream,
    grid: &'g HexGrid,
}

impl StreamFeeder<'_> {
    /// True once every user has been synthesized and delivered.
    fn exhausted(&self) -> bool {
        self.stream.is_exhausted()
    }

    /// Delivers every arrival due at or before `limit` (sequential
    /// driver variant: shards are directly mutable).
    fn refill<S: MetricsSink>(&mut self, shards: &mut [Shard<'_, S>], limit: SimTime) {
        let shard_count = shards.len();
        while self.stream.peek_next_arrival_s().is_some_and(|t| SimTime::from_secs_f64(t) <= limit)
        {
            let Some(mut chunk) = self.stream.next_chunk() else { break };
            for (i, spec) in chunk.specs.drain(..).enumerate() {
                let user = chunk.first_user + i as u64;
                let time = SimTime::from_secs_f64(spec.arrival_s);
                let home = self.grid.locate(spec.start.position);
                shards[home.0 as usize % shard_count].push_pending(
                    time.as_micros(),
                    user,
                    home,
                    spec,
                );
            }
            self.stream.recycle(chunk);
        }
    }

    /// Pooled-driver variant of [`StreamFeeder::refill`]: delivers into
    /// the shard slots and clears the idle flag of every shard that
    /// receives an arrival (their published flags predate the refill).
    /// Only the barrier leader calls this, while the other workers hold
    /// at a barrier — the per-push slot locks are uncontended.
    fn refill_slots<S: MetricsSink>(
        &mut self,
        slots: &[std::sync::Mutex<&mut Shard<'_, S>>],
        idle: &[std::sync::atomic::AtomicBool],
        limit: SimTime,
    ) {
        let shard_count = slots.len();
        while self.stream.peek_next_arrival_s().is_some_and(|t| SimTime::from_secs_f64(t) <= limit)
        {
            let Some(mut chunk) = self.stream.next_chunk() else { break };
            for (i, spec) in chunk.specs.drain(..).enumerate() {
                let user = chunk.first_user + i as u64;
                let time = SimTime::from_secs_f64(spec.arrival_s);
                let home = self.grid.locate(spec.start.position);
                let target = home.0 as usize % shard_count;
                slots[target].lock().expect("shard slot poisoned").push_pending(
                    time.as_micros(),
                    user,
                    home,
                    spec,
                );
                idle[target].store(false, std::sync::atomic::Ordering::SeqCst);
            }
            self.stream.recycle(chunk);
        }
    }
}

/// The single-threaded epoch driver for streamed workloads: identical to
/// [`drive_sequential`] except that each epoch begins by delivering the
/// arrivals due by the *next* barrier, and the loop only ends once the
/// stream is exhausted — an all-idle world with undelivered future
/// arrivals must keep pulsing epochs exactly like the eager driver
/// (whose shards stay non-idle while arrivals remain).
fn drive_sequential_streamed<S: MetricsSink>(
    shards: &mut [Shard<'_, S>],
    tick: SimDuration,
    horizon: SimTime,
    feeder: &mut StreamFeeder<'_>,
) -> u64 {
    let shard_count = shards.len();
    let mut epoch: u64 = 0;
    loop {
        feeder.refill(shards, barrier_time(tick, epoch + 1).min(horizon));
        if (shards.iter().all(Shard::idle) && feeder.exhausted())
            || barrier_time(tick, epoch) >= horizon
        {
            break;
        }
        epoch += 1;
        let t = barrier_time(tick, epoch);
        let limit = t.min(horizon);
        for s in shards.iter_mut() {
            s.run_events(limit);
        }
        if t > horizon {
            break;
        }
        let mut mailboxes: Vec<Vec<Migrant>> = (0..shard_count).map(|_| Vec::new()).collect();
        for s in shards.iter_mut() {
            for (target, migrant) in s.run_movement(t) {
                mailboxes[target].push(migrant);
            }
        }
        for (s, mut inbox) in shards.iter_mut().zip(mailboxes) {
            sort_migrants(&mut inbox);
            s.run_admissions(t, inbox);
            s.sample_cells(t);
        }
    }
    epoch
}

/// The single-threaded epoch driver (also correct, though unused, for
/// multiple shards — the determinism tests compare it against the
/// threaded driver). Returns the number of epochs run.
fn drive_sequential<S: MetricsSink>(
    shards: &mut [Shard<'_, S>],
    tick: SimDuration,
    horizon: SimTime,
) -> u64 {
    let shard_count = shards.len();
    let mut epoch: u64 = 0;
    loop {
        if shards.iter().all(Shard::idle) || barrier_time(tick, epoch) >= horizon {
            break;
        }
        epoch += 1;
        let t = barrier_time(tick, epoch);
        let limit = t.min(horizon);
        for s in shards.iter_mut() {
            s.run_events(limit);
        }
        if t > horizon {
            break;
        }
        let mut mailboxes: Vec<Vec<Migrant>> = (0..shard_count).map(|_| Vec::new()).collect();
        for s in shards.iter_mut() {
            for (target, migrant) in s.run_movement(t) {
                mailboxes[target].push(migrant);
            }
        }
        for (s, mut inbox) in shards.iter_mut().zip(mailboxes) {
            sort_migrants(&mut inbox);
            s.run_admissions(t, inbox);
            s.sample_cells(t);
        }
    }
    epoch
}

/// Sizes the worker pool: an explicit count is honored (capped at one
/// worker per shard, more can never help); `0` asks the OS for the
/// available parallelism. Either way a single-shard run costs no
/// threads at all.
fn resolve_workers(configured: usize, shard_count: usize) -> usize {
    let requested = if configured == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        configured
    };
    requested.min(shard_count)
}

/// The pooled epoch driver: `workers` scoped threads drive all
/// `shards.len()` shards, **stealing shards whole** from a shared
/// atomic counter in each phase (or taking a static round-robin slice
/// when pinned). Two [`std::sync::Barrier`]s per epoch separate the
/// event/movement phase from the admission phase, exactly like the old
/// one-thread-per-shard driver.
///
/// ## Why stealing cannot perturb results
///
/// A shard's epoch is a pure function of its own state plus its sorted
/// inbox: *which worker* runs it, and in *what order* relative to other
/// shards within the phase, is invisible to the shard. Mailbox pushes
/// from concurrently-running shards can interleave arbitrarily — the
/// inbox is sorted into global user order before any admission — and
/// sinks are folded in shard order at reassembly, so every float and
/// every RNG draw happens in the same order as the sequential driver.
///
/// Every worker computes the identical `all_idle`/horizon branches from
/// the same published flags, so barrier counts always match. The phase
/// counters are reset by the barrier leader one full barrier before
/// their next use, which orders the reset before every subsequent
/// `fetch_add`.
fn drive_pool<S: MetricsSink>(
    shards: &mut [Shard<'_, S>],
    tick: SimDuration,
    horizon: SimTime,
    workers: usize,
    pin: bool,
) -> u64 {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    let shard_count = shards.len();
    let sync = Barrier::new(workers);
    let mailboxes: Vec<Mutex<Vec<Migrant>>> =
        (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
    // Published at the end of each epoch's admission phase by whichever
    // worker ran the shard; seeded here so epoch 0's check sees truth.
    let idle: Vec<AtomicBool> = shards.iter().map(|s| AtomicBool::new(s.idle())).collect();
    let next_a = AtomicUsize::new(0);
    let next_b = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Shard<'_, S>>> = shards.iter_mut().map(Mutex::new).collect();

    let epochs: Vec<u64> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let sync = &sync;
                let mailboxes = &mailboxes;
                let idle = &idle;
                let next_a = &next_a;
                let next_b = &next_b;
                let slots = &slots;
                scope.spawn(move || {
                    // The shard indices this worker processes in a phase:
                    // pinned → its static residue class; stealing → pull
                    // from the shared counter until the phase runs dry.
                    let claim = |counter: &AtomicUsize, k: usize| {
                        if pin {
                            let i = me + k * workers;
                            (i < shard_count).then_some(i)
                        } else {
                            let i = counter.fetch_add(1, Ordering::Relaxed);
                            (i < shard_count).then_some(i)
                        }
                    };
                    let mut epoch: u64 = 0;
                    loop {
                        if sync.wait().is_leader() {
                            // The previous epoch's phase B is over on
                            // every worker; the counter's next use is
                            // behind the phase-A barrier below, which
                            // this reset happens-before.
                            next_b.store(0, Ordering::Relaxed);
                        }
                        let all_idle = idle.iter().all(|flag| flag.load(Ordering::SeqCst));
                        if all_idle || barrier_time(tick, epoch) >= horizon {
                            break;
                        }
                        epoch += 1;
                        let t = barrier_time(tick, epoch);
                        let limit = t.min(horizon);
                        // Phase A: local events, then movement.
                        let mut k = 0;
                        while let Some(i) = claim(next_a, k) {
                            k += 1;
                            let mut shard = slots[i].lock().expect("shard slot poisoned");
                            shard.run_events(limit);
                            if t <= horizon {
                                for (target, migrant) in shard.run_movement(t) {
                                    mailboxes[target]
                                        .lock()
                                        .expect("mailbox poisoned")
                                        .push(migrant);
                                }
                            }
                        }
                        if sync.wait().is_leader() {
                            // Phase A is over on every worker; the
                            // counter's next use is behind the loop-top
                            // barrier, which this reset happens-before.
                            next_a.store(0, Ordering::Relaxed);
                        }
                        if t > horizon {
                            break;
                        }
                        // Phase B: inbound handoffs, then the epoch pulse.
                        let mut k = 0;
                        while let Some(i) = claim(next_b, k) {
                            k += 1;
                            let mut shard = slots[i].lock().expect("shard slot poisoned");
                            let mut inbox = std::mem::take(
                                &mut *mailboxes[i].lock().expect("mailbox poisoned"),
                            );
                            sort_migrants(&mut inbox);
                            shard.run_admissions(t, inbox);
                            shard.sample_cells(t);
                            idle[i].store(shard.idle(), Ordering::SeqCst);
                        }
                    }
                    epoch
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    })
    .expect("shard scope failed");

    let first = epochs[0];
    debug_assert!(epochs.iter().all(|&e| e == first), "workers disagreed on epoch count");
    first
}

/// The pooled epoch driver for streamed workloads: [`drive_pool`] plus a
/// refill phase at the top of every epoch. One extra barrier pair
/// brackets the refill — the leader delivers the next epoch window into
/// the shard slots while every other worker waits, then all workers read
/// the same idle/exhausted flags, so the epoch count and the termination
/// branch stay unanimous. Streamed runs pay this third barrier; eager
/// runs keep the two-barrier loop untouched.
fn drive_pool_streamed<S: MetricsSink>(
    shards: &mut [Shard<'_, S>],
    tick: SimDuration,
    horizon: SimTime,
    workers: usize,
    pin: bool,
    feeder: &mut StreamFeeder<'_>,
) -> u64 {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    let shard_count = shards.len();
    let sync = Barrier::new(workers);
    let mailboxes: Vec<Mutex<Vec<Migrant>>> =
        (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
    let idle: Vec<AtomicBool> = shards.iter().map(|s| AtomicBool::new(s.idle())).collect();
    let stream_done = AtomicBool::new(feeder.exhausted());
    let next_a = AtomicUsize::new(0);
    let next_b = AtomicUsize::new(0);
    let slots: Vec<Mutex<&mut Shard<'_, S>>> = shards.iter_mut().map(Mutex::new).collect();
    let feeder = Mutex::new(feeder);

    let epochs: Vec<u64> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let sync = &sync;
                let mailboxes = &mailboxes;
                let idle = &idle;
                let stream_done = &stream_done;
                let next_a = &next_a;
                let next_b = &next_b;
                let slots = &slots;
                let feeder = &feeder;
                scope.spawn(move || {
                    let claim = |counter: &AtomicUsize, k: usize| {
                        if pin {
                            let i = me + k * workers;
                            (i < shard_count).then_some(i)
                        } else {
                            let i = counter.fetch_add(1, Ordering::Relaxed);
                            (i < shard_count).then_some(i)
                        }
                    };
                    let mut epoch: u64 = 0;
                    loop {
                        if sync.wait().is_leader() {
                            next_b.store(0, Ordering::Relaxed);
                            // Refill phase: deliver everything due by the
                            // next barrier while the other workers hold at
                            // the barrier below. Shards that received
                            // arrivals have their idle flags cleared here,
                            // so the unanimous check cannot terminate with
                            // undispatched pending users.
                            let mut feeder = feeder.lock().expect("feeder poisoned");
                            feeder.refill_slots(
                                slots,
                                idle,
                                barrier_time(tick, epoch + 1).min(horizon),
                            );
                            stream_done.store(feeder.exhausted(), Ordering::SeqCst);
                        }
                        sync.wait();
                        let all_idle = idle.iter().all(|flag| flag.load(Ordering::SeqCst));
                        if (all_idle && stream_done.load(Ordering::SeqCst))
                            || barrier_time(tick, epoch) >= horizon
                        {
                            break;
                        }
                        epoch += 1;
                        let t = barrier_time(tick, epoch);
                        let limit = t.min(horizon);
                        // Phase A: local events, then movement.
                        let mut k = 0;
                        while let Some(i) = claim(next_a, k) {
                            k += 1;
                            let mut shard = slots[i].lock().expect("shard slot poisoned");
                            shard.run_events(limit);
                            if t <= horizon {
                                for (target, migrant) in shard.run_movement(t) {
                                    mailboxes[target]
                                        .lock()
                                        .expect("mailbox poisoned")
                                        .push(migrant);
                                }
                            }
                        }
                        if sync.wait().is_leader() {
                            next_a.store(0, Ordering::Relaxed);
                        }
                        if t > horizon {
                            break;
                        }
                        // Phase B: inbound handoffs, then the epoch pulse.
                        let mut k = 0;
                        while let Some(i) = claim(next_b, k) {
                            k += 1;
                            let mut shard = slots[i].lock().expect("shard slot poisoned");
                            let mut inbox = std::mem::take(
                                &mut *mailboxes[i].lock().expect("mailbox poisoned"),
                            );
                            sort_migrants(&mut inbox);
                            shard.run_admissions(t, inbox);
                            shard.sample_cells(t);
                            idle[i].store(shard.idle(), Ordering::SeqCst);
                        }
                    }
                    epoch
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    })
    .expect("shard scope failed");

    let first = epochs[0];
    debug_assert!(epochs.iter().all(|&e| e == first), "workers disagreed on epoch count");
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::metrics::CellLoadSeries;
    use facs_cac::policies::CompleteSharing;
    use facs_cac::{AdmissionController, AdmissionPlan, CallRequest, Decision, ServiceClass};

    fn controllers(n: usize) -> Vec<BoxedController> {
        (0..n).map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
    }

    fn stationary_spec(arrival_s: f64, class: ServiceClass, holding_s: f64) -> UserSpec {
        UserSpec {
            arrival_s,
            profile: ServiceProfile::paper(class),
            start: MobileState::new(Point::new(0.5, 0.0), 0.0, 0.0),
            mobility: MobilityKind::StraightLine,
            holding_s,
        }
    }

    #[test]
    fn single_call_is_admitted_and_completes() {
        let grid = HexGrid::single_cell(10.0);
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(vec![stationary_spec(1.0, ServiceClass::Video, 60.0)]);
        assert_eq!(metrics.offered_new, 1);
        assert_eq!(metrics.accepted_new, 1);
        assert_eq!(metrics.completed, 1);
        assert_eq!(sim.occupied(CellId(0)), BandwidthUnits::ZERO, "bandwidth returned");
    }

    #[test]
    fn capacity_blocks_excess_calls() {
        let grid = HexGrid::single_cell(10.0);
        // 40 BU: exactly 4 video calls fit if they overlap.
        let workload: Vec<UserSpec> = (0..6)
            .map(|i| stationary_spec(1.0 + i as f64 * 0.001, ServiceClass::Video, 1_000.0))
            .collect();
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(workload);
        assert_eq!(metrics.offered_new, 6);
        assert_eq!(metrics.accepted_new, 4);
        assert_eq!(metrics.blocked_new, 2);
    }

    #[test]
    fn sequential_calls_reuse_bandwidth() {
        let grid = HexGrid::single_cell(10.0);
        // Calls arrive 100 s apart, each holds 10 s: never concurrent.
        let workload: Vec<UserSpec> = (0..5)
            .map(|i| stationary_spec(10.0 + 100.0 * i as f64, ServiceClass::Video, 10.0))
            .collect();
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(workload);
        assert_eq!(metrics.accepted_new, 5);
        assert_eq!(metrics.completed, 5);
    }

    #[test]
    fn handoff_moves_bandwidth_between_cells() {
        let grid = HexGrid::new(1, 1.0);
        // A user in the center cell moving due east at high speed will
        // cross into the east neighbor well within its holding time.
        let spec = UserSpec {
            arrival_s: 1.0,
            profile: ServiceProfile::paper(ServiceClass::Voice),
            start: MobileState::new(Point::new(0.0, 0.0), 0.0, 120.0),
            mobility: MobilityKind::StraightLine,
            holding_s: 120.0,
        };
        let config = SimulationConfig { movement_tick_s: 1.0, ..Default::default() };
        let mut sim = Simulation::new(grid, config, controllers(7));
        let metrics = sim.run(vec![spec]);
        assert_eq!(metrics.accepted_new, 1);
        assert!(metrics.handoff_attempts >= 1, "no handoff happened");
        assert_eq!(metrics.handoff_dropped, 0);
        // Either completed in a neighbor or exited past the map edge.
        assert_eq!(metrics.completed + metrics.exited_coverage, 1);
    }

    fn east_center(grid: &HexGrid) -> Point {
        let id = grid
            .cell_ids()
            .find(|&id| {
                let c = grid.center_of(id);
                c.y.abs() < 1e-9 && c.x > 0.0
            })
            .expect("east neighbor exists");
        grid.center_of(id)
    }

    #[test]
    fn handoff_into_full_cell_drops_call() {
        let grid = HexGrid::new(1, 1.0);
        let config = SimulationConfig { movement_tick_s: 1.0, ..Default::default() };
        // Fill the east neighbor with stationary video calls, then drive a
        // voice call into it.
        let east = east_center(&HexGrid::new(1, 1.0));
        let mut workload: Vec<UserSpec> = (0..4)
            .map(|i| UserSpec {
                arrival_s: 0.5 + i as f64 * 0.01,
                profile: ServiceProfile::paper(ServiceClass::Video),
                start: MobileState::new(east, 0.0, 0.0),
                mobility: MobilityKind::StraightLine,
                holding_s: 10_000.0,
            })
            .collect();
        workload.push(UserSpec {
            arrival_s: 1.0,
            profile: ServiceProfile::paper(ServiceClass::Voice),
            start: MobileState::new(Point::new(0.0, 0.0), 0.0, 120.0),
            mobility: MobilityKind::StraightLine,
            holding_s: 10_000.0,
        });
        let mut sim = Simulation::new(grid, config, controllers(7));
        let metrics = sim.run(workload);
        assert_eq!(metrics.accepted_new, 5);
        assert!(metrics.handoff_dropped >= 1, "expected a dropped handoff");
    }

    /// Speed (km/h) that advances a user by `km_per_tick` km per
    /// movement tick of `tick_s` seconds.
    fn kmh_for(km_per_tick: f64, tick_s: f64) -> f64 {
        km_per_tick / tick_s * 3_600.0
    }

    #[test]
    fn call_end_exactly_on_a_barrier_preempts_the_handoff() {
        // A call whose end lands *exactly* on an epoch barrier is a
        // call-end, not a handoff: run_events drains events with
        // `time <= barrier` before the movement phase, so the user is
        // gone before the step that would have crossed the border.
        let grid = HexGrid::new(1, 1.0);
        let east = east_center(&grid);
        let boundary = east.x / 2.0;
        let km_per_tick = 0.04;
        // 4.5 ticks from the border: the crossing step is step 5.
        let spec = |holding_s: f64| UserSpec {
            arrival_s: 0.0,
            profile: ServiceProfile::paper(ServiceClass::Voice),
            start: MobileState::new(
                Point::new(boundary - 4.5 * km_per_tick, 0.0),
                0.0,
                kmh_for(km_per_tick, 1.0),
            ),
            mobility: MobilityKind::StraightLine,
            holding_s,
        };
        let run = |holding_s: f64, shards: usize| {
            let config = SimulationConfig { movement_tick_s: 1.0, shards, ..Default::default() };
            let mut sim = Simulation::new(HexGrid::new(1, 1.0), config, controllers(7));
            sim.run(vec![spec(holding_s)])
        };
        // Control: a slightly longer call does cross at barrier 5.
        let crossing = run(5.5, 1);
        assert_eq!(crossing.handoff_attempts, 1, "control call should hand off");
        // Holding 5.0 ends exactly at barrier 5: completed, never stepped
        // at barrier 5, no handoff.
        let exact = run(5.0, 1);
        assert_eq!(exact.completed, 1);
        assert_eq!(exact.handoff_attempts, 0, "end-at-barrier must preempt the handoff");
        assert_eq!(exact.mobility_steps, 4, "no movement step at the final barrier");
        for shards in [2, 4, 7] {
            assert_eq!(exact, run(5.0, shards), "barrier-exact end diverged at {shards} shards");
        }
    }

    #[test]
    fn call_end_racing_an_outbound_handoff_across_shards() {
        // The call hands off to a cell owned by another shard at barrier
        // 2, then ends mid-epoch at t = 2.5. The source shard still holds
        // the original generation-0 CallEnd event for t = 2.5; it must be
        // discarded as stale while the destination shard's generation-1
        // event completes the call — exactly once, on either side.
        let grid = HexGrid::new(1, 1.0);
        let east_id = grid.locate(east_center(&grid));
        let boundary = east_center(&grid).x / 2.0;
        let km_per_tick = 0.04;
        let spec = UserSpec {
            arrival_s: 0.0,
            profile: ServiceProfile::paper(ServiceClass::Voice),
            // 1.5 ticks from the border: crosses on step 2.
            start: MobileState::new(
                Point::new(boundary - 1.5 * km_per_tick, 0.0),
                0.0,
                kmh_for(km_per_tick, 1.0),
            ),
            mobility: MobilityKind::StraightLine,
            holding_s: 2.5,
        };
        let run = |shards: usize| {
            let config = SimulationConfig { movement_tick_s: 1.0, shards, ..Default::default() };
            let mut sim = Simulation::new(HexGrid::new(1, 1.0), config, controllers(7));
            let metrics = sim.run(vec![spec.clone()]);
            for id in 0..7 {
                assert_eq!(
                    sim.occupied(CellId(id)),
                    BandwidthUnits::ZERO,
                    "cell {id} leaked bandwidth at {shards} shards"
                );
            }
            metrics
        };
        let single = run(1);
        assert_eq!(single.handoff_attempts, 1);
        assert_eq!(single.handoff_accepted, 1);
        assert_eq!(single.completed, 1, "the call must complete exactly once");
        // Pick a shard count that puts source (cell 0) and destination on
        // different shards, plus a few others for good measure.
        let remote = (2..=7).find(|s| east_id.0 as usize % s != 0).expect("remote split exists");
        for shards in [remote, 4, 7] {
            assert_eq!(single, run(shards), "handoff/end race diverged at {shards} shards");
        }
    }

    #[test]
    fn handoff_into_a_full_cell_on_a_remote_shard_drops_the_call() {
        // Same setup as handoff_into_full_cell_drops_call, but run with
        // shard counts that place the full east neighbor on a different
        // shard than the source cell: the migrant is exchanged at the
        // barrier, denied at the remote cell, and dropped — bit-identical
        // to the single-shard run.
        let grid = HexGrid::new(1, 1.0);
        let east = east_center(&grid);
        let east_id = grid.locate(east);
        let mut workload: Vec<UserSpec> = (0..4)
            .map(|i| UserSpec {
                arrival_s: 0.5 + i as f64 * 0.01,
                profile: ServiceProfile::paper(ServiceClass::Video),
                start: MobileState::new(east, 0.0, 0.0),
                mobility: MobilityKind::StraightLine,
                holding_s: 10_000.0,
            })
            .collect();
        workload.push(UserSpec {
            arrival_s: 1.0,
            profile: ServiceProfile::paper(ServiceClass::Voice),
            start: MobileState::new(Point::new(0.0, 0.0), 0.0, 120.0),
            mobility: MobilityKind::StraightLine,
            holding_s: 10_000.0,
        });
        let run = |shards: usize| {
            let config = SimulationConfig {
                movement_tick_s: 1.0,
                max_time_s: 600.0,
                shards,
                ..Default::default()
            };
            let mut sim = Simulation::new(HexGrid::new(1, 1.0), config, controllers(7));
            sim.run(workload.clone())
        };
        let single = run(1);
        assert_eq!(single.accepted_new, 5);
        assert!(single.handoff_dropped >= 1, "expected a dropped handoff");
        let remote = (2..=7).find(|s| east_id.0 as usize % s != 0).expect("remote split exists");
        assert_ne!(east_id.0 as usize % remote, 0, "east cell must live on a remote shard");
        for shards in [remote, 4, 7] {
            assert_eq!(single, run(shards), "remote full-cell drop diverged at {shards} shards");
        }
    }

    fn walker_workload(n: u64) -> Vec<UserSpec> {
        (0..n)
            .map(|i| UserSpec {
                arrival_s: i as f64,
                profile: ServiceProfile::paper(if i % 3 == 0 {
                    ServiceClass::Video
                } else {
                    ServiceClass::Text
                }),
                start: MobileState::new(Point::new(0.1 * i as f64 % 1.5, 0.0), 45.0, 30.0),
                mobility: MobilityKind::Walker(Walker::paper_default()),
                holding_s: 60.0 + i as f64,
            })
            .collect()
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let grid = HexGrid::new(1, 2.0);
            let config = SimulationConfig { movement_tick_s: 2.0, seed: 7, ..Default::default() };
            let mut sim = Simulation::new(grid, config, controllers(7));
            sim.run(walker_workload(50))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sharded_runs_match_single_shard_bit_for_bit() {
        let run = |shards: usize| {
            let grid = HexGrid::new(2, 2.0);
            let config =
                SimulationConfig { movement_tick_s: 2.0, seed: 7, shards, ..Default::default() };
            let mut sim = Simulation::new(grid, config, controllers(19));
            sim.run(walker_workload(200))
        };
        let single = run(1);
        for shards in [2, 3, 4, 19, 64] {
            assert_eq!(single, run(shards), "{shards} shards diverged from 1");
        }
        assert!(single.handoff_attempts > 0, "workload should exercise handoffs");
    }

    #[test]
    fn pooled_and_pinned_drivers_match_sequential_bit_for_bit() {
        // Force worker counts explicitly: auto-sizing on a small CI box
        // may resolve to the sequential driver, and the stealing/pinned
        // paths must be exercised regardless of the host's core count.
        let run = |shards: usize, workers: usize, pin_shards: bool| {
            let grid = HexGrid::new(2, 2.0);
            let config = SimulationConfig {
                movement_tick_s: 2.0,
                seed: 7,
                shards,
                workers,
                pin_shards,
                ..Default::default()
            };
            let mut sim = Simulation::new(grid, config, controllers(19));
            sim.run(walker_workload(200))
        };
        let single = run(1, 1, false);
        for shards in [2, 3, 7] {
            for workers in [2, 3] {
                for pin_shards in [false, true] {
                    assert_eq!(
                        single,
                        run(shards, workers, pin_shards),
                        "{shards} shards / {workers} workers (pin={pin_shards}) diverged"
                    );
                }
            }
        }
        assert!(single.handoff_attempts > 0, "workload should exercise handoffs");
    }

    #[test]
    fn streamed_runs_match_eager_bit_for_bit() {
        use crate::traffic::HoldingTimes;
        use crate::workload::{MobilityChoice, SpawnSpec, Workload};
        let grid = HexGrid::new(2, 2.0);
        let desc = Workload {
            spawn: SpawnSpec::AnyCell,
            mobility: MobilityChoice::Walker,
            ..Workload::default()
        };
        let holding = HoldingTimes::new(60.0);
        let config = |shards, workers| SimulationConfig {
            movement_tick_s: 2.0,
            seed: 7,
            shards,
            workers,
            max_time_s: 3_000.0,
            ..Default::default()
        };
        let eager = {
            let mut sim = Simulation::new(grid.clone(), config(1, 1), controllers(19));
            sim.run(desc.generate(&grid, 300, 600.0, holding, 42))
        };
        assert!(eager.handoff_attempts > 0, "workload should exercise handoffs");
        for shards in [1, 2, 4] {
            for workers in [1, 2] {
                for chunk in [1, 7, 4096] {
                    let stream = desc.stream(&grid, 300, 600.0, holding, 42, chunk);
                    let mut sim =
                        Simulation::new(grid.clone(), config(shards, workers), controllers(19));
                    let streamed = sim.run_streamed(stream);
                    assert_eq!(
                        eager, streamed,
                        "streamed diverged: {shards} shards, {workers} workers, chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_cell_series_matches_eager() {
        // The epoch pulse (sample_cells) must fire on exactly the same
        // barriers in both drivers, including arrival gaps where every
        // shard is momentarily idle but the stream is not exhausted.
        use crate::traffic::HoldingTimes;
        use crate::workload::{MobilityChoice, SpawnSpec, Workload};
        let grid = HexGrid::new(1, 2.0);
        let desc = Workload {
            spawn: SpawnSpec::AnyCell,
            mobility: MobilityChoice::Walker,
            ..Workload::default()
        };
        let holding = HoldingTimes::new(30.0);
        let config = SimulationConfig {
            movement_tick_s: 2.0,
            seed: 9,
            shards: 3,
            max_time_s: 2_000.0,
            ..Default::default()
        };
        let eager = {
            let mut sim = Simulation::new(grid.clone(), config, controllers(7));
            sim.run_with(
                desc.generate(&grid, 60, 400.0, holding, 5),
                (Metrics::new(), CellLoadSeries::new()),
            )
        };
        let streamed = {
            let mut sim = Simulation::new(grid.clone(), config, controllers(7));
            sim.run_streamed_with(
                desc.stream(&grid, 60, 400.0, holding, 5, 8),
                (Metrics::new(), CellLoadSeries::new()),
            )
        };
        assert_eq!(eager, streamed);
    }

    #[test]
    fn worker_pool_resolution_caps_at_shard_count() {
        assert_eq!(resolve_workers(8, 3), 3);
        assert_eq!(resolve_workers(2, 5), 2);
        assert_eq!(resolve_workers(1, 4), 1);
        // Auto mode asks the OS but can never exceed one per shard.
        assert!(resolve_workers(0, 2) <= 2);
        assert!(resolve_workers(0, 1) == 1);
    }

    #[test]
    fn cell_series_sink_is_shard_independent() {
        let run = |shards: usize| {
            let grid = HexGrid::new(1, 2.0);
            let config =
                SimulationConfig { movement_tick_s: 2.0, seed: 9, shards, ..Default::default() };
            let mut sim = Simulation::new(grid, config, controllers(7));
            sim.run_with(walker_workload(60), (Metrics::new(), CellLoadSeries::new()))
        };
        let (m1, s1) = run(1);
        let (m4, s4) = run(4);
        assert_eq!(m1, m4);
        assert_eq!(s1, s4);
        assert_eq!(s1.capacity_bu(), 40);
        assert!(s1.cells().count() > 0, "series sampled no cells");
        let csv = s1.to_csv();
        assert!(csv.starts_with("cell,t_s,occupied_bu\n"));
    }

    #[test]
    fn controller_veto_blocks_even_with_capacity() {
        struct DenyAll;
        impl AdmissionController for DenyAll {
            fn name(&self) -> &str {
                "deny"
            }
            fn decide(&mut self, _r: &CallRequest, _c: &BandwidthLedger) -> AdmissionPlan {
                AdmissionPlan::gate(Decision::binary(false))
            }
        }
        let grid = HexGrid::single_cell(10.0);
        let mut sim = Simulation::new(
            grid,
            SimulationConfig::default(),
            vec![Box::new(DenyAll) as BoxedController],
        );
        let metrics = sim.run(vec![stationary_spec(1.0, ServiceClass::Text, 10.0)]);
        assert_eq!(metrics.blocked_new, 1);
        assert_eq!(metrics.accepted_new, 0);
    }

    struct SharedState;
    impl AdmissionController for SharedState {
        fn name(&self) -> &str {
            "shared"
        }
        fn decide(&mut self, _r: &CallRequest, _c: &BandwidthLedger) -> AdmissionPlan {
            AdmissionPlan::gate(Decision::binary(true))
        }
        fn is_cell_local(&self) -> bool {
            false
        }
    }

    fn shared_controllers(n: usize) -> Vec<BoxedController> {
        (0..n).map(|_| Box::new(SharedState) as BoxedController).collect()
    }

    #[test]
    #[should_panic(expected = "shares cross-cell state")]
    fn shared_state_controller_refuses_multiple_shards() {
        let grid = HexGrid::new(1, 1.0);
        let config = SimulationConfig { shards: 2, ..Default::default() };
        let mut sim = Simulation::new(grid, config, shared_controllers(7));
        let _ = sim.run(vec![stationary_spec(1.0, ServiceClass::Voice, 10.0)]);
    }

    #[test]
    fn shared_state_controller_runs_single_shard() {
        let grid = HexGrid::new(1, 1.0);
        let mut sim = Simulation::new(grid, SimulationConfig::default(), shared_controllers(7));
        let metrics = sim.run(vec![stationary_spec(1.0, ServiceClass::Voice, 10.0)]);
        assert_eq!(metrics.accepted_new, 1);
    }

    #[test]
    #[should_panic(expected = "one controller per cell")]
    fn controller_count_mismatch_panics() {
        let grid = HexGrid::new(1, 1.0);
        let _ = Simulation::new(grid, SimulationConfig::default(), controllers(3));
    }

    #[test]
    fn from_factory_builds_one_controller_per_cell() {
        let grid = HexGrid::new(1, 10.0);
        let factory = || Box::new(CompleteSharing::new()) as BoxedController;
        let mut sim = Simulation::from_factory(grid, SimulationConfig::default(), &factory);
        let metrics = sim.run(vec![stationary_spec(1.0, ServiceClass::Voice, 10.0)]);
        assert_eq!(metrics.accepted_new, 1);
    }

    #[test]
    fn utilization_is_tracked() {
        let grid = HexGrid::single_cell(10.0);
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(vec![stationary_spec(0.0, ServiceClass::Video, 600.0)]);
        assert!(metrics.mean_utilization() > 0.0);
    }

    #[test]
    fn mobility_steps_are_counted() {
        let grid = HexGrid::single_cell(10.0);
        let config = SimulationConfig { movement_tick_s: 1.0, ..Default::default() };
        let mut sim = Simulation::new(grid, config, controllers(1));
        // One stationary call holding ~10.5 s: stepped at barriers 1..=10.
        let metrics = sim.run(vec![stationary_spec(0.0, ServiceClass::Voice, 10.5)]);
        assert_eq!(metrics.mobility_steps, 10);
        assert_eq!(metrics.total_events(), 1 + 1 + 10);
    }
}
