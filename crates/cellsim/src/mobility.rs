//! Mobility models synthesizing the GPS observations FLC1 consumes.
//!
//! The paper obtains user movement "by GPS" — speed, angle and distance
//! from the base station. We substitute mobility models that generate the
//! same observable triple (documented in DESIGN.md). The central model is
//! [`Walker`], whose heading stability grows with speed: pedestrians
//! (4–10 km/h) change direction freely while vehicles (30–60 km/h) hold
//! their heading — exactly the behaviour the paper invokes to explain
//! Fig. 7.

use facs_cac::MobilityInfo;
use serde::{Deserialize, Serialize};

use crate::geometry::Point;
use crate::rng::SimRng;

/// The kinematic state of one mobile terminal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MobileState {
    /// Position in km.
    pub position: Point,
    /// Heading in degrees, counterclockwise from +x, in `(-180, 180]`.
    pub heading_deg: f64,
    /// Speed in km/h.
    pub speed_kmh: f64,
}

impl MobileState {
    /// Creates a state.
    #[must_use]
    pub fn new(position: Point, heading_deg: f64, speed_kmh: f64) -> Self {
        Self {
            position,
            heading_deg: facs_cac::normalize_angle(heading_deg),
            speed_kmh: speed_kmh.max(0.0),
        }
    }

    /// The GPS observation relative to a base station at `bs_center`:
    /// speed, heading deviation from the BS bearing, and distance. This is
    /// precisely FLC1's `(S, A, D)` input triple.
    #[must_use]
    pub fn observe(&self, bs_center: Point) -> MobilityInfo {
        let distance = self.position.distance_to(bs_center);
        let angle = if distance < 1e-9 {
            // At the BS itself every heading is "toward" it.
            0.0
        } else {
            let bearing = self.position.bearing_to(bs_center);
            facs_cac::normalize_angle(self.heading_deg - bearing)
        };
        MobilityInfo::new(self.speed_kmh, angle, distance)
    }
}

/// A mobility model advances a terminal's kinematic state through time.
///
/// Implementations must be deterministic given the `SimRng` stream.
pub trait MobilityModel: Send {
    /// Advances `state` by `dt_s` seconds.
    fn step(&mut self, state: &mut MobileState, dt_s: f64, rng: &mut SimRng);

    /// A short model name for logs and experiment records.
    fn name(&self) -> &str;
}

/// Constant-speed walker with heading diffusion inversely related to
/// speed.
///
/// Per step the heading receives a gaussian perturbation with standard
/// deviation `base_turn_sigma_deg * reference_speed / max(speed, 1)`
/// (scaled by √dt): a 4 km/h pedestrian wanders; a 60 km/h car barely
/// deviates. This reproduces the paper's premise that "with the increase
/// of the user speed, the user direction can not be changed easy".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Walker {
    base_turn_sigma_deg: f64,
    reference_speed_kmh: f64,
}

impl Walker {
    /// Creates a walker with the given heading-diffusion scale, referenced
    /// to `reference_speed_kmh` (the speed at which the sigma applies
    /// as-is).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not finite and positive.
    #[must_use]
    pub fn new(base_turn_sigma_deg: f64, reference_speed_kmh: f64) -> Self {
        assert!(
            base_turn_sigma_deg.is_finite() && base_turn_sigma_deg >= 0.0,
            "bad turn sigma {base_turn_sigma_deg}"
        );
        assert!(
            reference_speed_kmh.is_finite() && reference_speed_kmh > 0.0,
            "bad reference speed {reference_speed_kmh}"
        );
        Self { base_turn_sigma_deg, reference_speed_kmh }
    }

    /// The paper-calibrated default: at 10 km/h a terminal's heading
    /// drifts with σ = 4°·√s, so over a five-minute journey a pedestrian's
    /// direction is close to uniform (σ ≈ 69° at 10 km/h, ≈173° at
    /// 4 km/h) while a 60 km/h vehicle stays within ≈12° of its course —
    /// the exact asymmetry the paper's Fig. 7 narrative describes.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(4.0, 10.0)
    }

    /// Heading sigma (degrees per √second) at the given speed.
    #[must_use]
    pub fn turn_sigma_at(&self, speed_kmh: f64) -> f64 {
        self.base_turn_sigma_deg * self.reference_speed_kmh / speed_kmh.max(1.0)
    }
}

impl MobilityModel for Walker {
    fn step(&mut self, state: &mut MobileState, dt_s: f64, rng: &mut SimRng) {
        let sigma = self.turn_sigma_at(state.speed_kmh) * dt_s.sqrt();
        let turn = rng.normal(0.0, sigma);
        state.heading_deg = facs_cac::normalize_angle(state.heading_deg + turn);
        let dist_km = state.speed_kmh * dt_s / 3600.0;
        state.position = state.position.step(state.heading_deg, dist_km);
    }

    fn name(&self) -> &str {
        "walker"
    }
}

/// Random-waypoint: pick a destination in a disc, travel straight to it,
/// pause, repeat. The classic ad-hoc-network benchmark model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomWaypoint {
    region_center: Point,
    region_radius_km: f64,
    pause_s: f64,
    destination: Option<Point>,
    pause_left_s: f64,
}

impl RandomWaypoint {
    /// Creates the model over a disc of `region_radius_km` around
    /// `region_center`, pausing `pause_s` seconds at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the radius is not finite and positive or the pause is
    /// negative.
    #[must_use]
    pub fn new(region_center: Point, region_radius_km: f64, pause_s: f64) -> Self {
        assert!(
            region_radius_km.is_finite() && region_radius_km > 0.0,
            "bad region radius {region_radius_km}"
        );
        assert!(pause_s.is_finite() && pause_s >= 0.0, "bad pause {pause_s}");
        Self { region_center, region_radius_km, pause_s, destination: None, pause_left_s: 0.0 }
    }

    fn pick_destination(&mut self, rng: &mut SimRng) -> Point {
        // Uniform in the disc via rejection-free polar sampling.
        let theta = rng.uniform_range(0.0, std::f64::consts::TAU);
        let r = self.region_radius_km * rng.uniform().sqrt();
        Point::new(self.region_center.x + r * theta.cos(), self.region_center.y + r * theta.sin())
    }
}

impl MobilityModel for RandomWaypoint {
    fn step(&mut self, state: &mut MobileState, dt_s: f64, rng: &mut SimRng) {
        if self.pause_left_s > 0.0 {
            self.pause_left_s = (self.pause_left_s - dt_s).max(0.0);
            return;
        }
        let dest = match self.destination {
            Some(d) => d,
            None => {
                let d = self.pick_destination(rng);
                self.destination = Some(d);
                d
            }
        };
        let to_go = state.position.distance_to(dest);
        let step_km = state.speed_kmh * dt_s / 3600.0;
        if step_km >= to_go {
            state.position = dest;
            self.destination = None;
            self.pause_left_s = self.pause_s;
        } else {
            state.heading_deg = state.position.bearing_to(dest);
            state.position = state.position.step(state.heading_deg, step_km);
        }
    }

    fn name(&self) -> &str {
        "random-waypoint"
    }
}

/// Gauss–Markov: speed and heading follow first-order autoregressive
/// processes with tunable memory `alpha` in `[0, 1]` (1 = straight line,
/// 0 = memoryless Brownian-like motion).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussMarkov {
    alpha: f64,
    mean_speed_kmh: f64,
    speed_sigma: f64,
    heading_sigma_deg: f64,
    mean_heading_deg: f64,
}

impl GaussMarkov {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or sigmas are negative.
    #[must_use]
    pub fn new(alpha: f64, mean_speed_kmh: f64, speed_sigma: f64, heading_sigma_deg: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} outside [0,1]");
        assert!(speed_sigma >= 0.0 && heading_sigma_deg >= 0.0, "negative sigma");
        Self {
            alpha,
            mean_speed_kmh: mean_speed_kmh.max(0.0),
            speed_sigma,
            heading_sigma_deg,
            mean_heading_deg: 0.0,
        }
    }

    /// Sets the long-run mean heading (drift direction).
    #[must_use]
    pub fn with_mean_heading(mut self, heading_deg: f64) -> Self {
        self.mean_heading_deg = facs_cac::normalize_angle(heading_deg);
        self
    }
}

impl MobilityModel for GaussMarkov {
    fn step(&mut self, state: &mut MobileState, dt_s: f64, rng: &mut SimRng) {
        let a = self.alpha;
        let root = (1.0 - a * a).max(0.0).sqrt();
        state.speed_kmh = (a * state.speed_kmh
            + (1.0 - a) * self.mean_speed_kmh
            + root * self.speed_sigma * rng.standard_normal())
        .max(0.0);
        let heading = a * state.heading_deg
            + (1.0 - a) * self.mean_heading_deg
            + root * self.heading_sigma_deg * rng.standard_normal();
        state.heading_deg = facs_cac::normalize_angle(heading);
        let dist_km = state.speed_kmh * dt_s / 3600.0;
        state.position = state.position.step(state.heading_deg, dist_km);
    }

    fn name(&self) -> &str {
        "gauss-markov"
    }
}

/// A fixed-trajectory model for controlled experiments (figs. 8 and 9 pin
/// the angle or distance): the terminal keeps its heading and speed
/// exactly.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StraightLine;

impl MobilityModel for StraightLine {
    fn step(&mut self, state: &mut MobileState, dt_s: f64, _rng: &mut SimRng) {
        let dist_km = state.speed_kmh * dt_s / 3600.0;
        state.position = state.position.step(state.heading_deg, dist_km);
    }

    fn name(&self) -> &str {
        "straight-line"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(12345)
    }

    #[test]
    fn observe_computes_angle_relative_to_bs() {
        // User 3 km east of BS, heading west (toward it): angle 0.
        let state = MobileState::new(Point::new(3.0, 0.0), 180.0, 30.0);
        let obs = state.observe(Point::ORIGIN);
        assert!((obs.angle_deg - 0.0).abs() < 1e-9);
        assert!((obs.distance_km - 3.0).abs() < 1e-9);
        assert_eq!(obs.speed_kmh, 30.0);
        // Heading east (away): angle 180.
        let state = MobileState::new(Point::new(3.0, 0.0), 0.0, 30.0);
        assert!((state.observe(Point::ORIGIN).angle_deg.abs() - 180.0).abs() < 1e-9);
        // Heading north while BS is west: angle 90 (perpendicular).
        let state = MobileState::new(Point::new(3.0, 0.0), 90.0, 30.0);
        assert!((state.observe(Point::ORIGIN).angle_deg.abs() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn observe_at_bs_center_is_angle_zero() {
        let state = MobileState::new(Point::ORIGIN, 123.0, 10.0);
        assert_eq!(state.observe(Point::ORIGIN).angle_deg, 0.0);
    }

    #[test]
    fn walker_speed_is_preserved_and_position_moves() {
        let mut model = Walker::paper_default();
        let mut state = MobileState::new(Point::ORIGIN, 0.0, 60.0);
        let mut rng = rng();
        let start = state.position;
        for _ in 0..60 {
            model.step(&mut state, 1.0, &mut rng);
        }
        assert_eq!(state.speed_kmh, 60.0);
        // One minute at 60 km/h covers ~1 km of path; with little heading
        // drift at 60 km/h the displacement should be close to that.
        let displacement = start.distance_to(state.position);
        assert!(displacement > 0.5, "displacement {displacement}");
        assert!(displacement <= 1.0 + 1e-9);
    }

    #[test]
    fn walker_slow_users_turn_more() {
        let model = Walker::paper_default();
        assert!(model.turn_sigma_at(4.0) > model.turn_sigma_at(30.0));
        assert!(model.turn_sigma_at(30.0) > model.turn_sigma_at(60.0));
        // Empirically: heading variance after many steps is larger at 4 km/h.
        let spread = |speed: f64, seed: u64| {
            let mut model = Walker::paper_default();
            let mut state = MobileState::new(Point::ORIGIN, 0.0, speed);
            let mut rng = SimRng::seed_from_u64(seed);
            let mut sum_sq = 0.0;
            for _ in 0..200 {
                model.step(&mut state, 1.0, &mut rng);
                sum_sq += state.heading_deg * state.heading_deg;
            }
            sum_sq / 200.0
        };
        assert!(spread(4.0, 1) > spread(60.0, 1) * 2.0);
    }

    #[test]
    fn random_waypoint_reaches_destination_and_pauses() {
        let mut model = RandomWaypoint::new(Point::ORIGIN, 1.0, 5.0);
        let mut state = MobileState::new(Point::ORIGIN, 0.0, 36.0); // 10 m/s
        let mut rng = rng();
        // Step until a pause begins (destination reached).
        let mut paused = false;
        for _ in 0..10_000 {
            model.step(&mut state, 1.0, &mut rng);
            if model.pause_left_s > 0.0 {
                paused = true;
                break;
            }
        }
        assert!(paused, "never reached a waypoint");
        let at_pause = state.position;
        model.step(&mut state, 1.0, &mut rng);
        assert_eq!(state.position.distance_to(at_pause), 0.0, "moved during pause");
    }

    #[test]
    fn random_waypoint_stays_in_region() {
        let mut model = RandomWaypoint::new(Point::ORIGIN, 2.0, 0.0);
        let mut state = MobileState::new(Point::ORIGIN, 0.0, 72.0);
        let mut rng = rng();
        for _ in 0..5_000 {
            model.step(&mut state, 1.0, &mut rng);
            assert!(
                state.position.distance_to(Point::ORIGIN) <= 2.0 + 0.03,
                "escaped to {:?}",
                state.position
            );
        }
    }

    #[test]
    fn gauss_markov_alpha_one_is_straight() {
        let mut model = GaussMarkov::new(1.0, 30.0, 5.0, 20.0);
        let mut state = MobileState::new(Point::ORIGIN, 45.0, 30.0);
        let mut rng = rng();
        for _ in 0..50 {
            model.step(&mut state, 1.0, &mut rng);
        }
        assert!((state.heading_deg - 45.0).abs() < 1e-9);
        assert!((state.speed_kmh - 30.0).abs() < 1e-9);
    }

    #[test]
    fn gauss_markov_reverts_to_mean_speed() {
        let mut model = GaussMarkov::new(0.5, 30.0, 0.0, 0.0);
        let mut state = MobileState::new(Point::ORIGIN, 0.0, 120.0);
        let mut rng = rng();
        for _ in 0..60 {
            model.step(&mut state, 1.0, &mut rng);
        }
        assert!((state.speed_kmh - 30.0).abs() < 0.1, "speed {}", state.speed_kmh);
    }

    #[test]
    fn straight_line_never_turns() {
        let mut model = StraightLine;
        let mut state = MobileState::new(Point::ORIGIN, 30.0, 60.0);
        let mut rng = rng();
        for _ in 0..100 {
            model.step(&mut state, 1.0, &mut rng);
        }
        assert_eq!(state.heading_deg, 30.0);
        // 100 s at 60 km/h = 5/3 km along the 30° ray.
        let expected = Point::ORIGIN.step(30.0, 60.0 * 100.0 / 3600.0);
        assert!(state.position.distance_to(expected) < 1e-9);
    }

    #[test]
    fn models_are_deterministic_under_seed() {
        let run = || {
            let mut model = Walker::paper_default();
            let mut state = MobileState::new(Point::ORIGIN, 0.0, 10.0);
            let mut rng = SimRng::seed_from_u64(99);
            for _ in 0..100 {
                model.step(&mut state, 1.0, &mut rng);
            }
            (state.position.x, state.position.y, state.heading_deg)
        };
        assert_eq!(run(), run());
    }
}
