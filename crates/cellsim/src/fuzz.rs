//! Workload fuzzing: seeded sampling of structurally valid scenarios,
//! with shrink-on-failure to a minimal reproducing case.
//!
//! The scenario catalog names six hand-written workload families; the
//! [`WorkloadFuzzer`] multiplies that coverage by sampling *arbitrary*
//! valid combinations of arrival patterns, spawn placements, grid
//! sizes, capacities, population mixes, mobility models and shard
//! counts. Every sampled [`FuzzCase`] is a plain [`ScenarioConfig`]
//! (plus the seed that produced it), so a failure is reproducible from
//! two numbers: the fuzzer seed and the case index.
//!
//! When a case fails a property (an invariant violation or a digest
//! divergence — see [`crate::validate`]), [`shrink`] greedily walks the
//! case toward the structurally simplest configuration that still
//! fails, using [`complexity`] as a strictly decreasing measure, and
//! returns the minimal reproducer to print next to the seed.

use facs_cac::{BandwidthUnits, ServiceClass, ServiceProfile, ServiceProfileSet};

use crate::rng::SimRng;
use crate::scenario::ScenarioConfig;
use crate::traffic::TrafficMix;
use crate::workload::{
    AngleSpec, ArrivalPattern, DistanceSpec, MobilityChoice, SpawnSpec, SpeedSpec,
};

/// Which admission-controller family a fuzz case validates.
///
/// The fuzzer samples a controller axis alongside the workload axes so
/// the determinism/invariant properties cover the stateful predictive
/// and self-tuning FACS variants, not just the reactive baseline. The
/// baseline keeps the majority share (5/8): it is the reference
/// implementation every other property (backend agreement, goldens) is
/// phrased against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerSlot {
    /// Plain reactive FACS (the original harness subject).
    Baseline,
    /// Predictive FACS over the EWMA/Holt forecaster.
    PredictEwma,
    /// Predictive FACS over the online-trained recurrent forecaster.
    PredictRnn,
    /// FACS with the online rule-weight tuner.
    Tuned,
}

/// One fuzzed scenario: the sampled configuration plus its provenance.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The fuzzer seed that generated this case.
    pub fuzz_seed: u64,
    /// The case index under that seed.
    pub index: u64,
    /// The sampled scenario (always structurally valid; one
    /// replication). `config.shards` is the sampled multi-shard
    /// comparand (2–7); the validation harness runs the case at 1 shard
    /// and at this count and requires bit-identical digests.
    pub config: ScenarioConfig,
    /// The controller family the validation harness runs this case
    /// under.
    pub controller: ControllerSlot,
}

/// Seeded generator of structurally valid workloads.
///
/// Case `i` of seed `s` is always the same configuration, so a CI
/// failure reproduces locally from the printed `(seed, index)` pair.
#[derive(Debug)]
pub struct WorkloadFuzzer {
    seed: u64,
}

impl WorkloadFuzzer {
    /// Creates a fuzzer; every case derives from `seed` alone.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Samples case `index` (deterministic per `(seed, index)`).
    #[must_use]
    pub fn case(&self, index: u64) -> FuzzCase {
        let mut rng = SimRng::seed_from_u64(self.seed ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let grid_radius = rng.index(3) as u32; // 1, 7 or 19 cells
        let cell_radius_km = [1.0, 2.0, 5.0, 10.0][rng.index(4)];
        let requests = 1 + rng.index(300);
        let window_s = rng.uniform_range(60.0, 1_200.0);
        let holding_mean_s = rng.uniform_range(10.0, 180.0);
        let capacity_bu = 10 + rng.index(71) as u32; // 10..=80
        let movement_tick_s = [1.0, 2.0, 5.0][rng.index(3)];
        let cells = 1 + 3 * grid_radius * (grid_radius + 1);

        let arrivals = match rng.index(3) {
            0 => ArrivalPattern::Uniform,
            1 => ArrivalPattern::Burst {
                center: rng.uniform_range(0.0, 1.0),
                width: rng.uniform_range(0.01, 0.5),
                weight: rng.uniform_range(0.0, 1.0),
            },
            _ => {
                let stages = 2 + rng.index(5);
                // At least one stage must have positive rate; force the
                // first and let the rest be anything in [0, 1].
                let mut rates = vec![rng.uniform_range(0.1, 1.0)];
                for _ in 1..stages {
                    rates.push(rng.uniform_range(0.0, 1.0));
                }
                ArrivalPattern::Stages(rates)
            }
        };

        let spawn = match rng.index(4) {
            0 => SpawnSpec::CenterCell,
            1 => SpawnSpec::AnyCell,
            2 => SpawnSpec::Hotspot {
                cell: rng.index(cells as usize) as u32,
                fraction: rng.uniform_range(0.0, 1.0),
            },
            _ => SpawnSpec::Corridor {
                heading_deg: rng.uniform_range(-180.0, 180.0),
                half_width_km: rng.uniform_range(0.0, cell_radius_km),
            },
        };

        let speed = match rng.index(3) {
            0 => SpeedSpec::PaperUniform,
            1 => SpeedSpec::Fixed(rng.uniform_range(0.0, 120.0)),
            _ => {
                let lo = rng.uniform_range(0.0, 60.0);
                SpeedSpec::Uniform(lo, lo + rng.uniform_range(1.0, 60.0))
            }
        };

        let angle = match rng.index(4) {
            0 => AngleSpec::Uniform,
            1 => AngleSpec::Fixed(rng.uniform_range(-180.0, 180.0)),
            2 => AngleSpec::Heading(rng.uniform_range(-180.0, 180.0)),
            _ => AngleSpec::HeadingHistory { history_s: rng.uniform_range(1.0, 600.0) },
        };

        let distance = match rng.index(3) {
            0 => DistanceSpec::UniformInCell,
            // Deliberately allowed past the cell radius: off-cell (even
            // off-map) spawns are structurally valid and must only ever
            // show up as blocked offered traffic.
            1 => DistanceSpec::Fixed(rng.uniform_range(0.0, 1.5 * cell_radius_km)),
            _ => {
                let lo = rng.uniform_range(0.0, cell_radius_km);
                DistanceSpec::Uniform(lo, lo + rng.uniform_range(0.0, cell_radius_km))
            }
        };

        let mobility = match rng.index(3) {
            0 => MobilityChoice::Auto,
            1 => MobilityChoice::Walker,
            _ => MobilityChoice::StraightLine,
        };

        // Any non-degenerate mix is valid; weights need not sum to 1.
        let mix = TrafficMix::new(
            rng.uniform_range(0.01, 1.0),
            rng.uniform_range(0.0, 1.0),
            rng.uniform_range(0.0, 1.0),
        );
        let workload_seed = rng.index(usize::MAX) as u64;
        // The multi-shard comparand: the validation harness runs every
        // case single-shard too and requires bit-identical digests, so
        // sampling here fuzzes the shard-count axis (including counts
        // above the cell count, which the kernel clamps).
        let shards = [2, 3, 4, 7][rng.index(4)];

        // Multi-class elastic sampling, appended *after* every original
        // draw so the pre-elastic fields of a given (seed, index) case
        // are unchanged by the elastic redesign.
        let profiles = if rng.chance(0.5) {
            let qos_floor = rng.uniform_range(0.3, 0.9);
            let text_nominal = 1 + rng.index(2) as u32; // 1..=2
            let voice_nominal = 3 + rng.index(4) as u32; // 3..=6
            let video_nominal = 8 + rng.index(5) as u32; // 8..=12
            let text_dur = rng.uniform_range(20.0, 120.0);
            let voice_dur = rng.uniform_range(60.0, 240.0);
            let video_dur = rng.uniform_range(60.0, 360.0);
            Some(ServiceProfileSet::new(
                ServiceProfile::elastic(
                    ServiceClass::Text,
                    BandwidthUnits::new(text_nominal),
                    qos_floor,
                    text_dur,
                ),
                ServiceProfile::elastic(
                    ServiceClass::Voice,
                    BandwidthUnits::new(voice_nominal),
                    qos_floor,
                    voice_dur,
                ),
                ServiceProfile::elastic(
                    ServiceClass::Video,
                    BandwidthUnits::new(video_nominal),
                    qos_floor,
                    video_dur,
                ),
            ))
        } else {
            None
        };

        // Streamed-synthesis sampling: appended after every earlier
        // draw (profiles included) so pre-streaming fields of a given
        // (seed, index) case are unchanged by the streaming tentpole.
        // Half of all cases exercise the chunked WorkloadStream path;
        // the validation harness checks their digests against eager.
        let streamed = rng.chance(0.5);

        // Controller-family sampling: appended LAST, so every earlier
        // field of a given (seed, index) case is unchanged by the
        // predictive-admission extension. 3/8 of cases exercise the
        // stateful variants (forecasters, tuner); the rest stay on the
        // reactive baseline.
        let controller = match rng.index(8) {
            5 => ControllerSlot::PredictEwma,
            6 => ControllerSlot::PredictRnn,
            7 => ControllerSlot::Tuned,
            _ => ControllerSlot::Baseline,
        };

        let config = ScenarioConfig {
            requests,
            window_s,
            holding_mean_s,
            capacity_bu,
            grid_radius,
            cell_radius_km,
            speed,
            angle,
            distance,
            spawn,
            mobility,
            mix,
            profiles,
            arrivals,
            movement_tick_s,
            shards,
            workers: 0,
            seed: workload_seed,
            replications: 1,
            streamed,
        };
        FuzzCase { fuzz_seed: self.seed, index, config, controller }
    }

    /// The first `count` cases, in index order.
    pub fn cases(&self, count: u64) -> impl Iterator<Item = FuzzCase> + '_ {
        (0..count).map(|i| self.case(i))
    }
}

/// Structural size of a case: strictly decreases along every shrink
/// step, which bounds the shrink loop and lets tests assert progress.
#[must_use]
pub fn complexity(config: &ScenarioConfig) -> u64 {
    let mut c = config.requests as u64;
    c += u64::from(config.grid_radius) * 50;
    c += (config.window_s / 10.0) as u64;
    c += (config.holding_mean_s / 5.0) as u64;
    c += match &config.arrivals {
        ArrivalPattern::Uniform => 0,
        ArrivalPattern::Burst { .. } => 25,
        ArrivalPattern::Stages(rates) => 25 + 5 * rates.len() as u64,
    };
    c += match config.spawn {
        SpawnSpec::CenterCell => 0,
        SpawnSpec::AnyCell => 10,
        SpawnSpec::Hotspot { .. } | SpawnSpec::Corridor { .. } => 20,
    };
    c += match config.speed {
        SpeedSpec::Fixed(_) => 0,
        SpeedSpec::PaperUniform | SpeedSpec::Uniform(..) => 5,
    };
    c += match config.angle {
        AngleSpec::Fixed(_) | AngleSpec::Heading(_) => 0,
        AngleSpec::Uniform | AngleSpec::HeadingHistory { .. } => 5,
    };
    c += match config.distance {
        DistanceSpec::Fixed(_) => 0,
        DistanceSpec::UniformInCell | DistanceSpec::Uniform(..) => 5,
    };
    c += match config.profiles {
        Some(_) => 15,
        None => 0,
    };
    c
}

/// The one-step structural simplifications of `config`, each strictly
/// smaller under [`complexity`].
#[must_use]
pub fn shrink_candidates(config: &ScenarioConfig) -> Vec<ScenarioConfig> {
    let mut out = Vec::new();
    let mut push = |candidate: ScenarioConfig| {
        debug_assert!(
            complexity(&candidate) < complexity(config),
            "shrink candidate did not get simpler"
        );
        out.push(candidate);
    };
    if config.requests > 1 {
        push(ScenarioConfig { requests: config.requests / 2, ..config.clone() });
        push(ScenarioConfig { requests: config.requests - 1, ..config.clone() });
    }
    if config.grid_radius > 0 {
        // Smaller grids keep hotspot cells in range (generate clamps
        // anyway) and keep corridors valid.
        push(ScenarioConfig { grid_radius: config.grid_radius - 1, ..config.clone() });
    }
    if config.window_s >= 120.0 {
        push(ScenarioConfig { window_s: config.window_s / 2.0, ..config.clone() });
    }
    if config.holding_mean_s >= 20.0 {
        push(ScenarioConfig { holding_mean_s: config.holding_mean_s / 2.0, ..config.clone() });
    }
    match &config.arrivals {
        ArrivalPattern::Uniform => {}
        ArrivalPattern::Stages(rates) if rates.len() > 2 => {
            let half = rates[..rates.len() / 2].to_vec();
            push(ScenarioConfig { arrivals: ArrivalPattern::Stages(half), ..config.clone() });
            push(ScenarioConfig { arrivals: ArrivalPattern::Uniform, ..config.clone() });
        }
        _ => push(ScenarioConfig { arrivals: ArrivalPattern::Uniform, ..config.clone() }),
    }
    if config.spawn != SpawnSpec::CenterCell {
        push(ScenarioConfig { spawn: SpawnSpec::CenterCell, ..config.clone() });
    }
    if !matches!(config.speed, SpeedSpec::Fixed(_)) {
        push(ScenarioConfig { speed: SpeedSpec::Fixed(30.0), ..config.clone() });
    }
    if !matches!(config.angle, AngleSpec::Fixed(_) | AngleSpec::Heading(_)) {
        push(ScenarioConfig { angle: AngleSpec::Fixed(0.0), ..config.clone() });
    }
    if !matches!(config.distance, DistanceSpec::Fixed(_)) {
        push(ScenarioConfig {
            distance: DistanceSpec::Fixed(config.cell_radius_km / 2.0),
            ..config.clone()
        });
    }
    if config.profiles.is_some() {
        push(ScenarioConfig { profiles: None, ..config.clone() });
    }
    out
}

/// Structural size of a whole case: [`complexity`] of the scenario plus
/// a fixed surcharge for a non-baseline controller. Strictly decreases
/// along every [`shrink`] step, which bounds the shrink loop.
#[must_use]
pub fn case_complexity(case: &FuzzCase) -> u64 {
    complexity(&case.config)
        + match case.controller {
            ControllerSlot::Baseline => 0,
            _ => 10,
        }
}

/// Greedily shrinks a failing case: repeatedly replaces it with the
/// first one-step simplification on which `still_fails` returns `true`,
/// until no simplification fails. The controller axis shrinks first — a
/// failure that reproduces under the reactive baseline controller is
/// far simpler to debug than one needing forecaster or tuner state —
/// then the scenario axes. Because every candidate is strictly smaller
/// under [`case_complexity`], the loop always terminates; the result
/// still fails (it is the input when nothing smaller does).
pub fn shrink(case: &FuzzCase, still_fails: impl Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut current = case.clone();
    'outer: loop {
        if current.controller != ControllerSlot::Baseline {
            let candidate = FuzzCase { controller: ControllerSlot::Baseline, ..current.clone() };
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        for config in shrink_candidates(&current.config) {
            let candidate = FuzzCase { config, ..current.clone() };
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_per_seed_and_index() {
        let fuzzer = WorkloadFuzzer::new(42);
        let a = fuzzer.case(7);
        let b = fuzzer.case(7);
        assert_eq!(format!("{:?}", a.config), format!("{:?}", b.config));
        let other = WorkloadFuzzer::new(43).case(7);
        assert_ne!(
            format!("{:?}", a.config),
            format!("{:?}", other.config),
            "different seeds should explore different cases"
        );
    }

    #[test]
    fn sampled_cases_are_structurally_valid() {
        let fuzzer = WorkloadFuzzer::new(2026);
        for case in fuzzer.cases(200) {
            let config = &case.config;
            assert!(config.requests >= 1);
            assert!(config.window_s > 0.0 && config.holding_mean_s > 0.0);
            assert!(config.capacity_bu >= 10 && config.capacity_bu <= 80);
            assert!((2..=7).contains(&config.shards), "bad shard comparand {}", config.shards);
            if let ArrivalPattern::Stages(rates) = &config.arrivals {
                assert!(!rates.is_empty());
                assert!(rates.iter().sum::<f64>() > 0.0);
                assert!(rates.iter().all(|&r| r >= 0.0));
            }
            if let ArrivalPattern::Burst { center, width, weight } = config.arrivals {
                assert!((0.0..=1.0).contains(&center));
                assert!(width > 0.0 && (0.0..=1.0).contains(&weight));
            }
            if let SpeedSpec::Uniform(lo, hi) = config.speed {
                assert!(lo < hi);
            }
            if let DistanceSpec::Uniform(lo, hi) = config.distance {
                assert!(lo <= hi);
            }
            if let Some(set) = config.profiles {
                for class in ServiceClass::ALL {
                    let p = set.profile_of(class);
                    assert_eq!(p.class, class);
                    assert!(!p.rb_cost_min.is_zero(), "zero floor in {p}");
                    assert!(p.rb_cost_min <= p.rb_cost_nominal, "inverted band in {p}");
                    assert!(p.mean_duration_s > 0.0);
                }
            }
            // The workload must actually expand without panicking.
            let specs = config.generate_workload(config.seed);
            assert_eq!(specs.len(), config.requests);
        }
    }

    #[test]
    fn fuzzer_covers_every_variant() {
        let fuzzer = WorkloadFuzzer::new(1);
        let cases: Vec<FuzzCase> = fuzzer.cases(100).collect();
        let any = |f: &dyn Fn(&ScenarioConfig) -> bool| cases.iter().any(|c| f(&c.config));
        assert!(any(&|c| matches!(c.arrivals, ArrivalPattern::Uniform)));
        assert!(any(&|c| matches!(c.arrivals, ArrivalPattern::Burst { .. })));
        assert!(any(&|c| matches!(c.arrivals, ArrivalPattern::Stages(_))));
        assert!(any(&|c| matches!(c.spawn, SpawnSpec::CenterCell)));
        assert!(any(&|c| matches!(c.spawn, SpawnSpec::AnyCell)));
        assert!(any(&|c| matches!(c.spawn, SpawnSpec::Hotspot { .. })));
        assert!(any(&|c| matches!(c.spawn, SpawnSpec::Corridor { .. })));
        assert!(any(&|c| c.grid_radius == 0));
        assert!(any(&|c| c.grid_radius == 2));
        assert!(any(&|c| matches!(c.mobility, MobilityChoice::Walker)));
        for shards in [2, 3, 4, 7] {
            assert!(any(&|c| c.shards == shards), "shard comparand {shards} never sampled");
        }
        assert!(any(&|c| c.profiles.is_some()), "elastic multi-class cases never sampled");
        assert!(any(&|c| c.profiles.is_none()), "rigid paper-profile cases never sampled");
        assert!(
            any(&|c| c.profiles.is_some_and(|set| set.voice.is_elastic())),
            "no sampled profile set has degradation room"
        );
        assert!(any(&|c| c.streamed), "streamed-synthesis cases never sampled");
        assert!(any(&|c| !c.streamed), "eager-synthesis cases never sampled");
        for slot in [
            ControllerSlot::Baseline,
            ControllerSlot::PredictEwma,
            ControllerSlot::PredictRnn,
            ControllerSlot::Tuned,
        ] {
            assert!(
                cases.iter().any(|c| c.controller == slot),
                "controller slot {slot:?} never sampled"
            );
        }
        let baseline = cases.iter().filter(|c| c.controller == ControllerSlot::Baseline).count();
        assert!(
            baseline > cases.len() / 2,
            "the reactive baseline must keep the majority share, got {baseline}/{}",
            cases.len()
        );
    }

    #[test]
    fn shrink_candidates_strictly_reduce_complexity() {
        let fuzzer = WorkloadFuzzer::new(99);
        for case in fuzzer.cases(50) {
            let base = complexity(&case.config);
            for candidate in shrink_candidates(&case.config) {
                assert!(
                    complexity(&candidate) < base,
                    "candidate {candidate:?} not smaller than {base}"
                );
            }
        }
    }

    #[test]
    fn shrink_finds_a_minimal_failing_case() {
        // Synthetic failure: anything with >= 40 requests "fails".
        let case = WorkloadFuzzer::new(5).case(0);
        let mut case = case;
        case.config.requests = 300;
        case.controller = ControllerSlot::PredictRnn;
        let fails = |c: &FuzzCase| c.config.requests >= 40;
        let minimal = shrink(&case, fails);
        assert!(fails(&minimal), "shrunk case must still fail");
        assert!(case_complexity(&minimal) < case_complexity(&case), "shrinking must make progress");
        assert_eq!(minimal.config.requests, 40, "greedy halving should bottom out exactly");
        // Everything else got simplified too — including the
        // controller-family axis, since the failure is controller-blind.
        assert_eq!(minimal.controller, ControllerSlot::Baseline);
        assert_eq!(minimal.config.grid_radius, 0);
        assert!(matches!(minimal.config.arrivals, ArrivalPattern::Uniform));
        assert!(matches!(minimal.config.spawn, SpawnSpec::CenterCell));
    }

    #[test]
    fn shrink_keeps_the_controller_when_the_failure_needs_it() {
        let mut case = WorkloadFuzzer::new(5).case(0);
        case.controller = ControllerSlot::Tuned;
        // The failure only reproduces under the tuned controller.
        let minimal = shrink(&case, |c| c.controller == ControllerSlot::Tuned);
        assert_eq!(minimal.controller, ControllerSlot::Tuned);
    }

    #[test]
    fn shrink_returns_input_when_nothing_smaller_fails() {
        let case = WorkloadFuzzer::new(5).case(3);
        let key = format!("{:?}", case.config);
        let slot = case.controller;
        // Only the exact original "fails".
        let minimal = shrink(&case, |c| format!("{:?}", c.config) == key && c.controller == slot);
        assert_eq!(format!("{:?}", minimal.config), key);
        assert_eq!(minimal.controller, slot);
    }
}
