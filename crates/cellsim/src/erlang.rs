//! Analytical Erlang-B blocking, used to validate the simulator.
//!
//! For single-class Poisson arrivals with exponential holding times and no
//! admission policy beyond capacity (Complete Sharing with one class), the
//! steady-state blocking probability has the closed Erlang-B form. The
//! integration test `erlang_validation` drives the simulator with exactly
//! that workload and checks the measured blocking against this module —
//! tying the discrete-event engine to queueing theory instead of to
//! itself.

/// Erlang-B blocking probability for `servers` circuits offered
/// `erlangs` of traffic, computed with the numerically stable recurrence
/// `B(0) = 1`, `B(n) = a·B(n−1) / (n + a·B(n−1))`.
///
/// # Panics
///
/// Panics if `erlangs` is negative or non-finite — offered load is a
/// configuration value, not runtime data.
#[must_use]
pub fn erlang_b(servers: u32, erlangs: f64) -> f64 {
    assert!(erlangs.is_finite() && erlangs >= 0.0, "bad offered load {erlangs}");
    if erlangs == 0.0 {
        return 0.0;
    }
    let mut b = 1.0;
    for n in 1..=servers {
        b = erlangs * b / (f64::from(n) + erlangs * b);
    }
    b
}

/// Offered load (in Erlangs) of `arrival_rate_per_s` arrivals holding for
/// `mean_holding_s` seconds each.
#[must_use]
pub fn offered_erlangs(arrival_rate_per_s: f64, mean_holding_s: f64) -> f64 {
    arrival_rate_per_s * mean_holding_s
}

/// Expected carried load: offered × (1 − blocking).
#[must_use]
pub fn carried_erlangs(servers: u32, erlangs: f64) -> f64 {
    erlangs * (1.0 - erlang_b(servers, erlangs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_values() {
        // Classic table entries (3-decimal precision).
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        // B(5, 3) = 0.1101 (standard table).
        assert!((erlang_b(5, 3.0) - 0.1101).abs() < 1e-4);
        // B(10, 5) ≈ 0.0184.
        assert!((erlang_b(10, 5.0) - 0.0184).abs() < 1e-4);
    }

    #[test]
    fn zero_load_never_blocks() {
        assert_eq!(erlang_b(10, 0.0), 0.0);
    }

    #[test]
    fn blocking_decreases_with_servers() {
        let mut prev = 1.0;
        for servers in 1..=40 {
            let b = erlang_b(servers, 8.0);
            assert!(b < prev, "B({servers}, 8) = {b} did not decrease");
            prev = b;
        }
    }

    #[test]
    fn blocking_increases_with_load() {
        let mut prev = 0.0;
        for tenth in 1..=100 {
            let a = f64::from(tenth) / 10.0;
            let b = erlang_b(8, a);
            assert!(b > prev, "B(8, {a}) = {b} did not increase");
            prev = b;
        }
    }

    #[test]
    fn heavy_traffic_limit() {
        // As load -> infinity, blocking -> 1 and carried -> servers.
        let b = erlang_b(4, 1e6);
        assert!(b > 0.999_99);
        assert!((carried_erlangs(4, 1e6) - 4.0).abs() < 0.01);
    }

    #[test]
    fn offered_load_arithmetic() {
        assert_eq!(offered_erlangs(0.5, 60.0), 30.0);
    }

    #[test]
    #[should_panic(expected = "bad offered load")]
    fn rejects_negative_load() {
        let _ = erlang_b(4, -1.0);
    }
}
