//! Small-sample statistics for replication series: mean, sample standard
//! deviation, and Student-t confidence intervals.
//!
//! Simulation papers report curves averaged over a handful of seeded
//! replications; a point estimate without an interval hides whether two
//! curves actually separate. [`Summary`] carries both.

/// Two-sided 95 % Student-t critical values for 1..=30 degrees of
/// freedom; beyond 30 the normal approximation (1.96) is used.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Summary statistics of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval on the mean
    /// (0 for n < 2).
    pub ci95_half_width: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values — replication
    /// results are produced by this workspace, so garbage is a bug.
    #[must_use]
    pub fn of(sample: &[f64]) -> Self {
        assert!(!sample.is_empty(), "empty sample");
        assert!(sample.iter().all(|v| v.is_finite()), "non-finite sample value");
        let n = sample.len();
        let mean = sample.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Self { n, mean, std_dev: 0.0, ci95_half_width: 0.0 };
        }
        let var = sample.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let df = n - 1;
        let t = if df <= 30 { T_95[df - 1] } else { 1.96 };
        let ci95_half_width = t * std_dev / (n as f64).sqrt();
        Self { n, mean, std_dev, ci95_half_width }
    }

    /// The interval `(lower, upper)` of the 95 % CI on the mean.
    #[must_use]
    pub fn ci95(&self) -> (f64, f64) {
        (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)
    }

    /// `true` when this summary's CI does not overlap `other`'s —
    /// a conservative "these two configurations genuinely differ".
    #[must_use]
    pub fn separated_from(&self, other: &Summary) -> bool {
        let (lo_a, hi_a) = self.ci95();
        let (lo_b, hi_b) = other.ci95();
        hi_a < lo_b || hi_b < lo_a
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.ci95_half_width, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.138).abs() < 1e-3);
    }

    #[test]
    fn single_value_has_zero_spread() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
        assert_eq!(s.ci95(), (42.0, 42.0));
    }

    #[test]
    fn ci_uses_t_distribution_for_small_n() {
        // n = 2, df = 1: t = 12.706 — the CI must be enormous.
        let s = Summary::of(&[0.0, 1.0]);
        assert!((s.ci95_half_width - 12.706 * s.std_dev / 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ci_narrows_with_more_samples() {
        let wide = Summary::of(&[9.0, 10.0, 11.0]);
        let narrow = Summary::of(&[9.0, 10.0, 11.0, 9.0, 10.0, 11.0, 9.0, 10.0, 11.0]);
        assert!(narrow.ci95_half_width < wide.ci95_half_width);
    }

    #[test]
    fn separation_detects_disjoint_intervals() {
        let a = Summary::of(&[10.0, 10.1, 9.9, 10.05]);
        let b = Summary::of(&[20.0, 20.2, 19.8, 20.1]);
        assert!(a.separated_from(&b));
        assert!(b.separated_from(&a));
        let c = Summary::of(&[10.0, 12.0, 8.0, 11.0]);
        assert!(!a.separated_from(&c));
    }

    #[test]
    fn large_samples_use_normal_approximation() {
        let sample: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let s = Summary::of(&sample);
        let expected = 1.96 * s.std_dev / 10.0;
        assert!((s.ci95_half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn display_reads_naturally() {
        let s = Summary::of(&[70.0, 72.0, 71.0]);
        assert_eq!(s.to_string(), "71.00 ± 2.48 (n=3)");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_panics() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }
}
