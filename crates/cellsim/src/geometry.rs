//! Planar geometry and the hexagonal cell layout.
//!
//! The paper (and the SCC paper it compares against) model the coverage
//! area as a honeycomb of hexagonal cells around base stations. We use
//! axial coordinates (`q`, `r`) on a pointy-top hex lattice, with cell
//! centers spaced so that a cell's *radius* (center → corner) is
//! configurable in kilometers.

use serde::{Deserialize, Serialize};

use facs_cac::CellId;

/// A point in the plane, in kilometers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate (km).
    pub x: f64,
    /// North-south coordinate (km).
    pub y: f64,
}

impl Point {
    /// Origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in km.
    #[must_use]
    pub fn distance_to(&self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Bearing from `self` to `other`, in degrees in `(-180, 180]`,
    /// measured counterclockwise from the +x axis.
    #[must_use]
    pub fn bearing_to(&self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x).to_degrees()
    }

    /// The point reached by moving `distance_km` along `heading_deg`.
    #[must_use]
    pub fn step(&self, heading_deg: f64, distance_km: f64) -> Point {
        let rad = heading_deg.to_radians();
        Point { x: self.x + distance_km * rad.cos(), y: self.y + distance_km * rad.sin() }
    }
}

/// Axial coordinates of a hexagonal cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HexCoord {
    /// Axial `q` (column).
    pub q: i32,
    /// Axial `r` (row).
    pub r: i32,
}

impl HexCoord {
    /// The center cell.
    pub const CENTER: HexCoord = HexCoord { q: 0, r: 0 };

    /// Creates a coordinate.
    #[must_use]
    pub const fn new(q: i32, r: i32) -> Self {
        Self { q, r }
    }

    /// The six neighbors in fixed order (E, NE, NW, W, SW, SE for a
    /// pointy-top layout).
    #[must_use]
    pub fn neighbors(self) -> [HexCoord; 6] {
        const DIRS: [(i32, i32); 6] = [(1, 0), (1, -1), (0, -1), (-1, 0), (-1, 1), (0, 1)];
        DIRS.map(|(dq, dr)| HexCoord::new(self.q + dq, self.r + dr))
    }

    /// Hex-grid distance (number of cell hops).
    #[must_use]
    pub fn grid_distance(self, other: HexCoord) -> u32 {
        let dq = (self.q - other.q).abs();
        let dr = (self.r - other.r).abs();
        let ds = (self.q + self.r - other.q - other.r).abs();
        ((dq + dr + ds) / 2) as u32
    }
}

/// A finite hexagonal grid of cells: a center cell plus `radius` rings.
///
/// Ring `k` holds `6k` cells, so the grid has `3 r (r + 1) + 1` cells.
/// Cell ids are assigned ring by ring, center first (`CellId(0)` is the
/// center).
///
/// # Examples
///
/// ```
/// use facs_cellsim::geometry::HexGrid;
///
/// let grid = HexGrid::new(2, 1.0); // 19 cells of radius 1 km
/// assert_eq!(grid.len(), 19);
/// let center = grid.center_of(facs_cac::CellId(0));
/// assert_eq!(center.x, 0.0);
/// assert_eq!(center.y, 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HexGrid {
    radius: u32,
    cell_radius_km: f64,
    coords: Vec<HexCoord>,
    /// Dense axial→id lookup over the bounding square `[-R, R]²`:
    /// slot `(q + R) · (2R + 1) + (r + R)`, with `u32::MAX` marking
    /// coordinates outside the honeycomb. Every `locate` hits this
    /// table, so it must be an indexed load, not a hashed probe.
    lut: Vec<u32>,
}

impl HexGrid {
    /// Builds a grid with `radius` rings around the center; each cell has
    /// the given radius (center → corner) in km.
    ///
    /// # Panics
    ///
    /// Panics if `cell_radius_km` is not finite and positive.
    #[must_use]
    pub fn new(radius: u32, cell_radius_km: f64) -> Self {
        assert!(
            cell_radius_km.is_finite() && cell_radius_km > 0.0,
            "bad cell radius {cell_radius_km}"
        );
        let mut coords = vec![HexCoord::CENTER];
        for ring in 1..=radius as i32 {
            // Walk the ring starting from (ring, 0) (standard ring walk).
            let mut coord = HexCoord::new(ring, 0);
            const DIRS: [(i32, i32); 6] = [(0, -1), (-1, 0), (-1, 1), (0, 1), (1, 0), (1, -1)];
            for (dq, dr) in DIRS {
                for _ in 0..ring {
                    coords.push(coord);
                    coord = HexCoord::new(coord.q + dq, coord.r + dr);
                }
            }
        }
        let side = 2 * radius as usize + 1;
        let mut lut = vec![u32::MAX; side * side];
        for (i, &c) in coords.iter().enumerate() {
            let q = (c.q + radius as i32) as usize;
            let r = (c.r + radius as i32) as usize;
            lut[q * side + r] = i as u32;
        }
        Self { radius, cell_radius_km, coords, lut }
    }

    /// A single-cell "grid" (figs. 7–9 run against one base station).
    #[must_use]
    pub fn single_cell(cell_radius_km: f64) -> Self {
        Self::new(0, cell_radius_km)
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// `false` — a grid always contains at least the center cell.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Ring count around the center.
    #[must_use]
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Cell radius (center → corner) in km.
    #[must_use]
    pub fn cell_radius_km(&self) -> f64 {
        self.cell_radius_km
    }

    /// All cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.coords.len()).map(|i| CellId(i as u32))
    }

    /// Axial coordinate of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a cell of this grid.
    #[must_use]
    pub fn coord_of(&self, id: CellId) -> HexCoord {
        self.coords[id.0 as usize]
    }

    /// Cell id at an axial coordinate, if inside the grid.
    #[must_use]
    pub fn cell_at(&self, coord: HexCoord) -> Option<CellId> {
        let radius = self.radius as i32;
        if coord.q.abs() > radius || coord.r.abs() > radius {
            return None;
        }
        let side = 2 * radius as usize + 1;
        let q = (coord.q + radius) as usize;
        let r = (coord.r + radius) as usize;
        match self.lut[q * side + r] {
            u32::MAX => None,
            id => Some(CellId(id)),
        }
    }

    /// Planar center of a cell, in km.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a cell of this grid.
    #[must_use]
    pub fn center_of(&self, id: CellId) -> Point {
        let c = self.coord_of(id);
        // Pointy-top axial -> pixel transform; the distance between
        // adjacent centers is sqrt(3) * cell radius.
        let size = self.cell_radius_km;
        let x = size * (3f64.sqrt() * f64::from(c.q) + 3f64.sqrt() / 2.0 * f64::from(c.r));
        let y = size * (1.5 * f64::from(c.r));
        Point::new(x, y)
    }

    /// In-grid neighbor cells of `id`, in fixed direction order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a cell of this grid.
    #[must_use]
    pub fn neighbors_of(&self, id: CellId) -> Vec<CellId> {
        self.coord_of(id).neighbors().iter().filter_map(|&c| self.cell_at(c)).collect()
    }

    /// The cell whose center is nearest to `point`. The honeycomb Voronoi
    /// partition is exactly "nearest center".
    ///
    /// Runs in O(1) via the inverse pixel→axial transform plus cube
    /// rounding; only points that round outside the finite grid (i.e.
    /// beyond the outer ring) fall back to a scan over the cells.
    #[must_use]
    pub fn locate(&self, point: Point) -> CellId {
        let size = self.cell_radius_km;
        let fq = (3f64.sqrt() / 3.0 * point.x - point.y / 3.0) / size;
        let fr = (2.0 / 3.0 * point.y) / size;
        if let Some(id) = self.cell_at(Self::axial_round(fq, fr)) {
            return id;
        }
        // Outside the modelled honeycomb: nearest center by scan.
        let mut best = CellId(0);
        let mut best_d = f64::INFINITY;
        for id in self.cell_ids() {
            let d = self.center_of(id).distance_to(point);
            if d < best_d {
                best_d = d;
                best = id;
            }
        }
        best
    }

    /// Rounds fractional axial coordinates to the containing hex (the
    /// standard cube-rounding construction).
    fn axial_round(fq: f64, fr: f64) -> HexCoord {
        let fs = -fq - fr;
        let mut q = fq.round();
        let mut r = fr.round();
        let s = fs.round();
        let dq = (q - fq).abs();
        let dr = (r - fr).abs();
        let ds = (s - fs).abs();
        if dq > dr && dq > ds {
            q = -r - s;
        } else if dr > ds {
            r = -q - s;
        }
        HexCoord::new(q as i32, r as i32)
    }

    /// `true` when `point` lies farther from every center than one cell
    /// diameter — i.e. it has wandered off the modelled coverage area.
    #[must_use]
    pub fn out_of_coverage(&self, point: Point) -> bool {
        // Fast path: a point that hex-rounds into a modelled cell lies
        // inside that hexagon, hence within one cell radius of its
        // center — it cannot be out of coverage. Only points beyond the
        // outer ring pay the nearest-center scan.
        let size = self.cell_radius_km;
        let fq = (3f64.sqrt() / 3.0 * point.x - point.y / 3.0) / size;
        let fr = (2.0 / 3.0 * point.y) / size;
        if self.cell_at(Self::axial_round(fq, fr)).is_some() {
            return false;
        }
        let nearest = self.locate(point);
        self.center_of(nearest).distance_to(point) > 2.0 * size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_sizes() {
        assert_eq!(HexGrid::new(0, 1.0).len(), 1);
        assert_eq!(HexGrid::new(1, 1.0).len(), 7);
        assert_eq!(HexGrid::new(2, 1.0).len(), 19);
        assert_eq!(HexGrid::new(3, 1.0).len(), 37);
    }

    #[test]
    fn center_cell_is_id_zero_at_origin() {
        let g = HexGrid::new(2, 1.0);
        assert_eq!(g.coord_of(CellId(0)), HexCoord::CENTER);
        let c = g.center_of(CellId(0));
        assert_eq!((c.x, c.y), (0.0, 0.0));
    }

    #[test]
    fn coords_are_unique() {
        let g = HexGrid::new(3, 1.0);
        let mut seen = std::collections::HashSet::new();
        for id in g.cell_ids() {
            assert!(seen.insert(g.coord_of(id)), "duplicate coord for {id}");
        }
    }

    #[test]
    fn neighbor_symmetry() {
        let g = HexGrid::new(2, 1.0);
        for id in g.cell_ids() {
            for n in g.neighbors_of(id) {
                assert!(g.neighbors_of(n).contains(&id), "{id} -> {n} not symmetric");
            }
        }
    }

    #[test]
    fn center_has_six_neighbors_edge_fewer() {
        let g = HexGrid::new(1, 1.0);
        assert_eq!(g.neighbors_of(CellId(0)).len(), 6);
        // Every ring-1 cell in a radius-1 grid touches the center plus two
        // ring mates.
        for i in 1..7 {
            assert_eq!(g.neighbors_of(CellId(i)).len(), 3);
        }
    }

    #[test]
    fn adjacent_centers_are_sqrt3_apart() {
        let g = HexGrid::new(1, 2.0);
        let c0 = g.center_of(CellId(0));
        for n in g.neighbors_of(CellId(0)) {
            let d = c0.distance_to(g.center_of(n));
            assert!((d - 2.0 * 3f64.sqrt()).abs() < 1e-9, "distance {d}");
        }
    }

    #[test]
    fn locate_maps_centers_to_their_cells() {
        let g = HexGrid::new(2, 1.5);
        for id in g.cell_ids() {
            assert_eq!(g.locate(g.center_of(id)), id);
        }
    }

    #[test]
    fn locate_partitions_midpoints_consistently() {
        let g = HexGrid::new(1, 1.0);
        // A point clearly inside the east neighbor.
        let east = g
            .cell_ids()
            .find(|&id| {
                id != CellId(0) && g.center_of(id).y.abs() < 1e-9 && g.center_of(id).x > 0.0
            })
            .expect("east neighbor exists");
        let p = Point::new(g.center_of(east).x - 0.1, 0.0);
        assert_eq!(g.locate(p), east);
    }

    #[test]
    fn grid_distance_matches_rings() {
        let g = HexGrid::new(2, 1.0);
        let center = g.coord_of(CellId(0));
        // Ring 1 = ids 1..=6, ring 2 = ids 7..=18.
        for i in 1..=6u32 {
            assert_eq!(center.grid_distance(g.coord_of(CellId(i))), 1);
        }
        for i in 7..=18u32 {
            assert_eq!(center.grid_distance(g.coord_of(CellId(i))), 2);
        }
    }

    #[test]
    fn bearing_and_step_agree() {
        let a = Point::new(0.0, 0.0);
        let b = a.step(30.0, 2.0);
        assert!((a.bearing_to(b) - 30.0).abs() < 1e-9);
        assert!((a.distance_to(b) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn locate_rounding_agrees_with_nearest_center_scan() {
        let g = HexGrid::new(2, 1.3);
        // A deterministic lattice of probe points covering the grid and a
        // margin beyond it.
        for ix in -40..=40 {
            for iy in -40..=40 {
                let p = Point::new(f64::from(ix) * 0.17, f64::from(iy) * 0.17);
                let by_scan = {
                    let mut best = CellId(0);
                    let mut best_d = f64::INFINITY;
                    for id in g.cell_ids() {
                        let d = g.center_of(id).distance_to(p);
                        if d < best_d {
                            best_d = d;
                            best = id;
                        }
                    }
                    best
                };
                let located = g.locate(p);
                // Equal-distance boundary points may legitimately resolve
                // either way; require agreement up to distance equality.
                let d_located = g.center_of(located).distance_to(p);
                let d_scan = g.center_of(by_scan).distance_to(p);
                assert!(
                    (d_located - d_scan).abs() < 1e-9,
                    "locate {located:?} (d {d_located}) vs scan {by_scan:?} (d {d_scan}) at {p:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_coverage_detects_wanderers() {
        let g = HexGrid::new(1, 1.0);
        assert!(!g.out_of_coverage(Point::new(0.0, 0.0)));
        assert!(g.out_of_coverage(Point::new(50.0, 50.0)));
    }

    #[test]
    #[should_panic(expected = "bad cell radius")]
    fn rejects_bad_radius() {
        let _ = HexGrid::new(1, 0.0);
    }
}
