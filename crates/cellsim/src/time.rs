//! Simulation time: integer microseconds with total ordering.
//!
//! Floating-point time in a discrete-event simulator invites
//! non-determinism (NaN ordering, accumulation drift), so the clock is a
//! `u64` microsecond counter with explicit conversions.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock (microseconds since start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time (microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates an instant from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid sim time {secs}");
        Self((secs * 1e6).round() as u64)
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a duration from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Self((secs * 1e6).round() as u64)
    }

    /// Microseconds in the span.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in the span.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// Saturating difference (never negative).
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(12.5);
        assert_eq!(t.as_micros(), 12_500_000);
        assert_eq!(t.as_secs_f64(), 12.5);
        let d = SimDuration::from_secs_f64(0.001);
        assert_eq!(d.as_micros(), 1000);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(10.0) + SimDuration::from_secs_f64(5.0);
        assert_eq!(t.as_secs_f64(), 15.0);
        let d = t - SimTime::from_secs_f64(4.0);
        assert_eq!(d.as_secs_f64(), 11.0);
        // Saturating subtraction.
        let zero = SimTime::from_secs_f64(4.0) - t;
        assert_eq!(zero, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn rejects_negative_seconds() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn rejects_nan_duration() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_secs_f64(0.25).to_string(), "0.250s");
    }
}
