//! Paper-experiment scenarios: map "number of requesting connections" and
//! the controlled parameters (speed / angle / distance) onto a workload,
//! run it, and report the acceptance percentage.
//!
//! The paper's §4 parameters are the defaults: speed 0–120 km/h,
//! direction −180…180°, distance 0–10 km, traffic mix 60/30/10 %
//! text/voice/video, request sizes 1/5/10 BU, 40 BU per base station.
//!
//! ## Parallel sweeps
//!
//! Replications are seed-isolated (see
//! [`ScenarioConfig::replication_seeds`]), so
//! [`ScenarioConfig::acceptance`], [`ScenarioConfig::acceptance_summary`]
//! and [`ScenarioConfig::aggregate`] fan the replications out over scoped
//! threads, and [`acceptance_curve`] flattens its whole
//! `(x-axis point, replication)` cross-product into one parallel work
//! list. Concurrency is capped at the machine's core count, and
//! per-replication results are folded back **in replication order**:
//! every float is combined in the same order the old sequential loops
//! used, so results are bit-identical to a sequential run; only
//! wall-clock time changes.

use facs_cac::{BandwidthUnits, BoxedController, ServiceProfileSet};

use crate::geometry::HexGrid;
use crate::metrics::{Metrics, Series};
use crate::network::{Simulation, SimulationConfig, UserSpec};
use crate::stats::Summary;
use crate::traffic::{HoldingTimes, TrafficMix};
use crate::workload::{Workload, WorkloadStream};

// The distribution specs moved into the declarative workload module;
// re-exported here so `facs_cellsim::scenario::SpeedSpec` etc. keep
// working.
pub use crate::workload::{
    AngleSpec, ArrivalPattern, DistanceSpec, MobilityChoice, SpawnSpec, SpeedSpec,
};

/// A per-grid controller factory, as passed to the scenario runners.
///
/// The `Sync` bound lets the parallel replication/sweep runners invoke
/// one builder from several worker threads at once; plain closures that
/// capture only shared data (or nothing) satisfy it automatically.
pub type ControllerBuilder = dyn Fn(&HexGrid) -> Vec<BoxedController> + Sync;

/// Full description of one paper experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// The paper's x-axis: number of requesting connections.
    pub requests: usize,
    /// Arrival window (seconds) the requests are spread over.
    pub window_s: f64,
    /// Mean exponential call-holding time (seconds).
    pub holding_mean_s: f64,
    /// Base-station capacity in BU.
    pub capacity_bu: u32,
    /// Grid rings (0 = single cell).
    pub grid_radius: u32,
    /// Cell radius in km (the paper's 0–10 km distance universe).
    pub cell_radius_km: f64,
    /// Speed distribution.
    pub speed: SpeedSpec,
    /// Angle distribution.
    pub angle: AngleSpec,
    /// Distance distribution.
    pub distance: DistanceSpec,
    /// Spawn placement.
    pub spawn: SpawnSpec,
    /// Mobility model choice.
    pub mobility: MobilityChoice,
    /// Traffic class mix.
    pub mix: TrafficMix,
    /// Per-class service profiles (`None` = the paper's rigid unit
    /// costs; see [`Workload::profiles`]).
    pub profiles: Option<ServiceProfileSet>,
    /// Arrival-time pattern inside the window.
    pub arrivals: ArrivalPattern,
    /// Movement/handoff cadence (seconds).
    pub movement_tick_s: f64,
    /// Cell-group shards the kernel runs on (1 = single-threaded;
    /// results are bit-identical for any value, see [`crate::engine`]).
    pub shards: usize,
    /// Worker threads driving the shards (0 = auto-size to the host,
    /// 1 = sequential; bit-identical for any value).
    pub workers: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of independent replications to average over.
    pub replications: u32,
    /// Synthesize the workload through the chunked
    /// [`WorkloadStream`] instead of materializing every
    /// [`UserSpec`] up front. Results are bit-identical either way (the
    /// eager path is the stream drained in one chunk); streaming keeps
    /// peak memory at O(active calls + one chunk) for planet-scale runs.
    pub streamed: bool,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            requests: 50,
            window_s: 600.0,
            holding_mean_s: 40.0,
            capacity_bu: 40,
            grid_radius: 0,
            cell_radius_km: 10.0,
            speed: SpeedSpec::PaperUniform,
            angle: AngleSpec::HeadingHistory { history_s: 300.0 },
            distance: DistanceSpec::UniformInCell,
            spawn: SpawnSpec::CenterCell,
            mobility: MobilityChoice::Auto,
            mix: TrafficMix::PAPER,
            profiles: None,
            arrivals: ArrivalPattern::Uniform,
            movement_tick_s: 5.0,
            shards: 1,
            workers: 0,
            seed: 2007,
            replications: 3,
            streamed: false,
        }
    }
}

impl ScenarioConfig {
    /// Returns the grid this scenario runs on.
    #[must_use]
    pub fn grid(&self) -> HexGrid {
        HexGrid::new(self.grid_radius, self.cell_radius_km)
    }

    /// The declarative [`Workload`] description this scenario's knobs
    /// assemble into — the single source of workload generation.
    #[must_use]
    pub fn workload(&self) -> Workload {
        Workload {
            arrivals: self.arrivals.clone(),
            spawn: self.spawn,
            speed: self.speed,
            angle: self.angle,
            distance: self.distance,
            mobility: self.mobility,
            mix: self.mix,
            profiles: self.profiles,
        }
    }

    /// Generates the workload for one replication by expanding
    /// [`ScenarioConfig::workload`].
    ///
    /// All randomness is drawn from `seed`, independent of the policy
    /// under test, so competing controllers face byte-identical traffic.
    #[must_use]
    pub fn generate_workload(&self, seed: u64) -> Vec<UserSpec> {
        self.workload().generate(
            &self.grid(),
            self.requests,
            self.window_s,
            HoldingTimes::new(self.holding_mean_s),
            seed,
        )
    }

    /// Opens the same workload as [`ScenarioConfig::generate_workload`]
    /// as a chunked [`WorkloadStream`] (chunk size
    /// [`ScenarioConfig::STREAM_CHUNK`]): identical RNG state, identical
    /// specs, but synthesized on demand.
    #[must_use]
    pub fn stream_workload(&self, seed: u64) -> WorkloadStream {
        self.workload().stream(
            &self.grid(),
            self.requests,
            self.window_s,
            HoldingTimes::new(self.holding_mean_s),
            seed,
            Self::STREAM_CHUNK,
        )
    }

    /// The kernel configuration this scenario runs under for workload
    /// seed `seed` — the single source of the seed mix and horizon
    /// formula, shared by [`ScenarioConfig::run_once`] and the
    /// throughput harness in `facs-bench`.
    #[must_use]
    pub fn sim_config(&self, seed: u64) -> SimulationConfig {
        SimulationConfig {
            capacity: BandwidthUnits::new(self.capacity_bu),
            movement_tick_s: self.movement_tick_s,
            max_time_s: self.window_s + 50.0 * self.holding_mean_s,
            seed: seed ^ 0x5EED_0001,
            shards: self.shards,
            workers: self.workers,
            ..SimulationConfig::default()
        }
    }

    /// Chunk size used by [`ScenarioConfig::stream_workload`]: small
    /// enough that one resident chunk is negligible next to the active
    /// call set, large enough to amortize per-chunk dispatch.
    pub const STREAM_CHUNK: usize = 8192;

    /// Runs the scenario once with the given per-grid controller builder
    /// and returns the metrics.
    pub fn run_once(&self, seed: u64, build: &ControllerBuilder) -> Metrics {
        let grid = self.grid();
        let controllers = build(&grid);
        let mut sim = Simulation::new(grid, self.sim_config(seed), controllers);
        if self.streamed {
            sim.run_streamed(self.stream_workload(seed))
        } else {
            sim.run(self.generate_workload(seed))
        }
    }

    /// The per-replication RNG seeds, in replication order.
    ///
    /// Replication `rep` runs on `seed + rep * 7919` (a prime stride, so
    /// neighbouring replications never share low-order seed structure).
    /// This is the single source of truth for both the sequential fold
    /// order and the parallel runners — anything that iterates
    /// replications derives its seeds here.
    pub fn replication_seeds(&self) -> impl ExactSizeIterator<Item = u64> {
        let base = self.seed;
        (0..self.replications.max(1)).map(move |rep| base + u64::from(rep) * 7919)
    }

    /// Runs every replication (in parallel when there is more than one)
    /// and returns the per-replication metrics **in replication order**.
    fn run_replications(&self, build: &ControllerBuilder) -> Vec<Metrics> {
        let seeds: Vec<u64> = self.replication_seeds().collect();
        parallel_map_in_order(&seeds, |&seed| self.run_once(seed, build))
    }

    /// Runs all replications (in parallel) and returns the mean
    /// acceptance percentage. Bit-identical to folding
    /// [`ScenarioConfig::run_once`] over [`ScenarioConfig::replication_seeds`]
    /// sequentially.
    pub fn acceptance(&self, build: &ControllerBuilder) -> f64 {
        let per_rep = self.run_replications(build);
        let mut total = 0.0;
        for metrics in &per_rep {
            total += metrics.acceptance_percentage();
        }
        total / per_rep.len() as f64
    }

    /// Runs all replications (in parallel) and returns the acceptance
    /// percentage with a 95 % confidence interval across replications.
    pub fn acceptance_summary(&self, build: &ControllerBuilder) -> Summary {
        let sample: Vec<f64> =
            self.run_replications(build).iter().map(Metrics::acceptance_percentage).collect();
        Summary::of(&sample)
    }

    /// Runs all replications (in parallel) and returns aggregated full
    /// metrics (counters summed in replication order, percentages
    /// recomputed from the sums).
    pub fn aggregate(&self, build: &ControllerBuilder) -> Metrics {
        let mut sum = Metrics::new();
        for m in self.run_replications(build) {
            sum.merge(&m);
        }
        sum
    }
}

/// Worker cap for the parallel runners: one thread per available core
/// (1 when the count cannot be determined, which degrades to the
/// sequential path).
fn max_workers() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// The shared parallel runner: applies `f` to every job on up to
/// [`max_workers`] scoped threads and returns the results **in job
/// order**.
///
/// Workers pull job indices from a shared atomic counter (no wave
/// barriers — a slow job never idles the other cores) and tag each
/// result with its index; results are then placed back in index order,
/// so the caller's fold sees exactly the sequence a sequential
/// `jobs.iter().map(f)` would produce. With one worker (or one job) it
/// degrades to that sequential map.
fn parallel_map_in_order<T: Sync, R: Send>(jobs: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = max_workers().min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(f).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        out.push((i, f(job)));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel worker panicked")).collect()
    })
    .expect("parallel scope failed");
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(jobs.len()).collect();
    for (i, result) in per_worker.into_iter().flatten() {
        slots[i] = Some(result);
    }
    slots.into_iter().map(|slot| slot.expect("every job ran exactly once")).collect()
}

/// Sweeps the paper's x-axis (number of requesting connections) and
/// produces one figure series.
///
/// Every `(x-axis point, replication)` pair is flattened into one work
/// list and run on a single level of parallelism capped at the
/// machine's core count — no nested fan-out. Per-point results are then
/// folded in replication order, so the output is bit-identical to
/// calling [`ScenarioConfig::acceptance`] per point sequentially.
pub fn acceptance_curve(
    label: &str,
    request_counts: &[usize],
    configure: impl Fn(usize) -> ScenarioConfig + Sync,
    build: &ControllerBuilder,
) -> Series {
    let configs: Vec<ScenarioConfig> = request_counts.iter().map(|&n| configure(n)).collect();
    let jobs: Vec<(usize, u64)> = configs
        .iter()
        .enumerate()
        .flat_map(|(i, config)| config.replication_seeds().map(move |seed| (i, seed)))
        .collect();
    let accepts = parallel_map_in_order(&jobs, |&(i, seed)| {
        configs[i].run_once(seed, build).acceptance_percentage()
    });
    // Fold per point in replication order — the same float-op order as
    // the sequential `acceptance` fold.
    let mut series = Series::new(label);
    let mut cursor = 0usize;
    for (&n, config) in request_counts.iter().zip(&configs) {
        let reps = config.replication_seeds().len();
        let mut total = 0.0;
        for &accept in &accepts[cursor..cursor + reps] {
            total += accept;
        }
        cursor += reps;
        series.push(n as f64, total / reps as f64);
    }
    series
}

/// The x-axis the paper plots: 10, 20, …, 100 requesting connections.
#[must_use]
pub fn paper_request_counts() -> Vec<usize> {
    (1..=10).map(|i| i * 10).collect()
}

/// Offered-load summary for a scenario, in Erlang-like units: expected
/// concurrent calls × mean demand relative to capacity.
#[must_use]
pub fn offered_load_fraction(config: &ScenarioConfig) -> f64 {
    let concurrent = config.requests as f64 * config.holding_mean_s / config.window_s;
    concurrent * config.mix.expected_demand_bu() / f64::from(config.capacity_bu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::policies::CompleteSharing;

    fn cs_builder() -> impl Fn(&HexGrid) -> Vec<BoxedController> {
        |grid: &HexGrid| {
            grid.cell_ids().map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
        }
    }

    #[test]
    fn workload_respects_fixed_parameters() {
        let config = ScenarioConfig {
            requests: 200,
            speed: SpeedSpec::Fixed(30.0),
            angle: AngleSpec::Fixed(45.0),
            distance: DistanceSpec::Fixed(3.0),
            ..Default::default()
        };
        let grid = config.grid();
        let bs = grid.center_of(facs_cac::CellId(0));
        for spec in config.generate_workload(1) {
            assert_eq!(spec.start.speed_kmh, 30.0);
            let obs = spec.start.observe(bs);
            assert!((obs.angle_deg - 45.0).abs() < 1e-6, "angle {}", obs.angle_deg);
            assert!((obs.distance_km - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn workload_arrivals_sorted_within_window() {
        let config = ScenarioConfig { requests: 100, window_s: 300.0, ..Default::default() };
        let workload = config.generate_workload(2);
        assert_eq!(workload.len(), 100);
        assert!(workload.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(workload.iter().all(|s| (0.0..300.0).contains(&s.arrival_s)));
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let config = ScenarioConfig::default();
        let a = config.generate_workload(9);
        let b = config.generate_workload(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_s, y.arrival_s);
            assert_eq!(x.start, y.start);
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.holding_s, y.holding_s);
        }
    }

    #[test]
    fn heading_history_slow_users_spread_wide() {
        let spread = |speed: f64| {
            let config = ScenarioConfig {
                requests: 400,
                speed: SpeedSpec::Fixed(speed),
                angle: AngleSpec::HeadingHistory { history_s: 300.0 },
                ..Default::default()
            };
            let grid = config.grid();
            let bs = grid.center_of(facs_cac::CellId(0));
            let angles: Vec<f64> = config
                .generate_workload(3)
                .iter()
                .map(|s| s.start.observe(bs).angle_deg.abs())
                .collect();
            angles.iter().sum::<f64>() / angles.len() as f64
        };
        // Uniform |angle| has mean 90°; a tight gaussian near zero stays
        // low. Both walking speeds are past the 60° diffusion cutoff, so
        // they spread near-uniformly.
        assert!(spread(4.0) > 70.0, "4 km/h mean |angle| {}", spread(4.0));
        assert!(spread(10.0) > 70.0, "10 km/h mean |angle| {}", spread(10.0));
        assert!(spread(60.0) < 25.0, "60 km/h mean |angle| {}", spread(60.0));
        assert!(spread(10.0) > spread(30.0));
        assert!(spread(30.0) > spread(60.0));
    }

    #[test]
    fn acceptance_monotone_in_load_for_complete_sharing() {
        let accept = |n: usize| {
            ScenarioConfig { requests: n, replications: 2, ..Default::default() }
                .acceptance(&cs_builder())
        };
        let light = accept(10);
        let heavy = accept(100);
        assert!(light > heavy, "light {light} <= heavy {heavy}");
        assert!(light > 95.0, "light load should accept nearly all, got {light}");
    }

    #[test]
    fn acceptance_curve_shapes() {
        let series = acceptance_curve(
            "cs",
            &[10, 50, 100],
            |n| ScenarioConfig { requests: n, replications: 1, ..Default::default() },
            &cs_builder(),
        );
        assert_eq!(series.points.len(), 3);
        assert_eq!(series.points[0].0, 10.0);
        assert!(series.points.iter().all(|&(_, y)| (0.0..=100.0).contains(&y)));
    }

    #[test]
    fn offered_load_math() {
        let config = ScenarioConfig {
            requests: 100,
            window_s: 600.0,
            holding_mean_s: 120.0,
            capacity_bu: 40,
            ..Default::default()
        };
        // 100 * 120/600 = 20 concurrent × 3.1 BU / 40 BU = 1.55.
        assert!((offered_load_fraction(&config) - 1.55).abs() < 1e-9);
    }

    #[test]
    fn paper_counts() {
        assert_eq!(paper_request_counts(), vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
    }

    #[test]
    fn replication_seeds_use_the_prime_stride() {
        let config = ScenarioConfig { seed: 100, replications: 4, ..Default::default() };
        let seeds: Vec<u64> = config.replication_seeds().collect();
        assert_eq!(seeds, vec![100, 100 + 7919, 100 + 2 * 7919, 100 + 3 * 7919]);
        // replications = 0 still yields one run, like the old `.max(1)`.
        let config = ScenarioConfig { seed: 5, replications: 0, ..Default::default() };
        assert_eq!(config.replication_seeds().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn parallel_runners_match_sequential_folds_bit_for_bit() {
        let config = ScenarioConfig { requests: 40, replications: 4, ..Default::default() };
        let build = cs_builder();

        // Sequential references, folded exactly like the old loops.
        let mut seq_total = 0.0;
        let mut seq_sample = Vec::new();
        let mut seq_sum = Metrics::new();
        for seed in config.replication_seeds() {
            let m = config.run_once(seed, &build);
            seq_total += m.acceptance_percentage();
            seq_sample.push(m.acceptance_percentage());
            seq_sum.merge(&m);
        }

        assert_eq!(config.acceptance(&build), seq_total / 4.0);
        let summary = config.acceptance_summary(&build);
        assert_eq!(summary, Summary::of(&seq_sample));
        assert_eq!(config.aggregate(&build), seq_sum);
    }

    #[test]
    fn parallel_curve_matches_pointwise_acceptance() {
        let configure = |n| ScenarioConfig { requests: n, replications: 2, ..Default::default() };
        let series = acceptance_curve("cs", &[10, 30, 50], configure, &cs_builder());
        for (&n, &(x, y)) in [10usize, 30, 50].iter().zip(&series.points) {
            assert_eq!(x, n as f64);
            assert_eq!(y, configure(n).acceptance(&cs_builder()), "divergence at n={n}");
        }
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use facs_cac::policies::CompleteSharing;

    #[test]
    fn acceptance_summary_reports_interval() {
        let config = ScenarioConfig { requests: 60, replications: 3, ..Default::default() };
        let summary = config.acceptance_summary(&|grid: &HexGrid| {
            grid.cell_ids().map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
        });
        assert_eq!(summary.n, 3);
        assert!(summary.mean > 0.0 && summary.mean <= 100.0);
        let (lo, hi) = summary.ci95();
        assert!(lo <= summary.mean && summary.mean <= hi);
    }
}
