//! Back-compat facade over the sharded simulation kernel.
//!
//! The discrete-event simulator formerly defined here was refactored
//! into the [`crate::engine`] module, which partitions the world into
//! deterministic cell-group shards (see its docs for the epoch/barrier
//! model). The public names are re-exported so existing imports of
//! `facs_cellsim::network::*` keep working.

pub use crate::engine::{MobilityKind, Simulation, SimulationConfig, UserSpec};
