//! The discrete-event cellular-network simulation: cells with ledgers and
//! admission controllers, mobile users placing calls, movement, handoffs.

use facs_cac::{
    AdmissionController, BandwidthLedger, BandwidthUnits, BoxedController, CallId, CallKind,
    CallRequest, CellId, ServiceClass,
};

use crate::events::{Event, EventQueue, UserId};
use crate::geometry::{HexGrid, Point};
use crate::metrics::Metrics;
use crate::mobility::{
    GaussMarkov, MobileState, MobilityModel, RandomWaypoint, StraightLine, Walker,
};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A clonable, serde-friendly sum of the crate's mobility models, so
/// workloads can be described as plain data.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MobilityKind {
    /// Heading-diffusion walker (speed-dependent stability).
    Walker(Walker),
    /// Random waypoint within a disc.
    RandomWaypoint(RandomWaypoint),
    /// Gauss–Markov autoregressive motion.
    GaussMarkov(GaussMarkov),
    /// Constant heading and speed.
    StraightLine,
}

impl MobilityModel for MobilityKind {
    fn step(&mut self, state: &mut MobileState, dt_s: f64, rng: &mut SimRng) {
        match self {
            MobilityKind::Walker(m) => m.step(state, dt_s, rng),
            MobilityKind::RandomWaypoint(m) => m.step(state, dt_s, rng),
            MobilityKind::GaussMarkov(m) => m.step(state, dt_s, rng),
            MobilityKind::StraightLine => StraightLine.step(state, dt_s, rng),
        }
    }

    fn name(&self) -> &str {
        match self {
            MobilityKind::Walker(_) => "walker",
            MobilityKind::RandomWaypoint(_) => "random-waypoint",
            MobilityKind::GaussMarkov(_) => "gauss-markov",
            MobilityKind::StraightLine => "straight-line",
        }
    }
}

/// One user of the workload: when they request, what they request, where
/// they start and how they move.
#[derive(Debug, Clone)]
pub struct UserSpec {
    /// Request instant, seconds from simulation start.
    pub arrival_s: f64,
    /// Requested service class.
    pub class: ServiceClass,
    /// Kinematic state at request time.
    pub start: MobileState,
    /// Mobility model for the call's lifetime.
    pub mobility: MobilityKind,
    /// Pre-drawn call holding time, seconds (drawn by the workload
    /// generator so admission policy cannot perturb the random stream).
    pub holding_s: f64,
}

/// Simulation-wide constants.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Capacity of every base station (the paper's 40 BU).
    pub capacity: BandwidthUnits,
    /// Movement/handoff processing cadence, seconds.
    pub movement_tick_s: f64,
    /// Hard stop; events beyond this instant are discarded.
    pub max_time_s: f64,
    /// Seed for the mobility random stream.
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            capacity: BandwidthUnits::new(40),
            movement_tick_s: 5.0,
            max_time_s: 7_200.0,
            seed: 0xFAC5,
        }
    }
}

struct ActiveCall {
    id: CallId,
    class: ServiceClass,
    cell: CellId,
}

struct User {
    state: MobileState,
    mobility: MobilityKind,
    class: ServiceClass,
    holding_s: f64,
    call: Option<ActiveCall>,
}

struct CellUnit {
    ledger: BandwidthLedger,
    controller: BoxedController,
    center: Point,
}

/// The simulator: owns the grid, the cells (ledger + controller each),
/// the users, the event queue and the metrics.
///
/// Build with [`Simulation::new`], then [`Simulation::run`] a workload.
pub struct Simulation {
    grid: HexGrid,
    cells: Vec<CellUnit>,
    users: Vec<User>,
    queue: EventQueue,
    clock: SimTime,
    config: SimulationConfig,
    rng: SimRng,
    metrics: Metrics,
    pending_arrivals: usize,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("cells", &self.cells.len())
            .field("users", &self.users.len())
            .field("clock", &self.clock)
            .field("pending_arrivals", &self.pending_arrivals)
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation over `grid` with one controller per cell.
    ///
    /// # Panics
    ///
    /// Panics unless `controllers.len() == grid.len()` — the pairing is a
    /// construction-time contract, not runtime data.
    #[must_use]
    pub fn new(grid: HexGrid, config: SimulationConfig, controllers: Vec<BoxedController>) -> Self {
        assert_eq!(
            controllers.len(),
            grid.len(),
            "need exactly one controller per cell ({} cells, {} controllers)",
            grid.len(),
            controllers.len()
        );
        let cells = controllers
            .into_iter()
            .enumerate()
            .map(|(i, controller)| CellUnit {
                ledger: BandwidthLedger::new(config.capacity),
                controller,
                center: grid.center_of(CellId(i as u32)),
            })
            .collect();
        let rng = SimRng::seed_from_u64(config.seed);
        Self {
            grid,
            cells,
            users: Vec::new(),
            queue: EventQueue::new(),
            clock: SimTime::ZERO,
            config,
            rng,
            metrics: Metrics::new(),
            pending_arrivals: 0,
        }
    }

    /// Runs the workload to completion and returns the collected metrics.
    ///
    /// Users are admitted at the cell covering their position; admitted
    /// calls hold bandwidth until their holding time elapses, the user
    /// hands off out of a full cell (drop), or the user leaves coverage.
    pub fn run(&mut self, workload: Vec<UserSpec>) -> Metrics {
        for spec in workload {
            let id = UserId(self.users.len() as u64);
            self.users.push(User {
                state: spec.start,
                mobility: spec.mobility,
                class: spec.class,
                holding_s: spec.holding_s,
                call: None,
            });
            self.queue
                .schedule(SimTime::from_secs_f64(spec.arrival_s), Event::Arrival { user: id });
            self.pending_arrivals += 1;
        }
        self.queue
            .schedule(SimTime::from_secs_f64(self.config.movement_tick_s), Event::MovementTick);

        let horizon = SimTime::from_secs_f64(self.config.max_time_s);
        while let Some((time, event)) = self.queue.pop() {
            if time > horizon {
                break;
            }
            self.integrate_utilization(time);
            self.clock = time;
            match event {
                Event::Arrival { user } => self.handle_arrival(user),
                Event::CallEnd { call, user, .. } => self.handle_call_end(call, user),
                Event::MovementTick => self.handle_tick(),
            }
        }
        self.metrics.clone()
    }

    /// Metrics collected so far.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The simulation clock.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The grid the simulation runs on.
    #[must_use]
    pub fn grid(&self) -> &HexGrid {
        &self.grid
    }

    /// Occupied bandwidth of a cell (for assertions in tests and the
    /// distributed runtime's cross-checks).
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn occupied(&self, cell: CellId) -> BandwidthUnits {
        self.cells[cell.0 as usize].ledger.occupied()
    }

    fn integrate_utilization(&mut self, now: SimTime) {
        let dt = now.since(self.clock).as_secs_f64();
        if dt <= 0.0 {
            return;
        }
        for cell in &self.cells {
            self.metrics.record_utilization(
                cell.ledger.occupied().get(),
                cell.ledger.capacity().get(),
                dt,
            );
        }
    }

    fn handle_arrival(&mut self, user_id: UserId) {
        self.pending_arrivals = self.pending_arrivals.saturating_sub(1);
        let (position, state, class) = {
            let user = &self.users[user_id.0 as usize];
            (user.state.position, user.state, user.class)
        };
        if self.grid.out_of_coverage(position) {
            // Off-map request: counts as blocked offered traffic.
            self.metrics.record_decision(class, CallKind::New, false);
            return;
        }
        let cell_id = self.grid.locate(position);
        let call_id = CallId(user_id.0);
        let request = CallRequest::new(
            call_id,
            class,
            CallKind::New,
            state.observe(self.cells[cell_id.0 as usize].center),
        );
        let admitted = self.try_admit(cell_id, &request);
        self.metrics.record_decision(class, CallKind::New, admitted);
        if admitted {
            let holding = SimDuration::from_secs_f64(self.users[user_id.0 as usize].holding_s);
            self.queue.schedule(
                self.clock + holding,
                Event::CallEnd { call: call_id, user: user_id, cell: cell_id },
            );
            self.users[user_id.0 as usize].call = Some(ActiveCall {
                id: call_id,
                class: self.users[user_id.0 as usize].class,
                cell: cell_id,
            });
        }
    }

    /// Consults the controller, then the ledger; both must agree before
    /// the call is admitted. A controller "admit" that no longer fits is
    /// downgraded to a denial.
    fn try_admit(&mut self, cell_id: CellId, request: &CallRequest) -> bool {
        let cell = &mut self.cells[cell_id.0 as usize];
        let snapshot = cell.ledger.snapshot();
        let decision = cell.controller.decide(request, &snapshot);
        if !decision.admits() {
            return false;
        }
        if cell.ledger.allocate(request.id, request.class).is_err() {
            return false;
        }
        let after = cell.ledger.snapshot();
        cell.controller.on_admitted(request, &after);
        true
    }

    fn release(&mut self, cell_id: CellId, call: CallId) {
        let cell = &mut self.cells[cell_id.0 as usize];
        let class = cell
            .ledger
            .release(call)
            .expect("release of a call the ledger does not hold is a simulator bug");
        let after = cell.ledger.snapshot();
        cell.controller.on_released(call, class, &after);
    }

    fn handle_call_end(&mut self, call: CallId, user_id: UserId) {
        let user = &mut self.users[user_id.0 as usize];
        // The event may be stale: the call could have been dropped at a
        // handoff after this end-event was scheduled.
        let Some(active) = user.call.take() else { return };
        if active.id != call {
            user.call = Some(active);
            return;
        }
        self.release(active.cell, call);
        self.metrics.record_completion();
    }

    fn handle_tick(&mut self) {
        let dt = self.config.movement_tick_s;
        for idx in 0..self.users.len() {
            if self.users[idx].call.is_none() {
                continue;
            }
            let user_id = UserId(idx as u64);
            // Advance kinematics.
            {
                let user = &mut self.users[idx];
                let mut state = user.state;
                user.mobility.step(&mut state, dt, &mut self.rng);
                user.state = state;
            }
            self.process_boundary(user_id);
        }
        if self.pending_arrivals > 0 || self.users.iter().any(|u| u.call.is_some()) {
            let next = self.clock + SimDuration::from_secs_f64(dt);
            self.queue.schedule(next, Event::MovementTick);
        }
    }

    fn process_boundary(&mut self, user_id: UserId) {
        let (position, active_cell, active_id, class) = {
            let user = &self.users[user_id.0 as usize];
            let Some(active) = &user.call else { return };
            (user.state.position, active.cell, active.id, active.class)
        };
        if self.grid.out_of_coverage(position) {
            self.release(active_cell, active_id);
            self.users[user_id.0 as usize].call = None;
            self.metrics.record_exit();
            return;
        }
        let here = self.grid.locate(position);
        if here == active_cell {
            return;
        }
        // Handoff attempt into `here`.
        let request = CallRequest::new(
            active_id,
            class,
            CallKind::Handoff,
            self.users[user_id.0 as usize].state.observe(self.cells[here.0 as usize].center),
        );
        // Release the old allocation first: the handoff target decides on
        // its own free capacity, the old cell frees either way.
        self.release(active_cell, active_id);
        let admitted = self.try_admit(here, &request);
        self.metrics.record_decision(class, CallKind::Handoff, admitted);
        if admitted {
            if let Some(active) = &mut self.users[user_id.0 as usize].call {
                active.cell = here;
            }
        } else {
            // Dropped mid-call.
            self.users[user_id.0 as usize].call = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::policies::CompleteSharing;
    use facs_cac::Decision;

    fn controllers(n: usize) -> Vec<BoxedController> {
        (0..n).map(|_| Box::new(CompleteSharing::new()) as BoxedController).collect()
    }

    fn stationary_spec(arrival_s: f64, class: ServiceClass, holding_s: f64) -> UserSpec {
        UserSpec {
            arrival_s,
            class,
            start: MobileState::new(Point::new(0.5, 0.0), 0.0, 0.0),
            mobility: MobilityKind::StraightLine,
            holding_s,
        }
    }

    #[test]
    fn single_call_is_admitted_and_completes() {
        let grid = HexGrid::single_cell(10.0);
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(vec![stationary_spec(1.0, ServiceClass::Video, 60.0)]);
        assert_eq!(metrics.offered_new, 1);
        assert_eq!(metrics.accepted_new, 1);
        assert_eq!(metrics.completed, 1);
        assert_eq!(sim.occupied(CellId(0)), BandwidthUnits::ZERO, "bandwidth returned");
    }

    #[test]
    fn capacity_blocks_excess_calls() {
        let grid = HexGrid::single_cell(10.0);
        // 40 BU: exactly 4 video calls fit if they overlap.
        let workload: Vec<UserSpec> = (0..6)
            .map(|i| stationary_spec(1.0 + i as f64 * 0.001, ServiceClass::Video, 1_000.0))
            .collect();
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(workload);
        assert_eq!(metrics.offered_new, 6);
        assert_eq!(metrics.accepted_new, 4);
        assert_eq!(metrics.blocked_new, 2);
    }

    #[test]
    fn sequential_calls_reuse_bandwidth() {
        let grid = HexGrid::single_cell(10.0);
        // Calls arrive 100 s apart, each holds 10 s: never concurrent.
        let workload: Vec<UserSpec> = (0..5)
            .map(|i| stationary_spec(10.0 + 100.0 * i as f64, ServiceClass::Video, 10.0))
            .collect();
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(workload);
        assert_eq!(metrics.accepted_new, 5);
        assert_eq!(metrics.completed, 5);
    }

    #[test]
    fn handoff_moves_bandwidth_between_cells() {
        let grid = HexGrid::new(1, 1.0);
        // A user in the center cell moving due east at high speed will
        // cross into the east neighbor well within its holding time.
        let spec = UserSpec {
            arrival_s: 1.0,
            class: ServiceClass::Voice,
            start: MobileState::new(Point::new(0.0, 0.0), 0.0, 120.0),
            mobility: MobilityKind::StraightLine,
            holding_s: 120.0,
        };
        let config = SimulationConfig { movement_tick_s: 1.0, ..Default::default() };
        let mut sim = Simulation::new(grid, config, controllers(7));
        let metrics = sim.run(vec![spec]);
        assert_eq!(metrics.accepted_new, 1);
        assert!(metrics.handoff_attempts >= 1, "no handoff happened");
        assert_eq!(metrics.handoff_dropped, 0);
        // Either completed in a neighbor or exited past the map edge.
        assert_eq!(metrics.completed + metrics.exited_coverage, 1);
    }

    #[test]
    fn handoff_into_full_cell_drops_call() {
        let grid = HexGrid::new(1, 1.0);
        let config = SimulationConfig { movement_tick_s: 1.0, ..Default::default() };
        // Fill the east neighbor with stationary video calls, then drive a
        // voice call into it.
        let east_center = {
            let g = HexGrid::new(1, 1.0);
            let id = g
                .cell_ids()
                .find(|&id| {
                    let c = g.center_of(id);
                    c.y.abs() < 1e-9 && c.x > 0.0
                })
                .unwrap();
            g.center_of(id)
        };
        let mut workload: Vec<UserSpec> = (0..4)
            .map(|i| UserSpec {
                arrival_s: 0.5 + i as f64 * 0.01,
                class: ServiceClass::Video,
                start: MobileState::new(east_center, 0.0, 0.0),
                mobility: MobilityKind::StraightLine,
                holding_s: 10_000.0,
            })
            .collect();
        workload.push(UserSpec {
            arrival_s: 1.0,
            class: ServiceClass::Voice,
            start: MobileState::new(Point::new(0.0, 0.0), 0.0, 120.0),
            mobility: MobilityKind::StraightLine,
            holding_s: 10_000.0,
        });
        let mut sim = Simulation::new(grid, config, controllers(7));
        let metrics = sim.run(workload);
        assert_eq!(metrics.accepted_new, 5);
        assert!(metrics.handoff_dropped >= 1, "expected a dropped handoff");
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let grid = HexGrid::new(1, 2.0);
            let config = SimulationConfig { movement_tick_s: 2.0, seed: 7, ..Default::default() };
            let workload: Vec<UserSpec> = (0..50)
                .map(|i| UserSpec {
                    arrival_s: i as f64,
                    class: if i % 3 == 0 { ServiceClass::Video } else { ServiceClass::Text },
                    start: MobileState::new(Point::new(0.1 * i as f64 % 1.5, 0.0), 45.0, 30.0),
                    mobility: MobilityKind::Walker(Walker::paper_default()),
                    holding_s: 60.0 + i as f64,
                })
                .collect();
            let mut sim = Simulation::new(grid, config, controllers(7));
            sim.run(workload)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn controller_veto_blocks_even_with_capacity() {
        struct DenyAll;
        impl AdmissionController for DenyAll {
            fn name(&self) -> &str {
                "deny"
            }
            fn decide(&mut self, _r: &CallRequest, _c: &facs_cac::CellSnapshot) -> Decision {
                Decision::binary(false)
            }
        }
        let grid = HexGrid::single_cell(10.0);
        let mut sim = Simulation::new(
            grid,
            SimulationConfig::default(),
            vec![Box::new(DenyAll) as BoxedController],
        );
        let metrics = sim.run(vec![stationary_spec(1.0, ServiceClass::Text, 10.0)]);
        assert_eq!(metrics.blocked_new, 1);
        assert_eq!(metrics.accepted_new, 0);
    }

    #[test]
    #[should_panic(expected = "one controller per cell")]
    fn controller_count_mismatch_panics() {
        let grid = HexGrid::new(1, 1.0);
        let _ = Simulation::new(grid, SimulationConfig::default(), controllers(3));
    }

    #[test]
    fn utilization_is_tracked() {
        let grid = HexGrid::single_cell(10.0);
        let mut sim = Simulation::new(grid, SimulationConfig::default(), controllers(1));
        let metrics = sim.run(vec![stationary_spec(0.0, ServiceClass::Video, 600.0)]);
        assert!(metrics.mean_utilization() > 0.0);
    }
}
