//! Run-time validation sinks: invariant checking and golden-trace
//! digests.
//!
//! Both types plug into any [`Simulation::run_with`] call as ordinary
//! [`MetricsSink`]s (usually composed in a tuple with [`Metrics`]), so
//! every workload — hand-written, catalog, or fuzzed — can be validated
//! without touching the kernel:
//!
//! * [`InvariantSink`] checks the conservation laws the kernel must
//!   uphold for *any* structurally valid workload: every admitted call
//!   terminates exactly once (completion, coverage exit, or handoff
//!   drop) or survives to the horizon; per-cell occupancy never exceeds
//!   capacity at any epoch sample; handoff attempts always split into
//!   accepts plus drops; and its own totals must agree with the
//!   [`Metrics`] counters collected over the same run.
//! * [`TraceDigest`] folds every observable event into an
//!   **order-insensitive** 192-bit digest (xor-fold, wrapping-sum fold
//!   and count of per-event hashes). Because the sharded kernel
//!   produces the *same event multiset* — identical timestamps, cells,
//!   users, classes and verdicts — for every shard count, the digest is
//!   invariant under sharding and threading, yet flips if a single
//!   admission verdict, timestamp or cell changes. Checked-in digests
//!   (`results/golden/*.json`) turn any behavioural drift of the kernel
//!   or the controllers into a CI failure.
//!
//! The `validate` experiment (`experiments --exp validate`) runs fuzzed
//! workloads (see [`crate::fuzz`]) through both sinks at 1 vs N shards
//! and exact vs compiled FACS backends; `--exp golden --check` compares
//! catalog digests against the committed baselines.
//!
//! [`Simulation::run_with`]: crate::engine::Simulation::run_with

use std::collections::BTreeMap;

use facs_cac::{BandwidthUnits, CallKind, CellId, ServiceClass};

use crate::events::UserId;
use crate::metrics::{DecisionRecord, Metrics, MetricsSink};
use crate::time::SimTime;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation. Every
/// event hash funnels through this, so single-bit input differences
/// avalanche across the digest.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn class_code(class: ServiceClass) -> u64 {
    match class {
        ServiceClass::Text => 1,
        ServiceClass::Voice => 2,
        ServiceClass::Video => 3,
    }
}

/// An order-insensitive digest of one simulation run's observable
/// events: admission decisions (new and handoff, including the verdict),
/// completions and coverage exits.
///
/// Two runs have equal digests iff they produced the same *multiset* of
/// events — the exact property the sharded kernel guarantees across
/// shard and thread counts. The digest is rendered as a 48-hex-char
/// string (`xor ‖ sum ‖ count`) for the golden files.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceDigest {
    xor: u64,
    sum: u64,
    count: u64,
}

impl TraceDigest {
    /// Creates an empty digest.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events folded in so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.count
    }

    fn fold(&mut self, h: u64) {
        self.xor ^= h;
        self.sum = self.sum.wrapping_add(h);
        self.count += 1;
    }

    fn event(&mut self, tag: u64, now: SimTime, cell: CellId, user: UserId, payload: u64) {
        let mut h = mix(tag);
        h = mix(h ^ now.as_micros());
        h = mix(h ^ u64::from(cell.0));
        h = mix(h ^ user.0);
        h = mix(h ^ payload);
        self.fold(h);
    }

    /// The digest as a fixed-width hex string (the golden-file format).
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}{:016x}", self.xor, self.sum, self.count)
    }
}

impl std::fmt::Display for TraceDigest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

impl MetricsSink for TraceDigest {
    fn fork(&self) -> Self {
        Self::default()
    }

    fn absorb(&mut self, other: Self) {
        self.xor ^= other.xor;
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
    }

    fn on_decision(&mut self, now: SimTime, cell: CellId, record: &DecisionRecord) {
        let kind_code = match record.kind {
            CallKind::New => 1u64,
            CallKind::Handoff => 2,
        };
        let payload = class_code(record.class)
            | (kind_code << 8)
            | (u64::from(record.admitted) << 16)
            | (u64::from(record.allocated.get()) << 24);
        self.event(0xDEC1, now, cell, record.user, payload);
    }

    fn on_reallocation(
        &mut self,
        now: SimTime,
        cell: CellId,
        user: UserId,
        allocated: BandwidthUnits,
        floor: BandwidthUnits,
    ) {
        let payload = u64::from(allocated.get()) | (u64::from(floor.get()) << 16);
        self.event(0xEA11, now, cell, user, payload);
    }

    fn on_completion(&mut self, now: SimTime, cell: CellId, user: UserId) {
        self.event(0xC0DE, now, cell, user, 0);
    }

    fn on_exit(&mut self, now: SimTime, cell: CellId, user: UserId) {
        self.event(0xE817, now, cell, user, 0);
    }
}

/// Per-user event tally the conservation checks run over.
#[derive(Debug, Clone, Copy, Default)]
struct UserTrace {
    new_offered: u32,
    new_admitted: u32,
    handoff_attempts: u32,
    handoff_accepted: u32,
    handoff_dropped: u32,
    completed: u32,
    exited: u32,
    admit_us: u64,
    last_end_us: u64,
}

/// A [`MetricsSink`] that checks the kernel's conservation invariants
/// over one run.
///
/// Collect it (usually as `(Metrics, InvariantSink)`), then call
/// [`InvariantSink::violations`] — an empty list means the run upheld
/// every invariant:
///
/// 1. **Call conservation** — every user is offered at most one new
///    call; every *admitted* call terminates at most once (completion,
///    coverage exit, or handoff drop), and a call that never terminated
///    is counted as surviving to the horizon. Denied users generate no
///    further events.
/// 2. **Handoff accounting** — per user and in total, handoff attempts
///    = accepts + drops, and no handoff precedes admission.
/// 3. **Bandwidth conservation** — no epoch occupancy sample ever
///    exceeds the cell's capacity (Σ allocations ≤ capacity, since the
///    occupancy *is* the sum of per-call allocations).
/// 4. **QoS floor** — every admission's grant lies inside the profile's
///    `[floor, nominal]` band, denials allocate nothing, and no in-call
///    reallocation (degradation squeeze or re-upgrade) ever dips below
///    the floor.
/// 5. **Metrics consistency** — [`InvariantSink::cross_check`] compares
///    the sink's own totals against the [`Metrics`] counters collected
///    over the same run.
#[derive(Debug, Clone, Default)]
pub struct InvariantSink {
    users: BTreeMap<u64, UserTrace>,
    capacity_violations: Vec<String>,
    samples: u64,
}

impl InvariantSink {
    /// Creates an empty invariant checker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of users that produced at least one event.
    #[must_use]
    pub fn users_seen(&self) -> usize {
        self.users.len()
    }

    /// Number of epoch occupancy samples capacity-checked.
    #[must_use]
    pub fn samples_checked(&self) -> u64 {
        self.samples
    }

    /// Admitted calls with no terminal event — still in progress when
    /// the horizon cut the run off.
    #[must_use]
    pub fn active_at_horizon(&self) -> u64 {
        self.users
            .values()
            .filter(|t| t.new_admitted > 0 && t.completed + t.exited + t.handoff_dropped == 0)
            .count() as u64
    }

    fn trace(&mut self, user: UserId) -> &mut UserTrace {
        self.users.entry(user.0).or_default()
    }

    /// Every invariant violation found in the collected events (empty
    /// when the run was clean). Call after the simulation finished.
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut out = self.capacity_violations.clone();
        for (&id, t) in &self.users {
            let terminals = t.completed + t.exited + t.handoff_dropped;
            if t.new_offered > 1 {
                out.push(format!("user#{id}: offered {} new calls (max 1)", t.new_offered));
            }
            if t.new_admitted > t.new_offered {
                out.push(format!(
                    "user#{id}: admitted {} times but offered {}",
                    t.new_admitted, t.new_offered
                ));
            }
            if t.new_admitted == 0 && (terminals > 0 || t.handoff_attempts > 0) {
                out.push(format!(
                    "user#{id}: {} terminal and {} handoff events without an admission",
                    terminals, t.handoff_attempts
                ));
            }
            if terminals > 1 {
                out.push(format!(
                    "user#{id}: terminated {terminals} times \
                     (completed {}, exited {}, dropped {})",
                    t.completed, t.exited, t.handoff_dropped
                ));
            }
            if t.handoff_attempts != t.handoff_accepted + t.handoff_dropped {
                out.push(format!(
                    "user#{id}: handoff attempts {} != accepts {} + drops {}",
                    t.handoff_attempts, t.handoff_accepted, t.handoff_dropped
                ));
            }
            if t.new_admitted > 0 && terminals > 0 && t.last_end_us < t.admit_us {
                out.push(format!(
                    "user#{id}: terminated at {}us before admission at {}us",
                    t.last_end_us, t.admit_us
                ));
            }
        }
        out
    }

    /// Compares the sink's own event totals against the [`Metrics`]
    /// counters collected over the same run; any disagreement means the
    /// metrics pipeline and the event stream drifted apart.
    #[must_use]
    pub fn cross_check(&self, metrics: &Metrics) -> Vec<String> {
        let mut offered = 0u64;
        let mut admitted = 0u64;
        let mut attempts = 0u64;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        let mut completed = 0u64;
        let mut exited = 0u64;
        for t in self.users.values() {
            offered += u64::from(t.new_offered);
            admitted += u64::from(t.new_admitted);
            attempts += u64::from(t.handoff_attempts);
            accepted += u64::from(t.handoff_accepted);
            dropped += u64::from(t.handoff_dropped);
            completed += u64::from(t.completed);
            exited += u64::from(t.exited);
        }
        let mut out = Vec::new();
        let mut check = |name: &str, sink: u64, metric: u64| {
            if sink != metric {
                out.push(format!("metrics disagree on {name}: sink saw {sink}, Metrics {metric}"));
            }
        };
        check("offered_new", offered, metrics.offered_new);
        check("accepted_new", admitted, metrics.accepted_new);
        check("blocked_new", offered - admitted, metrics.blocked_new);
        check("handoff_attempts", attempts, metrics.handoff_attempts);
        check("handoff_accepted", accepted, metrics.handoff_accepted);
        check("handoff_dropped", dropped, metrics.handoff_dropped);
        check("completed", completed, metrics.completed);
        check("exited_coverage", exited, metrics.exited_coverage);
        // Conservation closes the books: admitted = terminated + alive.
        let alive = self.active_at_horizon();
        if admitted != completed + exited + dropped + alive {
            out.push(format!(
                "conservation broken: admitted {admitted} != completed {completed} \
                 + exited {exited} + dropped {dropped} + active-at-horizon {alive}"
            ));
        }
        out
    }
}

impl MetricsSink for InvariantSink {
    fn fork(&self) -> Self {
        Self::default()
    }

    fn absorb(&mut self, other: Self) {
        for (id, t) in other.users {
            let mine = self.users.entry(id).or_default();
            mine.new_offered += t.new_offered;
            mine.new_admitted += t.new_admitted;
            mine.handoff_attempts += t.handoff_attempts;
            mine.handoff_accepted += t.handoff_accepted;
            mine.handoff_dropped += t.handoff_dropped;
            mine.completed += t.completed;
            mine.exited += t.exited;
            mine.admit_us = mine.admit_us.max(t.admit_us);
            mine.last_end_us = mine.last_end_us.max(t.last_end_us);
        }
        self.capacity_violations.extend(other.capacity_violations);
        self.samples += other.samples;
    }

    fn on_decision(&mut self, now: SimTime, _cell: CellId, record: &DecisionRecord) {
        let user = record.user;
        if record.admitted {
            if record.allocated < record.floor {
                self.capacity_violations.push(format!(
                    "user#{}: admitted at {} BU below QoS floor {} at t={:.1}s",
                    user.0,
                    record.allocated.get(),
                    record.floor.get(),
                    now.as_secs_f64()
                ));
            }
            if record.allocated > record.nominal {
                self.capacity_violations.push(format!(
                    "user#{}: admitted at {} BU above nominal {} at t={:.1}s",
                    user.0,
                    record.allocated.get(),
                    record.nominal.get(),
                    now.as_secs_f64()
                ));
            }
        } else if !record.allocated.is_zero() {
            self.capacity_violations.push(format!(
                "user#{}: denied but holds {} BU at t={:.1}s",
                user.0,
                record.allocated.get(),
                now.as_secs_f64()
            ));
        }
        let t = self.trace(user);
        match record.kind {
            CallKind::New => {
                t.new_offered += 1;
                if record.admitted {
                    t.new_admitted += 1;
                    t.admit_us = now.as_micros();
                }
            }
            CallKind::Handoff => {
                t.handoff_attempts += 1;
                if record.admitted {
                    t.handoff_accepted += 1;
                } else {
                    t.handoff_dropped += 1;
                    t.last_end_us = now.as_micros();
                }
            }
        }
    }

    fn on_reallocation(
        &mut self,
        now: SimTime,
        cell: CellId,
        user: UserId,
        allocated: BandwidthUnits,
        floor: BandwidthUnits,
    ) {
        if allocated < floor {
            self.capacity_violations.push(format!(
                "user#{}: reallocated to {} BU below QoS floor {} in cell {} at t={:.1}s",
                user.0,
                allocated.get(),
                floor.get(),
                cell.0,
                now.as_secs_f64()
            ));
        }
    }

    fn on_completion(&mut self, now: SimTime, _cell: CellId, user: UserId) {
        let t = self.trace(user);
        t.completed += 1;
        t.last_end_us = now.as_micros();
    }

    fn on_exit(&mut self, now: SimTime, _cell: CellId, user: UserId) {
        let t = self.trace(user);
        t.exited += 1;
        t.last_end_us = now.as_micros();
    }

    fn on_cell_sample(&mut self, now: SimTime, cell: CellId, occupied: u32, capacity: u32) {
        self.samples += 1;
        if occupied > capacity {
            self.capacity_violations.push(format!(
                "cell {} over capacity at t={:.1}s: {occupied} BU occupied of {capacity}",
                cell.0,
                now.as_secs_f64()
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use facs_cac::ServiceProfile;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// A rigid paper-profile decision record at nominal allocation.
    fn rec(user: u64, class: ServiceClass, kind: CallKind, admitted: bool) -> DecisionRecord {
        let profile = ServiceProfile::paper(class);
        if admitted {
            DecisionRecord::admitted(UserId(user), profile, kind, profile.rb_cost_nominal)
        } else {
            DecisionRecord::denied(UserId(user), profile, kind)
        }
    }

    #[test]
    fn digest_is_order_insensitive() {
        let mut a = TraceDigest::new();
        let mut b = TraceDigest::new();
        let events = [(1.0, 0u32, 1u64, true), (2.0, 1, 2, false), (3.0, 2, 3, true)];
        for &(s, cell, user, ok) in &events {
            a.on_decision(t(s), CellId(cell), &rec(user, ServiceClass::Voice, CallKind::New, ok));
        }
        for &(s, cell, user, ok) in events.iter().rev() {
            b.on_decision(t(s), CellId(cell), &rec(user, ServiceClass::Voice, CallKind::New, ok));
        }
        assert_eq!(a, b);
        assert_eq!(a.hex(), b.hex());
        assert_eq!(a.events(), 3);
    }

    #[test]
    fn digest_flips_on_a_single_changed_verdict() {
        let fill = |flip: bool| {
            let mut d = TraceDigest::new();
            for u in 0..50u64 {
                let admitted = if u == 17 { flip } else { u % 2 == 0 };
                d.on_decision(
                    t(u as f64),
                    CellId(0),
                    &rec(u, ServiceClass::Text, CallKind::New, admitted),
                );
            }
            d
        };
        assert_ne!(fill(false), fill(true));
    }

    #[test]
    fn digest_flips_on_a_degraded_allocation() {
        // Same verdict, different grant: the digest must tell a nominal
        // admission from a degraded one.
        let profile =
            ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 0.5, 180.0);
        let at = |bu: u32| {
            let mut d = TraceDigest::new();
            let record = DecisionRecord::admitted(
                UserId(1),
                profile,
                CallKind::Handoff,
                BandwidthUnits::new(bu),
            );
            d.on_decision(t(1.0), CellId(0), &record);
            d
        };
        assert_ne!(at(10), at(6));
    }

    #[test]
    fn digest_folds_reallocations() {
        let mut base = TraceDigest::new();
        base.on_reallocation(
            t(2.0),
            CellId(0),
            UserId(3),
            BandwidthUnits::new(7),
            BandwidthUnits::new(5),
        );
        assert_eq!(base.events(), 1);
        let mut other = TraceDigest::new();
        other.on_reallocation(
            t(2.0),
            CellId(0),
            UserId(3),
            BandwidthUnits::new(6),
            BandwidthUnits::new(5),
        );
        assert_ne!(base, other, "the new grant must be hashed");
    }

    #[test]
    fn digest_distinguishes_event_kinds_and_fields() {
        let mut base = TraceDigest::new();
        base.on_completion(t(1.0), CellId(0), UserId(1));
        let mut exit = TraceDigest::new();
        exit.on_exit(t(1.0), CellId(0), UserId(1));
        assert_ne!(base, exit, "completion vs exit must differ");
        let mut other_cell = TraceDigest::new();
        other_cell.on_completion(t(1.0), CellId(1), UserId(1));
        assert_ne!(base, other_cell, "cell must be hashed");
        let mut other_time = TraceDigest::new();
        other_time.on_completion(t(1.5), CellId(0), UserId(1));
        assert_ne!(base, other_time, "time must be hashed");
    }

    #[test]
    fn digest_absorb_matches_single_sink() {
        let mut whole = TraceDigest::new();
        let mut left = TraceDigest::new();
        let mut right = TraceDigest::new();
        for u in 0..20u64 {
            let target = if u % 2 == 0 { &mut left } else { &mut right };
            target.on_exit(t(u as f64), CellId((u % 3) as u32), UserId(u));
            whole.on_exit(t(u as f64), CellId((u % 3) as u32), UserId(u));
        }
        let mut folded = TraceDigest::new();
        folded.absorb(left);
        folded.absorb(right);
        assert_eq!(folded, whole);
    }

    #[test]
    fn clean_lifecycle_has_no_violations() {
        let mut sink = InvariantSink::new();
        sink.on_decision(t(1.0), CellId(0), &rec(7, ServiceClass::Voice, CallKind::New, true));
        sink.on_decision(t(5.0), CellId(1), &rec(7, ServiceClass::Voice, CallKind::Handoff, true));
        sink.on_completion(t(9.0), CellId(1), UserId(7));
        sink.on_decision(t(2.0), CellId(0), &rec(8, ServiceClass::Video, CallKind::New, false));
        sink.on_cell_sample(t(5.0), CellId(0), 10, 40);
        assert_eq!(sink.violations(), Vec::<String>::new());
        assert_eq!(sink.active_at_horizon(), 0);
        let mut metrics = Metrics::new();
        metrics.record_decision(ServiceClass::Voice, CallKind::New, true);
        metrics.record_decision(ServiceClass::Voice, CallKind::Handoff, true);
        metrics.record_decision(ServiceClass::Video, CallKind::New, false);
        metrics.record_completion();
        assert_eq!(sink.cross_check(&metrics), Vec::<String>::new());
    }

    #[test]
    fn double_completion_is_a_violation() {
        let mut sink = InvariantSink::new();
        sink.on_decision(t(1.0), CellId(0), &rec(3, ServiceClass::Text, CallKind::New, true));
        sink.on_completion(t(2.0), CellId(0), UserId(3));
        sink.on_completion(t(3.0), CellId(0), UserId(3));
        let violations = sink.violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("terminated 2 times"), "{violations:?}");
    }

    #[test]
    fn completion_without_admission_is_a_violation() {
        let mut sink = InvariantSink::new();
        sink.on_completion(t(2.0), CellId(0), UserId(9));
        let violations = sink.violations();
        assert!(violations.iter().any(|v| v.contains("without an admission")), "{violations:?}");
    }

    #[test]
    fn over_capacity_sample_is_a_violation() {
        let mut sink = InvariantSink::new();
        sink.on_cell_sample(t(10.0), CellId(2), 41, 40);
        let violations = sink.violations();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("over capacity"), "{violations:?}");
        assert_eq!(sink.samples_checked(), 1);
    }

    #[test]
    fn below_floor_admission_is_a_violation() {
        let profile =
            ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 0.5, 180.0);
        let mut sink = InvariantSink::new();
        sink.on_decision(
            t(1.0),
            CellId(0),
            &DecisionRecord::admitted(UserId(1), profile, CallKind::New, BandwidthUnits::new(4)),
        );
        let violations = sink.violations();
        assert!(violations.iter().any(|v| v.contains("below QoS floor")), "{violations:?}");
    }

    #[test]
    fn above_nominal_admission_is_a_violation() {
        let profile = ServiceProfile::paper(ServiceClass::Voice);
        let mut sink = InvariantSink::new();
        sink.on_decision(
            t(1.0),
            CellId(0),
            &DecisionRecord::admitted(UserId(2), profile, CallKind::New, BandwidthUnits::new(6)),
        );
        let violations = sink.violations();
        assert!(violations.iter().any(|v| v.contains("above nominal")), "{violations:?}");
    }

    #[test]
    fn below_floor_reallocation_is_a_violation() {
        let mut sink = InvariantSink::new();
        sink.on_reallocation(
            t(3.0),
            CellId(1),
            UserId(5),
            BandwidthUnits::new(4),
            BandwidthUnits::new(5),
        );
        let violations = sink.violations();
        assert!(
            violations.iter().any(|v| v.contains("reallocated") && v.contains("below QoS floor")),
            "{violations:?}"
        );
        // A legal squeeze down to exactly the floor is clean.
        let mut clean = InvariantSink::new();
        clean.on_reallocation(
            t(3.0),
            CellId(1),
            UserId(5),
            BandwidthUnits::new(5),
            BandwidthUnits::new(5),
        );
        assert_eq!(clean.violations(), Vec::<String>::new());
    }

    #[test]
    fn survivor_balances_conservation() {
        let mut sink = InvariantSink::new();
        sink.on_decision(t(1.0), CellId(0), &rec(1, ServiceClass::Text, CallKind::New, true));
        assert_eq!(sink.violations(), Vec::<String>::new());
        assert_eq!(sink.active_at_horizon(), 1);
        let mut metrics = Metrics::new();
        metrics.record_decision(ServiceClass::Text, CallKind::New, true);
        assert_eq!(sink.cross_check(&metrics), Vec::<String>::new());
    }

    #[test]
    fn absorb_merges_split_user_histories() {
        // Admission seen by shard A, completion by shard B: only the
        // merged view can prove conservation.
        let mut a = InvariantSink::new();
        a.on_decision(t(1.0), CellId(0), &rec(4, ServiceClass::Voice, CallKind::New, true));
        let mut b = InvariantSink::new();
        b.on_completion(t(6.0), CellId(1), UserId(4));
        assert!(!b.violations().is_empty(), "lone completion should look broken");
        let mut merged = InvariantSink::new();
        merged.absorb(a);
        merged.absorb(b);
        assert_eq!(merged.violations(), Vec::<String>::new());
        assert_eq!(merged.users_seen(), 1);
    }

    #[test]
    fn cross_check_catches_counter_drift() {
        let mut sink = InvariantSink::new();
        sink.on_decision(t(1.0), CellId(0), &rec(1, ServiceClass::Text, CallKind::New, true));
        let metrics = Metrics::new(); // never saw the decision
        let drift = sink.cross_check(&metrics);
        assert!(drift.iter().any(|v| v.contains("offered_new")), "{drift:?}");
    }
}
