//! Declarative workload descriptions and the named scenario catalog.
//!
//! A [`Workload`] is plain data — arrival pattern, spawn placement,
//! speed/angle/distance distributions, mobility model and traffic mix —
//! that deterministically expands into a list of [`UserSpec`]s for a
//! given grid, request count, window and seed. [`crate::scenario::ScenarioConfig`] assembles
//! its knobs into a `Workload`, the `experiments` binary runs every
//! entry of the [`catalog`], and `facs-distrib` replays workloads
//! through the actor runtime.
//!
//! The [`catalog`] names the scenario families the suite ships beyond
//! the paper's homogeneous Poisson/hex-grid setup: hotspot cells, flash
//! crowds, rush-hour time-varying arrival rates, heterogeneous
//! service-class mixes (cf. arXiv:1412.3630, arXiv:1004.4444) and
//! highway-corridor mobility.

use facs_cac::{ServiceProfile, ServiceProfileSet};
use serde::{Deserialize, Serialize};

use crate::engine::{MobilityKind, UserSpec};
use crate::geometry::{HexGrid, Point};
use crate::mobility::{MobileState, Walker};
use crate::rng::SimRng;
use crate::scenario::ScenarioConfig;
use crate::traffic::{HoldingTimes, PoissonArrivals, TrafficMix};

/// How user speed is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedSpec {
    /// Every user moves at exactly this speed (km/h) — Fig. 7's curves.
    Fixed(f64),
    /// Uniform over the paper's 0–120 km/h range.
    PaperUniform,
    /// Uniform over a custom range.
    Uniform(f64, f64),
}

impl SpeedSpec {
    fn sample(self, rng: &mut SimRng) -> f64 {
        match self {
            SpeedSpec::Fixed(v) => v,
            SpeedSpec::PaperUniform => rng.uniform_range(0.0, 120.0),
            SpeedSpec::Uniform(lo, hi) => rng.uniform_range(lo, hi),
        }
    }
}

/// How the user's heading (and therefore FLC1's angle input) is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AngleSpec {
    /// The observed angle at request time is exactly this value (degrees)
    /// — Fig. 8's curves.
    Fixed(f64),
    /// Uniform over −180…180°.
    Uniform,
    /// An absolute compass heading in degrees (counterclockwise from
    /// +x), independent of the base-station bearing — corridor traffic.
    Heading(f64),
    /// The GPS-substitution model (DESIGN.md): users originally headed at
    /// the base station, but their heading has diffused for `history_s`
    /// seconds of walker motion — so slow users arrive with nearly
    /// uniform headings while fast users still point at the BS. This is
    /// the mechanism behind Fig. 7.
    HeadingHistory {
        /// Seconds of heading diffusion before the request.
        history_s: f64,
    },
}

/// How the user's distance from the base station is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistanceSpec {
    /// Exactly this many km from the BS — Fig. 9's curves.
    Fixed(f64),
    /// Uniform over `0..cell radius`.
    UniformInCell,
    /// Uniform over a custom range (km).
    Uniform(f64, f64),
}

/// Where users spawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpawnSpec {
    /// All requests target the center cell (figs. 7–9: one BS).
    CenterCell,
    /// Requests spread uniformly over all cells (fig. 10: a cluster).
    AnyCell,
    /// A fraction of requests concentrates on one cell, the rest spread
    /// uniformly — a persistent hotspot (stadium, mall).
    Hotspot {
        /// The hot cell's id.
        cell: u32,
        /// Fraction of requests targeting the hot cell (clamped 0–1).
        fraction: f64,
    },
    /// Requests spawn along a straight corridor through the grid center
    /// (a highway crossing the coverage area).
    Corridor {
        /// Corridor heading, degrees counterclockwise from +x.
        heading_deg: f64,
        /// Half the corridor width, km (lateral spawn offset).
        half_width_km: f64,
    },
}

/// Which mobility model users follow after the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MobilityChoice {
    /// Walker for sampled-angle populations, straight-line for pinned
    /// angles (so the controlled variable stays controlled).
    Auto,
    /// Always the heading-diffusion walker.
    Walker,
    /// Always straight-line.
    StraightLine,
}

/// When users arrive inside the window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Conditioned Poisson: given `n` arrivals in the window, instants
    /// are i.i.d. uniform — the paper's process.
    Uniform,
    /// A flash crowd: `weight` of the arrivals land uniformly inside a
    /// burst of `width` (fraction of the window) centered at `center`
    /// (fraction of the window); the rest arrive uniformly.
    Burst {
        /// Burst center as a fraction of the window (0–1).
        center: f64,
        /// Burst width as a fraction of the window (0–1).
        width: f64,
        /// Fraction of all arrivals belonging to the burst (0–1).
        weight: f64,
    },
    /// A time-varying arrival rate: the window splits into equal stages
    /// with the given relative rates (e.g. a rush-hour ramp
    /// `[0.2, 0.6, 1.0, 1.0, 0.6, 0.2]`).
    Stages(Vec<f64>),
}

impl ArrivalPattern {
    /// Draws `count` arrival instants in `[0, window_s)`, ascending.
    #[must_use]
    pub fn sample_times(&self, count: usize, window_s: f64, rng: &mut SimRng) -> Vec<f64> {
        let window = window_s.max(f64::MIN_POSITIVE);
        let mut times: Vec<f64> = match self {
            // Delegate to the paper's process so the baseline random
            // stream is unchanged.
            ArrivalPattern::Uniform => return PoissonArrivals::arrival_times(count, window_s, rng),
            ArrivalPattern::Burst { center, width, weight } => (0..count)
                .map(|_| {
                    if rng.chance(*weight) {
                        let lo = (center - width / 2.0).max(0.0) * window;
                        let hi = ((center + width / 2.0).min(1.0) * window).max(lo + 1e-9);
                        rng.uniform_range(lo, hi)
                    } else {
                        rng.uniform_range(0.0, window)
                    }
                })
                .collect(),
            ArrivalPattern::Stages(rates) => {
                assert!(!rates.is_empty(), "empty arrival stages");
                let stage_len = window / rates.len() as f64;
                (0..count)
                    .map(|_| {
                        let stage = rng.weighted_index(rates);
                        stage as f64 * stage_len + rng.uniform_range(0.0, stage_len)
                    })
                    .collect()
            }
        };
        times.sort_by(f64::total_cmp);
        times
    }
}

/// A declarative workload description: everything the generator needs,
/// as plain (serde-friendly) data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Arrival-time pattern inside the window.
    pub arrivals: ArrivalPattern,
    /// Spawn placement.
    pub spawn: SpawnSpec,
    /// Speed distribution.
    pub speed: SpeedSpec,
    /// Angle distribution.
    pub angle: AngleSpec,
    /// Distance distribution (ignored by corridor placement, which fixes
    /// positions geometrically).
    pub distance: DistanceSpec,
    /// Mobility model choice.
    pub mobility: MobilityChoice,
    /// Traffic class mix.
    pub mix: TrafficMix,
    /// Per-class service profiles. `None` reproduces the paper's rigid
    /// unit costs ([`ServiceProfile::paper`]) with holding times drawn
    /// from the scenario-level mean — bit-identical to the pre-elastic
    /// random stream. `Some` attaches elastic profiles and draws each
    /// call's holding time from its class's mean duration instead.
    pub profiles: Option<ServiceProfileSet>,
}

impl Default for Workload {
    /// The paper's §4 population: uniform arrivals at the center cell,
    /// 0–120 km/h, heading-history angles, uniform in-cell distances,
    /// 60/30/10 % text/voice/video.
    fn default() -> Self {
        Self {
            arrivals: ArrivalPattern::Uniform,
            spawn: SpawnSpec::CenterCell,
            speed: SpeedSpec::PaperUniform,
            angle: AngleSpec::HeadingHistory { history_s: 300.0 },
            distance: DistanceSpec::UniformInCell,
            mobility: MobilityChoice::Auto,
            mix: TrafficMix::PAPER,
            profiles: None,
        }
    }
}

impl Workload {
    /// Expands the description into `count` concrete [`UserSpec`]s over
    /// `grid`, arrivals spread over `window_s` seconds, holding times
    /// drawn from `holding`. All randomness derives from `seed` alone,
    /// so competing controllers face byte-identical traffic.
    ///
    /// This is the eager path: it drains a [`WorkloadStream`] in a single
    /// chunk, so eager and streamed synthesis are bit-identical by
    /// construction — they run the same generator code on the same
    /// random stream.
    #[must_use]
    pub fn generate(
        &self,
        grid: &HexGrid,
        count: usize,
        window_s: f64,
        holding: HoldingTimes,
        seed: u64,
    ) -> Vec<UserSpec> {
        let mut stream = self.stream(grid, count, window_s, holding, seed, count.max(1));
        match stream.next_chunk() {
            Some(chunk) => chunk.specs,
            None => Vec::new(),
        }
    }

    /// Opens a resumable streaming generator over the same random stream
    /// as [`Workload::generate`]: arrival instants are sampled up front
    /// (8 bytes per user — they need a global sort), then user attributes
    /// are synthesized lazily in arrival order, `chunk_size` users at a
    /// time. Peak residency is one chunk plus the arrival-time vector
    /// instead of `count` full [`UserSpec`]s.
    #[must_use]
    pub fn stream(
        &self,
        grid: &HexGrid,
        count: usize,
        window_s: f64,
        holding: HoldingTimes,
        seed: u64,
        chunk_size: usize,
    ) -> WorkloadStream {
        let mut rng = SimRng::seed_from_u64(seed);
        let arrival_times = self.arrivals.sample_times(count, window_s, &mut rng);
        // The corridor spans the grid's full extent plus one cell radius.
        let corridor_reach = (f64::from(grid.radius()) * 3f64.sqrt() + 1.0) * grid.cell_radius_km();
        WorkloadStream {
            workload: self.clone(),
            grid: grid.clone(),
            holding,
            walker: Walker::paper_default(),
            corridor_reach,
            rng,
            count: arrival_times.len(),
            arrival_times,
            next: 0,
            chunk_size: chunk_size.max(1),
            pool: Vec::new(),
        }
    }

    /// Synthesizes one user's attributes, consuming exactly the same
    /// draws from `rng` as the original eager generator. Shared by the
    /// eager and streamed paths.
    fn user_spec(
        &self,
        arrival_s: f64,
        grid: &HexGrid,
        walker: &Walker,
        corridor_reach: f64,
        holding: HoldingTimes,
        rng: &mut SimRng,
    ) -> UserSpec {
        let class = self.mix.sample(rng);
        let speed = self.speed.sample(rng);
        let (position, bearing_to_bs) = match self.spawn {
            SpawnSpec::Corridor { heading_deg, half_width_km } => {
                let along = rng.uniform_range(-corridor_reach, corridor_reach);
                let offset = if half_width_km > 0.0 {
                    rng.uniform_range(-half_width_km, half_width_km)
                } else {
                    0.0
                };
                let position =
                    Point::ORIGIN.step(heading_deg, along).step(heading_deg + 90.0, offset);
                let bs = grid.center_of(grid.locate(position));
                let bearing = if position.distance_to(bs) > 1e-9 {
                    position.bearing_to(bs)
                } else {
                    rng.uniform_range(-180.0, 180.0)
                };
                (position, bearing)
            }
            placement => {
                let cell = match placement {
                    SpawnSpec::CenterCell => facs_cac::CellId(0),
                    SpawnSpec::AnyCell => facs_cac::CellId(rng.index(grid.len()) as u32),
                    SpawnSpec::Hotspot { cell, fraction } => {
                        if rng.chance(fraction) {
                            facs_cac::CellId(cell.min(grid.len() as u32 - 1))
                        } else {
                            facs_cac::CellId(rng.index(grid.len()) as u32)
                        }
                    }
                    SpawnSpec::Corridor { .. } => unreachable!("matched above"),
                };
                let bs = grid.center_of(cell);
                let distance = match self.distance {
                    DistanceSpec::Fixed(d) => d,
                    DistanceSpec::UniformInCell => rng.uniform_range(0.0, grid.cell_radius_km()),
                    DistanceSpec::Uniform(lo, hi) => rng.uniform_range(lo, hi),
                };
                // Place the user on a uniformly random bearing
                // from the BS.
                let bearing_from_bs = rng.uniform_range(-180.0, 180.0);
                let position = bs.step(bearing_from_bs, distance);
                let bearing_to_bs = if distance > 1e-9 {
                    position.bearing_to(bs)
                } else {
                    rng.uniform_range(-180.0, 180.0)
                };
                (position, bearing_to_bs)
            }
        };
        let heading = match self.angle {
            AngleSpec::Fixed(angle) => bearing_to_bs + angle,
            AngleSpec::Uniform => rng.uniform_range(-180.0, 180.0),
            AngleSpec::Heading(heading_deg) => heading_deg,
            AngleSpec::HeadingHistory { history_s } => {
                let sigma = walker.turn_sigma_at(speed) * history_s.sqrt();
                if sigma >= 60.0 {
                    // Past ~60° of diffusion a wrapped normal is
                    // dispersed enough that the direction carries
                    // no usable information — the paper's
                    // "walking users can change their direction"
                    // regime. Model it as fully randomized.
                    rng.uniform_range(-180.0, 180.0)
                } else {
                    bearing_to_bs + rng.normal(0.0, sigma)
                }
            }
        };
        let mobility = match self.mobility {
            MobilityChoice::Walker => MobilityKind::Walker(walker.clone()),
            MobilityChoice::StraightLine => MobilityKind::StraightLine,
            MobilityChoice::Auto => match self.angle {
                AngleSpec::Fixed(_) | AngleSpec::Heading(_) => MobilityKind::StraightLine,
                _ => MobilityKind::Walker(walker.clone()),
            },
        };
        let profile = match &self.profiles {
            Some(set) => set.profile_of(class),
            None => ServiceProfile::paper(class),
        };
        // Same draw count either way, so attaching profiles only
        // reparameterizes the holding draw — every earlier draw
        // in the stream is untouched.
        let holding_s = match &self.profiles {
            Some(_) => HoldingTimes::new(profile.mean_duration_s).sample_s(rng),
            None => holding.sample_s(rng),
        };
        UserSpec {
            arrival_s,
            profile,
            start: MobileState::new(position, heading, speed),
            mobility,
            holding_s,
        }
    }
}

/// One chunk of streamed users: `specs[i]` is workload index
/// `first_user + i`. Chunks come out in arrival order and, because
/// arrival instants ascend globally, every chunk is time-sorted and no
/// later chunk contains an earlier arrival.
#[derive(Debug)]
pub struct WorkloadChunk {
    /// Global workload index of `specs[0]` (the engine's stable user id).
    pub first_user: u64,
    /// The users of this chunk, in arrival order.
    pub specs: Vec<UserSpec>,
}

/// A resumable, chunked generator over a [`Workload`]'s user population.
///
/// Produced by [`Workload::stream`]. The generator holds the exact
/// post-arrival-sampling RNG state of the eager path and replays the
/// same sequential draw stream, so the specs it yields are bit-identical
/// to `Workload::generate` regardless of where chunk boundaries fall.
/// Return drained chunk buffers with [`WorkloadStream::recycle`] to keep
/// allocation flat.
#[derive(Debug)]
pub struct WorkloadStream {
    workload: Workload,
    grid: HexGrid,
    holding: HoldingTimes,
    walker: Walker,
    corridor_reach: f64,
    rng: SimRng,
    arrival_times: Vec<f64>,
    count: usize,
    next: usize,
    chunk_size: usize,
    pool: Vec<Vec<UserSpec>>,
}

/// How many drained chunk buffers [`WorkloadStream::recycle`] retains.
const CHUNK_POOL_CAP: usize = 2;

impl WorkloadStream {
    /// Total number of users this stream will produce.
    #[must_use]
    pub fn total(&self) -> usize {
        self.count
    }

    /// Number of users already produced (== the next chunk's first id).
    #[must_use]
    pub fn produced(&self) -> usize {
        self.next
    }

    /// True once every user has been produced.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.next >= self.count
    }

    /// Configured chunk size (users per [`WorkloadStream::next_chunk`]).
    #[must_use]
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Arrival instant of the next not-yet-produced user, if any.
    #[must_use]
    pub fn peek_next_arrival_s(&self) -> Option<f64> {
        self.arrival_times.get(self.next).copied()
    }

    /// Synthesizes the next chunk of users, or `None` when exhausted.
    pub fn next_chunk(&mut self) -> Option<WorkloadChunk> {
        if self.is_exhausted() {
            return None;
        }
        let first_user = self.next as u64;
        let end = (self.next + self.chunk_size).min(self.count);
        let mut specs = self.pool.pop().unwrap_or_default();
        specs.clear();
        specs.reserve(end - self.next);
        for i in self.next..end {
            let spec = self.workload.user_spec(
                self.arrival_times[i],
                &self.grid,
                &self.walker,
                self.corridor_reach,
                self.holding,
                &mut self.rng,
            );
            specs.push(spec);
        }
        self.next = end;
        if self.is_exhausted() {
            // The stream is drained: drop the arrival instants and any
            // pooled buffers so a long tail of in-flight calls does not
            // pin the synthesis bookkeeping.
            self.arrival_times = Vec::new();
            self.pool = Vec::new();
        }
        Some(WorkloadChunk { first_user, specs })
    }

    /// Returns a drained chunk's buffer to the bounded pool so the next
    /// chunk reuses it instead of reallocating.
    pub fn recycle(&mut self, chunk: WorkloadChunk) {
        if self.pool.len() < CHUNK_POOL_CAP {
            self.pool.push(chunk.specs);
        }
    }
}

/// One named entry of the scenario catalog.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Stable machine-friendly name (used for JSON artifact filenames).
    pub name: &'static str,
    /// One-line human description.
    pub summary: &'static str,
    /// The ready-to-run configuration.
    pub config: ScenarioConfig,
}

/// The named scenario catalog: the paper's baseline plus the workload
/// families the suite grows beyond it. Every entry runs on any shard
/// count with bit-identical results (for cell-local controllers).
#[must_use]
pub fn catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "paper-baseline",
            summary: "figs 7-10 population: uniform arrivals, paper mix, single BS",
            config: ScenarioConfig { requests: 100, ..ScenarioConfig::default() },
        },
        CatalogEntry {
            name: "hotspot",
            summary: "70% of requests pile onto the center cell of a 7-cell cluster",
            config: ScenarioConfig {
                requests: 280,
                grid_radius: 1,
                spawn: SpawnSpec::Hotspot { cell: 0, fraction: 0.7 },
                mobility: MobilityChoice::Walker,
                ..ScenarioConfig::default()
            },
        },
        CatalogEntry {
            name: "flash-crowd",
            summary: "80% of arrivals burst into 10% of the window at a hot cell",
            config: ScenarioConfig {
                requests: 320,
                grid_radius: 1,
                spawn: SpawnSpec::Hotspot { cell: 0, fraction: 0.5 },
                arrivals: ArrivalPattern::Burst { center: 0.5, width: 0.1, weight: 0.8 },
                mobility: MobilityChoice::Walker,
                ..ScenarioConfig::default()
            },
        },
        CatalogEntry {
            name: "rush-hour",
            summary: "time-varying arrival rate ramping 0.2x -> 1x -> 0.2x over the window",
            config: ScenarioConfig {
                requests: 320,
                grid_radius: 1,
                spawn: SpawnSpec::AnyCell,
                arrivals: ArrivalPattern::Stages(vec![0.2, 0.6, 1.0, 1.0, 0.6, 0.2]),
                mobility: MobilityChoice::Walker,
                ..ScenarioConfig::default()
            },
        },
        CatalogEntry {
            name: "hetero-mix",
            summary: "video-heavy 20/30/50 class mix stressing multi-class allocation",
            config: ScenarioConfig {
                requests: 220,
                grid_radius: 1,
                spawn: SpawnSpec::AnyCell,
                mix: TrafficMix { text: 0.2, voice: 0.3, video: 0.5 },
                mobility: MobilityChoice::Walker,
                ..ScenarioConfig::default()
            },
        },
        CatalogEntry {
            name: "highway",
            summary: "fast corridor traffic crossing a 19-cell grid (handoff-dominated)",
            config: ScenarioConfig {
                requests: 240,
                grid_radius: 2,
                cell_radius_km: 2.0,
                spawn: SpawnSpec::Corridor { heading_deg: 0.0, half_width_km: 0.5 },
                speed: SpeedSpec::Uniform(60.0, 120.0),
                angle: AngleSpec::Heading(0.0),
                mobility: MobilityChoice::StraightLine,
                holding_mean_s: 120.0,
                movement_tick_s: 2.0,
                ..ScenarioConfig::default()
            },
        },
        CatalogEntry {
            name: "congested",
            summary: "overloaded elastic multi-class mix on a 7-cell cluster (degradation stress)",
            config: ScenarioConfig {
                requests: 420,
                grid_radius: 1,
                spawn: SpawnSpec::AnyCell,
                mix: TrafficMix { text: 0.3, voice: 0.4, video: 0.3 },
                mobility: MobilityChoice::Walker,
                holding_mean_s: 120.0,
                profiles: Some(ServiceProfileSet::elastic_paper(0.5)),
                ..ScenarioConfig::default()
            },
        },
    ]
}

/// Looks a catalog scenario up by name.
#[must_use]
pub fn scenario_by_name(name: &str) -> Option<ScenarioConfig> {
    catalog().into_iter().find(|e| e.name == name).map(|e| e.config)
}

/// The catalog's scenario names, in catalog order.
#[must_use]
pub fn catalog_names() -> Vec<&'static str> {
    catalog().into_iter().map(|e| e.name).collect()
}

/// The planet-scale stress scenario: `requests` users (nominally 10M)
/// spread over a ~100k-cell grid (radius 182 → 99,919 cells), run
/// through the chunked [`crate::WorkloadStream`] so peak memory tracks
/// *active* calls, not total users.
///
/// Deliberately **not** part of [`catalog`]: the golden-digest suite
/// pins the catalog's seven entries, and this scenario exists to stress
/// memory and throughput, not admission-policy behaviour. The nightly
/// smoke runs it at 10M requests; the PR gate uses a smaller count via
/// the same constructor.
#[must_use]
pub fn planet_scale(requests: usize) -> CatalogEntry {
    CatalogEntry {
        name: "planet-scale",
        summary: "planet-scale streamed stress: ~100k cells, memory-flat synthesis + rollups",
        config: ScenarioConfig {
            requests,
            window_s: 3600.0,
            holding_mean_s: 30.0,
            grid_radius: 182, // 3r(r+1)+1 = 99,919 cells
            cell_radius_km: 2.0,
            spawn: SpawnSpec::AnyCell,
            mobility: MobilityChoice::Walker,
            movement_tick_s: 15.0,
            shards: 8,
            workers: 0,
            replications: 1,
            streamed: true,
            ..ScenarioConfig::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_stable() {
        let names = catalog_names();
        assert_eq!(
            names,
            vec![
                "paper-baseline",
                "hotspot",
                "flash-crowd",
                "rush-hour",
                "hetero-mix",
                "highway",
                "congested"
            ]
        );
        for name in names {
            assert!(scenario_by_name(name).is_some(), "missing {name}");
        }
        assert!(scenario_by_name("no-such-scenario").is_none());
    }

    #[test]
    fn burst_concentrates_arrivals() {
        let mut rng = SimRng::seed_from_u64(1);
        let pattern = ArrivalPattern::Burst { center: 0.5, width: 0.1, weight: 0.8 };
        let times = pattern.sample_times(2_000, 100.0, &mut rng);
        assert_eq!(times.len(), 2_000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let in_burst = times.iter().filter(|&&t| (45.0..55.0).contains(&t)).count();
        // 80% targeted + ~10% of the uniform remainder ≈ 82%.
        assert!(in_burst > 1_500, "only {in_burst} of 2000 in the burst");
    }

    #[test]
    fn stages_shape_the_rate() {
        let mut rng = SimRng::seed_from_u64(2);
        let pattern = ArrivalPattern::Stages(vec![1.0, 0.0, 3.0, 0.0]);
        let times = pattern.sample_times(4_000, 400.0, &mut rng);
        let count = |lo: f64, hi: f64| times.iter().filter(|&&t| (lo..hi).contains(&t)).count();
        assert_eq!(count(100.0, 200.0) + count(300.0, 400.0), 0, "zero-rate stages got arrivals");
        let first = count(0.0, 100.0);
        let third = count(200.0, 300.0);
        assert!(third > 2 * first, "stage weights ignored: {first} vs {third}");
    }

    #[test]
    fn hotspot_concentrates_spawns() {
        let config = ScenarioConfig {
            requests: 1_000,
            grid_radius: 1,
            spawn: SpawnSpec::Hotspot { cell: 3, fraction: 0.7 },
            ..ScenarioConfig::default()
        };
        let grid = config.grid();
        let specs = config.generate_workload(5);
        let hot =
            specs.iter().filter(|s| grid.locate(s.start.position) == facs_cac::CellId(3)).count();
        // 70% targeted plus 1/7th of the remainder ≈ 74%; spawn distance
        // can land a user over the cell border, so leave slack.
        assert!(hot > 550, "only {hot} of 1000 spawns hit the hotspot");
    }

    #[test]
    fn corridor_spawns_on_the_line_heading_along_it() {
        let config = scenario_by_name("highway").expect("highway in catalog");
        let specs = config.generate_workload(11);
        for spec in &specs {
            assert!(spec.start.position.y.abs() <= 0.5 + 1e-9, "off corridor: {spec:?}");
            assert_eq!(spec.start.heading_deg, 0.0);
            assert!(spec.start.speed_kmh >= 60.0 && spec.start.speed_kmh <= 120.0);
            assert!(matches!(spec.mobility, MobilityKind::StraightLine));
        }
    }

    #[test]
    fn workload_generation_is_deterministic() {
        for entry in catalog() {
            let a = entry.config.generate_workload(77);
            let b = entry.config.generate_workload(77);
            assert_eq!(a.len(), b.len(), "{}", entry.name);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.arrival_s, y.arrival_s, "{}", entry.name);
                assert_eq!(x.start, y.start, "{}", entry.name);
                assert_eq!(x.profile, y.profile, "{}", entry.name);
                assert_eq!(x.holding_s, y.holding_s, "{}", entry.name);
            }
        }
    }
}
