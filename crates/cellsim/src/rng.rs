//! Seeded randomness for reproducible simulations.
//!
//! All stochastic draws in the simulator flow through [`SimRng`] so a run
//! is fully determined by its seed. Distribution sampling (exponential,
//! normal) is implemented here directly — `rand_distr` is not on the
//! dependency allowlist, and the two samplers we need are tiny.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distribution helpers the simulator
/// needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { inner: StdRng::seed_from_u64(seed) }
    }

    /// Splits off an independent generator for a subsystem, derived from
    /// this generator's stream and a domain tag. Subsystems with separate
    /// streams stay reproducible even if one of them changes how many
    /// draws it makes.
    #[must_use]
    pub fn split(&mut self, domain: u64) -> SimRng {
        let seed = self.inner.gen::<u64>() ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(seed)
    }

    /// Uniform draw in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    #[must_use]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// Exponential draw with the given mean (inverse-CDF method).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    #[must_use]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "bad exponential mean {mean}");
        // 1 - U in (0, 1] avoids ln(0).
        let u = 1.0 - self.uniform();
        -mean * u.ln()
    }

    /// Standard-normal draw via Box–Muller (one value per call; the spare
    /// is discarded for simplicity — throughput is not a concern here).
    #[must_use]
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    #[must_use]
    pub fn normal(&mut self, mean: f64, sigma: f64) -> f64 {
        assert!(sigma.is_finite() && sigma >= 0.0, "bad sigma {sigma}");
        mean + sigma * self.standard_normal()
    }

    /// Weighted choice: returns the index of the selected weight.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero/non-finite.
    #[must_use]
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total.is_finite() && total > 0.0, "bad weights {weights:?}");
        let mut draw = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return i;
            }
            draw -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut a1 = root1.split(1);
        let mut a2 = root2.split(1);
        assert_eq!(a1.uniform(), a2.uniform());
        let mut b1 = root1.split(2);
        assert_ne!(a1.uniform(), b1.uniform());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.uniform_range(-5.0, 5.0);
            assert!((-5.0..5.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = sum / f64::from(n);
        assert!((sample_mean - mean).abs() < 0.1, "sample mean {sample_mean}");
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = SimRng::seed_from_u64(13);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(2.0, 0.5)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from_u64(17);
        let weights = [0.6, 0.3, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.6).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!((counts[2] as f64 / 10_000.0 - 0.1).abs() < 0.03);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(19);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    #[should_panic(expected = "bad exponential mean")]
    fn exponential_rejects_bad_mean() {
        let mut rng = SimRng::seed_from_u64(23);
        let _ = rng.exponential(0.0);
    }

    #[test]
    #[should_panic(expected = "index(0)")]
    fn index_rejects_zero() {
        let mut rng = SimRng::seed_from_u64(29);
        let _ = rng.index(0);
    }
}
