//! Simulation metrics: the counters behind every figure of the paper,
//! and the streaming [`MetricsSink`] interface the sharded kernel feeds.
//!
//! The engine does not know what it is measuring: every observable event
//! (admission decision, completion, coverage exit, mobility step, epoch
//! occupancy sample, final per-cell utilization integral) is pushed into
//! a [`MetricsSink`]. [`Metrics`] — the paper's counters — is one sink;
//! [`CellLoadSeries`] records a per-cell occupancy time series; a tuple
//! of sinks fans one run out to both.

use std::collections::BTreeMap;

use facs_cac::{BandwidthUnits, CallKind, CellId, ServiceClass, ServiceProfile};
use serde::{Deserialize, Serialize};

use crate::events::UserId;
use crate::time::SimTime;

/// Everything the engine knows about one admission decision, handed to
/// [`MetricsSink::on_decision`] as a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// The requesting user.
    pub user: UserId,
    /// Service class of the request.
    pub class: ServiceClass,
    /// New call or handoff.
    pub kind: CallKind,
    /// Whether the call was admitted (at any allocation).
    pub admitted: bool,
    /// Bandwidth actually granted (zero when denied).
    pub allocated: BandwidthUnits,
    /// The profile's nominal bandwidth.
    pub nominal: BandwidthUnits,
    /// The profile's QoS floor.
    pub floor: BandwidthUnits,
}

impl DecisionRecord {
    /// A denial of `user`'s request: nothing allocated.
    #[must_use]
    pub fn denied(user: UserId, profile: ServiceProfile, kind: CallKind) -> Self {
        Self {
            user,
            class: profile.class,
            kind,
            admitted: false,
            allocated: BandwidthUnits::ZERO,
            nominal: profile.rb_cost_nominal,
            floor: profile.rb_cost_min,
        }
    }

    /// An admission of `user`'s request at `allocated` BU.
    #[must_use]
    pub fn admitted(
        user: UserId,
        profile: ServiceProfile,
        kind: CallKind,
        allocated: BandwidthUnits,
    ) -> Self {
        Self {
            user,
            class: profile.class,
            kind,
            admitted: true,
            allocated,
            nominal: profile.rb_cost_nominal,
            floor: profile.rb_cost_min,
        }
    }

    /// True when the call was admitted below its nominal bandwidth.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.admitted && self.allocated < self.nominal
    }
}

/// A streaming observer of simulation events.
///
/// The sharded kernel creates one sink per shard with [`fork`](Self::fork)
/// and folds them back with [`absorb`](Self::absorb) **in shard-index
/// order** once the run ends, so integer counters are exact sums and any
/// floating-point state is combined in a deterministic order. Per-cell
/// hooks only ever fire on the shard that owns the cell, which makes each
/// cell's sub-stream identical regardless of how many shards ran.
///
/// All event hooks default to no-ops so special-purpose sinks implement
/// only what they observe.
pub trait MetricsSink: Send {
    /// A fresh, empty sink of the same kind, for one shard.
    #[must_use]
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Folds a shard's sink back into this one (called in shard order).
    fn absorb(&mut self, other: Self)
    where
        Self: Sized;

    /// An admission decision (new call or handoff) was made at `cell`;
    /// the record carries the class, the granted allocation and the
    /// profile band it was granted within.
    fn on_decision(&mut self, now: SimTime, cell: CellId, record: &DecisionRecord) {
        let _ = (now, cell, record);
    }

    /// The ledger of `cell` changed `user`'s in-call allocation — a
    /// degradation squeeze making room for a handoff, or a re-upgrade
    /// after a release. `allocated` is the new grant; `floor` the
    /// profile's QoS floor it must never cross.
    fn on_reallocation(
        &mut self,
        now: SimTime,
        cell: CellId,
        user: UserId,
        allocated: BandwidthUnits,
        floor: BandwidthUnits,
    ) {
        let _ = (now, cell, user, allocated, floor);
    }

    /// `user`'s call completed its holding time at `cell`.
    fn on_completion(&mut self, now: SimTime, cell: CellId, user: UserId) {
        let _ = (now, cell, user);
    }

    /// `user`'s call ended because the terminal left the coverage area.
    fn on_exit(&mut self, now: SimTime, cell: CellId, user: UserId) {
        let _ = (now, cell, user);
    }

    /// One mobility step was applied to an in-call user served by `cell`.
    fn on_mobility_step(&mut self, now: SimTime, cell: CellId) {
        let _ = (now, cell);
    }

    /// Epoch-barrier occupancy sample of `cell`.
    fn on_cell_sample(&mut self, now: SimTime, cell: CellId, occupied: u32, capacity: u32) {
        let _ = (now, cell, occupied, capacity);
    }

    /// Final utilization integrals of `cell`, reported once per cell at
    /// the end of the run **in cell-id order** (after all shards merged).
    fn on_cell_utilization(&mut self, cell: CellId, occupied_bu_s: f64, capacity_bu_s: f64) {
        let _ = (cell, occupied_bu_s, capacity_bu_s);
    }
}

/// Runs two sinks side by side over one simulation.
impl<A: MetricsSink, B: MetricsSink> MetricsSink for (A, B) {
    fn fork(&self) -> Self {
        (self.0.fork(), self.1.fork())
    }

    fn absorb(&mut self, other: Self) {
        self.0.absorb(other.0);
        self.1.absorb(other.1);
    }

    fn on_decision(&mut self, now: SimTime, cell: CellId, record: &DecisionRecord) {
        self.0.on_decision(now, cell, record);
        self.1.on_decision(now, cell, record);
    }

    fn on_reallocation(
        &mut self,
        now: SimTime,
        cell: CellId,
        user: UserId,
        allocated: BandwidthUnits,
        floor: BandwidthUnits,
    ) {
        self.0.on_reallocation(now, cell, user, allocated, floor);
        self.1.on_reallocation(now, cell, user, allocated, floor);
    }

    fn on_completion(&mut self, now: SimTime, cell: CellId, user: UserId) {
        self.0.on_completion(now, cell, user);
        self.1.on_completion(now, cell, user);
    }

    fn on_exit(&mut self, now: SimTime, cell: CellId, user: UserId) {
        self.0.on_exit(now, cell, user);
        self.1.on_exit(now, cell, user);
    }

    fn on_mobility_step(&mut self, now: SimTime, cell: CellId) {
        self.0.on_mobility_step(now, cell);
        self.1.on_mobility_step(now, cell);
    }

    fn on_cell_sample(&mut self, now: SimTime, cell: CellId, occupied: u32, capacity: u32) {
        self.0.on_cell_sample(now, cell, occupied, capacity);
        self.1.on_cell_sample(now, cell, occupied, capacity);
    }

    fn on_cell_utilization(&mut self, cell: CellId, occupied_bu_s: f64, capacity_bu_s: f64) {
        self.0.on_cell_utilization(cell, occupied_bu_s, capacity_bu_s);
        self.1.on_cell_utilization(cell, occupied_bu_s, capacity_bu_s);
    }
}

/// Offered/accepted/denied counters for one service class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Requests offered (new calls only).
    pub offered: u64,
    /// Requests admitted.
    pub accepted: u64,
    /// Requests denied.
    pub denied: u64,
}

impl ClassCounters {
    /// Acceptance percentage (100 when nothing was offered).
    #[must_use]
    pub fn acceptance_percentage(&self) -> f64 {
        if self.offered == 0 {
            100.0
        } else {
            100.0 * self.accepted as f64 / self.offered as f64
        }
    }
}

/// All counters collected over one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// New-call requests offered.
    pub offered_new: u64,
    /// New-call requests admitted.
    pub accepted_new: u64,
    /// New-call requests denied (blocked).
    pub blocked_new: u64,
    /// Handoff attempts (boundary crossings with an active call).
    pub handoff_attempts: u64,
    /// Handoffs admitted by the target cell.
    pub handoff_accepted: u64,
    /// Handoffs denied — the call is dropped (the QoS failure users hate).
    pub handoff_dropped: u64,
    /// Calls that ran to completion.
    pub completed: u64,
    /// Calls ended by the terminal leaving the coverage area.
    pub exited_coverage: u64,
    /// Mobility steps applied to in-call users (one per active user per
    /// movement epoch).
    pub mobility_steps: u64,
    /// Admissions granted below their nominal bandwidth (degraded entry).
    pub degraded_admissions: u64,
    /// In-call allocation changes applied by the ledgers (degradation
    /// squeezes plus post-release re-upgrades).
    pub reallocations: u64,
    /// Per-class new-call counters, indexed text/voice/video.
    pub per_class: [ClassCounters; 3],
    /// Sum of BU granted at admission time, across all admissions.
    allocated_bu_sum: u64,
    /// Sum of nominal BU over the same admissions.
    nominal_bu_sum: u64,
    /// Integral of (occupied BU · seconds) across all cells, for
    /// time-averaged utilization.
    utilization_bu_seconds: f64,
    /// Integral horizon (seconds · capacity) accumulated.
    capacity_bu_seconds: f64,
}

impl Metrics {
    /// Creates zeroed metrics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn class_index(class: ServiceClass) -> usize {
        match class {
            ServiceClass::Text => 0,
            ServiceClass::Voice => 1,
            ServiceClass::Video => 2,
        }
    }

    /// Records the outcome of an admission decision.
    pub fn record_decision(&mut self, class: ServiceClass, kind: CallKind, admitted: bool) {
        match kind {
            CallKind::New => {
                self.offered_new += 1;
                let c = &mut self.per_class[Self::class_index(class)];
                c.offered += 1;
                if admitted {
                    self.accepted_new += 1;
                    c.accepted += 1;
                } else {
                    self.blocked_new += 1;
                    c.denied += 1;
                }
            }
            CallKind::Handoff => {
                self.handoff_attempts += 1;
                if admitted {
                    self.handoff_accepted += 1;
                } else {
                    self.handoff_dropped += 1;
                }
            }
        }
    }

    /// Records a call that completed its holding time.
    pub fn record_completion(&mut self) {
        self.completed += 1;
    }

    /// Records a call ended by leaving coverage.
    pub fn record_exit(&mut self) {
        self.exited_coverage += 1;
    }

    /// Accumulates `occupied`/`capacity` BU over `dt` seconds for the
    /// time-averaged utilization estimate.
    pub fn record_utilization(&mut self, occupied_bu: u32, capacity_bu: u32, dt_s: f64) {
        self.utilization_bu_seconds += f64::from(occupied_bu) * dt_s;
        self.capacity_bu_seconds += f64::from(capacity_bu) * dt_s;
    }

    /// The paper's headline metric: percentage of accepted (new) calls.
    /// Returns 100 when nothing was offered.
    #[must_use]
    pub fn acceptance_percentage(&self) -> f64 {
        if self.offered_new == 0 {
            100.0
        } else {
            100.0 * self.accepted_new as f64 / self.offered_new as f64
        }
    }

    /// Percentage of handoff attempts that were dropped (0 when there were
    /// none).
    #[must_use]
    pub fn dropping_percentage(&self) -> f64 {
        if self.handoff_attempts == 0 {
            0.0
        } else {
            100.0 * self.handoff_dropped as f64 / self.handoff_attempts as f64
        }
    }

    /// Time-averaged occupancy fraction across cells in `[0, 1]`.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.capacity_bu_seconds <= 0.0 {
            0.0
        } else {
            self.utilization_bu_seconds / self.capacity_bu_seconds
        }
    }

    /// Per-class acceptance percentage.
    #[must_use]
    pub fn class_acceptance(&self, class: ServiceClass) -> f64 {
        self.per_class[Self::class_index(class)].acceptance_percentage()
    }

    /// Mean allocated/nominal fraction at admission time in `(0, 1]`
    /// (1 when every call entered at nominal, or nothing was admitted).
    #[must_use]
    pub fn mean_allocation_fraction(&self) -> f64 {
        if self.nominal_bu_sum == 0 {
            1.0
        } else {
            self.allocated_bu_sum as f64 / self.nominal_bu_sum as f64
        }
    }

    /// Total kernel events behind this run: admission decisions (new +
    /// handoff), completions, coverage exits and mobility steps. The
    /// denominator of the throughput benches' events/sec figure.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.offered_new
            + self.handoff_attempts
            + self.completed
            + self.exited_coverage
            + self.mobility_steps
    }

    /// Accumulates another run's counters into this one (used to
    /// aggregate replications; percentages are recomputed from the summed
    /// counters).
    pub fn merge(&mut self, other: &Metrics) {
        self.offered_new += other.offered_new;
        self.accepted_new += other.accepted_new;
        self.blocked_new += other.blocked_new;
        self.handoff_attempts += other.handoff_attempts;
        self.handoff_accepted += other.handoff_accepted;
        self.handoff_dropped += other.handoff_dropped;
        self.completed += other.completed;
        self.exited_coverage += other.exited_coverage;
        self.mobility_steps += other.mobility_steps;
        self.degraded_admissions += other.degraded_admissions;
        self.reallocations += other.reallocations;
        self.allocated_bu_sum += other.allocated_bu_sum;
        self.nominal_bu_sum += other.nominal_bu_sum;
        for i in 0..3 {
            self.per_class[i].offered += other.per_class[i].offered;
            self.per_class[i].accepted += other.per_class[i].accepted;
            self.per_class[i].denied += other.per_class[i].denied;
        }
        self.utilization_bu_seconds += other.utilization_bu_seconds;
        self.capacity_bu_seconds += other.capacity_bu_seconds;
    }
}

impl MetricsSink for Metrics {
    fn fork(&self) -> Self {
        Metrics::new()
    }

    fn absorb(&mut self, other: Self) {
        self.merge(&other);
    }

    fn on_decision(&mut self, _now: SimTime, _cell: CellId, record: &DecisionRecord) {
        self.record_decision(record.class, record.kind, record.admitted);
        if record.admitted {
            self.allocated_bu_sum += u64::from(record.allocated.get());
            self.nominal_bu_sum += u64::from(record.nominal.get());
            if record.is_degraded() {
                self.degraded_admissions += 1;
            }
        }
    }

    fn on_reallocation(
        &mut self,
        _now: SimTime,
        _cell: CellId,
        _user: UserId,
        _allocated: BandwidthUnits,
        _floor: BandwidthUnits,
    ) {
        self.reallocations += 1;
    }

    fn on_completion(&mut self, _now: SimTime, _cell: CellId, _user: UserId) {
        self.record_completion();
    }

    fn on_exit(&mut self, _now: SimTime, _cell: CellId, _user: UserId) {
        self.record_exit();
    }

    fn on_mobility_step(&mut self, _now: SimTime, _cell: CellId) {
        self.mobility_steps += 1;
    }

    fn on_cell_utilization(&mut self, _cell: CellId, occupied_bu_s: f64, capacity_bu_s: f64) {
        self.utilization_bu_seconds += occupied_bu_s;
        self.capacity_bu_seconds += capacity_bu_s;
    }
}

/// One cell's retained samples plus the decimation bookkeeping that
/// keeps a capped series bounded.
#[derive(Debug, Clone, PartialEq)]
struct CellSeries {
    samples: Vec<(f64, u32)>,
    /// Samples offered so far (kept or skipped).
    seen: u64,
    /// Keep every `stride`-th offered sample; doubles on each
    /// decimation pass. Always a power of two.
    stride: u64,
}

impl CellSeries {
    fn new() -> Self {
        Self { samples: Vec::new(), seen: 0, stride: 1 }
    }
}

/// A streaming per-cell occupancy time series: one `(t, occupied BU)`
/// sample per cell per movement epoch, taken at the epoch barrier.
///
/// Because a cell is sampled only by the shard that owns it, each cell's
/// series is bit-identical no matter how many shards the run used.
///
/// [`CellLoadSeries::new`] retains every sample; on large grids or long
/// horizons use [`CellLoadSeries::with_cap`], which bounds the retained
/// samples per cell by stride-doubling decimation: when a cell reaches
/// the cap, every other retained sample is dropped and only every
/// 2ⁿ-th subsequent sample is kept. The decimation depends only on the
/// cell's own sample count, so capped series stay shard-independent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellLoadSeries {
    series: BTreeMap<u32, CellSeries>,
    capacity: u32,
    /// Maximum retained samples per cell; 0 = unbounded.
    cap: usize,
}

impl CellLoadSeries {
    /// Creates an unbounded series sink (every sample retained).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series sink retaining at most `cap` samples per cell
    /// (`0` means unbounded, like [`CellLoadSeries::new`]).
    #[must_use]
    pub fn with_cap(cap: usize) -> Self {
        Self { cap, ..Self::default() }
    }

    /// Cells with at least one sample, in id order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.series.keys().map(|&id| CellId(id))
    }

    /// The `(time s, occupied BU)` samples of one cell, in time order.
    #[must_use]
    pub fn samples(&self, cell: CellId) -> &[(f64, u32)] {
        self.series.get(&cell.0).map_or(&[], |s| s.samples.as_slice())
    }

    /// The sampled base-station capacity (0 before any sample arrived).
    #[must_use]
    pub fn capacity_bu(&self) -> u32 {
        self.capacity
    }

    /// Renders the series as CSV rows `cell,t,occupied`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cell,t_s,occupied_bu\n");
        for (cell, series) in &self.series {
            for &(t, occupied) in &series.samples {
                out.push_str(&format!("{cell},{t:.3},{occupied}\n"));
            }
        }
        out
    }
}

impl MetricsSink for CellLoadSeries {
    fn fork(&self) -> Self {
        Self { cap: self.cap, ..Self::default() }
    }

    fn absorb(&mut self, other: Self) {
        for (cell, series) in other.series {
            match self.series.entry(cell) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    // Cells are owned by exactly one shard, so a cell's
                    // whole series (including its decimation state)
                    // moves wholesale.
                    slot.insert(series);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().samples.extend(series.samples);
                }
            }
        }
        self.capacity = self.capacity.max(other.capacity);
    }

    fn on_cell_sample(&mut self, now: SimTime, cell: CellId, occupied: u32, capacity: u32) {
        self.capacity = capacity;
        let entry = self.series.entry(cell.0).or_insert_with(CellSeries::new);
        let keep = entry.seen % entry.stride == 0;
        entry.seen += 1;
        if !keep {
            return;
        }
        entry.samples.push((now.as_secs_f64(), occupied));
        if self.cap > 0 && entry.samples.len() >= self.cap {
            let mut i = 0usize;
            entry.samples.retain(|_| {
                let keep = i % 2 == 0;
                i += 1;
                keep
            });
            entry.stride *= 2;
        }
    }
}

/// Occupancy-fraction histogram resolution of the rollup sink: 5%-wide
/// buckets over `[0, 1]`.
const OCCUPANCY_BUCKETS: usize = 20;

/// Fixed-size streaming summary of one region (or the whole grid): pure
/// counters plus an occupancy-fraction histogram, so memory is O(1) per
/// region no matter how many cells, epochs or users the run covers.
///
/// All in-run fields are exact integer sums, which makes a rollup
/// **bit-identical across shard counts** — the floating-point
/// utilization integrals are only folded in at the end of the run, in
/// cell-id order, by [`MetricsSink::on_cell_utilization`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRollup {
    /// New-call requests offered / admitted / denied.
    pub offered_new: u64,
    /// New-call requests admitted.
    pub accepted_new: u64,
    /// New-call requests denied.
    pub blocked_new: u64,
    /// Handoff attempts into cells of this region.
    pub handoff_attempts: u64,
    /// Handoffs denied (calls dropped).
    pub handoff_dropped: u64,
    /// Calls completed in this region.
    pub completed: u64,
    /// Calls ended by leaving coverage from this region.
    pub exited_coverage: u64,
    /// Epoch occupancy samples taken.
    pub samples: u64,
    /// Histogram of per-sample occupancy fraction (5% buckets).
    pub occupancy_hist: [u64; OCCUPANCY_BUCKETS],
    /// Final occupied BU·s integral (populated at end of run).
    pub occupied_bu_s: f64,
    /// Final capacity BU·s integral (populated at end of run).
    pub capacity_bu_s: f64,
}

impl Default for RegionRollup {
    fn default() -> Self {
        Self {
            offered_new: 0,
            accepted_new: 0,
            blocked_new: 0,
            handoff_attempts: 0,
            handoff_dropped: 0,
            completed: 0,
            exited_coverage: 0,
            samples: 0,
            occupancy_hist: [0; OCCUPANCY_BUCKETS],
            occupied_bu_s: 0.0,
            capacity_bu_s: 0.0,
        }
    }
}

impl RegionRollup {
    fn merge(&mut self, other: &Self) {
        self.offered_new += other.offered_new;
        self.accepted_new += other.accepted_new;
        self.blocked_new += other.blocked_new;
        self.handoff_attempts += other.handoff_attempts;
        self.handoff_dropped += other.handoff_dropped;
        self.completed += other.completed;
        self.exited_coverage += other.exited_coverage;
        self.samples += other.samples;
        for (a, b) in self.occupancy_hist.iter_mut().zip(&other.occupancy_hist) {
            *a += b;
        }
        self.occupied_bu_s += other.occupied_bu_s;
        self.capacity_bu_s += other.capacity_bu_s;
    }

    /// Acceptance percentage of new calls (100 when none offered).
    #[must_use]
    pub fn acceptance_percentage(&self) -> f64 {
        if self.offered_new == 0 {
            100.0
        } else {
            100.0 * self.accepted_new as f64 / self.offered_new as f64
        }
    }

    /// Handoff dropping percentage (0 when no attempts).
    #[must_use]
    pub fn dropping_percentage(&self) -> f64 {
        if self.handoff_attempts == 0 {
            0.0
        } else {
            100.0 * self.handoff_dropped as f64 / self.handoff_attempts as f64
        }
    }

    /// Time-averaged occupancy fraction from the end-of-run integrals.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.capacity_bu_s <= 0.0 {
            0.0
        } else {
            self.occupied_bu_s / self.capacity_bu_s
        }
    }

    /// Occupancy-fraction quantile `q ∈ [0, 1]` estimated from the
    /// histogram (upper edge of the bucket holding the quantile; 0 when
    /// no samples). `q = 0.5` is the median, `q = 0.99` the p99.
    #[must_use]
    pub fn occupancy_percentile(&self, q: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.samples as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.occupancy_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return (i + 1) as f64 / OCCUPANCY_BUCKETS as f64;
            }
        }
        1.0
    }
}

/// Hierarchical cells → regions → global rollup sink with fixed-size
/// accumulators, the memory-flat replacement for unbounded per-cell
/// series on planet-scale grids: a region summarizes `cells_per_region`
/// consecutive cell ids, and the global rollup summarizes everything.
///
/// Counter updates are exact integer sums and each sample's histogram
/// bucket is computed in integer math, so — like [`Metrics`] — the
/// rollup is bit-identical across shard and worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRollupSink {
    cells_per_region: u32,
    regions: BTreeMap<u32, RegionRollup>,
    global: RegionRollup,
}

impl RegionRollupSink {
    /// Creates a rollup sink grouping `cells_per_region` consecutive
    /// cell ids per region (clamped to at least 1).
    #[must_use]
    pub fn new(cells_per_region: u32) -> Self {
        Self {
            cells_per_region: cells_per_region.max(1),
            regions: BTreeMap::new(),
            global: RegionRollup::default(),
        }
    }

    fn region_of(&self, cell: CellId) -> u32 {
        cell.0 / self.cells_per_region
    }

    fn region_mut(&mut self, cell: CellId) -> &mut RegionRollup {
        let region = self.region_of(cell);
        self.regions.entry(region).or_default()
    }

    /// The configured region width, in consecutive cell ids.
    #[must_use]
    pub fn cells_per_region(&self) -> u32 {
        self.cells_per_region
    }

    /// `(region id, rollup)` pairs in region-id order.
    pub fn regions(&self) -> impl Iterator<Item = (u32, &RegionRollup)> {
        self.regions.iter().map(|(&id, r)| (id, r))
    }

    /// The whole-grid rollup.
    #[must_use]
    pub fn global(&self) -> &RegionRollup {
        &self.global
    }

    /// Renders the rollup as a JSON artifact: a header, the global
    /// summary and one object per region.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn rollup_fields(r: &RegionRollup) -> String {
            format!(
                "\"offered_new\": {}, \"accepted_new\": {}, \"blocked_new\": {}, \
                 \"handoff_attempts\": {}, \"handoff_dropped\": {}, \"completed\": {}, \
                 \"exited_coverage\": {}, \"samples\": {}, \"acceptance_pct\": {:.4}, \
                 \"dropping_pct\": {:.4}, \"mean_utilization\": {:.6}, \
                 \"occupancy_p50\": {:.4}, \"occupancy_p99\": {:.4}",
                r.offered_new,
                r.accepted_new,
                r.blocked_new,
                r.handoff_attempts,
                r.handoff_dropped,
                r.completed,
                r.exited_coverage,
                r.samples,
                r.acceptance_percentage(),
                r.dropping_percentage(),
                r.mean_utilization(),
                r.occupancy_percentile(0.50),
                r.occupancy_percentile(0.99),
            )
        }
        let mut out = String::from("{\n  \"experiment\": \"region-rollup\",\n");
        out.push_str(&format!("  \"cells_per_region\": {},\n", self.cells_per_region));
        out.push_str(&format!("  \"global\": {{ {} }},\n", rollup_fields(&self.global)));
        out.push_str("  \"regions\": [\n");
        let mut first = true;
        for (id, rollup) in &self.regions {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("    {{ \"region\": {id}, {} }}", rollup_fields(rollup)));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl MetricsSink for RegionRollupSink {
    fn fork(&self) -> Self {
        Self::new(self.cells_per_region)
    }

    fn absorb(&mut self, other: Self) {
        for (region, rollup) in other.regions {
            self.regions.entry(region).or_default().merge(&rollup);
        }
        self.global.merge(&other.global);
    }

    fn on_decision(&mut self, _now: SimTime, cell: CellId, record: &DecisionRecord) {
        fn apply(rollup: &mut RegionRollup, kind: CallKind, admitted: bool) {
            match kind {
                CallKind::New => {
                    rollup.offered_new += 1;
                    if admitted {
                        rollup.accepted_new += 1;
                    } else {
                        rollup.blocked_new += 1;
                    }
                }
                CallKind::Handoff => {
                    rollup.handoff_attempts += 1;
                    if !admitted {
                        rollup.handoff_dropped += 1;
                    }
                }
            }
        }
        apply(self.region_mut(cell), record.kind, record.admitted);
        apply(&mut self.global, record.kind, record.admitted);
    }

    fn on_completion(&mut self, _now: SimTime, cell: CellId, _user: UserId) {
        self.region_mut(cell).completed += 1;
        self.global.completed += 1;
    }

    fn on_exit(&mut self, _now: SimTime, cell: CellId, _user: UserId) {
        self.region_mut(cell).exited_coverage += 1;
        self.global.exited_coverage += 1;
    }

    fn on_cell_sample(&mut self, _now: SimTime, cell: CellId, occupied: u32, capacity: u32) {
        // Integer bucket math: exact, so order-independent.
        let bucket = if capacity == 0 {
            0
        } else {
            (((occupied as usize) * OCCUPANCY_BUCKETS) / capacity as usize)
                .min(OCCUPANCY_BUCKETS - 1)
        };
        let region = self.region_mut(cell);
        region.samples += 1;
        region.occupancy_hist[bucket] += 1;
        self.global.samples += 1;
        self.global.occupancy_hist[bucket] += 1;
    }

    fn on_cell_utilization(&mut self, cell: CellId, occupied_bu_s: f64, capacity_bu_s: f64) {
        let region = self.region_mut(cell);
        region.occupied_bu_s += occupied_bu_s;
        region.capacity_bu_s += capacity_bu_s;
        self.global.occupied_bu_s += occupied_bu_s;
        self.global.capacity_bu_s += capacity_bu_s;
    }
}

/// One `(x, y)` series of an experiment figure (e.g. acceptance percentage
/// vs. number of requesting connections).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"30km/h"` or `"FACS"`).
    pub label: String,
    /// The `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), points: Vec::new() }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Mean of the y values (`NaN`-free input assumed; empty ⇒ 0).
    #[must_use]
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Renders the series as CSV rows `label,x,y`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for &(x, y) in &self.points {
            out.push_str(&format!("{},{:.4},{:.4}\n", self.label, x, y));
        }
        out
    }
}

/// Timestamped snapshot helper: carries the last update instant for
/// utilization integration.
#[derive(Debug, Clone, Copy, Default)]
pub struct UtilizationProbe {
    last: SimTime,
}

impl UtilizationProbe {
    /// Creates a probe starting at t = 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances to `now`, returning the elapsed seconds since the last
    /// call (0 on the first).
    pub fn advance(&mut self, now: SimTime) -> f64 {
        let dt = now.since(self.last).as_secs_f64();
        self.last = now;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_percentage_math() {
        let mut m = Metrics::new();
        for i in 0..10 {
            m.record_decision(ServiceClass::Text, CallKind::New, i < 7);
        }
        assert_eq!(m.offered_new, 10);
        assert_eq!(m.accepted_new, 7);
        assert_eq!(m.blocked_new, 3);
        assert!((m.acceptance_percentage() - 70.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_edge_cases() {
        let m = Metrics::new();
        assert_eq!(m.acceptance_percentage(), 100.0);
        assert_eq!(m.dropping_percentage(), 0.0);
        assert_eq!(m.mean_utilization(), 0.0);
    }

    #[test]
    fn handoffs_tracked_separately() {
        let mut m = Metrics::new();
        m.record_decision(ServiceClass::Voice, CallKind::Handoff, true);
        m.record_decision(ServiceClass::Voice, CallKind::Handoff, false);
        assert_eq!(m.offered_new, 0, "handoffs are not offered new calls");
        assert_eq!(m.handoff_attempts, 2);
        assert_eq!(m.handoff_dropped, 1);
        assert_eq!(m.dropping_percentage(), 50.0);
    }

    #[test]
    fn per_class_counters() {
        let mut m = Metrics::new();
        m.record_decision(ServiceClass::Video, CallKind::New, true);
        m.record_decision(ServiceClass::Video, CallKind::New, false);
        m.record_decision(ServiceClass::Text, CallKind::New, true);
        assert_eq!(m.class_acceptance(ServiceClass::Video), 50.0);
        assert_eq!(m.class_acceptance(ServiceClass::Text), 100.0);
        assert_eq!(m.class_acceptance(ServiceClass::Voice), 100.0, "nothing offered => 100");
    }

    #[test]
    fn degraded_admissions_and_allocation_fraction() {
        let mut m = Metrics::new();
        let profile =
            ServiceProfile::elastic(ServiceClass::Video, BandwidthUnits::new(10), 0.5, 180.0);
        let t = SimTime::ZERO;
        let cell = CellId(0);
        // Nominal entry, degraded entry (6/10), and a denial.
        m.on_decision(
            t,
            cell,
            &DecisionRecord::admitted(UserId(1), profile, CallKind::New, BandwidthUnits::new(10)),
        );
        m.on_decision(
            t,
            cell,
            &DecisionRecord::admitted(
                UserId(2),
                profile,
                CallKind::Handoff,
                BandwidthUnits::new(6),
            ),
        );
        m.on_decision(t, cell, &DecisionRecord::denied(UserId(3), profile, CallKind::New));
        m.on_reallocation(t, cell, UserId(1), BandwidthUnits::new(7), BandwidthUnits::new(5));
        assert_eq!(m.degraded_admissions, 1);
        assert_eq!(m.reallocations, 1);
        assert!((m.mean_allocation_fraction() - 16.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_time_average() {
        let mut m = Metrics::new();
        m.record_utilization(40, 40, 10.0); // full for 10 s
        m.record_utilization(0, 40, 30.0); // empty for 30 s
        assert!((m.mean_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn series_csv_and_mean() {
        let mut s = Series::new("30km/h");
        s.push(10.0, 95.0);
        s.push(20.0, 85.0);
        assert_eq!(s.mean_y(), 90.0);
        let csv = s.to_csv();
        assert!(csv.contains("30km/h,10.0000,95.0000"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn probe_advances() {
        let mut p = UtilizationProbe::new();
        assert_eq!(p.advance(SimTime::from_secs_f64(5.0)), 5.0);
        assert_eq!(p.advance(SimTime::from_secs_f64(7.5)), 2.5);
    }

    #[test]
    fn capped_series_bounds_samples_and_preserves_order() {
        let mut s = CellLoadSeries::with_cap(8);
        let cell = CellId(3);
        for i in 0..1000u32 {
            s.on_cell_sample(SimTime::from_secs_f64(f64::from(i)), cell, i, 40);
        }
        let samples = s.samples(cell);
        assert!(samples.len() <= 8, "cap exceeded: {}", samples.len());
        assert!(samples.len() >= 4, "decimation too aggressive: {}", samples.len());
        // Retained samples stay in time order and are stride-spaced.
        for pair in samples.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        assert_eq!(samples[0].0, 0.0, "first sample must survive decimation");
        // Uncapped sink keeps everything.
        let mut full = CellLoadSeries::new();
        for i in 0..1000u32 {
            full.on_cell_sample(SimTime::from_secs_f64(f64::from(i)), cell, i, 40);
        }
        assert_eq!(full.samples(cell).len(), 1000);
    }

    #[test]
    fn capped_series_fork_inherits_cap_and_absorb_moves_state() {
        let parent = CellLoadSeries::with_cap(4);
        let mut child = parent.fork();
        for i in 0..100u32 {
            child.on_cell_sample(SimTime::from_secs_f64(f64::from(i)), CellId(1), i, 40);
        }
        assert!(child.samples(CellId(1)).len() <= 4);
        let mut root = parent.clone();
        root.absorb(child);
        assert!(root.samples(CellId(1)).len() <= 4);
        assert!(!root.samples(CellId(1)).is_empty());
    }

    #[test]
    fn region_rollup_counts_and_percentiles() {
        let profile = ServiceProfile::fixed(ServiceClass::Voice, BandwidthUnits::new(4));
        let mut sink = RegionRollupSink::new(4);
        let t = SimTime::from_secs_f64(1.0);
        // Cells 0..4 land in region 0, cell 5 in region 1.
        sink.on_decision(
            t,
            CellId(0),
            &DecisionRecord::admitted(UserId(1), profile, CallKind::New, BandwidthUnits::new(4)),
        );
        sink.on_decision(t, CellId(1), &DecisionRecord::denied(UserId(2), profile, CallKind::New));
        sink.on_decision(
            t,
            CellId(5),
            &DecisionRecord::denied(UserId(3), profile, CallKind::Handoff),
        );
        sink.on_completion(t, CellId(0), UserId(1));
        sink.on_exit(t, CellId(5), UserId(4));
        for occ in [0u32, 10, 20, 40] {
            sink.on_cell_sample(t, CellId(2), occ, 40);
        }
        sink.on_cell_utilization(CellId(0), 30.0, 120.0);
        sink.on_cell_utilization(CellId(5), 10.0, 120.0);

        let regions: Vec<_> = sink.regions().collect();
        assert_eq!(regions.len(), 2);
        let r0 = &regions[0].1;
        assert_eq!((regions[0].0, r0.offered_new, r0.accepted_new, r0.blocked_new), (0, 2, 1, 1));
        assert_eq!((r0.completed, r0.samples), (1, 4));
        let r1 = &regions[1].1;
        assert_eq!((regions[1].0, r1.handoff_attempts, r1.handoff_dropped), (1, 1, 1));
        assert_eq!(r1.exited_coverage, 1);

        let g = sink.global();
        assert_eq!((g.offered_new, g.accepted_new, g.handoff_attempts), (2, 1, 1));
        assert!((g.acceptance_percentage() - 50.0).abs() < 1e-12);
        assert!((g.dropping_percentage() - 100.0).abs() < 1e-12);
        assert!((g.mean_utilization() - 40.0 / 240.0).abs() < 1e-12);
        // Samples at fractions 0, 0.25, 0.5, 1.0: the median falls in
        // the 0.25 bucket (upper edge 0.30), the p99 in the top bucket.
        assert!((g.occupancy_percentile(0.5) - 0.30).abs() < 1e-12);
        assert!((g.occupancy_percentile(0.99) - 1.0).abs() < 1e-12);

        let json = sink.to_json();
        assert!(json.contains("\"experiment\": \"region-rollup\""));
        assert!(json.contains("\"cells_per_region\": 4"));
        assert!(json.contains("\"region\": 1"));
    }

    #[test]
    fn region_rollup_fork_absorb_is_exact() {
        let profile = ServiceProfile::fixed(ServiceClass::Voice, BandwidthUnits::new(4));
        let t = SimTime::from_secs_f64(2.0);
        let feed = |sink: &mut RegionRollupSink, offset: u32| {
            for i in 0..6u32 {
                let cell = CellId(offset + i);
                sink.on_decision(
                    t,
                    cell,
                    &DecisionRecord::admitted(
                        UserId(u64::from(i)),
                        profile,
                        CallKind::New,
                        BandwidthUnits::new(2),
                    ),
                );
                sink.on_cell_sample(t, cell, i, 40);
            }
        };
        let mut whole = RegionRollupSink::new(4);
        feed(&mut whole, 0);
        feed(&mut whole, 6);

        let mut root = RegionRollupSink::new(4);
        let mut a = root.fork();
        let mut b = root.fork();
        feed(&mut a, 0);
        feed(&mut b, 6);
        root.absorb(a);
        root.absorb(b);
        assert_eq!(root, whole);
    }
}
