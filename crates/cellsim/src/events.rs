//! Deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotonically
//! increasing sequence number breaks ties), so runs are bit-reproducible
//! regardless of heap internals.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use facs_cac::{CallId, CellId};

use crate::time::{SimDuration, SimTime};

/// Identifier of a mobile terminal within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// The events driving the cellular simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A user issues a new-call request at its located cell.
    Arrival {
        /// The requesting user.
        user: UserId,
    },
    /// An admitted call's holding time expires.
    CallEnd {
        /// The finishing call.
        call: CallId,
        /// The user holding it.
        user: UserId,
        /// The cell the call was last served by (stale values are
        /// revalidated against the live ledger on dispatch).
        cell: CellId,
    },
    /// Advance all mobile terminals and process boundary crossings.
    MovementTick,
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// Legacy: ties break in *insertion* order, which is only reproducible
/// within a single queue. Kernel code must use [`EngineQueue`], whose
/// order is defined by event contents and therefore survives any
/// partitioning of events across shard queues.
///
/// # Examples
///
/// ```
/// use facs_cellsim::events::{Event, EventQueue, UserId};
/// use facs_cellsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs_f64(2.0), Event::MovementTick);
/// q.schedule(SimTime::from_secs_f64(1.0), Event::Arrival { user: UserId(0) });
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs_f64(1.0));
/// assert!(matches!(e, Event::Arrival { .. }));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The events of the sharded epoch kernel ([`crate::engine`]).
///
/// Unlike [`Event`], which relies on insertion order for tie-breaking
/// (and is therefore only deterministic within a single queue), an
/// `EngineEvent` carries everything needed for a **shard-independent**
/// total order: at equal timestamps, call-ends sort before arrivals
/// (capacity is freed before new decisions are made), then by user id,
/// then by handoff generation. Any partition of the event set across
/// shard queues therefore preserves each cell's event sequence exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// An admitted call's holding time expires. `generation` counts the
    /// call's handoffs so far; an event whose generation no longer
    /// matches the user's current registration is stale (the call moved
    /// to another cell or shard after this event was scheduled) and is
    /// ignored on dispatch.
    CallEnd {
        /// The user holding the finishing call.
        user: UserId,
        /// Handoff generation at scheduling time.
        generation: u32,
    },
    /// A user issues a new-call request at its located cell.
    Arrival {
        /// The requesting user.
        user: UserId,
    },
}

impl EngineEvent {
    /// The shard-independent tie-break key `(rank, user, generation)`.
    #[must_use]
    const fn key(self) -> (u8, u64, u32) {
        match self {
            EngineEvent::CallEnd { user, generation } => (0, user.0, generation),
            EngineEvent::Arrival { user } => (1, user.0, 0),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct EngineEntry {
    time: SimTime,
    event: EngineEvent,
    /// Caller-private payload (an arena slot in the kernel), **excluded
    /// from the ordering key**: two live entries never share a full
    /// `(time, key)` — events are keyed by user id and generation — so
    /// the tag can never influence pop order.
    tag: u32,
}

impl EngineEntry {
    /// The full content-defined sort key.
    fn sort_key(&self) -> (SimTime, (u8, u64, u32)) {
        (self.time, self.event.key())
    }
}

impl PartialEq for EngineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.sort_key() == other.sort_key()
    }
}

impl Eq for EngineEntry {}

impl PartialOrd for EngineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EngineEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inversion: the smallest (time, key) pops first.
        other.sort_key().cmp(&self.sort_key())
    }
}

/// Ring capacity of the calendar: buckets more than this many epochs
/// past the drain point spill into the overflow heap and are migrated
/// back as the calendar advances. 4096 five-second epochs ≈ 5.7 hours
/// of lookahead before any event ever touches the heap.
const MAX_RING: usize = 4096;

/// Default bucket width when none is given: the kernel's default
/// movement cadence (5 s), so `EngineQueue::new()` behaves sensibly
/// even when the caller never names an epoch.
const DEFAULT_WIDTH_US: u64 = 5_000_000;

/// A per-shard **calendar queue** over [`EngineEvent`]s whose pop order
/// depends only on event contents — never on insertion order — so every
/// cell sees the same event sequence regardless of how cells are
/// grouped into shards.
///
/// Events land in buckets one epoch (movement tick) wide: bucket `b`
/// holds times in `((b-1)·w, b·w]`, exactly the half-open range an
/// epoch's `run_events` drains. Scheduling is an O(1) `Vec` push for
/// anything inside the ring horizon; a bucket is sorted **once**, when
/// it becomes current, and then drained by a cursor. Events scheduled
/// *into the bucket currently draining* (same-epoch call-ends of
/// same-epoch arrivals) go to a small incursion heap that is merged
/// with the sorted remainder on every pop, which preserves the exact
/// total order a `BinaryHeap` would have produced. Events past the ring
/// horizon fall back to an overflow heap and migrate into buckets as
/// the calendar reaches them.
#[derive(Debug)]
pub struct EngineQueue {
    /// Bucket width in microseconds (≥ 1).
    width_us: u64,
    /// Index of the bucket currently draining through `cur`.
    cur_bucket: u64,
    /// The current bucket, sorted ascending by content key; entries
    /// before `cur_idx` are already popped.
    cur: Vec<EngineEntry>,
    cur_idx: usize,
    /// Entries scheduled into bucket `cur_bucket` (or earlier) after it
    /// was sorted; merged with `cur` on pop.
    incursions: BinaryHeap<EngineEntry>,
    /// Future buckets: `ring[i]` is bucket `cur_bucket + 1 + i`,
    /// unsorted (sorted lazily when it becomes current).
    ring: VecDeque<Vec<EngineEntry>>,
    /// Entries beyond the ring horizon, min-first.
    overflow: BinaryHeap<EngineEntry>,
    len: usize,
}

impl Default for EngineQueue {
    fn default() -> Self {
        Self::with_epoch(SimDuration::from_micros(DEFAULT_WIDTH_US))
    }
}

impl EngineQueue {
    /// Creates an empty queue with the default (5 s) bucket width.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty queue bucketed at `epoch` — callers should pass
    /// the movement cadence so each epoch's drain range maps onto
    /// exactly one bucket.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` rounds to zero microseconds.
    #[must_use]
    pub fn with_epoch(epoch: SimDuration) -> Self {
        assert!(epoch.as_micros() > 0, "calendar bucket width rounds to zero");
        Self {
            width_us: epoch.as_micros(),
            cur_bucket: 0,
            cur: Vec::new(),
            cur_idx: 0,
            incursions: BinaryHeap::new(),
            ring: VecDeque::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// The bucket holding instant `t`: bucket `b` covers `((b-1)·w, b·w]`
    /// so that epoch `e`'s drain limit `e·w` closes bucket `e` exactly.
    fn bucket_of(&self, time: SimTime) -> u64 {
        time.as_micros().div_ceil(self.width_us)
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: EngineEvent) {
        self.schedule_tagged(time, event, 0);
    }

    /// Schedules `event` at `time` carrying an opaque `tag` the caller
    /// gets back on pop (the kernel stores arena slots here). Tags do
    /// not participate in ordering.
    pub fn schedule_tagged(&mut self, time: SimTime, event: EngineEvent, tag: u32) {
        let entry = EngineEntry { time, event, tag };
        let bucket = self.bucket_of(time);
        self.len += 1;
        if bucket <= self.cur_bucket {
            // Into (or before) the bucket being drained: competes with
            // its sorted remainder via the incursion heap.
            self.incursions.push(entry);
        } else {
            let offset = (bucket - self.cur_bucket - 1) as usize;
            if offset < MAX_RING {
                if offset >= self.ring.len() {
                    self.ring.resize_with(offset + 1, Vec::new);
                }
                self.ring[offset].push(entry);
            } else {
                self.overflow.push(entry);
            }
        }
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, EngineEvent)> {
        self.pop_within(SimTime::from_micros(u64::MAX)).map(|(t, e, _)| (t, e))
    }

    /// Pops the earliest event with `time <= limit`, if any — the
    /// epoch-drain primitive. Events beyond `limit` are left untouched
    /// (buckets beyond the limit are not even sorted).
    pub fn pop_within(&mut self, limit: SimTime) -> Option<(SimTime, EngineEvent, u32)> {
        loop {
            let cur_next = self.cur.get(self.cur_idx).copied();
            let inc_next = self.incursions.peek().copied();
            let entry = match (cur_next, inc_next) {
                (None, None) => {
                    if !self.advance(limit) {
                        return None;
                    }
                    continue;
                }
                (Some(c), None) => {
                    if c.time > limit {
                        return None;
                    }
                    self.cur_idx += 1;
                    c
                }
                (None, Some(i)) => {
                    if i.time > limit {
                        return None;
                    }
                    self.incursions.pop();
                    i
                }
                (Some(c), Some(i)) => {
                    let next = if i.sort_key() < c.sort_key() { i } else { c };
                    if next.time > limit {
                        return None;
                    }
                    if i.sort_key() < c.sort_key() {
                        self.incursions.pop();
                    } else {
                        self.cur_idx += 1;
                    }
                    next
                }
            };
            self.len -= 1;
            return Some((entry.time, entry.event, entry.tag));
        }
    }

    /// Makes the next bucket that could hold an event `<= limit`
    /// current (migrating any overflow entries it owns), or returns
    /// `false` when there is none. Only called with `cur` exhausted and
    /// `incursions` empty.
    fn advance(&mut self, limit: SimTime) -> bool {
        loop {
            let next_bucket = if self.ring.is_empty() {
                // Ring drained: jump straight to the overflow's first
                // bucket (every bucket in between is provably empty).
                match self.overflow.peek() {
                    Some(top) => self.bucket_of(top.time).max(self.cur_bucket + 1),
                    None => return false,
                }
            } else {
                self.cur_bucket + 1
            };
            // Bucket b's content is strictly later than (b-1)·w: stop —
            // without consuming anything — once no content can be due.
            if SimTime::from_micros((next_bucket - 1).saturating_mul(self.width_us)) >= limit {
                return false;
            }
            let mut bucket = self.ring.pop_front().unwrap_or_default();
            self.cur_bucket = next_bucket;
            // Overflow entries now inside the advancing window belong to
            // this bucket (schedule() never files new ones this close).
            while let Some(top) = self.overflow.peek() {
                if self.bucket_of(top.time) <= next_bucket {
                    let top = self.overflow.pop().expect("peeked overflow entry vanished");
                    bucket.push(top);
                } else {
                    break;
                }
            }
            if bucket.is_empty() {
                continue;
            }
            bucket.sort_unstable_by_key(EngineEntry::sort_key);
            self.cur = bucket;
            self.cur_idx = 0;
            return true;
        }
    }

    /// The timestamp of the next event without removing it.
    ///
    /// O(1) while the current bucket has entries; otherwise scans the
    /// first non-empty future bucket (which is not yet sorted). Kernel
    /// code drains via [`EngineQueue::pop_within`] and never pays this.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        let near =
            [self.cur.get(self.cur_idx).map(|c| c.time), self.incursions.peek().map(|i| i.time)];
        if let Some(t) = near.into_iter().flatten().min() {
            return Some(t);
        }
        // Buckets cover disjoint ascending time ranges, so the first
        // non-empty future bucket bounds every bucket behind it; only
        // the overflow heap can undercut it.
        let ring_min = self
            .ring
            .iter()
            .find(|b| !b.is_empty())
            .and_then(|bucket| bucket.iter().map(|e| e.time).min());
        let overflow_min = self.overflow.peek().map(|o| o.time);
        [ring_min, overflow_min].into_iter().flatten().min()
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), Event::MovementTick);
        q.schedule(t(1.0), Event::Arrival { user: UserId(1) });
        q.schedule(t(2.0), Event::Arrival { user: UserId(2) });
        let order: Vec<f64> =
            std::iter::from_fn(|| q.pop()).map(|(tm, _)| tm.as_secs_f64()).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), Event::Arrival { user: UserId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { user } => user.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), Event::MovementTick);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, t(1.0));
        q.schedule(t(0.5), Event::MovementTick); // in the past relative to t1 — still pops
        q.schedule(t(2.0), Event::MovementTick);
        assert_eq!(q.pop().unwrap().0, t(0.5));
        assert_eq!(q.pop().unwrap().0, t(2.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn engine_queue_order_is_insertion_independent() {
        let events = [
            (t(2.0), EngineEvent::Arrival { user: UserId(3) }),
            (t(1.0), EngineEvent::CallEnd { user: UserId(9), generation: 1 }),
            (t(1.0), EngineEvent::Arrival { user: UserId(1) }),
            (t(1.0), EngineEvent::CallEnd { user: UserId(2), generation: 0 }),
            (t(1.0), EngineEvent::CallEnd { user: UserId(2), generation: 2 }),
        ];
        // Schedule in two different orders; pops must agree.
        let drain = |order: &[usize]| {
            let mut q = EngineQueue::new();
            for &i in order {
                q.schedule(events[i].0, events[i].1);
            }
            std::iter::from_fn(move || q.pop()).collect::<Vec<_>>()
        };
        let a = drain(&[0, 1, 2, 3, 4]);
        let b = drain(&[4, 2, 0, 3, 1]);
        assert_eq!(a, b);
        // At t=1: call-ends (user 2 gen 0, user 2 gen 2, user 9) precede
        // the arrival of user 1.
        assert_eq!(a[0].1, EngineEvent::CallEnd { user: UserId(2), generation: 0 });
        assert_eq!(a[1].1, EngineEvent::CallEnd { user: UserId(2), generation: 2 });
        assert_eq!(a[2].1, EngineEvent::CallEnd { user: UserId(9), generation: 1 });
        assert_eq!(a[3].1, EngineEvent::Arrival { user: UserId(1) });
    }

    #[test]
    fn engine_queue_mid_drain_insert_competes_with_current_bucket() {
        // Schedule into the bucket currently draining: the incursion
        // must pop in content order against the sorted remainder, exactly
        // as a heap would have interleaved it.
        let mut q = EngineQueue::with_epoch(SimDuration::from_secs_f64(5.0));
        q.schedule(t(1.0), EngineEvent::Arrival { user: UserId(0) });
        q.schedule(t(4.0), EngineEvent::Arrival { user: UserId(1) });
        let first = q.pop().unwrap();
        assert_eq!(first.0, t(1.0));
        // Mid-drain: lands between the popped event and the remainder.
        q.schedule(t(2.0), EngineEvent::CallEnd { user: UserId(0), generation: 0 });
        assert_eq!(q.peek_time(), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().0, t(2.0));
        assert_eq!(q.pop().unwrap().0, t(4.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn engine_queue_far_future_overflow_pops_in_order() {
        let mut q = EngineQueue::with_epoch(SimDuration::from_secs_f64(5.0));
        // Far beyond the ring horizon (4096 × 5 s): overflow heap.
        let far = t(5.0 * 10_000.0);
        let farther = t(5.0 * 12_000.0);
        q.schedule(farther, EngineEvent::Arrival { user: UserId(2) });
        q.schedule(far, EngineEvent::Arrival { user: UserId(1) });
        q.schedule(t(1.0), EngineEvent::Arrival { user: UserId(0) });
        assert_eq!(q.len(), 3);
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop()).map(|(tm, _)| tm).collect();
        assert_eq!(order, vec![t(1.0), far, farther]);
        assert!(q.is_empty());
    }

    #[test]
    fn engine_queue_pop_within_respects_the_limit() {
        let mut q = EngineQueue::with_epoch(SimDuration::from_secs_f64(5.0));
        q.schedule(t(3.0), EngineEvent::Arrival { user: UserId(0) });
        q.schedule(t(5.0), EngineEvent::Arrival { user: UserId(1) });
        q.schedule(t(5.1), EngineEvent::Arrival { user: UserId(2) });
        // Epoch 1 drains (0, 5]: the boundary event is included, the
        // next epoch's is not.
        assert_eq!(q.pop_within(t(5.0)).unwrap().0, t(3.0));
        assert_eq!(q.pop_within(t(5.0)).unwrap().0, t(5.0));
        assert_eq!(q.pop_within(t(5.0)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_within(t(10.0)).unwrap().0, t(5.1));
    }

    #[test]
    fn engine_queue_tags_ride_along_without_affecting_order() {
        let mut q = EngineQueue::with_epoch(SimDuration::from_secs_f64(5.0));
        q.schedule_tagged(t(2.0), EngineEvent::Arrival { user: UserId(7) }, 42);
        q.schedule_tagged(t(1.0), EngineEvent::Arrival { user: UserId(9) }, 7);
        let (_, _, tag) = q.pop_within(t(10.0)).unwrap();
        assert_eq!(tag, 7);
        let (_, _, tag) = q.pop_within(t(10.0)).unwrap();
        assert_eq!(tag, 42);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(4.0), Event::MovementTick);
        q.schedule(t(2.0), Event::MovementTick);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
