//! Deterministic discrete-event queue.
//!
//! Events at equal timestamps pop in insertion order (a monotonically
//! increasing sequence number breaks ties), so runs are bit-reproducible
//! regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use facs_cac::{CallId, CellId};

use crate::time::SimTime;

/// Identifier of a mobile terminal within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// The events driving the cellular simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A user issues a new-call request at its located cell.
    Arrival {
        /// The requesting user.
        user: UserId,
    },
    /// An admitted call's holding time expires.
    CallEnd {
        /// The finishing call.
        call: CallId,
        /// The user holding it.
        user: UserId,
        /// The cell the call was last served by (stale values are
        /// revalidated against the live ledger on dispatch).
        cell: CellId,
    },
    /// Advance all mobile terminals and process boundary crossings.
    MovementTick,
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with deterministic tie-breaking.
///
/// # Examples
///
/// ```
/// use facs_cellsim::events::{Event, EventQueue, UserId};
/// use facs_cellsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs_f64(2.0), Event::MovementTick);
/// q.schedule(SimTime::from_secs_f64(1.0), Event::Arrival { user: UserId(0) });
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(t, SimTime::from_secs_f64(1.0));
/// assert!(matches!(e, Event::Arrival { .. }));
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// The timestamp of the next event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), Event::MovementTick);
        q.schedule(t(1.0), Event::Arrival { user: UserId(1) });
        q.schedule(t(2.0), Event::Arrival { user: UserId(2) });
        let order: Vec<f64> =
            std::iter::from_fn(|| q.pop()).map(|(tm, _)| tm.as_secs_f64()).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5.0), Event::Arrival { user: UserId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Arrival { user } => user.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), Event::MovementTick);
        let (t1, _) = q.pop().unwrap();
        assert_eq!(t1, t(1.0));
        q.schedule(t(0.5), Event::MovementTick); // in the past relative to t1 — still pops
        q.schedule(t(2.0), Event::MovementTick);
        assert_eq!(q.pop().unwrap().0, t(0.5));
        assert_eq!(q.pop().unwrap().0, t(2.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(4.0), Event::MovementTick);
        q.schedule(t(2.0), Event::MovementTick);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(2.0)));
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
